"""World state: accounts, balances, nonces, contract code and storage.

The state supports cheap snapshot/revert (journaling) so a failed
transaction rolls back completely — the mechanism behind the paper's
"invalid transactions throw an error without transitioning state".
"""

from __future__ import annotations

import copy as _copymod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.crypto.hashing import hash_items
from repro.errors import UnknownSender


def _clone_value(value: Any) -> Any:
    """Deep-copy a storage value unless it is immutable.

    Storage holds arbitrary Python values; sharing a mutable value (list,
    dict) between two states lets an in-place mutation in one leak into
    the other, which corrupts both ``WorldState.copy()`` clones and
    per-group execution forks.
    """
    if value is None or isinstance(value, (int, float, str, bytes, bool)):
        return value
    return _copymod.deepcopy(value)


@dataclass
class Account:
    """One account: externally owned (code is None) or contract."""

    address: str
    balance: int = 0
    nonce: int = 0
    code: bytes | None = None
    #: native contract name when this account hosts a built-in contract
    native: str | None = None

    @property
    def is_contract(self) -> bool:
        return self.code is not None or self.native is not None


class WorldState:
    """Mutable account/storage map with journaled snapshots.

    Journaling records undo entries; ``snapshot()`` returns a journal
    length and ``revert(snap)`` unwinds back to it.  This is O(writes)
    per revert and O(1) per snapshot — the same strategy Geth uses.
    """

    def __init__(self) -> None:
        self._accounts: dict[str, Account] = {}
        # storage[(contract_address, key)] = value
        self._storage: dict[tuple[str, str], Any] = {}
        self._journal: list[Callable[[], None]] = []

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> int:
        """Opaque marker for the current state (journal length)."""
        return len(self._journal)

    def revert(self, snap: int) -> None:
        """Undo every mutation recorded after ``snap``."""
        while len(self._journal) > snap:
            self._journal.pop()()

    def commit(self) -> None:
        """Drop undo history (mutations become permanent)."""
        self._journal.clear()

    # -- accounts -----------------------------------------------------------

    def account_exists(self, address: str) -> bool:
        return address in self._accounts

    def get_account(self, address: str) -> Account:
        try:
            return self._accounts[address]
        except KeyError:
            raise UnknownSender(f"no account {address!r}") from None

    def get_or_create(self, address: str) -> Account:
        if address not in self._accounts:
            account = Account(address=address)
            self._accounts[address] = account
            self._journal.append(lambda: self._accounts.pop(address, None))
        return self._accounts[address]

    def create_account(
        self,
        address: str,
        balance: int = 0,
        *,
        code: bytes | None = None,
        native: str | None = None,
    ) -> Account:
        account = self.get_or_create(address)
        self.set_balance(address, balance)
        if code is not None or native is not None:
            prev_code, prev_native = account.code, account.native
            account.code, account.native = code, native

            def undo(acc=account, c=prev_code, nat=prev_native) -> None:
                acc.code, acc.native = c, nat

            self._journal.append(undo)
        return account

    def balance_of(self, address: str) -> int:
        account = self._accounts.get(address)
        return account.balance if account else 0

    def nonce_of(self, address: str) -> int:
        account = self._accounts.get(address)
        return account.nonce if account else 0

    def set_balance(self, address: str, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative balance {value} for {address!r}")
        account = self.get_or_create(address)
        prev = account.balance
        account.balance = value
        self._journal.append(lambda acc=account, p=prev: setattr(acc, "balance", p))

    def add_balance(self, address: str, delta: int) -> None:
        self.set_balance(address, self.balance_of(address) + delta)

    def sub_balance(self, address: str, delta: int) -> None:
        self.set_balance(address, self.balance_of(address) - delta)

    def bump_nonce(self, address: str) -> None:
        account = self.get_or_create(address)
        prev = account.nonce
        account.nonce = prev + 1
        self._journal.append(lambda acc=account, p=prev: setattr(acc, "nonce", p))

    def set_nonce(self, address: str, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative nonce {value} for {address!r}")
        account = self.get_or_create(address)
        prev = account.nonce
        account.nonce = value
        self._journal.append(lambda acc=account, p=prev: setattr(acc, "nonce", p))

    def set_code(
        self, address: str, code: bytes | None, *, native: str | None = None
    ) -> None:
        """Install code/native on an account without touching its balance
        (``create_account`` resets the balance, which a delta merge must
        never do)."""
        account = self.get_or_create(address)
        prev_code, prev_native = account.code, account.native
        account.code, account.native = code, native

        def undo(acc=account, c=prev_code, nat=prev_native) -> None:
            acc.code, acc.native = c, nat

        self._journal.append(undo)

    # -- storage ------------------------------------------------------------

    def storage_get(self, contract: str, key: str, default: Any = None) -> Any:
        return self._storage.get((contract, key), default)

    def storage_set(self, contract: str, key: str, value: Any) -> None:
        slot = (contract, key)
        had, prev = (slot in self._storage), self._storage.get(slot)

        def undo() -> None:
            if had:
                self._storage[slot] = prev
            else:
                self._storage.pop(slot, None)

        self._storage[slot] = value
        self._journal.append(undo)

    def storage_items(self, contract: str) -> Iterator[tuple[str, Any]]:
        for (addr, key), value in self._storage.items():
            if addr == contract:
                yield key, value

    # -- digests ------------------------------------------------------------

    def state_root(self) -> bytes:
        """Deterministic digest of the full state (order-independent).

        Computed by hashing the sorted account and storage entries;
        two validators that executed the same block sequence produce the
        same root (tested as the safety corollary of §II-C).
        """
        items: list[object] = []
        for address in sorted(self._accounts):
            account = self._accounts[address]
            items.extend([address, account.balance, account.nonce,
                          account.code or b"", account.native or ""])
        for (addr, key) in sorted(self._storage, key=lambda s: (s[0], s[1])):
            items.extend([addr, key, repr(self._storage[(addr, key)])])
        return hash_items(items)

    def copy(self) -> "WorldState":
        """Independent copy: accounts re-created, storage values deep-copied.

        Mutable storage values (lists/dicts) must not be shared between
        clones — a fork mutating a stored value in place would otherwise
        leak the mutation into every other clone of the same state.
        """
        clone = WorldState()
        for address, account in self._accounts.items():
            clone._accounts[address] = Account(
                address=address,
                balance=account.balance,
                nonce=account.nonce,
                code=account.code,
                native=account.native,
            )
        clone._storage = {
            slot: _clone_value(value) for slot, value in self._storage.items()
        }
        return clone

    def fork(self) -> "StateFork":
        """Copy-on-write overlay for parallel group execution."""
        return StateFork(self)

    def apply_delta(self, delta: "ForkDelta") -> None:
        """Merge one fork's delta back into this (base) state.

        Balances are applied *additively* (fork balance minus the base
        value captured when the fork first touched the account) so
        commutative credits from several forks of the same group compose;
        nonces, code and storage slots are exclusive per the conflict
        analysis and are applied as final values.  All mutations are
        journaled, so a later ``revert`` remains correct.
        """
        for address, dbal, dnonce, code_change in delta.accounts:
            self.get_or_create(address)
            if dbal:
                self.add_balance(address, dbal)
            if dnonce:
                self.set_nonce(address, self.nonce_of(address) + dnonce)
            if code_change is not None:
                self.set_code(address, code_change[0], native=code_change[1])
        for (contract, key), value in delta.storage:
            self.storage_set(contract, key, value)

    def __len__(self) -> int:
        return len(self._accounts)


# ---------------------------------------------------------------------------
# Copy-on-write forks for parallel execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _AccountPre:
    """Pre-image of an account at the moment a fork first touched it."""

    existed: bool
    balance: int = 0
    nonce: int = 0
    code: bytes | None = None
    native: str | None = None


@dataclass
class ForkDelta:
    """Deterministic diff of one fork against its base.

    ``accounts`` rows are ``(address, balance_delta, nonce_delta,
    code_change)`` where ``code_change`` is ``None`` (untouched) or a
    ``(code, native)`` pair; rows and storage slots are sorted so the
    merge order never depends on dict insertion history.
    """

    accounts: list[tuple[str, int, int, tuple | None]] = field(default_factory=list)
    storage: list[tuple[tuple[str, str], Any]] = field(default_factory=list)


class StateFork(WorldState):
    """Copy-on-write view over a base :class:`WorldState`.

    Reads fall through to the base; the first touch of an account copies
    it into the overlay (capturing the base pre-image, which the merge
    uses to compute deltas), and storage reads of mutable base values are
    cloned into the overlay so in-place mutation cannot cross forks.

    A fork is single-threaded; several forks may share one base
    concurrently because group execution never mutates the base — deltas
    are merged (``WorldState.apply_delta``) only after every fork of the
    group has joined.  Journaling is inherited, so per-transaction
    snapshot/revert works unchanged inside a fork.
    """

    def __init__(self, base: WorldState):
        super().__init__()
        self._base = base
        self._account_pre: dict[str, _AccountPre] = {}

    # -- copy-on-write plumbing ---------------------------------------------

    def _touch(self, address: str) -> Account | None:
        """Overlay account for ``address``, copying from base on first use."""
        account = self._accounts.get(address)
        if account is not None:
            return account
        if not self._base.account_exists(address):
            return None
        base_acct = self._base.get_account(address)
        self._account_pre.setdefault(
            address,
            _AccountPre(
                True,
                base_acct.balance,
                base_acct.nonce,
                base_acct.code,
                base_acct.native,
            ),
        )
        account = Account(
            address=address,
            balance=base_acct.balance,
            nonce=base_acct.nonce,
            code=base_acct.code,
            native=base_acct.native,
        )
        self._accounts[address] = account
        self._journal.append(lambda: self._accounts.pop(address, None))
        return account

    # -- overridden reads ----------------------------------------------------

    def account_exists(self, address: str) -> bool:
        return address in self._accounts or self._base.account_exists(address)

    def get_account(self, address: str) -> Account:
        account = self._touch(address)
        if account is None:
            raise UnknownSender(f"no account {address!r}") from None
        return account

    def get_or_create(self, address: str) -> Account:
        account = self._touch(address)
        if account is None:
            self._account_pre.setdefault(address, _AccountPre(False))
            account = Account(address=address)
            self._accounts[address] = account
            self._journal.append(lambda: self._accounts.pop(address, None))
        return account

    def balance_of(self, address: str) -> int:
        account = self._accounts.get(address)
        if account is not None:
            return account.balance
        return self._base.balance_of(address)

    def nonce_of(self, address: str) -> int:
        account = self._accounts.get(address)
        if account is not None:
            return account.nonce
        return self._base.nonce_of(address)

    def storage_get(self, contract: str, key: str, default: Any = None) -> Any:
        slot = (contract, key)
        if slot in self._storage:
            return self._storage[slot]
        if slot in self._base._storage:
            # Clone into the overlay (journaled) so in-place mutation of a
            # mutable value stays fork-local yet persists across reads of
            # the same slot — matching serial shared-object semantics.
            value = _clone_value(self._base._storage[slot])
            self._storage[slot] = value
            self._journal.append(lambda: self._storage.pop(slot, None))
            return value
        return default

    def storage_items(self, contract: str) -> Iterator[tuple[str, Any]]:
        seen: set[str] = set()
        for (addr, key), value in self._storage.items():
            if addr == contract:
                seen.add(key)
                yield key, value
        for key, value in self._base.storage_items(contract):
            if key not in seen:
                yield key, value

    # -- merged views --------------------------------------------------------

    def _materialize(self) -> WorldState:
        merged = WorldState()
        merged._accounts = {**self._base._accounts, **self._accounts}
        merged._storage = {**self._base._storage, **self._storage}
        return merged

    def state_root(self) -> bytes:
        return self._materialize().state_root()

    def copy(self) -> WorldState:
        return self._materialize().copy()

    def __len__(self) -> int:
        return len(set(self._base._accounts) | set(self._accounts))

    # -- delta extraction ----------------------------------------------------

    def delta(self) -> ForkDelta:
        """Diff of this fork vs its base, in deterministic (sorted) order."""
        accounts: list[tuple[str, int, int, tuple | None]] = []
        for address in sorted(self._accounts):
            account = self._accounts[address]
            pre = self._account_pre.get(address, _AccountPre(False))
            code_change = None
            if (account.code, account.native) != (pre.code, pre.native):
                code_change = (account.code, account.native)
            accounts.append(
                (
                    address,
                    account.balance - pre.balance,
                    account.nonce - pre.nonce,
                    code_change,
                )
            )
        storage = [(slot, self._storage[slot]) for slot in sorted(self._storage)]
        return ForkDelta(accounts=accounts, storage=storage)
