"""Native DApp contracts: exchange (NASDAQ), mobility (Uber), ticketing (FIFA)."""

import pytest

from repro.errors import VMRevert
from repro.vm.contracts import ExchangeContract, MobilityContract, TicketingContract
from repro.vm.contracts.base import GasMeter, NativeContract, NativeRegistry, method
from repro.vm.state import WorldState

GAS = 10_000_000


def call(contract, state, fn, *args, caller="11" * 20, value=0, address="cc" * 20):
    state.get_or_create(address)
    result, gas = contract.call(state, address, caller, fn, args, value, GAS)
    return result


@pytest.fixture
def state():
    ws = WorldState()
    ws.create_account("11" * 20, 10**9)
    return ws


class TestExchange:
    def test_trade_updates_price_volume_position(self, state):
        ex = ExchangeContract()
        assert call(ex, state, "trade", "AAPL", 15000, 10, "buy") == 10
        assert call(ex, state, "trade", "AAPL", 15100, 5, "sell") == 15
        assert call(ex, state, "last_price", "AAPL") == 15100
        assert call(ex, state, "volume", "AAPL") == 15
        assert call(ex, state, "position", "11" * 20, "AAPL") == 5  # 10 - 5

    def test_trade_rejects_nonpositive(self, state):
        ex = ExchangeContract()
        with pytest.raises(VMRevert):
            call(ex, state, "trade", "AAPL", 0, 10)
        with pytest.raises(VMRevert):
            call(ex, state, "trade", "AAPL", 100, -1)

    def test_trade_rejects_bad_side(self, state):
        with pytest.raises(VMRevert):
            call(ExchangeContract(), state, "trade", "AAPL", 100, 1, "hold")

    def test_unknown_method_reverts(self, state):
        with pytest.raises(VMRevert):
            call(ExchangeContract(), state, "rug_pull")

    def test_symbols_independent(self, state):
        ex = ExchangeContract()
        call(ex, state, "trade", "AAPL", 100, 1, "buy")
        assert call(ex, state, "volume", "GOOG") == 0


class TestMobility:
    def test_ride_lifecycle(self, state):
        mob = MobilityContract()
        contract_addr = "cc" * 20
        state.create_account(contract_addr, 10_000)
        ride = call(mob, state, "request_ride", 5, 9, 1200, value=1200)
        assert call(mob, state, "ride_state", ride) == "open"
        driver = "dd" * 20
        call(mob, state, "accept_ride", ride, caller=driver)
        assert call(mob, state, "ride_state", ride) == "accepted"
        fare = call(mob, state, "complete_ride", ride, caller=driver)
        assert fare == 1200
        assert call(mob, state, "ride_state", ride) == "completed"
        assert state.balance_of(driver) == 1200

    def test_underfunded_escrow_reverts(self, state):
        with pytest.raises(VMRevert):
            call(MobilityContract(), state, "request_ride", 1, 2, 500, value=10)

    def test_zone_demand_counts(self, state):
        mob = MobilityContract()
        contract_addr = "cc" * 20
        state.create_account(contract_addr, 10_000)
        call(mob, state, "request_ride", 7, 1, 100, value=100)
        call(mob, state, "request_ride", 7, 2, 100, value=100)
        assert call(mob, state, "zone_demand", 7) == 2
        assert call(mob, state, "zone_demand", 8) == 0

    def test_accept_twice_reverts(self, state):
        mob = MobilityContract()
        state.create_account("cc" * 20, 10_000)
        ride = call(mob, state, "request_ride", 1, 2, 100, value=100)
        call(mob, state, "accept_ride", ride, caller="dd" * 20)
        with pytest.raises(VMRevert):
            call(mob, state, "accept_ride", ride, caller="ee" * 20)

    def test_stranger_cannot_complete(self, state):
        mob = MobilityContract()
        state.create_account("cc" * 20, 10_000)
        ride = call(mob, state, "request_ride", 1, 2, 100, value=100)
        call(mob, state, "accept_ride", ride, caller="dd" * 20)
        with pytest.raises(VMRevert):
            call(mob, state, "complete_ride", ride, caller="99" * 20)

    def test_missing_ride_reverts(self, state):
        with pytest.raises(VMRevert):
            call(MobilityContract(), state, "ride_state", 404)


class TestTicketing:
    def test_buy_until_sold_out(self, state):
        tick = TicketingContract()
        call(tick, state, "open_match", 1, 3, 10)
        call(tick, state, "buy_ticket", 1, 2, value=20)
        call(tick, state, "buy_ticket", 1, 1, value=10)
        assert call(tick, state, "sold", 1) == 3
        with pytest.raises(VMRevert, match="sold out"):
            call(tick, state, "buy_ticket", 1, 1, value=10)

    def test_underpaid_reverts(self, state):
        tick = TicketingContract()
        call(tick, state, "open_match", 1, 100, 10)
        with pytest.raises(VMRevert, match="underpaid"):
            call(tick, state, "buy_ticket", 1, 2, value=5)

    def test_tickets_of_tracks_holder(self, state):
        tick = TicketingContract()
        call(tick, state, "open_match", 2, 100, 1)
        call(tick, state, "buy_ticket", 2, 4, value=4)
        assert call(tick, state, "tickets_of", "11" * 20, 2) == 4
        assert call(tick, state, "tickets_of", "22" * 20, 2) == 0

    def test_unknown_match_reverts(self, state):
        with pytest.raises(VMRevert):
            call(TicketingContract(), state, "buy_ticket", 99, 1, value=1)

    def test_bad_match_params_revert(self, state):
        with pytest.raises(VMRevert):
            call(TicketingContract(), state, "open_match", 1, 0, 1)


class TestFramework:
    def test_registry_lookup(self):
        reg = NativeRegistry()
        ex = reg.register(ExchangeContract())
        assert reg.get("exchange") is ex
        assert "exchange" in reg
        from repro.errors import ContractNotFound

        with pytest.raises(ContractNotFound):
            reg.get("nope")

    def test_unnamed_contract_rejected(self):
        class Anon(NativeContract):
            pass

        with pytest.raises(ValueError):
            NativeRegistry().register(Anon())

    def test_gas_metering_charges_storage(self, state):
        ex = ExchangeContract()
        state.get_or_create("cc" * 20)
        _, gas = ex.call(state, "cc" * 20, "11" * 20, "trade", ("AAPL", 1, 1, "buy"), 0, GAS)
        # 3 SSTOREs (5000) + several SLOADs (100) + dispatch (700)
        assert gas > 3 * 5000

    def test_out_of_gas_in_meter(self):
        from repro.errors import OutOfGas

        meter = GasMeter(10)
        with pytest.raises(OutOfGas):
            meter.charge(11)

    def test_non_method_attribute_not_callable(self, state):
        ex = ExchangeContract()
        with pytest.raises(VMRevert):
            # `name` exists as an attribute but is not @method-decorated
            ex.call(state, "cc" * 20, "11" * 20, "name", (), 0, GAS)
