"""The SVM interpreter: a gas-metered stack machine over bytecode.

Execution raises the error taxonomy of :mod:`repro.errors` — out-of-gas,
stack under/overflow, invalid opcode/jump, checked-arithmetic overflow and
explicit revert — all of which the executor converts into a failed receipt
with a full state rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import sha256
from repro.errors import (
    ArithmeticOverflow,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    StackOverflow,
    StackUnderflow,
    VMRevert,
)
from repro.vm.gas import GAS_TABLE
from repro.vm.opcodes import (
    MAX_STACK,
    WORD_MOD,
    Instruction,
    Op,
    disassemble,
)
from repro.vm.state import WorldState


@dataclass
class VMResult:
    """Outcome of one bytecode run."""

    gas_used: int
    return_value: int | None = None
    logs: list[int] = field(default_factory=list)
    halted: bool = True


@dataclass
class CallContext:
    """Environment visible to the executing code."""

    address: str  # account whose storage is accessed
    caller: str
    value: int = 0
    calldata: tuple[int, ...] = ()


class SVM:
    """Stack-machine interpreter bound to a :class:`WorldState`."""

    def __init__(self, state: WorldState):
        self.state = state

    def execute(
        self, code: bytes, context: CallContext, gas_limit: int
    ) -> VMResult:
        """Run ``code`` with ``gas_limit``; raises on any VM fault.

        The *caller* (executor) is responsible for snapshotting the state
        before the call and reverting on exception.
        """
        instructions = disassemble(code)
        # Map byte offsets of JUMPDESTs for jump validation.
        jumpdests = {
            ins.offset for ins in instructions
            if isinstance(ins.op, Op) and ins.op == Op.JUMPDEST
        }
        offset_to_index = {ins.offset: i for i, ins in enumerate(instructions)}

        stack: list[int] = []
        memory: dict[int, int] = {}
        logs: list[int] = []
        gas = gas_limit
        pc = 0

        def charge(amount: int) -> None:
            nonlocal gas
            if amount > gas:
                raise OutOfGas(f"needed {amount}, had {gas}")
            gas -= amount

        def push(value: int) -> None:
            if len(stack) >= MAX_STACK:
                raise StackOverflow(f"stack depth {MAX_STACK} exceeded")
            if not 0 <= value < WORD_MOD:
                raise ArithmeticOverflow(f"word out of range: {value}")
            stack.append(value)

        def pop() -> int:
            if not stack:
                raise StackUnderflow("pop from empty stack")
            return stack.pop()

        steps = 0
        while pc < len(instructions):
            ins = instructions[pc]
            steps += 1
            if steps > 1_000_000:
                raise OutOfGas("step budget exhausted (runaway loop)")
            op = ins.op
            if not isinstance(op, Op):
                raise InvalidOpcode(f"byte 0x{op:02x} at offset {ins.offset}")
            charge(GAS_TABLE[op])
            pc += 1

            if op == Op.STOP:
                return VMResult(gas_used=gas_limit - gas, logs=logs)
            elif op == Op.ADD:
                b, a = pop(), pop()
                result = a + b
                if result >= WORD_MOD:
                    raise ArithmeticOverflow(f"ADD overflow: {a} + {b}")
                push(result)
            elif op == Op.MUL:
                b, a = pop(), pop()
                result = a * b
                if result >= WORD_MOD:
                    raise ArithmeticOverflow(f"MUL overflow: {a} * {b}")
                push(result)
            elif op == Op.SUB:
                b, a = pop(), pop()
                if a < b:
                    raise ArithmeticOverflow(f"SUB underflow: {a} - {b}")
                push(a - b)
            elif op == Op.DIV:
                b, a = pop(), pop()
                push(0 if b == 0 else a // b)
            elif op == Op.MOD:
                b, a = pop(), pop()
                push(0 if b == 0 else a % b)
            elif op == Op.ADDMOD:
                m, b, a = pop(), pop(), pop()
                push(0 if m == 0 else (a + b) % m)
            elif op == Op.EXP:
                e, b = pop(), pop()
                result = pow(b, e, WORD_MOD)
                push(result)
            elif op == Op.LT:
                b, a = pop(), pop()
                push(1 if a < b else 0)
            elif op == Op.GT:
                b, a = pop(), pop()
                push(1 if a > b else 0)
            elif op == Op.EQ:
                b, a = pop(), pop()
                push(1 if a == b else 0)
            elif op == Op.ISZERO:
                push(1 if pop() == 0 else 0)
            elif op == Op.AND:
                b, a = pop(), pop()
                push(a & b)
            elif op == Op.OR:
                b, a = pop(), pop()
                push(a | b)
            elif op == Op.XOR:
                b, a = pop(), pop()
                push(a ^ b)
            elif op == Op.NOT:
                push(WORD_MOD - 1 - pop())
            elif op == Op.SHA3:
                value = pop()
                digest = sha256(value.to_bytes(32, "big"))
                push(int.from_bytes(digest[:8], "big"))
            elif op == Op.ADDRESS:
                push(_addr_to_word(context.address))
            elif op == Op.BALANCE:
                pop()  # address slot (simplified: own balance)
                push(self.state.balance_of(context.address) % WORD_MOD)
            elif op == Op.CALLER:
                push(_addr_to_word(context.caller))
            elif op == Op.CALLVALUE:
                push(context.value % WORD_MOD)
            elif op == Op.CALLDATALOAD:
                index = pop()
                value = (
                    context.calldata[index] if index < len(context.calldata) else 0
                )
                push(value % WORD_MOD)
            elif op == Op.CALLDATASIZE:
                push(len(context.calldata))
            elif op == Op.POP:
                pop()
            elif op == Op.MLOAD:
                push(memory.get(pop(), 0))
            elif op == Op.MSTORE:
                value, key = pop(), pop()
                memory[key] = value
            elif op == Op.SLOAD:
                key = pop()
                push(int(self.state.storage_get(context.address, str(key), 0)))
            elif op == Op.SSTORE:
                value, key = pop(), pop()
                self.state.storage_set(context.address, str(key), value)
            elif op == Op.JUMP:
                dest = pop()
                if dest not in jumpdests:
                    raise InvalidJump(f"jump to non-JUMPDEST offset {dest}")
                pc = offset_to_index[dest]
            elif op == Op.JUMPI:
                cond, dest = pop(), pop()
                if cond != 0:
                    if dest not in jumpdests:
                        raise InvalidJump(f"jump to non-JUMPDEST offset {dest}")
                    pc = offset_to_index[dest]
            elif op == Op.PC:
                push(ins.offset)
            elif op == Op.GAS:
                push(gas)
            elif op == Op.JUMPDEST:
                pass
            elif op == Op.PUSH:
                push(ins.operand)
            elif op == Op.DUP:
                depth = ins.operand or 1
                if depth > len(stack):
                    raise StackUnderflow(f"DUP{depth} with stack of {len(stack)}")
                push(stack[-depth])
            elif op == Op.SWAP:
                depth = ins.operand or 1
                if depth >= len(stack) + 1 or len(stack) < depth + 1:
                    raise StackUnderflow(f"SWAP{depth} with stack of {len(stack)}")
                stack[-1], stack[-depth - 1] = stack[-depth - 1], stack[-1]
            elif op == Op.LOG:
                logs.append(pop())
            elif op == Op.RETURN:
                return VMResult(
                    gas_used=gas_limit - gas, return_value=pop(), logs=logs
                )
            elif op == Op.REVERT:
                raise VMRevert(f"explicit revert (code {pop() if stack else 0})")
            elif op == Op.TRANSFER:
                amount, to_word = pop(), pop()
                to_addr = _word_to_addr(to_word)
                if self.state.balance_of(context.address) < amount:
                    raise VMRevert("TRANSFER with insufficient contract balance")
                self.state.sub_balance(context.address, amount)
                self.state.add_balance(to_addr, amount)
            else:  # pragma: no cover - all ops handled above
                raise InvalidOpcode(f"unhandled opcode {op!r}")

        # Falling off the end of the code halts like STOP.
        return VMResult(gas_used=gas_limit - gas, logs=logs)


def _addr_to_word(address: str) -> int:
    """Map a hex address into the word domain (low 160 bits)."""
    if not address:
        return 0
    return int(address, 16) % WORD_MOD


def _word_to_addr(word: int) -> str:
    """Inverse of :func:`_addr_to_word` onto the 20-byte hex form."""
    return format(word % (1 << 160), "040x")
