"""Multi-seed replication statistics."""

import pytest

from repro.analysis.stats import Replicates, replicate, replicate_many


class TestReplicates:
    def test_summary_stats(self):
        reps = Replicates(name="x", values=(1.0, 2.0, 3.0), seeds=(1, 2, 3))
        assert reps.mean == 2.0
        assert reps.std == pytest.approx(1.0)
        assert reps.cv == pytest.approx(0.5)

    def test_bootstrap_ci_brackets_mean(self):
        reps = Replicates(name="x", values=tuple(float(v) for v in range(10)),
                          seeds=tuple(range(10)))
        lo, hi = reps.bootstrap_ci()
        assert lo <= reps.mean <= hi
        assert hi - lo < 8  # tighter than the raw range

    def test_single_value_degenerate(self):
        reps = Replicates(name="x", values=(5.0,), seeds=(1,))
        assert reps.std == 0.0
        assert reps.bootstrap_ci() == (5.0, 5.0)

    def test_summary_text(self):
        reps = Replicates(name="tput", values=(10.0, 12.0), seeds=(1, 2))
        assert "tput" in reps.summary() and "CI" in reps.summary()


class TestReplicate:
    def test_runs_each_seed(self):
        reps = replicate(lambda seed: float(seed * 2), seeds=(1, 2, 3), name="d")
        assert reps.values == (2.0, 4.0, 6.0)

    def test_replicate_many(self):
        out = replicate_many(
            lambda seed: {"a": seed, "b": seed * 10}, seeds=(1, 2)
        )
        assert out["a"].values == (1.0, 2.0)
        assert out["b"].mean == 15.0


class TestEngineVariance:
    def test_engine_throughput_low_variance_across_seeds(self):
        """The paper's 'minimal statistical variance' claim, checked on
        the engine: identical workloads under different network seeds give
        commit counts within a few percent."""
        from repro import params
        from repro.core.deployment import Deployment, fund_clients
        from repro.core.transaction import make_transfer
        from repro.net.topology import single_region_topology

        def experiment(seed: int) -> float:
            clients, balances = fund_clients(4)
            deployment = Deployment(
                protocol=params.ProtocolParams(n=4, rpm=False),
                topology=single_region_topology(4),
                extra_balances=balances,
                seed=seed,
            )
            deployment.start()
            txs = []
            for i in range(20):
                tx = make_transfer(clients[i % 4], clients[(i + 1) % 4].address,
                                   1, nonce=i // 4, created_at=0.02 * i)
                deployment.submit(tx, validator_id=i % 4, at=0.02 * i)
                txs.append(tx)
            deployment.run_until(8.0)
            last = max(
                deployment.validators[0].blockchain.commit_times[tx.tx_hash]
                for tx in txs
            )
            return 20.0 / last  # committed throughput proxy

        reps = replicate(experiment, seeds=(1, 2, 3, 4), name="tput")
        assert all(v > 0 for v in reps.values)
        assert reps.cv < 0.25  # low spread across seeds
