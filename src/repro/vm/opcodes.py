"""SVM instruction set.

A compact EVM-like stack machine: 256-bit-style unsigned words (modelled as
Python ints checked against 2**256), ~40 opcodes covering arithmetic,
comparison, stack/memory/storage access, control flow, environment access
and halting.  Enough to express the DApp workload contracts and to exhibit
the failure modes the paper leans on (out-of-gas, overflow, revert,
invalid opcode).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class Op(IntEnum):
    STOP = 0x00
    ADD = 0x01
    MUL = 0x02
    SUB = 0x03
    DIV = 0x04
    MOD = 0x06
    ADDMOD = 0x08
    EXP = 0x0A
    LT = 0x10
    GT = 0x11
    EQ = 0x14
    ISZERO = 0x15
    AND = 0x16
    OR = 0x17
    XOR = 0x18
    NOT = 0x19
    SHA3 = 0x20
    ADDRESS = 0x30
    BALANCE = 0x31
    CALLER = 0x33
    CALLVALUE = 0x34
    CALLDATALOAD = 0x35
    CALLDATASIZE = 0x36
    POP = 0x50
    MLOAD = 0x51
    MSTORE = 0x52
    SLOAD = 0x54
    SSTORE = 0x55
    JUMP = 0x56
    JUMPI = 0x57
    PC = 0x58
    GAS = 0x5A
    JUMPDEST = 0x5B
    PUSH = 0x60  # PUSH with a 32-byte immediate (simplified from PUSH1..32)
    DUP = 0x80  # DUP with a 1-byte depth immediate
    SWAP = 0x90  # SWAP with a 1-byte depth immediate
    LOG = 0xA0
    RETURN = 0xF3
    REVERT = 0xFD
    TRANSFER = 0xF1  # simplified value transfer to stack-top address slot


#: Opcodes carrying an immediate operand and its byte width.
IMMEDIATE_WIDTH = {Op.PUSH: 32, Op.DUP: 1, Op.SWAP: 1}

WORD_BITS = 256
WORD_MOD = 1 << WORD_BITS
MAX_STACK = 1024


@dataclass(frozen=True)
class Instruction:
    op: Op
    operand: int = 0
    #: byte offset of this instruction in the code (jump target space)
    offset: int = 0


def assemble(program: list[tuple | Op]) -> bytes:
    """Assemble ``[(Op.PUSH, 5), Op.ADD, ...]`` into bytecode."""
    out = bytearray()
    for item in program:
        if isinstance(item, tuple):
            op, operand = item
        else:
            op, operand = item, None
        out.append(int(op))
        width = IMMEDIATE_WIDTH.get(op)
        if width is not None:
            if operand is None:
                raise ValueError(f"{op.name} requires an operand")
            out.extend(int(operand).to_bytes(width, "big"))
        elif operand is not None:
            raise ValueError(f"{op.name} takes no operand")
    return bytes(out)


def disassemble(code: bytes) -> list[Instruction]:
    """Decode bytecode into instructions; unknown bytes decode as-is and
    fault at execution time (InvalidOpcode), matching EVM behaviour."""
    instructions = []
    i = 0
    while i < len(code):
        offset = i
        byte = code[i]
        i += 1
        try:
            op = Op(byte)
        except ValueError:
            # Preserve the raw byte; SVM raises InvalidOpcode when reached.
            instructions.append(Instruction(op=byte, operand=0, offset=offset))  # type: ignore[arg-type]
            continue
        operand = 0
        width = IMMEDIATE_WIDTH.get(op)
        if width is not None:
            operand = int.from_bytes(code[i : i + width], "big")
            i += width
        instructions.append(Instruction(op=op, operand=operand, offset=offset))
    return instructions
