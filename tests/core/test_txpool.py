"""Transaction pool: dedup, TTL, capacity, batching."""

from hypothesis import given, settings, strategies as st

from repro.core.transaction import make_transfer
from repro.core.txpool import TxPool
from repro.crypto.keys import generate_keypair


def _tx(nonce, seed=1, **kw):
    return make_transfer(generate_keypair(seed), "aa" * 20, 1, nonce=nonce, **kw)


def _reference_take_by_fee(pool_txs, max_txs, gas_limit, next_nonce):
    """Spec for ``take_batch(by_fee=True)``: stable sort of the FIFO queue
    by (gas_price desc, nonce asc) — ties FIFO — with the same sweep rules
    (nonce gating, gas-limit early stop, multi-sweep unlock) as the pool.
    ``pool_txs`` is the pending list in admission (FIFO) order."""
    pending = list(pool_txs)
    batch, gas, taken_nonces = [], 0, {}

    def one_pass():
        nonlocal gas
        candidates = sorted(pending, key=lambda t: (-t.gas_price, t.nonce))
        progress = False
        for tx in candidates:
            if len(batch) >= max_txs:
                return progress
            if gas_limit is not None and gas + tx.gas_limit > gas_limit:
                return progress
            if next_nonce is not None:
                expected = taken_nonces.get(tx.sender)
                if expected is None:
                    expected = next_nonce(tx.sender)
                if tx.nonce != expected:
                    continue
                taken_nonces[tx.sender] = expected + 1
            batch.append(tx)
            gas += tx.gas_limit
            pending.remove(tx)
            progress = True
        return progress

    while len(batch) < max_txs and one_pass():
        if next_nonce is None:
            break
    return batch


class TestAdmission:
    def test_add_and_contains(self):
        pool = TxPool()
        tx = _tx(0)
        assert pool.add(tx)
        assert tx in pool
        assert pool.contains_hash(tx.tx_hash)
        assert len(pool) == 1

    def test_duplicate_rejected(self):
        pool = TxPool()
        tx = _tx(0)
        pool.add(tx)
        assert not pool.add(tx)
        assert pool.stats.duplicates == 1
        assert len(pool) == 1

    def test_capacity_evicts_oldest(self):
        pool = TxPool(capacity=2)
        txs = [_tx(i) for i in range(3)]
        for tx in txs:
            pool.add(tx)
        assert len(pool) == 2
        assert txs[0] not in pool  # FIFO eviction
        assert txs[2] in pool
        assert pool.stats.evicted == 1


class TestExpiry:
    def test_ttl_expiry(self):
        pool = TxPool(ttl=10.0)
        a, b = _tx(0), _tx(1)
        pool.add(a, now=0.0)
        pool.add(b, now=8.0)
        dropped = pool.expire(now=11.0)
        assert dropped == [a]
        assert b in pool
        assert pool.stats.expired == 1

    def test_no_expiry_before_ttl(self):
        pool = TxPool(ttl=10.0)
        pool.add(_tx(0), now=0.0)
        assert pool.expire(now=9.9) == []


class TestBatching:
    def test_fifo_order(self):
        pool = TxPool()
        txs = [_tx(i) for i in range(5)]
        for tx in txs:
            pool.add(tx)
        assert pool.take_batch(3) == txs[:3]
        assert len(pool) == 2

    def test_gas_limit_bound(self):
        pool = TxPool()
        for i in range(5):
            pool.add(_tx(i))
        batch = pool.take_batch(10, gas_limit=2 * 21_000)
        assert len(batch) == 2

    def test_nonce_aware_skips_gaps(self):
        pool = TxPool()
        t0, t2 = _tx(0), _tx(2)
        pool.add(t2)  # arrives first, out of order
        pool.add(t0)
        batch = pool.take_batch(10, next_nonce=lambda s: 0)
        assert batch == [t0]  # nonce 2 is gapped, left queued
        assert t2 in pool

    def test_nonce_aware_takes_contiguous_run(self):
        pool = TxPool()
        txs = [_tx(i) for i in range(4)]
        for tx in txs:
            pool.add(tx)
        batch = pool.take_batch(10, next_nonce=lambda s: 0)
        assert batch == txs

    def test_nonce_aware_multi_sender(self):
        pool = TxPool()
        a1 = _tx(5, seed=1)
        b0 = _tx(0, seed=2)
        pool.add(a1)
        pool.add(b0)
        nonces = {a1.sender: 5, b0.sender: 0}
        batch = pool.take_batch(10, next_nonce=nonces.__getitem__)
        assert set(batch) >= {a1, b0}

    def test_peek_does_not_remove(self):
        pool = TxPool()
        tx = _tx(0)
        pool.add(tx)
        assert pool.peek(5) == [tx]
        assert len(pool) == 1

    def test_remove_hashes(self):
        pool = TxPool()
        txs = [_tx(i) for i in range(3)]
        for tx in txs:
            pool.add(tx)
        removed = pool.remove_hashes({txs[0].tx_hash, txs[2].tx_hash})
        assert removed == 2
        assert list(pool.peek(5)) == [txs[1]]

    def test_clear(self):
        pool = TxPool()
        pool.add(_tx(0))
        pool.clear()
        assert len(pool) == 0

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=10))
    def test_property_batch_never_exceeds_request(self, n_txs, batch_size):
        pool = TxPool()
        for i in range(n_txs):
            pool.add(_tx(i))
        batch = pool.take_batch(batch_size)
        assert len(batch) == min(n_txs, batch_size)
        assert len(pool) == n_txs - len(batch)


class TestByFeeHeap:
    """The fee-indexed heap must select exactly what the sort-based spec
    selects — order included — while staying O(k log n) per take."""

    def test_descending_gas_price(self):
        pool = TxPool()
        prices = [3, 9, 1, 7, 5]
        txs = [_tx(i, gas_price=p) for i, p in enumerate(prices)]
        for tx in txs:
            pool.add(tx)
        batch = pool.take_batch(10, by_fee=True)
        assert [tx.gas_price for tx in batch] == sorted(prices, reverse=True)

    def test_ties_break_by_nonce_then_fifo(self):
        pool = TxPool()
        # same price everywhere: nonce asc decides; same (price, nonce)
        # across senders: admission (FIFO) order decides
        b5 = _tx(5, seed=2, gas_price=4)
        a5 = _tx(5, seed=1, gas_price=4)
        a7 = _tx(7, seed=1, gas_price=4)
        for tx in (b5, a5, a7):
            pool.add(tx)
        assert pool.take_batch(10, by_fee=True) == [b5, a5, a7]

    def test_stale_entries_skipped_after_removal(self):
        pool = TxPool()
        hi = _tx(0, seed=1, gas_price=100)
        lo = _tx(0, seed=2, gas_price=1)
        pool.add(hi)
        pool.add(lo)
        pool.remove_hashes({hi.tx_hash})  # heap entry goes stale
        assert pool.take_batch(10, by_fee=True) == [lo]

    def test_readmission_uses_fresh_position(self):
        pool = TxPool()
        a = _tx(0, seed=1, gas_price=5)
        b = _tx(0, seed=2, gas_price=5)
        pool.add(a)
        pool.add(b)
        pool.remove_hashes({a.tx_hash})
        pool.add(a)  # re-admitted: now FIFO-after b at the same price
        assert pool.take_batch(10, by_fee=True) == [b, a]

    def test_gapped_nonce_left_pending_across_takes(self):
        pool = TxPool()
        n0 = _tx(0, gas_price=1)
        n2 = _tx(2, gas_price=100)  # top fee but gapped
        pool.add(n2)
        pool.add(n0)
        assert pool.take_batch(1, by_fee=True, next_nonce=lambda s: 0) == [n0]
        assert n2 in pool
        # still gapped (nonce 1 never arrives): later takes keep skipping it
        assert pool.take_batch(1, by_fee=True, next_nonce=lambda s: 1) == []
        assert n2 in pool

    def test_multi_sweep_unlocks_same_sender_chain(self):
        pool = TxPool()
        # nonce 1 prices higher than nonce 0, so fee order is 1 before 0 —
        # only a second sweep can take nonce 1 after nonce 0 unlocks it
        n1 = _tx(1, gas_price=9)
        n0 = _tx(0, gas_price=1)
        pool.add(n1)
        pool.add(n0)
        assert pool.take_batch(10, by_fee=True, next_nonce=lambda s: 0) == [n0, n1]

    @settings(deadline=None, max_examples=40)
    @given(st.data())
    def test_equivalent_to_sorted_reference(self, data):
        n_txs = data.draw(st.integers(min_value=0, max_value=25))
        specs = [
            (
                data.draw(st.integers(min_value=1, max_value=4), label="seed"),
                data.draw(st.integers(min_value=0, max_value=5), label="nonce"),
                data.draw(st.integers(min_value=1, max_value=6), label="price"),
            )
            for _ in range(n_txs)
        ]
        max_txs = data.draw(st.integers(min_value=1, max_value=12))
        gas_limit = data.draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=8))
        )
        gate = data.draw(st.booleans())

        pool = TxPool()
        txs = []
        seen = set()
        for seed, nonce, price in specs:
            tx = _tx(nonce, seed=seed, gas_price=price)
            if tx.tx_hash in seen:
                continue  # pool dedups; keep the reference list aligned
            seen.add(tx.tx_hash)
            pool.add(tx)
            txs.append(tx)
        # drop a random subset to leave stale heap entries behind
        removed = {
            tx.tx_hash for tx in txs if data.draw(st.booleans(), label="drop")
        }
        pool.remove_hashes(removed)
        live = [tx for tx in txs if tx.tx_hash not in removed]

        next_nonce = (lambda s: 0) if gate else None
        limit = gas_limit * 21_000 if gas_limit is not None else None
        expected = _reference_take_by_fee(live, max_txs, limit, next_nonce)
        got = pool.take_batch(max_txs, by_fee=True,
                              gas_limit=limit, next_nonce=next_nonce)
        assert got == expected
        assert len(pool) == len(live) - len(expected)
        # a second take continues correctly from the leftover state
        rest = [tx for tx in live if tx not in expected]
        expected2 = _reference_take_by_fee(rest, max_txs, limit, next_nonce)
        assert pool.take_batch(max_txs, by_fee=True,
                               gas_limit=limit, next_nonce=next_nonce) == expected2
