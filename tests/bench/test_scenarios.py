"""Scenario registry API and (cheap) end-to-end determinism."""

import pytest

from repro.bench import (
    cheapest_scenarios,
    get_scenario,
    run_scenario,
    scenario_names,
    validate_artifact,
)


class TestRegistry:
    def test_expected_scenarios_registered(self):
        names = scenario_names()
        for expected in (
            "tvpr_ablation", "table1_dapp", "saturation_sweep",
            "weak_validator", "vote_batching_ablation", "chaos_soak",
            "engine_scaling", "parallel_exec_ablation",
        ):
            assert expected in names
        # renamed in the crash-recovery PR: a slow node is a delay fault
        assert "fault_injection" not in names

    def test_unknown_scenario_raises_with_candidates(self):
        with pytest.raises(KeyError, match="tvpr_ablation"):
            get_scenario("no_such_scenario")

    def test_cheapest_scenarios_are_tick_engine(self):
        cheap = cheapest_scenarios(2)
        assert len(cheap) == 2
        assert all(get_scenario(n).cost_rank <= 1 for n in cheap)
        ranks = [get_scenario(n).cost_rank for n in cheap]
        assert ranks == sorted(ranks)

    def test_scenarios_have_descriptions_and_seeds(self):
        for name in scenario_names():
            s = get_scenario(name)
            assert s.description
            assert isinstance(s.seed, int)


class TestRunCheapScenario:
    """End-to-end run of the cheapest scenario (tick engine, ~0.1s)."""

    def test_tvpr_ablation_deterministic_and_valid(self):
        a = run_scenario("tvpr_ablation")
        b = run_scenario("tvpr_ablation")
        # identical headline dicts: the property the regression gate needs
        assert a.headline == b.headline
        assert validate_artifact(a.to_dict()) == []
        assert a.headline["srbb_throughput_tps"] > 0
        assert a.headline["throughput_ratio"] > 1.0  # SRBB beats EVM baseline
