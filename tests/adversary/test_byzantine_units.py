"""Adversary unit behaviour (block-level, without a full deployment)."""

from repro.adversary import make_invalid_transactions
from repro.core.validation import eager_validate, lazy_validate
from repro.vm.state import WorldState


class TestInvalidTransactionFactory:
    def test_invalid_txs_are_signed_but_unfunded(self):
        state = WorldState()
        txs = make_invalid_transactions(5)
        for tx in txs:
            # genuine signature...
            assert tx.signature is not None
            # ...but zero balance: eager validation must reject (checks iv/v)
            outcome = eager_validate(tx, state)
            assert not outcome
            assert outcome.error_code in ("insufficient-gas", "insufficient-balance")

    def test_invalid_txs_fail_lazy_validation_too(self):
        state = WorldState()
        for tx in make_invalid_transactions(3):
            assert not lazy_validate(tx, state)

    def test_deterministic_per_seed(self):
        a = make_invalid_transactions(3, seed=5)
        b = make_invalid_transactions(3, seed=5)
        assert [t.tx_hash for t in a] == [t.tx_hash for t in b]

    def test_distinct_across_seeds(self):
        a = make_invalid_transactions(3, seed=5)
        b = make_invalid_transactions(3, seed=6)
        assert {t.tx_hash for t in a}.isdisjoint({t.tx_hash for t in b})

    def test_count(self):
        assert len(make_invalid_transactions(17)) == 17
        assert make_invalid_transactions(0) == []


class TestCampaignToggles:
    def make_campaign_node(self):
        from repro import params
        from repro.adversary import CampaignValidator
        from repro.core.deployment import Deployment

        deployment = Deployment(
            protocol=params.ProtocolParams(n=4, rpm=False),
            byzantine={3: CampaignValidator},
            seed=3,
        )
        return deployment, deployment.validators[3]

    def test_all_behaviours_default_off(self):
        _, node = self.make_campaign_node()
        assert not node.flood_active
        assert not node.equivocate_active
        assert not node.withhold_active
        assert not node.censor_active

    def test_unknown_behaviour_rejected(self):
        import pytest

        _, node = self.make_campaign_node()
        with pytest.raises(ValueError, match="unknown misbehaviour"):
            node.set_misbehaviour("bribe", True)

    def test_flood_knobs_applied_at_toggle_time(self):
        _, node = self.make_campaign_node()
        node.set_misbehaviour("flood", True, per_block=7, total=21, seed=5)
        assert node.flood_active
        assert node.flood_per_block == 7
        assert node.flood_total == 21
        assert node._flood_seed == 5
        node.set_misbehaviour("flood", False)
        assert not node.flood_active

    def test_misbehaviour_log_records_edges(self):
        _, node = self.make_campaign_node()
        node.set_misbehaviour("withhold", True)
        node.set_misbehaviour("withhold", False)
        assert [(b, a) for b, a, _ in node.misbehaviour_log] == [
            ("withhold", True), ("withhold", False),
        ]

    def test_withholding_drops_wire_messages(self):
        from repro.consensus.messages import ConsensusMessage, MsgKind

        deployment, node = self.make_campaign_node()
        node.set_misbehaviour("withhold", True)
        before = deployment.network.stats.messages
        node._send_consensus_wire(
            ConsensusMessage(
                kind=MsgKind.BVAL, index=0, instance=0, round=0,
                value=1, sender=3,
            )
        )
        assert node.withheld_msgs == 1
        assert deployment.network.stats.messages == before  # nothing sent

    def test_legacy_subclasses_preset_their_behaviour(self):
        from repro.adversary import (
            CensoringValidator,
            EquivocatingProposer,
            FloodingValidator,
        )

        for cls, flag in (
            (FloodingValidator, "flood_active"),
            (CensoringValidator, "censor_active"),
            (EquivocatingProposer, "equivocate_active"),
        ):
            from repro import params
            from repro.core.deployment import Deployment

            deployment = Deployment(
                protocol=params.ProtocolParams(n=4, rpm=False),
                byzantine={3: cls},
                seed=3,
            )
            assert getattr(deployment.validators[3], flag) is True


class TestParams:
    def test_protocol_derives_f(self):
        from repro import params

        assert params.ProtocolParams(n=4).f == 1
        assert params.ProtocolParams(n=10).f == 3
        assert params.ProtocolParams(n=10).quorum == 7

    def test_invalid_resilience_rejected(self):
        import pytest

        from repro import params

        with pytest.raises(ValueError):
            params.ProtocolParams(n=3, f=1)
        with pytest.raises(ValueError):
            params.ProtocolParams(n=0)

    def test_with_override(self):
        from repro import params

        p = params.ProtocolParams(n=4)
        q = p.with_(tvpr=False)
        assert q.tvpr is False and p.tvpr is True
        assert q.n == 4
