"""Parallel executor: equivalence with serial, timing model."""

import pytest

from repro.core.transaction import make_invoke, make_transfer
from repro.crypto.keys import generate_keypair
from repro.vm.executor import Executor, install_native, native_address_for
from repro.vm.parallel import execute_parallel, parallel_commit_time_s
from repro.vm.state import WorldState

KPS = [generate_keypair(9500 + i) for i in range(8)]


@pytest.fixture
def executor(registry):
    state = WorldState()
    for kp in KPS:
        state.create_account(kp.address, 10**12)
    install_native(state, "exchange")
    state.commit()
    return Executor(state, registry=registry)


def disjoint_transfers(count):
    return [
        make_transfer(KPS[i % 8], f"{i:040x}", 1, nonce=i // 8)
        for i in range(count)
    ]


class TestEquivalence:
    def test_same_state_as_serial(self, executor, registry):
        txs = disjoint_transfers(8) + [
            make_invoke(KPS[0], native_address_for("exchange"), "trade",
                        ("AAPL", 100, 5, "buy"), nonce=1)
        ]
        parallel_result = execute_parallel(executor, txs, workers=4)
        root_parallel = executor.state.state_root()

        serial_exec = Executor(_fresh_state(), registry=registry)
        for tx in txs:
            serial_exec.execute(tx)
        assert serial_exec.state.state_root() == root_parallel
        assert all(r.success for r in parallel_result.receipts)

    def test_groups_ordered(self, executor):
        # same-sender chain forces sequential groups
        kp = KPS[0]
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(4)]
        result = execute_parallel(executor, txs, workers=8)
        assert result.groups == 4
        assert all(r.success for r in result.receipts)


def _fresh_state():
    state = WorldState()
    for kp in KPS:
        state.create_account(kp.address, 10**12)
    install_native(state, "exchange")
    state.commit()
    return state


class TestTiming:
    def test_disjoint_batch_speedup(self, executor):
        txs = disjoint_transfers(8)  # 8 senders, one group
        result = execute_parallel(executor, txs, workers=8, exec_rate=1000.0)
        assert result.groups == 1
        assert result.parallel_time_s == pytest.approx(1 / 1000.0)
        assert result.speedup == pytest.approx(8.0)

    def test_serial_chain_no_speedup(self, executor):
        kp = KPS[0]
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(5)]
        result = execute_parallel(executor, txs, workers=8, exec_rate=1000.0)
        assert result.speedup == pytest.approx(1.0)

    def test_worker_count_bounds_speedup(self, executor):
        txs = disjoint_transfers(16)
        two = execute_parallel(_exec_copy(), txs, workers=2, exec_rate=1000.0)
        assert two.speedup == pytest.approx(2.0)

    def test_timing_only_estimate_matches(self):
        txs = disjoint_transfers(8)
        assert parallel_commit_time_s(txs, workers=8, exec_rate=1000.0) == (
            pytest.approx(1 / 1000.0)
        )

    def test_invalid_workers(self, executor):
        with pytest.raises(ValueError):
            execute_parallel(executor, [], workers=0)


def _exec_copy():
    return Executor(_fresh_state())


class TestReceiptsBlockOrder:
    def test_receipts_indexed_by_block_position(self, executor):
        # Schedule order differs from block order: [a0, a1, b0] schedules
        # as groups [[0, 2], [1]] (a1 must wait for a0; b0 is free), so
        # flattened schedule order is 0, 2, 1 — receipts must still be
        # returned as 0, 1, 2.
        a, b = KPS[0], KPS[1]
        txs = [
            make_transfer(a, "aa" * 20, 1, nonce=0),
            make_transfer(a, "aa" * 20, 2, nonce=1),
            make_transfer(b, "bb" * 20, 3, nonce=0),
        ]
        result = execute_parallel(executor, txs, workers=4)
        assert result.group_of == {0: 0, 2: 0, 1: 1}
        assert len(result.receipts) == len(txs)
        for i, tx in enumerate(txs):
            assert result.receipts[i].tx_hash == tx.tx_hash

    def test_failed_receipt_lands_at_its_position(self, executor):
        txs = [
            make_transfer(KPS[0], "aa" * 20, 1, nonce=0),
            make_transfer(KPS[1], "bb" * 20, 1, nonce=99),  # bad nonce
            make_transfer(KPS[2], "cc" * 20, 1, nonce=0),
        ]
        result = execute_parallel(executor, txs, workers=4)
        assert [r.success for r in result.receipts] == [True, False, True]
        assert result.receipts[1].error == "bad-nonce"


class TestThreadedBackend:
    def test_unknown_backend_rejected(self, executor):
        with pytest.raises(ValueError):
            execute_parallel(executor, [], backend="processes")

    def test_threads_match_serial_oracle(self, registry):
        txs = disjoint_transfers(24) + [
            make_invoke(KPS[i], native_address_for("exchange"), "trade",
                        (sym, 100, 5), nonce=3)
            for i, sym in enumerate(("AAPL", "MSFT", "GOOG"))
        ]
        oracle = Executor(_fresh_state(), registry=registry)
        oracle_result = execute_parallel(
            oracle, txs, workers=8, coinbase="cb", backend="serial"
        )
        threaded = Executor(_fresh_state(), registry=registry)
        threaded_result = execute_parallel(
            threaded, txs, workers=8, coinbase="cb", backend="threads"
        )
        assert threaded.state.state_root() == oracle.state.state_root()
        for serial_r, thread_r in zip(
            oracle_result.receipts, threaded_result.receipts
        ):
            assert (serial_r.tx_hash, serial_r.success, serial_r.gas_used) == (
                thread_r.tx_hash, thread_r.success, thread_r.gas_used
            )
        assert threaded_result.backend == "threads"
        assert threaded_result.wall_time_s > 0.0

    def test_threads_respect_conflict_chains(self, registry):
        # Same-sender chain: must execute in order even under threads.
        kp = KPS[0]
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(6)]
        ex = Executor(_fresh_state(), registry=registry)
        result = execute_parallel(ex, txs, workers=8, backend="threads")
        assert all(r.success for r in result.receipts)
        assert ex.state.nonce_of(kp.address) == 6
