"""Topologies, latency model, transport, partial synchrony, gossip."""

import numpy as np
import pytest

from repro import params
from repro.errors import NetworkError
from repro.net.gossip import GossipLayer
from repro.net.simulator import Simulator
from repro.net.topology import global_topology, single_region_topology
from repro.net.transport import Message, Network, PartialSynchrony


class Sink:
    def __init__(self):
        self.received = []

    def on_message(self, msg):
        self.received.append(msg)


class TestTopology:
    def test_global_topology_round_robins_regions(self):
        topo = global_topology(20)
        assert topo.n == 20
        assert topo.region_of(0) == params.AWS_REGIONS[0]
        assert topo.region_of(10) == params.AWS_REGIONS[0]
        assert topo.region_of(1) == params.AWS_REGIONS[1]

    def test_overlay_connected(self):
        import networkx as nx

        topo = global_topology(50, degree=4)
        assert nx.is_connected(topo.graph)

    def test_single_region_full_mesh(self):
        topo = single_region_topology(4)
        for i in range(4):
            assert sorted(topo.peers_of(i)) == [j for j in range(4) if j != i]

    def test_latency_symmetric(self):
        topo = global_topology(20)
        for a, b in ((0, 5), (3, 17), (2, 9)):
            assert topo.latency_s(a, b) == topo.latency_s(b, a)

    def test_latency_matrix_matches_pairwise(self):
        topo = global_topology(10)
        matrix = topo.latency_matrix_s()
        assert matrix.shape == (10, 10)
        assert matrix[2, 7] == topo.latency_s(2, 7)

    def test_intra_region_cheaper_than_cross(self):
        assert params.region_latency_ms("sydney", "sydney") < params.region_latency_ms(
            "sydney", "stockholm"
        )

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError):
            params.region_latency_ms("sydney", "atlantis")

    def test_region_latency_matrix_complete(self):
        matrix = params.region_latency_matrix()
        assert len(matrix) == len(params.AWS_REGIONS) ** 2


class TestNetwork:
    def _net(self, n=4, **kw):
        sim = Simulator()
        topo = single_region_topology(n)
        net = Network(sim, topo, **kw)
        sinks = [Sink() for _ in range(n)]
        for i, sink in enumerate(sinks):
            net.register(i, sink)
        return sim, net, sinks

    def test_send_delivers(self):
        sim, net, sinks = self._net()
        net.send(0, 1, Message(kind="x", payload="hi", sender=0))
        sim.run()
        assert sinks[1].received[0].payload == "hi"

    def test_unknown_destination_raises(self):
        sim, net, _ = self._net(2)
        with pytest.raises(NetworkError):
            net.send(0, 9, Message(kind="x", payload=None, sender=0))

    def test_double_register_raises(self):
        sim, net, _ = self._net(2)
        with pytest.raises(NetworkError):
            net.register(0, Sink())

    def test_broadcast_reaches_everyone_including_self(self):
        sim, net, sinks = self._net()
        net.broadcast(0, Message(kind="x", payload=1, sender=0))
        sim.run()
        assert all(len(s.received) == 1 for s in sinks)

    def test_broadcast_exclude_self(self):
        sim, net, sinks = self._net()
        net.broadcast(0, Message(kind="x", payload=1, sender=0), include_self=False)
        sim.run()
        assert len(sinks[0].received) == 0
        assert all(len(s.received) == 1 for s in sinks[1:])

    def test_stats_accumulate(self):
        sim, net, _ = self._net()
        net.send(0, 1, Message(kind="k", payload=None, sender=0, size_bytes=100))
        net.send(0, 2, Message(kind="k", payload=None, sender=0, size_bytes=50))
        assert net.stats.messages == 2
        assert net.stats.bytes == 150
        assert net.stats.by_kind["k"] == [2, 150]

    def test_stats_track_region_pairs(self):
        from repro.telemetry import MetricsRegistry, to_json, use_registry

        with use_registry(MetricsRegistry(enabled=True)) as reg:
            sim = Simulator()
            topo = global_topology(4)  # nodes land in distinct regions
            net = Network(sim, topo)
            for i in range(4):
                net.register(i, Sink())
            net.send(0, 1, Message(kind="consensus", payload=None, sender=0,
                                   size_bytes=100))
            net.broadcast(0, Message(kind="gossip", payload=None, sender=0,
                                     size_bytes=10))
            src = topo.region_of(0)
            dst = topo.region_of(1)
            assert net.stats.by_region[(src, dst)][0] == 2  # send + broadcast
            assert net.stats.by_region[(src, src)][0] == 1  # loopback leg
            snap = to_json(reg)["srbb_net_messages_total"]
            labeled = {
                (s["labels"]["kind"], s["labels"]["src_region"],
                 s["labels"]["dst_region"]): s["value"]
                for s in snap["samples"] if s["labels"]
            }
            assert labeled[("consensus", src, dst)] == 1
            assert labeled[("gossip", src, src)] == 1
            # region-pair children partition the total: no double counting
            assert sum(labeled.values()) == net.stats.messages

    def test_larger_messages_arrive_later(self):
        sim, net, sinks = self._net(jitter_s=0.0, bandwidth_bytes_per_s=1000.0)
        arrivals = {}

        class Recorder:
            def __init__(self, name):
                self.name = name

            def on_message(self, msg):
                arrivals[self.name] = sim.now

        net._endpoints[1] = Recorder("small")
        net._endpoints[2] = Recorder("big")
        net.send(0, 1, Message(kind="x", payload=None, sender=0, size_bytes=10))
        net.send(0, 2, Message(kind="x", payload=None, sender=0, size_bytes=10_000))
        sim.run()
        assert arrivals["big"] > arrivals["small"]

    def test_partial_synchrony_bounds_delay(self):
        """After GST every delay respects δ + serialization."""
        timing = PartialSynchrony(gst=0.0, delta=0.1)
        sim = Simulator()
        topo = global_topology(10)
        net = Network(
            sim, topo, timing=timing,
            adversarial_delay=lambda s, d, t: 99.0,  # adversary stretches hard
        )
        delay = net.delay_for(0, 5, 256)
        assert delay <= 0.1 + 256 / net.bandwidth + 1e-9

    def test_pre_gst_allows_longer_delays(self):
        timing = PartialSynchrony(gst=100.0, delta=0.1, pre_gst_max_delay=5.0)
        sim = Simulator()
        net = Network(
            sim, single_region_topology(4), timing=timing,
            adversarial_delay=lambda s, d, t: 99.0,
        )
        delay = net.delay_for(0, 1, 256)
        assert 4.9 < delay <= 5.0 + 256 / net.bandwidth + 1e-9


class TestGossip:
    def _mesh(self, n=6):
        sim = Simulator()
        topo = single_region_topology(n)
        net = Network(sim, topo)
        delivered = {i: [] for i in range(n)}
        layers = {}

        class Node:
            def __init__(self, i):
                self.i = i

            def on_message(self, msg):
                layers[self.i].handle(msg)

        for i in range(n):
            node = Node(i)
            layers[i] = GossipLayer(
                i, net, lambda payload, sender, i=i: delivered[i].append(payload)
            )
            net.register(i, node)
        return sim, net, layers, delivered

    def test_publish_floods_to_all(self):
        sim, net, layers, delivered = self._mesh()
        layers[0].publish("item-1", {"tx": 1}, 200)
        sim.run()
        for i in range(1, 6):
            assert delivered[i] == [{"tx": 1}]

    def test_originator_does_not_deliver_to_itself(self):
        sim, net, layers, delivered = self._mesh()
        layers[0].publish("item-1", "x", 100)
        sim.run()
        assert delivered[0] == []

    def test_duplicates_suppressed(self):
        sim, net, layers, delivered = self._mesh()
        layers[0].publish("item-1", "x", 100)
        sim.run()
        # full mesh: every node receives n-2 duplicate copies beyond the first
        assert all(len(v) == 1 for i, v in delivered.items() if i != 0)
        total_dups = sum(l.stats.duplicates_suppressed for l in layers.values())
        assert total_dups > 0

    def test_republish_ignored(self):
        sim, net, layers, delivered = self._mesh()
        layers[0].publish("item-1", "x", 100)
        layers[0].publish("item-1", "x", 100)
        sim.run()
        assert all(len(v) <= 1 for v in delivered.values())

    def test_redundancy_counts_measure_flooding_cost(self):
        """The §III-A claim quantified: one published tx costs O(edges)
        messages network-wide."""
        sim, net, layers, delivered = self._mesh(6)
        before = net.stats.messages
        layers[0].publish("tx", "x", 100)
        sim.run()
        sent = net.stats.messages - before
        # full mesh with 6 nodes has 15 edges; flood sends on most twice
        assert sent >= 15
