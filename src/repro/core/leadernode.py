"""A complete leader-based blockchain node — the modern-chain archetype.

Combines everything the paper says a modern blockchain does: clients
gossip transactions to every validator (eager validation at each hop),
one leader per height proposes a block, a PBFT-style quorum commits it.
Together with :class:`~repro.core.node.ValidatorNode` (SRBB) this gives
the engine both ends of Figure 1 as *whole systems*, not just consensus
cores: `LeaderChainDeployment` is the engine-level analogue of the
`evm+dbft`-vs-`srbb` model comparison, at small n.
"""

from __future__ import annotations

from typing import Callable

from repro import params
from repro.consensus.leader import LeaderConsensus, LeaderMessage
from repro.core.block import Block, make_block
from repro.core.blockchain import Blockchain
from repro.core.deployment import GENESIS_BALANCE, GenesisSpec
from repro.core.node import TX_KIND, NodeStats
from repro.core.transaction import Transaction
from repro.core.txpool import TxPool
from repro.core.validation import eager_validate
from repro.crypto.keys import KeyPair, generate_keypair
from repro.net.gossip import GossipLayer
from repro.net.simulator import Simulator
from repro.net.topology import Topology, single_region_topology
from repro.net.transport import Message, Network

LEADER_KIND = "leader-consensus"


class LeaderValidatorNode:
    """One validator of a leader-based (PBFT-style) blockchain."""

    def __init__(
        self,
        *,
        node_id: int,
        keypair: KeyPair,
        sim: Simulator,
        network: Network,
        protocol: params.ProtocolParams,
        genesis: Callable | None = None,
        validator_addresses: tuple[str, ...] = (),
        block_interval: float = 1.0,
        view_timeout: float = 3.0,
        execution_rate: float = 20_000.0,
        registry=None,
    ):
        self.node_id = node_id
        self.keypair = keypair
        self.sim = sim
        self.network = network
        self.protocol = protocol
        self.block_interval = block_interval
        self.view_timeout = view_timeout
        self.execution_rate = execution_rate
        self.validator_addresses = validator_addresses

        from repro.vm.state import WorldState

        state = WorldState()
        if genesis is not None:
            genesis(state)
        state.commit()
        self.blockchain = Blockchain(protocol=protocol, state=state)
        if registry is not None:
            self.blockchain.executor.registry = registry
        self.pool = TxPool(capacity=protocol.txpool_capacity, ttl=protocol.tx_ttl)
        self.stats = NodeStats(node_id)
        self._instances: dict[int, LeaderConsensus] = {}
        self._decided: dict[int, Block] = {}
        self._next_commit = 1
        self._started: set[int] = set()

        self.gossip = GossipLayer(node_id, network, self._deliver_gossiped_tx)
        network.register(node_id, self)

    # -- transactions (modern path: gossip everything) ---------------------------

    def submit_transaction(self, tx: Transaction) -> bool:
        self.stats.txs_from_clients += 1
        return self._receive(tx)

    def _deliver_gossiped_tx(self, tx: Transaction, sender: int) -> None:
        self.stats.txs_from_peers += 1
        self._receive(tx)

    def _receive(self, tx: Transaction) -> bool:
        self.stats.eager_validations += 1
        if not eager_validate(tx, self.blockchain.state, self.protocol):
            self.stats.eager_failures += 1
            return False
        if self.blockchain.contains_tx(tx) or tx in self.pool:
            return False
        self.pool.add(tx, now=self.sim.now)
        # modern blockchains always gossip (Alg. 1 line 9)
        self.gossip.publish(tx.tx_hash, tx, tx.encoded_size())
        return True

    # -- rounds -------------------------------------------------------------------

    def start(self) -> None:
        self.sim.schedule(self.block_interval, self._start_height, 1)

    def _instance(self, index: int) -> LeaderConsensus:
        if index not in self._instances:
            self._instances[index] = LeaderConsensus(
                n=self.protocol.n,
                f=self.protocol.f,
                my_id=self.node_id,
                index=index,
                send=self._send_consensus,
                on_decide=lambda b, k=index: self._on_decide(k, b),
                schedule_timeout=lambda d, cb: self.sim.schedule(d, cb),
                view_timeout=self.view_timeout,
            )
        return self._instances[index]

    def _start_height(self, index: int) -> None:
        if index in self._started:
            return
        self._started.add(index)
        instance = self._instance(index)
        instance.start(lambda k=index: self._create_block(k))
        self.stats.blocks_proposed += 1 if instance.is_leader() else 0

    def _create_block(self, index: int) -> Block:
        self.pool.expire(self.sim.now)
        batch = self.pool.take_batch(
            self.protocol.max_block_txs,
            gas_limit=self.protocol.block_gas_limit,
            next_nonce=self.blockchain.state.nonce_of,
        )
        return make_block(self.keypair, self.node_id, index, batch, round=index)

    def _send_consensus(self, msg: LeaderMessage) -> None:
        self.network.broadcast(
            self.node_id,
            Message(kind=LEADER_KIND, payload=msg, sender=self.node_id,
                    size_bytes=msg.approx_size()),
        )

    def on_message(self, msg: Message) -> None:
        if msg.kind == LEADER_KIND:
            lmsg: LeaderMessage = msg.payload
            self._instance(lmsg.index).on_message(lmsg)
        elif msg.kind == GossipLayer.KIND:
            self.gossip.handle(msg)
        elif msg.kind == TX_KIND:
            self.submit_transaction(msg.payload)

    # -- commit ---------------------------------------------------------------------

    def _on_decide(self, index: int, block: Block) -> None:
        self._decided[index] = block
        while self._next_commit in self._decided:
            self._commit(self._next_commit, self._decided[self._next_commit])
            self._next_commit += 1

    def _commit(self, index: int, block: Block) -> None:
        from repro.core.block import SuperBlock

        superblock = SuperBlock(index=index, blocks=(block,) if len(block) else ())
        result = self.blockchain.commit_superblock(
            superblock,
            now=self.sim.now,
            coinbase_of=self._coinbase_of,
            exec_rate=self.execution_rate,
        )
        self.stats.superblocks_committed += 1
        self.stats.txs_committed += len(result.committed)
        self.stats.txs_discarded += len(result.discarded)
        self.pool.remove_hashes({tx.tx_hash for tx in result.committed})
        delay = (len(result.committed) + len(result.discarded)) / self.execution_rate
        self.sim.schedule(self.block_interval + delay, self._start_height, index + 1)

    def _coinbase_of(self, proposer_id: int) -> str:
        if 0 <= proposer_id < len(self.validator_addresses):
            return self.validator_addresses[proposer_id]
        return ""

    @property
    def height(self) -> int:
        return self.blockchain.height


class LeaderChainDeployment:
    """n leader-chain validators on the DES (mirror of Deployment)."""

    def __init__(
        self,
        *,
        protocol: params.ProtocolParams | None = None,
        topology: Topology | None = None,
        extra_balances: dict[str, int] | None = None,
        block_interval: float = 1.0,
        view_timeout: float = 3.0,
        seed: int = 1,
    ):
        self.protocol = protocol or params.ProtocolParams(n=4, rpm=False)
        n = self.protocol.n
        self.topology = topology or single_region_topology(n)
        self.sim = Simulator()
        self.network = Network(self.sim, self.topology, seed=seed)
        self.keypairs = [generate_keypair(2000 + i) for i in range(n)]
        addresses = tuple(kp.address for kp in self.keypairs)
        balances = {address: GENESIS_BALANCE for address in addresses}
        balances.update(extra_balances or {})
        self.genesis = GenesisSpec(
            balances=balances, validator_addresses=addresses
        )
        self.validators = [
            LeaderValidatorNode(
                node_id=i,
                keypair=self.keypairs[i],
                sim=self.sim,
                network=self.network,
                protocol=self.protocol,
                genesis=self.genesis.build,
                validator_addresses=addresses,
                block_interval=block_interval,
                view_timeout=view_timeout,
            )
            for i in range(n)
        ]

    def start(self) -> None:
        for validator in self.validators:
            validator.start()

    def submit(self, tx: Transaction, validator_id: int, *, at: float | None = None) -> None:
        node = self.validators[validator_id]
        if at is None:
            node.submit_transaction(tx)
        else:
            self.sim.schedule_at(at, node.submit_transaction, tx)

    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def committed_everywhere(self, tx: Transaction) -> bool:
        return all(v.blockchain.contains_tx(tx) for v in self.validators)

    def safety_holds(self) -> bool:
        return all(
            a.blockchain.prefix_consistent_with(b.blockchain)
            for i, a in enumerate(self.validators)
            for b in self.validators[i + 1 :]
        )
