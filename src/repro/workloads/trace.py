"""Trace container: per-second request counts + transaction factories."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core.transaction import Transaction

#: builds the i-th signed transaction of a trace at a given send time
RequestFactory = Callable[[int, float], Transaction]


@dataclass(frozen=True)
class Trace:
    """A workload: integer request counts for each whole second."""

    name: str
    counts_per_second: np.ndarray  # shape (duration_s,), dtype int64

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts_per_second, dtype=np.int64)
        if counts.ndim != 1:
            raise ValueError("counts_per_second must be one-dimensional")
        if (counts < 0).any():
            raise ValueError("negative request counts")
        object.__setattr__(self, "counts_per_second", counts)

    # -- envelope ------------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        return float(len(self.counts_per_second))

    @property
    def total(self) -> int:
        return int(self.counts_per_second.sum())

    @property
    def avg_tps(self) -> float:
        return self.total / self.duration_s if self.duration_s else 0.0

    @property
    def peak_tps(self) -> int:
        return int(self.counts_per_second.max()) if self.total else 0

    # -- consumption -----------------------------------------------------------------

    def arrivals_per_tick(self, dt: float) -> np.ndarray:
        """Spread each second's count uniformly over its ticks (vectorized)."""
        ticks_per_s = int(round(1.0 / dt))
        if abs(ticks_per_s * dt - 1.0) > 1e-9:
            raise ValueError(f"dt={dt} must divide one second evenly")
        counts = self.counts_per_second
        # Integer split: base in every tick, remainder in the first ticks.
        base = counts // ticks_per_s
        remainder = counts % ticks_per_s
        out = np.repeat(base, ticks_per_s).astype(np.float64)
        tick_index = np.tile(np.arange(ticks_per_s), len(counts))
        out += (tick_index < np.repeat(remainder, ticks_per_s)).astype(np.float64)
        return out

    def send_times(self) -> np.ndarray:
        """Exact send timestamps, uniformly spaced within each second.

        Fully vectorized: one pass builds every ``second + k/count`` stamp
        without a Python-level loop over seconds.  The arithmetic applies
        the same IEEE operations (int64/int64 true-divide, then add) the
        per-second construction used, so the output is bitwise-identical
        — pre-signed schedule caches key on it.
        """
        counts = self.counts_per_second
        nz = np.flatnonzero(counts)
        if not len(nz):
            return np.zeros(0)
        c = counts[nz]
        total = int(c.sum())
        # Within-second rank of each send: global index minus the first
        # global index of its own second.
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(c) - c, c
        )
        return np.repeat(nz, c) + within / np.repeat(c, c)

    def fingerprint(self) -> str:
        """Stable content hash (schedule-cache key component)."""
        import hashlib

        h = hashlib.sha256()
        h.update(self.name.encode())
        h.update(self.counts_per_second.tobytes())
        return h.hexdigest()

    def transactions(self, factory: RequestFactory) -> Iterator[Transaction]:
        """Materialize signed transactions (message-level engine input)."""
        for i, send_time in enumerate(self.send_times()):
            yield factory(i, float(send_time))

    def scaled(self, factor: float, *, name: str | None = None) -> "Trace":
        """Rate-scaled copy (ablation sweeps)."""
        counts = np.maximum(
            0, np.round(self.counts_per_second * factor)
        ).astype(np.int64)
        return Trace(name=name or f"{self.name}x{factor:g}", counts_per_second=counts)


def shape_to_envelope(
    shape: np.ndarray, *, avg_tps: float, peak_tps: float, name: str
) -> Trace:
    """Fit a non-negative shape to an exact (avg, peak) envelope.

    The shape is linearly rescaled so its maximum is ``peak_tps``; the
    remaining per-second mass is adjusted uniformly (preserving the peak)
    until the mean matches ``avg_tps`` to within rounding.
    """
    shape = np.asarray(shape, dtype=np.float64)
    if shape.min() < 0:
        raise ValueError("shape must be non-negative")
    if shape.max() <= 0:
        raise ValueError("shape must have positive mass")
    duration = len(shape)
    target_total = avg_tps * duration
    if peak_tps > target_total:
        raise ValueError(
            f"infeasible envelope: peak {peak_tps} exceeds total mass "
            f"{target_total} (avg {avg_tps} × {duration}s)"
        )
    scaled = shape / shape.max() * peak_tps
    peak_idx = int(np.argmax(scaled))
    non_peak = np.delete(np.arange(duration), peak_idx)
    # Water-filling: scale the non-peak mass toward the remaining total,
    # clipping at the peak so no cell overtakes it, and iterating because
    # clipping sheds mass that must be redistributed.
    needed_rest = target_total - peak_tps
    for _ in range(64):
        current_rest = scaled[non_peak].sum()
        if current_rest <= 0 or abs(current_rest - needed_rest) < 0.5:
            break
        scaled[non_peak] *= needed_rest / current_rest
        # NB: fancy indexing copies, so assign the clipped values back.
        scaled[non_peak] = np.clip(scaled[non_peak], 0.0, peak_tps)
        if scaled[non_peak].max() < peak_tps and current_rest <= needed_rest:
            break
    counts = np.floor(scaled).astype(np.int64)
    counts[peak_idx] = int(round(peak_tps))
    # Distribute the rounding deficit over the largest cells (never above peak).
    deficit = int(round(target_total)) - int(counts.sum())
    if deficit > 0:
        order = np.argsort(scaled[non_peak])[::-1]
        i = 0
        while deficit > 0 and len(non_peak):
            idx = non_peak[order[i % len(order)]]
            if counts[idx] < counts[peak_idx]:
                counts[idx] += 1
                deficit -= 1
            i += 1
            if i > 10 * duration:
                break
    return Trace(name=name, counts_per_second=counts)
