"""Merkle tree: roots, proofs, tamper-resistance, property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.merkle import MerkleTree, merkle_root


class TestMerkleRoot:
    def test_empty_root_is_stable(self):
        assert merkle_root([]) == merkle_root([])

    def test_single_leaf(self):
        assert merkle_root([b"a"]) != merkle_root([b"b"])

    def test_order_sensitive(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_concat_ambiguity_resistant(self):
        assert merkle_root([b"ab", b"c"]) != merkle_root([b"a", b"bc"])

    def test_leaf_count_matters(self):
        # duplicate-last padding must not equate [a] and [a, a]
        assert merkle_root([b"a"]) != merkle_root([b"a", b"a"])

    def test_interior_node_not_replayable_as_leaf(self):
        """Domain separation: a two-leaf root used as a single leaf gives a
        different root (second-preimage defence)."""
        inner = merkle_root([b"x", b"y"])
        assert merkle_root([inner]) != inner


class TestProofs:
    def test_proof_roundtrip_all_indices(self):
        leaves = [bytes([i]) * 4 for i in range(7)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            proof = tree.proof(i)
            assert MerkleTree.verify_proof(tree.root, leaf, proof)

    def test_proof_wrong_leaf_fails(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        proof = tree.proof(1)
        assert not MerkleTree.verify_proof(tree.root, b"z", proof)

    def test_proof_wrong_index_fails(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        proof = tree.proof(1)
        from repro.crypto.merkle import MerkleProof

        moved = MerkleProof(index=2, siblings=proof.siblings)
        assert not MerkleTree.verify_proof(tree.root, b"b", moved)

    def test_out_of_range_index_raises(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.proof(1)

    def test_len(self):
        assert len(MerkleTree([b"a", b"b"])) == 2
        assert len(MerkleTree([])) == 0

    @given(
        st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=40),
        st.data(),
    )
    def test_property_any_leaf_proves(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        proof = tree.proof(index)
        assert MerkleTree.verify_proof(tree.root, leaves[index], proof)

    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=2, max_size=20))
    def test_property_root_changes_with_any_leaf(self, leaves):
        tree = MerkleTree(leaves)
        mutated = list(leaves)
        mutated[0] = mutated[0] + b"!"
        assert MerkleTree(mutated).root != tree.root
