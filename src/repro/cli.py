"""Command-line interface: regenerate paper artifacts and run experiments.

Usage (after ``pip install -e .``):

    python -m repro figure2                # Figure 2 table
    python -m repro figure3                # Figure 3 table
    python -m repro table1 [--scale 0.1]   # Table I (message-level engine)
    python -m repro headline               # §V-A ×55 / ÷3.5 rendition
    python -m repro fig1                   # Figure 1 as validation counts
    python -m repro simulate srbb fifa     # one chain × one workload
    python -m repro saturate srbb          # max sustainable TPS (bisection)
    python -m repro traces                 # workload envelope statistics
"""

from __future__ import annotations

import argparse
import os
import sys


def _open_output(path: str):
    """Open an output path for writing, creating parent directories.

    Failures surface as :class:`repro.errors.OutputWriteError` so
    :func:`main` can report a one-line error (exit 1) instead of a
    traceback.
    """
    from repro.errors import OutputWriteError

    try:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        return open(path, "w")
    except OSError as exc:
        raise OutputWriteError(f"cannot write {path}: {exc}") from exc


def _cmd_figure2(args) -> int:
    from repro.analysis.figures import figure2
    from repro.diablo.report import format_results_table

    print(format_results_table(
        figure2(scale=args.scale),
        title="Figure 2 — avg throughput (TPS) and commit %",
    ))
    return 0


def _cmd_figure3(args) -> int:
    from repro.analysis.figures import figure3
    from repro.diablo.report import format_results_table

    print(format_results_table(
        figure3(scale=args.scale), title="Figure 3 — avg latency (s)"
    ))
    return 0


def _cmd_table1(args) -> int:
    from repro.analysis.figures import table1
    from repro.diablo.report import format_table1

    no_rpm, with_rpm = table1(
        valid_count=int(20_000 * args.scale),
        invalid_count=int(10_000 * args.scale),
        flood_per_block=max(50, int(2_500 * args.scale)),
    )
    print(format_table1(no_rpm.as_report_mapping(), with_rpm.as_report_mapping()))
    gain = with_rpm.throughput_tps / no_rpm.throughput_tps - 1
    print(f"RPM gain: {gain:+.1%} (paper: +7%)")
    return 0


def _cmd_headline(args) -> int:
    from repro.analysis.figures import tvpr_headline

    h = tvpr_headline()
    print(f"SRBB     : {h.srbb_tps:9.1f} TPS   {h.srbb_latency_s:6.1f} s")
    print(f"EVM+DBFT : {h.baseline_tps:9.1f} TPS   {h.baseline_latency_s:6.1f} s")
    print(f"ratios   : ×{h.throughput_ratio:.1f} throughput (paper ×55), "
          f"÷{h.latency_ratio:.1f} latency (paper ÷3.5)")
    return 0


def _cmd_fig1(args) -> int:
    from repro.analysis.figures import figure1_counts

    counts = figure1_counts(n=args.n, txs=args.txs)
    for mode, row in counts.items():
        print(f"{mode:7s} eager validations/tx: "
              f"{row['eager_validations_per_tx']:.1f}   "
              f"tx gossip messages: {row['tx_gossip_messages']}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.sim.chains import chain_model
    from repro.sim.engine import simulate_chain
    from repro.workloads import fifa_trace, nasdaq_trace, uber_trace

    traces = {
        "nasdaq": nasdaq_trace, "uber": uber_trace, "fifa": fifa_trace,
    }
    trace = traces[args.workload]()
    if args.scale != 1.0:
        trace = trace.scaled(args.scale, name=trace.name)
    result = simulate_chain(chain_model(args.chain), trace)
    for key, value in result.summary_row().items():
        print(f"{key:15s} {value}")
    return 0


def _cmd_saturate(args) -> int:
    from repro.sim.chains import chain_model
    from repro.sim.sweep import saturation_throughput

    rate = saturation_throughput(chain_model(args.chain), duration_s=args.duration)
    print(f"{args.chain}: sustains ~{rate} TPS with ≥99.9% commit")
    return 0


def _cmd_dapp(args) -> int:
    from repro.diablo.runner import run_dapp_workload

    outcome = run_dapp_workload(
        args.workload, scale=args.scale, n=args.n,
        tvpr=not args.no_tvpr, rpm=args.rpm,
        observatory_interval_s=(
            args.observatory_interval if args.observatory_out else None
        ),
    )
    for key, value in outcome.result.summary_row().items():
        print(f"{key:15s} {value}")
    print(f"{'safety':15s} {outcome.safety_holds}")
    print(f"{'states agree':15s} {outcome.states_agree}")
    if args.observatory_out:
        outcome.observatory.save(args.observatory_out)
        print(f"observatory written to {args.observatory_out}",
              file=sys.stderr)
    return 0


def _cmd_watch(args) -> int:
    from repro.analysis.timeseries import congestion_series
    from repro.sim.chains import chain_model
    from repro.workloads import fifa_trace, nasdaq_trace, uber_trace

    traces = {"nasdaq": nasdaq_trace, "uber": uber_trace, "fifa": fifa_trace}
    trace = traces[args.workload]()
    if args.scale != 1.0:
        trace = trace.scaled(args.scale, name=trace.name)
    result, series = congestion_series(chain_model(args.chain), trace)
    print(series.render(width=args.width))
    onset = series.congestion_onset_s()
    print(f"  throughput {result.throughput_tps:.1f} TPS, "
          f"latency {result.avg_latency_s:.1f} s, "
          f"commit {result.commit_rate:.1%}, "
          f"congestion onset: {'never' if onset is None else f'{onset:.0f}s'}")
    return 0


def _cmd_report(args) -> int:
    if args.observatory or args.lifecycle or args.trace:
        from repro.analysis.congestion_report import (
            build_congestion_report,
            load_lifecycle,
            load_observatory,
            load_trace,
        )

        text = build_congestion_report(
            samples=(
                load_observatory(args.observatory) if args.observatory
                else None
            ),
            lifecycle_records=(
                load_lifecycle(args.lifecycle) if args.lifecycle else None
            ),
            trace_records=load_trace(args.trace) if args.trace else None,
            html=bool(args.output and args.output.endswith(".html")),
        )
    else:
        from repro.analysis.report import build_report

        text = build_report(
            include_table1=not args.skip_table1,
            table1_scale=args.table1_scale,
        )
    if args.output:
        with _open_output(args.output) as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_traces(args) -> int:
    from repro.workloads import fifa_trace, nasdaq_trace, uber_trace
    from repro.workloads.replay import trace_stats

    from repro.diablo.report import format_results_table

    rows = [
        trace_stats(trace_fn()).as_row()
        for trace_fn in (nasdaq_trace, uber_trace, fifa_trace)
    ]
    print(format_results_table(rows, title="DIABLO DApp workload envelopes"))
    return 0


def _cmd_bench_run(args) -> int:
    from repro.bench import run_scenarios, scenario_names

    names = args.scenarios or scenario_names()
    run_scenarios(names, out_dir=args.out_dir, log=lambda m: print(m, file=sys.stderr))
    return 0


def _cmd_bench_list(args) -> int:
    from repro.bench import cheapest_scenarios, get_scenario, scenario_names

    cheap = set(cheapest_scenarios(2))
    for name in scenario_names():
        scenario = get_scenario(name)
        marker = " [ci]" if name in cheap else ""
        print(f"{name:20s}{marker:6s} {scenario.description}")
    return 0


def _cmd_metrics_diff(args) -> int:
    from repro.bench import compare_files

    text, rc = compare_files(
        args.old, args.new,
        max_rows=args.max_rows, show_unchanged=args.show_unchanged,
    )
    print(text)
    return rc


def _profile_scenario(args) -> int:
    from repro.bench import run_scenario

    artifact = run_scenario(args.scenario)
    for key, value in sorted(artifact.headline.items()):
        print(f"{key:32s} {value}")
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.telemetry import profiling

    slug = args.profile_slug(args)
    prof = profiling.Profiler(track_memory=args.memory)
    try:
        with profiling.use_profiler(prof):
            prof.phase("start")
            rc = args.profile_fn(args)
            prof.phase("end")
        prof.finish()
        base = os.path.join(args.out_dir, f"PROFILE_{slug}")
        with _open_output(base + ".json") as fh:
            json.dump(
                profiling.profile_doc(prof, target=slug),
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        with _open_output(base + ".collapsed") as fh:
            fh.write(profiling.to_collapsed(prof))
        with _open_output(base + ".speedscope.json") as fh:
            json.dump(profiling.to_speedscope(prof, name=slug), fh)
            fh.write("\n")
        print(profiling.render_table(prof, top=args.top))
        for suffix in (".json", ".collapsed", ".speedscope.json"):
            print(f"profile written to {base}{suffix}", file=sys.stderr)
        return rc
    finally:
        prof.close()


def _telemetry_parent() -> argparse.ArgumentParser:
    """Options every subcommand shares (observability wiring)."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="dump telemetry metrics after the run (Prometheus text "
        "format, or JSON if PATH ends in .json)",
    )
    group.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="dump the structured JSONL trace after the run (streamed "
        "incrementally unless --trace-event-out also needs the buffer)",
    )
    group.add_argument(
        "--trace-event-out", metavar="PATH", default=None,
        help="dump the trace as Chrome trace-event JSON (open at "
        "ui.perfetto.dev) with per-node tracks and per-tx flow arrows",
    )
    group.add_argument(
        "--lifecycle-out", metavar="PATH", default=None,
        help="dump per-transaction lifecycle stamps (phase boundaries on "
        "the simulated clock) as JSON, for 'repro report --lifecycle'",
    )
    group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log more (-v: info, -vv: debug) on the repro.* loggers",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Smart Redbelly Blockchain reproduction — regenerate "
        "the paper's tables and figures",
    )
    common = _telemetry_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name, **kwargs):
        return sub.add_parser(name, parents=[common], **kwargs)

    p = add_parser("figure2", help="Fig. 2: throughput + commit %")
    p.add_argument("--scale", type=float, default=1.0, help="workload rate scale")
    p.set_defaults(fn=_cmd_figure2)

    p = add_parser("figure3", help="Fig. 3: latency")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(fn=_cmd_figure3)

    p = add_parser("table1", help="Table I: RPM under flooding")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scale of the 20K/10K transaction counts")
    p.set_defaults(fn=_cmd_table1)

    p = add_parser("headline", help="§V-A SRBB vs EVM+DBFT ratios")
    p.set_defaults(fn=_cmd_headline)

    p = add_parser("fig1", help="Fig. 1 as measured validation counts")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--txs", type=int, default=16)
    p.set_defaults(fn=_cmd_fig1)

    p = add_parser("simulate", help="one chain × one workload")
    p.add_argument("chain", choices=[
        "srbb", "evm+dbft", "algorand", "avalanche", "diem",
        "ethereum", "quorum", "solana",
    ])
    p.add_argument("workload", choices=["nasdaq", "uber", "fifa"])
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(fn=_cmd_simulate)

    p = add_parser("saturate", help="max sustainable TPS (bisection)")
    p.add_argument("chain", choices=[
        "srbb", "evm+dbft", "algorand", "avalanche", "diem",
        "ethereum", "quorum", "solana",
    ])
    p.add_argument("--duration", type=int, default=30)
    p.set_defaults(fn=_cmd_saturate)

    p = add_parser("traces", help="workload envelope statistics")
    p.set_defaults(fn=_cmd_traces)

    p = add_parser(
        "dapp", help="run a DApp workload on the message-level engine"
    )
    p.add_argument("workload", choices=["nasdaq", "uber", "fifa"])
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--no-tvpr", action="store_true",
                   help="modern-blockchain mode (gossip everything)")
    p.add_argument("--rpm", action="store_true")
    p.add_argument("--observatory-out", metavar="PATH", default=None,
                   help="sample congestion signals during the run and "
                   "save the series as JSON (see 'repro report')")
    p.add_argument("--observatory-interval", type=float, default=1.0,
                   help="observatory sampling cadence, simulated "
                   "seconds (default 1.0)")
    p.set_defaults(fn=_cmd_dapp)

    p = add_parser("watch", help="sparkline congestion series for one run")
    p.add_argument("chain", choices=[
        "srbb", "evm+dbft", "algorand", "avalanche", "diem",
        "ethereum", "quorum", "solana",
    ])
    p.add_argument("workload", choices=["nasdaq", "uber", "fifa"])
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--width", type=int, default=60)
    p.set_defaults(fn=_cmd_watch)

    p = add_parser(
        "bench",
        help="scenario benchmark harness (BENCH_*.json artifacts)",
        description="Run canonical benchmark scenarios and manage their "
        "schema-versioned BENCH_<scenario>.json artifacts.",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    b = bench_sub.add_parser(
        "run", parents=[common],
        help="run scenarios and write BENCH_<scenario>.json artifacts",
    )
    b.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                   help="scenario names (default: all; see 'bench list')")
    b.add_argument("--out-dir", default=".",
                   help="directory for BENCH_*.json artifacts (default: .)")
    b.set_defaults(fn=_cmd_bench_run)
    b = bench_sub.add_parser(
        "list", parents=[common], help="list registered scenarios"
    )
    b.set_defaults(fn=_cmd_bench_list)
    b = bench_sub.add_parser(
        "compare", parents=[common],
        help="diff two artifacts/dumps (alias of metrics-diff)",
    )
    b.add_argument("old", help="baseline artifact/dump (JSON or Prometheus)")
    b.add_argument("new", help="candidate artifact/dump (JSON or Prometheus)")
    b.add_argument("--max-rows", type=int, default=40)
    b.add_argument("--show-unchanged", action="store_true")
    b.set_defaults(fn=_cmd_metrics_diff)

    p = add_parser(
        "profile",
        help="wall-clock profile a run (PROFILE_*.json + flamegraph)",
        description="Wrap a run in the deterministic wall-clock profiler: "
        "per-event-kind cost accounting, per-subsystem/per-node "
        "attribution, collapsed-stack and speedscope flamegraphs, and "
        "optional tracemalloc memory watermarks.",
    )
    prof_sub = p.add_subparsers(dest="profile_command", required=True)
    prof_common = argparse.ArgumentParser(add_help=False)
    prof_group = prof_common.add_argument_group("profiling")
    prof_group.add_argument(
        "--out-dir", default=".",
        help="directory for PROFILE_<target>.{json,collapsed,"
        "speedscope.json} (default: .)",
    )
    prof_group.add_argument(
        "--memory", action="store_true",
        help="also record tracemalloc memory watermarks at phase "
        "boundaries (adds overhead; off by default)",
    )
    prof_group.add_argument(
        "--top", type=int, default=15,
        help="event kinds to show in the terminal table (default 15)",
    )

    q = prof_sub.add_parser(
        "simulate", parents=[common, prof_common],
        help="profile one chain × one workload (tick-level engine)",
    )
    q.add_argument("chain", choices=[
        "srbb", "evm+dbft", "algorand", "avalanche", "diem",
        "ethereum", "quorum", "solana",
    ])
    q.add_argument("workload", choices=["nasdaq", "uber", "fifa"])
    q.add_argument("--scale", type=float, default=1.0)
    q.set_defaults(
        fn=_cmd_profile, profile_fn=_cmd_simulate,
        profile_slug=lambda a: (
            f"simulate_{a.chain.replace('+', '-')}_{a.workload}"
        ),
    )

    q = prof_sub.add_parser(
        "dapp", parents=[common, prof_common],
        help="profile a DApp workload (message-level engine)",
    )
    q.add_argument("workload", choices=["nasdaq", "uber", "fifa"])
    q.add_argument("--scale", type=float, default=0.01)
    q.add_argument("--n", type=int, default=4)
    q.add_argument("--no-tvpr", action="store_true")
    q.add_argument("--rpm", action="store_true")
    q.set_defaults(
        fn=_cmd_profile, profile_fn=_cmd_dapp,
        profile_slug=lambda a: f"dapp_{a.workload}",
        observatory_out=None, observatory_interval=1.0,
    )

    q = prof_sub.add_parser(
        "scenario", parents=[common, prof_common],
        help="profile one bench scenario (see 'repro bench list')",
    )
    q.add_argument("scenario", help="scenario name")
    q.set_defaults(
        fn=_cmd_profile, profile_fn=_profile_scenario,
        profile_slug=lambda a: f"scenario_{a.scenario}",
    )

    p = add_parser(
        "metrics-diff",
        help="diff two metric dumps with regression thresholds",
        description="Compare two BENCH_*.json artifacts, --metrics-out JSON "
        "snapshots, or Prometheus text dumps under direction-aware "
        "thresholds; exits 1 when a gated metric regresses.",
    )
    p.add_argument("old", help="baseline artifact/dump (JSON or Prometheus)")
    p.add_argument("new", help="candidate artifact/dump (JSON or Prometheus)")
    p.add_argument("--max-rows", type=int, default=40,
                   help="max table rows to print (default 40)")
    p.add_argument("--show-unchanged", action="store_true",
                   help="also list metrics that did not change")
    p.set_defaults(fn=_cmd_metrics_diff)

    p = add_parser(
        "report",
        help="regenerate the full markdown report, or render saved "
        "observability artifacts into a congestion report",
    )
    p.add_argument("--output", "-o", default=None,
                   help="write to a file (.html selects the HTML renderer "
                   "for congestion reports)")
    p.add_argument("--skip-table1", action="store_true",
                   help="skip the (slow) message-level Table I run")
    p.add_argument("--table1-scale", type=float, default=1.0)
    p.add_argument("--observatory", metavar="PATH", default=None,
                   help="congestion-observatory samples (from "
                   "'repro dapp --observatory-out')")
    p.add_argument("--lifecycle", metavar="PATH", default=None,
                   help="lifecycle stamps (from --lifecycle-out); renders "
                   "the critical-path latency attribution")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="JSONL trace (from --trace-out); measures "
                   "exec_share and summarizes the busiest spans")
    p.set_defaults(fn=_cmd_report)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    import json

    from repro import telemetry
    from repro.telemetry import lifecycle

    args = build_parser().parse_args(argv)
    telemetry.configure_logging(args.verbose)
    capture = bool(
        args.metrics_out or args.trace_out
        or args.trace_event_out or args.lifecycle_out
    )
    recorder = prev_recorder = None
    if capture:
        # Fresh counts per invocation so the dump reconciles with this
        # run's results even when main() is called repeatedly in-process.
        registry = telemetry.get_registry()
        registry.reset()
        registry.enable()
        tracer = telemetry.get_tracer()
        tracer.clear()
        tracer.enabled = True
        if args.trace_out and not args.trace_event_out:
            # Stream the JSONL trace incrementally (bounded memory).  The
            # trace-event exporter needs the full buffer, so when it is
            # also requested the trace stays buffered and both dumps
            # happen at the end.
            tracer.stream_to(args.trace_out)
        if args.trace_event_out or args.lifecycle_out:
            # Lifecycle stamps feed both the lifecycle dump and the
            # trace-event flow arrows.  Deployments bind their simulated
            # clock to the recorder at construction when it is enabled.
            recorder = lifecycle.LifecycleRecorder(enabled=True)
            prev_recorder = lifecycle.set_recorder(recorder)

    def _write_trace_event(path: str) -> None:
        records = recorder.to_records() if recorder and len(recorder) else None
        telemetry.get_tracer().dump_trace_event(path, lifecycle_records=records)

    def _write_lifecycle(path: str) -> None:
        doc = {
            "phases": list(lifecycle.PHASES),
            "records": recorder.to_records() if recorder else [],
        }
        with open(path, "w") as fh:
            json.dump(doc, fh)
            fh.write("\n")

    from repro.errors import OutputWriteError

    try:
        try:
            rc = args.fn(args)
        except OutputWriteError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            rc = 1
    finally:
        # A bad output path must not swallow the run's results with a
        # traceback — report it and fail the exit code instead.
        for path, write in (
            (args.metrics_out, lambda p: telemetry.write_metrics(p)),
            (args.trace_event_out, _write_trace_event),
            (args.trace_out, lambda p: telemetry.get_tracer().dump(p)),
            (args.lifecycle_out, _write_lifecycle),
        ):
            if not path:
                continue
            try:
                parent = os.path.dirname(path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                write(path)
            except OSError as exc:
                print(f"repro: cannot write {path}: {exc}", file=sys.stderr)
                rc = 1
            else:
                print(f"telemetry written to {path}", file=sys.stderr)
        if capture:
            dropped = telemetry.get_tracer().dropped_records
            if dropped:
                import logging

                logging.getLogger("repro.telemetry").warning(
                    "trace ring buffer dropped %d records (oldest shed); "
                    "stream with --trace-out or raise Tracer(max_records=…)",
                    dropped,
                )
            # Scope the enablement to this invocation: library-style
            # callers of main() must not keep paying for telemetry.
            telemetry.disable()
            tracer = telemetry.get_tracer()
            tracer.close_stream()
            tracer.enabled = False
            if prev_recorder is not None:
                lifecycle.set_recorder(prev_recorder)
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
