"""State snapshots and fast-sync for joining validators.

A candidate selected into the committee (§IV-E) must hold the full state
before participating.  Rather than replaying every block, it fetches a
serialized snapshot from any peer and verifies the state root — one
honest peer (or a root signed by f+1, via the light-client checkpoints)
suffices because the root is a binding commitment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.vm.state import Account, WorldState


class SyncError(ReproError):
    """Snapshot does not match the expected state root."""


@dataclass(frozen=True)
class StateSnapshot:
    """Serializable image of a WorldState (accounts + storage + root)."""

    accounts: tuple[tuple[str, int, int, bytes | None, str | None], ...]
    storage: tuple[tuple[str, str, Any], ...]
    root: bytes
    height: int = 0


def take_snapshot(state: WorldState, *, height: int = 0) -> StateSnapshot:
    """Serialize a state; the embedded root makes it self-certifying."""
    accounts = tuple(
        (acct.address, acct.balance, acct.nonce, acct.code, acct.native)
        for acct in sorted(
            (state.get_account(addr) for addr in _addresses(state)),
            key=lambda a: a.address,
        )
    )
    storage = tuple(
        (addr, key, value)
        for addr in sorted({a for a, _ in state._storage})  # noqa: SLF001
        for key, value in sorted(state.storage_items(addr))
    )
    return StateSnapshot(
        accounts=accounts, storage=storage, root=state.state_root(), height=height
    )


def _addresses(state: WorldState) -> list[str]:
    return sorted(state._accounts)  # noqa: SLF001 - serializer is a friend


def restore_snapshot(
    snapshot: StateSnapshot, *, expected_root: bytes | None = None
) -> WorldState:
    """Rebuild a WorldState from a snapshot and verify its root.

    ``expected_root`` is the trust anchor (e.g. from an f+1 checkpoint);
    when omitted the snapshot's own embedded root is used, which still
    detects in-flight corruption.
    """
    state = WorldState()
    for address, balance, nonce, code, native in snapshot.accounts:
        account = state.create_account(address, balance, code=code, native=native)
        account.nonce = nonce
    for address, key, value in snapshot.storage:
        state.storage_set(address, key, value)
    state.commit()
    root = state.state_root()
    target = expected_root if expected_root is not None else snapshot.root
    if root != target:
        raise SyncError(
            f"snapshot root mismatch: rebuilt {root.hex()[:16]}…, "
            f"expected {target.hex()[:16]}…"
        )
    return state


def fast_sync(
    peer_state: WorldState, *, expected_root: bytes | None = None, height: int = 0
) -> WorldState:
    """One-call snapshot-and-restore from a peer's live state."""
    return restore_snapshot(
        take_snapshot(peer_state, height=height), expected_root=expected_root
    )
