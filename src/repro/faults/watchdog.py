"""Per-node liveness watchdog: distinguish *slow* from *wedged*.

Chaos runs need to tell a node that is merely behind (catching up, or on
the slow side of a healed partition) from one that has stopped making
progress entirely.  The watchdog samples a node's commit clock every
``check_interval_s``; if no superblock committed for ``stall_after_s``
the node is flagged — the ``srbb_node_wedged{node=}`` gauge flips to 1,
a ``watchdog.stall`` trace event fires, and the optional ``on_stall``
callback runs (the validator uses it to re-broadcast a catch-up
request).  The first commit after a stall clears the gauge and emits
``watchdog.recovered``.

Created only when ``ProtocolParams.watchdog_stall_rounds > 0`` so
default deployments schedule no extra events and register no extra
metrics (checked-in baselines stay byte-identical).
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Callable

from repro import telemetry

__all__ = ["LivenessWatchdog"]

_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        wedged=reg.gauge(
            "srbb_node_wedged",
            "1 while a node's liveness watchdog considers it stalled",
        ),
        stalls=reg.counter(
            "srbb_node_stalls_total", "liveness watchdog stall detections"
        ),
    )
)


class LivenessWatchdog:
    """Stall detector driven by the simulation clock.

    ``sim`` is duck-typed (``.now`` + ``.schedule``); ``node_id`` labels
    the gauge; ``stall_after_s`` is typically ``k × round_interval`` for
    the protocol's ``watchdog_stall_rounds = k``.
    """

    def __init__(
        self,
        *,
        node_id: int,
        sim,
        stall_after_s: float,
        check_interval_s: "float | None" = None,
        on_stall: "Callable[[], None] | None" = None,
        classify: "Callable[[], str] | None" = None,
    ):
        if stall_after_s <= 0:
            raise ValueError(f"stall_after_s must be > 0, got {stall_after_s}")
        self.node_id = node_id
        self.sim = sim
        self.stall_after_s = stall_after_s
        self.check_interval_s = check_interval_s or stall_after_s / 2.0
        self.on_stall = on_stall
        #: optional stall classifier, consulted only while a declared
        #: Byzantine window is open (``byzantine_windows > 0``): returns
        #: ``"withheld"`` when consensus traffic is flowing and no peer is
        #: ahead — a catch-up request cannot help there, so the watchdog
        #: logs the wedge instead of re-nudging — or ``"behind"``
        self.classify = classify
        #: open schedule-driven misbehaviour windows, maintained by the
        #: FaultController so the watchdog knows an adversary is declared
        self.byzantine_windows = 0
        #: checks suppressed because the stall looked like vote withholding
        self.withheld_checks = 0
        self.last_commit_at = 0.0
        self.stalled = False
        self.stall_count = 0
        self._running = False
        self._gauge = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.last_commit_at = self.sim.now
        self._gauge = _metrics().wedged.labels(node=str(self.node_id))
        self.sim.schedule(self.check_interval_s, self._check)

    def stop(self) -> None:
        """Pause checks (crashed nodes are down, not wedged)."""
        self._running = False
        if self.stalled:
            self.stalled = False
            if self._gauge is not None:
                self._gauge.set(0)

    def resume(self) -> None:
        """Re-arm after a restart with a fresh commit clock."""
        self.last_commit_at = self.sim.now
        if not self._running:
            self._running = True
            self.sim.schedule(self.check_interval_s, self._check)

    # -- signals ------------------------------------------------------------------

    def notify_commit(self) -> None:
        """The node committed a superblock: progress."""
        self.last_commit_at = self.sim.now
        if self.stalled:
            self.stalled = False
            self._gauge.set(0)
            telemetry.event(
                "watchdog.recovered", node=self.node_id, sim_now=self.sim.now,
            )

    # -- the check loop -----------------------------------------------------------

    def _check(self) -> None:
        if not self._running:
            return
        idle = self.sim.now - self.last_commit_at
        if idle >= self.stall_after_s and not self.stalled:
            self.stalled = True
            self.stall_count += 1
            m = _metrics()
            self._gauge.set(1)
            m.stalls.labels(node=str(self.node_id)).inc()
            telemetry.event(
                "watchdog.stall",
                node=self.node_id, idle_s=round(idle, 4), sim_now=self.sim.now,
            )
            self._nudge()
        elif self.stalled:
            # Still wedged on a later check: keep nudging recovery.
            self._nudge()
        self.sim.schedule(self.check_interval_s, self._check)

    def _nudge(self) -> None:
        if self.on_stall is None:
            return
        if (
            self.byzantine_windows > 0
            and self.classify is not None
            and self.classify() == "withheld"
        ):
            # Wedged by a declared withholding adversary, not by being
            # behind: a catch-up request would only spam peers that have
            # nothing newer to offer.
            self.withheld_checks += 1
            telemetry.event(
                "watchdog.withheld", node=self.node_id, sim_now=self.sim.now,
            )
            return
        self.on_stall()
