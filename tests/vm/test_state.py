"""World state: accounts, balances, storage, journaled snapshot/revert."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnknownSender
from repro.vm.state import WorldState


class TestAccounts:
    def test_missing_account_raises(self):
        with pytest.raises(UnknownSender):
            WorldState().get_account("deadbeef")

    def test_balance_of_missing_is_zero(self):
        assert WorldState().balance_of("deadbeef") == 0

    def test_create_and_read(self):
        ws = WorldState()
        ws.create_account("a1", 100)
        assert ws.balance_of("a1") == 100
        assert ws.nonce_of("a1") == 0

    def test_negative_balance_rejected(self):
        ws = WorldState()
        ws.create_account("a1", 5)
        with pytest.raises(ValueError):
            ws.sub_balance("a1", 10)

    def test_add_sub_balance(self):
        ws = WorldState()
        ws.create_account("a1", 100)
        ws.add_balance("a1", 50)
        ws.sub_balance("a1", 30)
        assert ws.balance_of("a1") == 120

    def test_bump_nonce(self):
        ws = WorldState()
        ws.create_account("a1", 0)
        ws.bump_nonce("a1")
        ws.bump_nonce("a1")
        assert ws.nonce_of("a1") == 2

    def test_contract_account(self):
        ws = WorldState()
        ws.create_account("c1", code=b"\x00")
        assert ws.get_account("c1").is_contract
        ws.create_account("c2", native="exchange")
        assert ws.get_account("c2").is_contract
        ws.create_account("e1", 10)
        assert not ws.get_account("e1").is_contract


class TestSnapshots:
    def test_revert_balance(self):
        ws = WorldState()
        ws.create_account("a1", 100)
        snap = ws.snapshot()
        ws.set_balance("a1", 7)
        ws.revert(snap)
        assert ws.balance_of("a1") == 100

    def test_revert_account_creation(self):
        ws = WorldState()
        snap = ws.snapshot()
        ws.create_account("a1", 100)
        ws.revert(snap)
        assert not ws.account_exists("a1")

    def test_revert_nonce(self):
        ws = WorldState()
        ws.create_account("a1", 0)
        snap = ws.snapshot()
        ws.bump_nonce("a1")
        ws.revert(snap)
        assert ws.nonce_of("a1") == 0

    def test_revert_storage_write_and_overwrite(self):
        ws = WorldState()
        ws.storage_set("c", "k", 1)
        snap = ws.snapshot()
        ws.storage_set("c", "k", 2)
        ws.storage_set("c", "fresh", 9)
        ws.revert(snap)
        assert ws.storage_get("c", "k") == 1
        assert ws.storage_get("c", "fresh") is None

    def test_nested_snapshots(self):
        ws = WorldState()
        ws.create_account("a", 10)
        s1 = ws.snapshot()
        ws.set_balance("a", 20)
        s2 = ws.snapshot()
        ws.set_balance("a", 30)
        ws.revert(s2)
        assert ws.balance_of("a") == 20
        ws.revert(s1)
        assert ws.balance_of("a") == 10

    def test_commit_clears_journal(self):
        ws = WorldState()
        ws.create_account("a", 10)
        ws.commit()
        snap = ws.snapshot()
        assert snap == 0
        ws.set_balance("a", 99)
        ws.revert(snap)
        assert ws.balance_of("a") == 10


class TestStateRoot:
    def test_same_history_same_root(self):
        a, b = WorldState(), WorldState()
        for ws in (a, b):
            ws.create_account("x", 5)
            ws.storage_set("c", "k", "v")
        assert a.state_root() == b.state_root()

    def test_root_insensitive_to_insertion_order(self):
        a, b = WorldState(), WorldState()
        a.create_account("x", 1)
        a.create_account("y", 2)
        b.create_account("y", 2)
        b.create_account("x", 1)
        assert a.state_root() == b.state_root()

    def test_root_changes_with_balance(self):
        a = WorldState()
        a.create_account("x", 1)
        r1 = a.state_root()
        a.set_balance("x", 2)
        assert a.state_root() != r1

    def test_copy_is_independent(self):
        ws = WorldState()
        ws.create_account("x", 1)
        clone = ws.copy()
        clone.set_balance("x", 99)
        assert ws.balance_of("x") == 1
        assert clone.balance_of("x") == 99

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=20,
        )
    )
    def test_property_revert_restores_root(self, writes):
        ws = WorldState()
        ws.create_account("a", 100)
        ws.create_account("b", 100)
        ws.create_account("c", 100)
        ws.commit()
        root = ws.state_root()
        snap = ws.snapshot()
        for addr, value in writes:
            ws.set_balance(addr, value)
            ws.storage_set("contract", addr, value)
        ws.revert(snap)
        assert ws.state_root() == root


class TestCopyIsolation:
    def test_copy_deep_copies_mutable_storage_values(self):
        ws = WorldState()
        ws.create_account("a", 100)
        ws.storage_set("contract", "holders", ["alice"])
        ws.storage_set("contract", "meta", {"open": True})
        ws.commit()
        clone = ws.copy()
        ws.storage_get("contract", "holders").append("mallory")
        ws.storage_get("contract", "meta")["open"] = False
        assert clone.storage_get("contract", "holders") == ["alice"]
        assert clone.storage_get("contract", "meta") == {"open": True}

    def test_copy_shares_nothing_back(self):
        ws = WorldState()
        ws.storage_set("contract", "xs", [1, 2])
        ws.commit()
        clone = ws.copy()
        clone.storage_get("contract", "xs").append(3)
        assert ws.storage_get("contract", "xs") == [1, 2]


class TestStateFork:
    def _base(self):
        ws = WorldState()
        ws.create_account("alice", 100)
        ws.create_account("bob", 50)
        ws.storage_set("c", "k", 7)
        ws.storage_set("c", "xs", [1, 2])
        ws.commit()
        return ws

    def test_reads_fall_through(self):
        base = self._base()
        fork = base.fork()
        assert fork.balance_of("alice") == 100
        assert fork.nonce_of("bob") == 0
        assert fork.storage_get("c", "k") == 7
        assert fork.account_exists("alice")

    def test_writes_stay_in_overlay(self):
        base = self._base()
        fork = base.fork()
        fork.add_balance("alice", 10)
        fork.bump_nonce("alice")
        fork.storage_set("c", "k", 8)
        assert fork.balance_of("alice") == 110
        assert base.balance_of("alice") == 100
        assert base.storage_get("c", "k") == 7

    def test_mutable_base_values_cloned_per_fork(self):
        base = self._base()
        f1, f2 = base.fork(), base.fork()
        f1.storage_get("c", "xs").append(3)
        assert f2.storage_get("c", "xs") == [1, 2]
        assert base.storage_get("c", "xs") == [1, 2]

    def test_snapshot_revert_inside_fork(self):
        base = self._base()
        fork = base.fork()
        fork.add_balance("alice", 5)
        snap = fork.snapshot()
        fork.sub_balance("alice", 100)
        fork.storage_set("c", "k", 99)
        fork.get_or_create("carol")
        fork.revert(snap)
        assert fork.balance_of("alice") == 105
        assert fork.storage_get("c", "k") == 7
        assert not fork.account_exists("carol")

    def test_delta_merge_equals_direct_mutation(self):
        direct = self._base()
        forked = self._base()
        fork = forked.fork()
        for state in (direct, fork):
            state.sub_balance("alice", 30)
            state.add_balance("bob", 30)
            state.bump_nonce("alice")
            state.storage_set("c", "k", 8)
            state.create_account("carol", 0)
            state.add_balance("carol", 1)
        forked.apply_delta(fork.delta())
        assert forked.state_root() == direct.state_root()

    def test_additive_merge_composes_commutative_credits(self):
        base = self._base()
        f1, f2 = base.fork(), base.fork()
        f1.add_balance("bob", 10)
        f2.add_balance("bob", 25)
        base.apply_delta(f1.delta())
        base.apply_delta(f2.delta())
        assert base.balance_of("bob") == 85

    def test_fork_state_root_matches_materialized(self):
        base = self._base()
        fork = base.fork()
        fork.add_balance("alice", 1)
        mirror = base.copy()
        mirror.add_balance("alice", 1)
        assert fork.state_root() == mirror.state_root()

    def test_merge_is_journaled_for_revert(self):
        base = self._base()
        root = base.state_root()
        snap = base.snapshot()
        fork = base.fork()
        fork.add_balance("alice", 42)
        fork.storage_set("c", "k", 123)
        base.apply_delta(fork.delta())
        assert base.balance_of("alice") == 142
        base.revert(snap)
        assert base.state_root() == root
