"""FIG2 — Figure 2: average throughput + commit %, (N,U,F) × 8 systems.

Regenerates the paper's central comparison on the congestion simulator:
200 validators over 10 regions, the three DIABLO DApp workloads, the six
modern blockchains plus the EVM+DBFT baseline and SRBB.
"""

from repro.analysis.figures import figure2
from repro.diablo.report import format_results_table
from repro.sim.chains import FIGURE_ORDER


def test_figure2(benchmark, run_once):
    rows = run_once(benchmark, figure2)
    print()
    print(format_results_table(
        rows, title="Figure 2 — throughput (TPS) and commit % per workload"
    ))

    by = {(r["workload"], r["chain"]): r for r in rows}
    # SRBB reaches the highest throughput for every workload (paper §V-A).
    for workload in ("nasdaq", "uber", "fifa"):
        srbb = by[(workload, "srbb")]["throughput_tps"]
        for chain in FIGURE_ORDER:
            if chain != "srbb":
                assert srbb > by[(workload, chain)]["throughput_tps"]

    # SRBB commits 100 % of NASDAQ and Uber — and is the only one to.
    for workload in ("nasdaq", "uber"):
        assert by[(workload, "srbb")]["commit_pct"] == 100.0
        for chain in FIGURE_ORDER:
            if chain != "srbb":
                assert by[(workload, chain)]["commit_pct"] < 100.0

    # SRBB commits ≥ ~98 % of FIFA; nobody else gets close (paper: ≤ 47 %).
    assert by[("fifa", "srbb")]["commit_pct"] >= 96.0
    for chain in FIGURE_ORDER:
        if chain != "srbb":
            assert by[("fifa", chain)]["commit_pct"] <= 47.0

    # Paper's SRBB magnitudes: 166.61 / 835.15 / 1819 TPS.
    assert 120 <= by[("nasdaq", "srbb")]["throughput_tps"] <= 200
    assert 700 <= by[("uber", "srbb")]["throughput_tps"] <= 900
    assert 1400 <= by[("fifa", "srbb")]["throughput_tps"] <= 2400
