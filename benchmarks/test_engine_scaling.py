"""engine_scaling scenario — the wall-clock profiler's regression gate.

Asserts the structural properties the checked-in
``BENCH_engine_scaling.json`` baseline relies on:

* every per-size deterministic key (event/committed/height counts) is
  present and reproducible across two same-seed runs;
* the wall-clock keys are present, positive, and correctly flagged by
  ``is_wall_clock_key`` so the diff never gates on them;
* the event-count scaling fit is superlinear (consensus fans out with
  the committee) but bounded by the all-to-all ceiling.
"""

from repro.bench import is_wall_clock_key, run_engine_scaling


def test_engine_scaling_headline_shape_and_determinism(run_once, benchmark):
    sizes = (4, 8)
    first = run_once(benchmark, run_engine_scaling, sizes=sizes)
    second = run_engine_scaling(sizes=sizes)

    for n in sizes:
        for key in (f"events_n{n}", f"committed_n{n}", f"height_n{n}"):
            assert first[key] == second[key], key
        assert first[f"wall_s_n{n}"] > 0
        assert first[f"events_per_sec_n{n}"] > 0
        assert first[f"committed_n{n}"] > 0

    assert first["events_per_sec"] > 0
    assert first["peak_rss_mb"] > 0
    assert any(k.startswith("us_per_event:") for k in first)
    assert all(first[k] > 0 for k in first if k.startswith("us_per_event:"))

    # more validators -> strictly more events; the fit sits between
    # linear growth and the n^3 worst case
    assert first["events_n8"] > first["events_n4"]
    assert 1.0 < first["event_scaling_exponent"] < 3.0

    # the gate's split: deterministic keys enforce, wall keys inform
    for n in sizes:
        assert not is_wall_clock_key(f"headline:events_n{n}")
        assert is_wall_clock_key(f"headline:wall_s_n{n}")
        assert is_wall_clock_key(f"headline:events_per_sec_n{n}")
    assert is_wall_clock_key("headline:peak_rss_mb")
    assert is_wall_clock_key("headline:us_per_event:consensus")
    assert is_wall_clock_key("headline:wall_scaling_exponent")
    # ...but the wall exponent stays *gated* (generously) while the
    # event exponent is gated tight — both must not be marker-excluded
    from repro.bench.compare import DEFAULT_THRESHOLDS, _match_threshold

    assert _match_threshold(
        "headline:event_scaling_exponent", DEFAULT_THRESHOLDS
    ) is not None
    assert _match_threshold(
        "headline:wall_scaling_exponent", DEFAULT_THRESHOLDS
    ) is not None
    assert _match_threshold(
        "headline:wall_s_n4", DEFAULT_THRESHOLDS
    ) is None
