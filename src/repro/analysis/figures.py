"""Regenerate every table and figure of the paper's evaluation (§V).

Each function returns plain data (list-of-dict rows / dataclasses) so the
benchmark harness can print them and EXPERIMENTS.md can quote them.

* :func:`figure2` — Fig. 2: average throughput + commit %, (N,U,F) × 8 systems.
* :func:`figure3` — Fig. 3: average latency, (N,U,F) × 8 systems.
* :func:`table1` — Table I: SRBB w/o vs w/ RPM under a flooding attack.
* :func:`tvpr_headline` — §V-A: SRBB vs EVM+DBFT ×55 throughput / ÷3.5 latency.
* :func:`figure1_counts` — Fig. 1's protocol contrast as measurable counts
  (eager validations and gossip messages per client transaction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import params
from repro.sim.chains import CHAIN_MODELS, FIGURE_ORDER, EVM_DBFT, SRBB
from repro.sim.engine import simulate_chain
from repro.workloads import fifa_trace, nasdaq_trace, uber_trace

WORKLOADS = ("nasdaq", "uber", "fifa")


def _traces(scale: float = 1.0):
    traces = [nasdaq_trace(), uber_trace(), fifa_trace()]
    if scale != 1.0:
        traces = [t.scaled(scale, name=t.name) for t in traces]
    return {t.name: t for t in traces}


def figure2(*, chains: tuple[str, ...] = FIGURE_ORDER, scale: float = 1.0) -> list[dict]:
    """Fig. 2 rows: throughput (bar height) + commit % (bar label)."""
    rows = []
    traces = _traces(scale)
    for workload in WORKLOADS:
        for chain in chains:
            result = simulate_chain(CHAIN_MODELS[chain], traces[workload])
            rows.append(
                {
                    "workload": workload,
                    "chain": chain,
                    "throughput_tps": round(result.throughput_tps, 2),
                    "commit_pct": round(100.0 * result.commit_rate, 1),
                }
            )
    return rows


def figure3(*, chains: tuple[str, ...] = FIGURE_ORDER, scale: float = 1.0) -> list[dict]:
    """Fig. 3 rows: average latency per (workload, chain)."""
    rows = []
    traces = _traces(scale)
    for workload in WORKLOADS:
        for chain in chains:
            result = simulate_chain(CHAIN_MODELS[chain], traces[workload])
            rows.append(
                {
                    "workload": workload,
                    "chain": chain,
                    "avg_latency_s": round(result.avg_latency_s, 2),
                }
            )
    return rows


@dataclass
class TvprHeadline:
    """§V-A headline: SRBB vs EVM+DBFT on the FIFA-class load."""

    srbb_tps: float
    baseline_tps: float
    srbb_latency_s: float
    baseline_latency_s: float

    @property
    def throughput_ratio(self) -> float:
        return self.srbb_tps / self.baseline_tps if self.baseline_tps else 0.0

    @property
    def latency_ratio(self) -> float:
        return (
            self.baseline_latency_s / self.srbb_latency_s
            if self.srbb_latency_s
            else 0.0
        )


def tvpr_headline(*, scale: float = 1.0) -> TvprHeadline:
    """Measure the ×55 / ÷3.5 claim on this substrate."""
    trace = fifa_trace()
    if scale != 1.0:
        trace = trace.scaled(scale, name=trace.name)
    srbb = simulate_chain(SRBB, trace)
    base = simulate_chain(EVM_DBFT, trace)
    return TvprHeadline(
        srbb_tps=srbb.throughput_tps,
        baseline_tps=base.throughput_tps,
        srbb_latency_s=srbb.avg_latency_s,
        baseline_latency_s=base.avg_latency_s,
    )


# ---------------------------------------------------------------------------
# Table I — message-level flooding experiment
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    """One configuration row of Table I."""

    config: str
    valid_sent: int
    invalid_sent: int
    byzantine_validators: int
    throughput_tps: float
    valid_dropped: int
    #: invalid transactions that made it into *decided* superblocks (then
    #: were lazily discarded at execution) — the deterrence signal: RPM's
    #: exclusion cuts this off, while ``invalid_sent`` keeps counting
    #: proposals the committee rejects
    invalid_committed: int = 0
    #: the flooder's RPM deposit at the end of the run (0 once slashed)
    attacker_deposit: int = 0
    attacker_excluded: bool = False

    def as_report_mapping(self) -> dict:
        return {
            "#valid txs sent": f"{self.valid_sent // 1000}K"
            if self.valid_sent % 1000 == 0
            else str(self.valid_sent),
            "#invalid txs sent": f"{self.invalid_sent // 1000}K"
            if self.invalid_sent % 1000 == 0
            else str(self.invalid_sent),
            "#Byzantine validators": str(self.byzantine_validators),
            "throughput (TPS)": f"{self.throughput_tps:.2f} TPS",
            "#valid txs dropped": "none" if self.valid_dropped == 0 else str(self.valid_dropped),
        }


def table1(
    *,
    valid_count: int = 20_000,
    invalid_count: int = 10_000,
    send_rate_tps: float = 15_000.0,
    flood_per_block: int = 2_500,
    horizon_s: float = 30.0,
    seed: int = 1,
    execution_rate: float = 5_000.0,
) -> tuple[Table1Row, Table1Row]:
    """Run the Table I experiment (paper scale by default).

    Setup mirrors §V-B: four validators in one region, one Byzantine
    flooder, 20 K valid + 10 K invalid transactions at a 15 000 TPS send
    rate.  The flooder injects ``flood_per_block`` invalid transactions per
    proposal until its ``invalid_count`` budget is spent; with RPM on it is
    slashed and excluded after the first committed reports, so far fewer of
    its invalid transactions ever consume execution time.
    """
    results = []
    for rpm_enabled in (False, True):
        row = _run_flooding(
            valid_count=valid_count,
            invalid_count=invalid_count,
            send_rate_tps=send_rate_tps,
            flood_per_block=flood_per_block,
            rpm=rpm_enabled,
            horizon_s=horizon_s,
            seed=seed,
            execution_rate=execution_rate,
        )
        results.append(row)
    return results[0], results[1]


def flooding_deployment(
    *,
    valid_count: int,
    invalid_count: int,
    send_rate_tps: float,
    flood_per_block: int,
    rpm: bool,
    seed: int,
    vote_batching: bool = True,
    execution_rate: float = 5_000.0,
):
    """Build the §V-B flooding deployment plus its valid-load schedule.

    Exposed separately from :func:`_run_flooding` so ablation scenarios
    (vote batching on/off in particular) can build the *identical*
    deployment — same seeds, same pre-signed transactions — and drive it
    themselves.  Returns ``(deployment, schedule)``.
    """
    from repro.adversary import FloodingValidator
    from repro.core.deployment import Deployment
    from repro.diablo.client import LoadSchedule
    from repro.net.topology import single_region_topology
    from repro.workloads.synthetic import factory_balances, transfer_request_factory

    protocol = params.ProtocolParams(n=4, rpm=rpm, vote_batching=vote_batching)
    factory = transfer_request_factory(clients=32, seed=seed + 7_000)
    deployment = Deployment(
        protocol=protocol,
        topology=single_region_topology(4),
        byzantine={3: FloodingValidator},
        byzantine_kwargs={
            3: {
                "flood_per_block": flood_per_block,
                "flood_total": invalid_count,
                "flood_seed": seed + 99,
            }
        },
        extra_balances=factory_balances(factory),
        seed=seed,
        # c5.2xlarge-class VM throughput: at 15 000 TPS send the system is
        # execution-saturated (paper: ~4 000 TPS ceiling), so the flooded
        # invalid transactions steal visible commit throughput
        execution_rate=execution_rate,
    )
    # Pre-signed valid transactions, open-loop at the configured rate,
    # spread over the three correct validators (the flooder generates its
    # own invalid transactions in-block, per §V-B's attack model).
    txs = []
    for i in range(valid_count):
        send_time = i / send_rate_tps
        txs.append(factory(i, send_time))
    schedule = LoadSchedule.from_transactions(txs, name="table1-valid")
    return deployment, schedule


def _run_flooding(
    *,
    valid_count: int,
    invalid_count: int,
    send_rate_tps: float,
    flood_per_block: int,
    rpm: bool,
    horizon_s: float,
    seed: int,
    execution_rate: float = 5_000.0,
) -> Table1Row:
    from repro.diablo.benchmark import DiabloBenchmark
    from repro.diablo.client import RoundRobinSubmitter

    deployment, schedule = flooding_deployment(
        valid_count=valid_count,
        invalid_count=invalid_count,
        send_rate_tps=send_rate_tps,
        flood_per_block=flood_per_block,
        rpm=rpm,
        seed=seed,
        execution_rate=execution_rate,
    )
    bench = DiabloBenchmark(
        deployment, submitter=RoundRobinSubmitter(targets=(0, 1, 2))
    )
    result = bench.run(schedule, horizon_s=horizon_s)
    flooder = deployment.validators[3]
    invalid_sent = getattr(flooder, "invalid_txs_proposed", 0)
    observer = deployment.validators[0]
    attacker_address = deployment.keypairs[3].address
    return Table1Row(
        config="SRBB w/ RPM" if rpm else "SRBB w/o RPM",
        valid_sent=valid_count,
        invalid_sent=invalid_sent,
        byzantine_validators=1,
        throughput_tps=result.throughput_tps,
        valid_dropped=result.dropped,
        # every lazily-discarded tx in a decided superblock is one of the
        # flooder's invalid transactions (valid load never fails execution)
        invalid_committed=observer.stats.txs_discarded,
        attacker_deposit=observer.rpm_deposit_of(attacker_address),
        attacker_excluded=attacker_address in observer.excluded_validators,
    )


def figure1_counts(*, n: int = 8, txs: int = 20, seed: int = 2) -> dict:
    """Fig. 1 as numbers: per-transaction eager validations and gossip
    messages, modern protocol vs TVPR, measured on the message engine."""
    from repro.core.deployment import Deployment, fund_clients
    from repro.diablo.benchmark import DiabloBenchmark
    from repro.diablo.client import LoadSchedule
    from repro.net.topology import single_region_topology
    from repro.workloads.synthetic import factory_balances, transfer_request_factory

    out = {}
    for tvpr in (False, True):
        protocol = params.ProtocolParams(n=n, tvpr=tvpr, rpm=False)
        factory = transfer_request_factory(clients=8, seed=seed + 11)
        deployment = Deployment(
            protocol=protocol,
            topology=single_region_topology(n),
            extra_balances=factory_balances(factory),
            seed=seed,
        )
        schedule = LoadSchedule.from_transactions(
            [factory(i, 0.01 * i) for i in range(txs)], name="fig1"
        )
        bench = DiabloBenchmark(deployment)
        bench.run(schedule, horizon_s=20.0)
        eager = sum(v.stats.eager_validations for v in deployment.validators)
        gossip_msgs = deployment.network.stats.by_kind.get("gossip", [0, 0])[0]
        out["tvpr" if tvpr else "modern"] = {
            "eager_validations_per_tx": eager / txs,
            "tx_gossip_messages": gossip_msgs,
        }
    return out
