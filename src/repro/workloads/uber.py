"""Uber workload: ride requests on the mobility DApp.

Envelope (§V): 2 minutes, average 852 TPS, peak 900 TPS — a nearly flat,
sustained load (peak/avg ≈ 1.06).  Uber is the sustained-throughput test:
any chain whose steady-state commit capacity is below ~850 TPS must shed
transactions.
"""

from __future__ import annotations

import numpy as np

from repro import params
from repro.core.transaction import Transaction, make_invoke
from repro.crypto.keys import generate_keypair
from repro.vm.contracts.mobility import MobilityContract
from repro.vm.executor import native_address_for
from repro.workloads.trace import RequestFactory, Trace, shape_to_envelope

ENVELOPE = params.UBER_ENVELOPE


def uber_trace(*, seed: int = 201) -> Trace:
    """Synthetic Uber trace matched to (120 s, avg 852, peak 900)."""
    rng = np.random.default_rng(seed)
    duration = int(ENVELOPE.duration_s)
    t = np.arange(duration)
    # Flat demand with a gentle rush-hour swell and small noise.
    shape = 1.0 + 0.04 * np.sin(2 * np.pi * t / duration) + rng.normal(
        0, 0.01, size=duration
    )
    shape = np.clip(shape, 0.8, None)
    return shape_to_envelope(
        shape,
        avg_tps=ENVELOPE.avg_tps,
        peak_tps=ENVELOPE.peak_tps,
        name=ENVELOPE.name,
    )


def uber_request_factory(
    *, clients: int = 64, seed: int = 202, gas_price: int = 1
) -> RequestFactory:
    """Factory producing mobility ``request_ride`` invocations."""
    rng = np.random.default_rng(seed)
    keypairs = [generate_keypair(seed * 10_000 + i) for i in range(clients)]
    nonces = [0] * clients
    contract = native_address_for(MobilityContract.name)

    def build(i: int, send_time: float) -> Transaction:
        c = i % clients
        nonce = nonces[c]
        nonces[c] += 1
        pickup = int(rng.integers(0, 260))  # NYC taxi-zone-like ids
        dropoff = int(rng.integers(0, 260))
        fare = int(rng.integers(500, 9_000))  # cents
        return make_invoke(
            keypairs[c],
            contract,
            "request_ride",
            (pickup, dropoff, fare),
            nonce,
            amount=fare,
            gas_limit=150_000,
            gas_price=gas_price,
            created_at=send_time,
        )

    build.keypairs = keypairs  # type: ignore[attr-defined]
    build.cache_key = ("uber", clients, seed, gas_price)  # type: ignore[attr-defined]
    return build
