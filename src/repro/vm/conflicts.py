"""Transaction conflict analysis (Definition 1's "non-conflicting").

Two transactions conflict when they access the same datum (account
balance/nonce or contract storage key) and at least one access is a write
— the ParBlockchain criterion the paper cites.  This module derives
read/write sets for the native transaction types, builds the conflict
graph of a block, and greedily schedules transactions into conflict-free
parallel groups, reporting the theoretical parallel speedup a
multi-threaded executor could reach.

The serial executor stays the source of truth (deterministic commit
order); this analysis quantifies the headroom and powers the validity
check that committed blocks contain no *unserialized* conflicts — in a
serial executor every conflict is trivially serialized, which is exactly
how SRBB satisfies the property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx

from repro.core.transaction import Transaction, TxType


@dataclass(frozen=True)
class AccessSet:
    """Datum keys a transaction reads, writes, or commutatively updates.

    ``commutes`` holds pure-increment targets (balance credits): two
    commutative updates to the same key reorder freely (Block-STM-style
    delta writes), but a commutative update still conflicts with a read
    or an ordinary write of that key.
    """

    reads: frozenset[str]
    writes: frozenset[str]
    commutes: frozenset[str] = frozenset()

    def conflicts_with(self, other: "AccessSet") -> bool:
        if (
            self.writes & other.writes
            or self.writes & other.reads
            or self.reads & other.writes
        ):
            return True
        # commutative-vs-(read|write) conflicts; commute-vs-commute is free
        return bool(
            self.commutes & (other.reads | other.writes)
            or other.commutes & (self.reads | self.writes)
        )


def _balance_key(address: str) -> str:
    return f"acct:{address}"


def access_set(tx: Transaction) -> AccessSet:
    """Static read/write sets for one transaction.

    Native-contract calls are attributed to the contract's storage at
    function granularity (argument-keyed where the ABI makes it obvious:
    per-symbol for the exchange, per-match for ticketing), which keeps
    the analysis sound-but-useful without executing the transaction.
    """
    reads = {_balance_key(tx.sender)}
    writes = {_balance_key(tx.sender)}
    commutes: set[str] = set()
    if tx.tx_type is TxType.TRANSFER:
        # the receiver is only credited: a commutative delta
        commutes.add(_balance_key(tx.receiver))
    elif tx.tx_type is TxType.DEPLOY:
        writes.add(f"code:{tx.sender}:{tx.nonce}")
    elif tx.tx_type is TxType.INVOKE:
        contract = str(tx.payload.get("contract", tx.receiver))
        function = str(tx.payload.get("function", ""))
        args = tuple(tx.payload.get("args", ()))
        scope = _invoke_scope(contract, function, args)
        if _is_readonly(function):
            reads.add(scope)
        else:
            writes.add(scope)
            if tx.amount:
                commutes.add(_balance_key(contract))  # value credit
    return AccessSet(
        reads=frozenset(reads),
        writes=frozenset(writes),
        commutes=frozenset(commutes),
    )


_READONLY_FUNCTIONS = {
    "last_price", "volume", "position", "ride_state", "zone_demand",
    "sold", "tickets_of", "balance_of", "allowance", "total_supply",
    "deposit_of", "validators", "excluded", "events",
}


def _is_readonly(function: str) -> bool:
    return function in _READONLY_FUNCTIONS


def _invoke_scope(contract: str, function: str, args: tuple) -> str:
    """Finest sound storage scope for a native call."""
    if function in ("trade", "last_price", "volume") and args:
        return f"store:{contract}:symbol:{args[0]}"
    if function in ("buy_ticket", "sold", "open_match") and args:
        return f"store:{contract}:match:{args[0]}"
    # everything else shares the whole contract's storage
    return f"store:{contract}"


# ---------------------------------------------------------------------------
# Block-level analysis
# ---------------------------------------------------------------------------


@dataclass
class ConflictReport:
    """Conflict structure of one batch of transactions."""

    tx_count: int
    conflict_pairs: list[tuple[int, int]]
    #: parallel groups: lists of tx indices with no intra-group conflicts
    groups: list[list[int]] = field(default_factory=list)

    @property
    def conflict_count(self) -> int:
        return len(self.conflict_pairs)

    @property
    def parallel_depth(self) -> int:
        """Rounds a conflict-respecting parallel executor needs."""
        return len(self.groups)

    @property
    def speedup(self) -> float:
        """Theoretical speedup vs serial execution (unit-cost txs)."""
        return self.tx_count / self.parallel_depth if self.groups else 1.0


def conflict_graph(txs: Sequence[Transaction]) -> nx.Graph:
    """Graph with one node per tx index, edges between conflicting pairs."""
    graph = nx.Graph()
    sets = [access_set(tx) for tx in txs]
    graph.add_nodes_from(range(len(txs)))
    # index datum -> txs touching it, to avoid O(n²) pair checks
    writers: dict[str, list[int]] = {}
    readers: dict[str, list[int]] = {}
    commuters: dict[str, list[int]] = {}
    for i, acc in enumerate(sets):
        for key in acc.writes:
            writers.setdefault(key, []).append(i)
        for key in acc.reads:
            readers.setdefault(key, []).append(i)
        for key in acc.commutes:
            commuters.setdefault(key, []).append(i)
    keys = set(writers) | set(commuters)
    for key in keys:
        ws = writers.get(key, ())
        rs = readers.get(key, ())
        cs = commuters.get(key, ())
        # write vs anything; commute vs read/write — commute pairs are free
        for writer in ws:
            for other in set(ws) | set(rs) | set(cs):
                if other != writer:
                    graph.add_edge(writer, other)
        for commuter in cs:
            for other in rs:
                if other != commuter:
                    graph.add_edge(commuter, other)
    return graph


def analyze_block(txs: Sequence[Transaction]) -> ConflictReport:
    """Conflict pairs + greedy conflict-free grouping (order-preserving).

    Grouping is a serializable schedule: a transaction joins the earliest
    group after every group containing a conflicting predecessor, so
    executing groups in order respects all conflict dependencies.
    """
    graph = conflict_graph(txs)
    pairs = sorted(tuple(sorted(edge)) for edge in graph.edges)
    group_of: dict[int, int] = {}
    groups: list[list[int]] = []
    for i in range(len(txs)):
        earliest = 0
        for j in graph.neighbors(i):
            if j < i:
                earliest = max(earliest, group_of[j] + 1)
        if earliest == len(groups):
            groups.append([])
        group_of[i] = earliest
        groups[earliest].append(i)
    return ConflictReport(
        tx_count=len(txs), conflict_pairs=[tuple(p) for p in pairs], groups=groups
    )


def blocks_are_conflict_serialized(txs: Sequence[Transaction]) -> bool:
    """Definition 1 validity check: with a serial executor the committed
    order *is* a serialization, so this verifies the schedule derived by
    :func:`analyze_block` covers every transaction exactly once."""
    report = analyze_block(txs)
    flat = sorted(i for group in report.groups for i in group)
    return flat == list(range(len(txs)))
