"""Gossip (flood) propagation of individual transactions.

This is the layer TVPR removes.  Modern blockchains push every eagerly
validated transaction to their overlay peers; each peer that has not seen
the transaction validates it again and pushes it onward (Alg. 1 line 9),
so one client transaction costs O(edges) messages and n eager validations.
``GossipLayer`` implements exactly that, with per-message dedup and an
optional hop-count TTL, and counts everything so tests can assert the
redundancy factor that motivates §III-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable

from repro import telemetry
from repro.net.transport import Message, Network

#: process-wide gossip redundancy counters (the §III-A overhead, exported)
_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        originated=reg.counter(
            "srbb_gossip_originated_total", "gossip items originated"
        ),
        forwarded=reg.counter(
            "srbb_gossip_forwarded_total", "gossip envelopes forwarded to peers"
        ),
        received=reg.counter(
            "srbb_gossip_received_total", "gossip envelopes received"
        ),
        duplicates=reg.counter(
            "srbb_gossip_duplicates_total",
            "received gossip envelopes suppressed as duplicates",
        ),
    )
)


@dataclass
class GossipStats:
    """Redundancy accounting for the §III-A analysis."""

    originated: int = 0
    forwarded: int = 0
    received: int = 0
    duplicates_suppressed: int = 0
    dropped_excluded: int = 0


class GossipLayer:
    """Per-node flood gossip with dedup, driven through the Network.

    ``deliver`` is called exactly once per (node, item); forwarding to the
    node's overlay peers happens automatically unless the node opts out
    (TVPR mode simply never calls :meth:`publish` for transactions).
    """

    KIND = "gossip"

    def __init__(
        self,
        node_id: int,
        network: Network,
        deliver: Callable[[object, int], None],
        *,
        max_hops: int = 64,
    ):
        self.node_id = node_id
        self.network = network
        self.deliver = deliver
        self.max_hops = max_hops
        self._seen: set[object] = set()
        #: senders whose envelopes are refused outright — the node sets
        #: this to the RPM-excluded committee seats under
        #: ``ProtocolParams.rpm_exclude_comms``
        self.blocked: set[int] = set()
        self.stats = GossipStats()

    def publish(self, item_id: object, payload: object, size_bytes: int) -> None:
        """Originate a gossip item from this node."""
        if item_id in self._seen:
            return
        self._seen.add(item_id)
        self.stats.originated += 1
        _metrics().originated.inc()
        self._forward(item_id, payload, size_bytes, hops=0)

    def handle(self, msg: Message) -> bool:
        """Process an incoming gossip envelope; returns True if fresh.

        On a fresh item: deliver locally, then forward to peers.
        """
        if msg.sender in self.blocked:
            self.stats.dropped_excluded += 1
            return False
        item_id, payload, size_bytes, hops = msg.payload
        self.stats.received += 1
        m = _metrics()
        m.received.inc()
        if item_id in self._seen:
            self.stats.duplicates_suppressed += 1
            m.duplicates.inc()
            return False
        self._seen.add(item_id)
        self.deliver(payload, msg.sender)
        if hops + 1 < self.max_hops:
            self._forward(item_id, payload, size_bytes, hops=hops + 1)
        return True

    def _forward(
        self, item_id: object, payload: object, size_bytes: int, hops: int
    ) -> None:
        msg = Message(
            kind=self.KIND,
            payload=(item_id, payload, size_bytes, hops),
            sender=self.node_id,
            size_bytes=size_bytes,
        )
        sent = self.network.send_to_peers(self.node_id, msg)
        self.stats.forwarded += sent
        _metrics().forwarded.inc(sent)

    def has_seen(self, item_id: object) -> bool:
        return item_id in self._seen

    def reset(self) -> None:
        """Forget dedup state (a crashed node's RAM); stats survive as
        they model the analysis side, not the node."""
        self._seen.clear()
