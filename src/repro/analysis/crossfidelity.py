"""Cross-fidelity validation: engine vs model on the same scenario.

The repository's two fidelity levels (message engine, tick model) are
independent implementations of the same system.  This module runs the
*same scaled workload* through both — an n-validator engine deployment
executing every message and transaction, and an n-validator
parameterization of the tick model — and compares the client-observed
outcomes.  Agreement within a small factor is evidence that the model's
structure (not just its calibrated constants) is right; the check runs in
`tests/analysis/test_crossfidelity.py` and is reported in
docs/CALIBRATION.md's spirit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.chains import ChainModel
from repro.sim.engine import simulate_chain
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class FidelityComparison:
    """Same scenario, two implementations."""

    workload: str
    engine_throughput_tps: float
    model_throughput_tps: float
    engine_commit_rate: float
    model_commit_rate: float
    engine_latency_s: float
    model_latency_s: float

    @property
    def throughput_ratio(self) -> float:
        """engine / model — 1.0 is perfect agreement."""
        if not self.model_throughput_tps:
            return float("inf")
        return self.engine_throughput_tps / self.model_throughput_tps

    def agrees(self, *, factor: float = 3.0) -> bool:
        """Within ``factor`` on throughput and commit-rate direction."""
        ratio = self.throughput_ratio
        if not (1.0 / factor <= ratio <= factor):
            return False
        # commit rates must agree qualitatively (both ~full or both lossy)
        return (self.engine_commit_rate >= 0.99) == (self.model_commit_rate >= 0.99)


def engine_model_for(
    n: int,
    *,
    round_interval_s: float,
    per_proposer_block_txs: int,
    execution_rate: float,
    mempool_capacity: int,
) -> ChainModel:
    """Tick-model twin of an engine deployment's parameters."""
    return ChainModel(
        name=f"engine-twin-n{n}",
        n=n,
        tx_gossip=False,
        pool_partitioned=True,
        mempool_capacity=mempool_capacity,
        block_interval=round_interval_s,
        block_txs=per_proposer_block_txs,
        proposers_per_round=n,
        consensus_latency=round_interval_s,
        exec_rate=execution_rate,
    )


def compare_fidelity(
    workload: str,
    *,
    scale: float = 0.005,
    n: int = 4,
    grace_s: float = 30.0,
) -> FidelityComparison:
    """Run the scaled workload through both implementations."""
    from repro.diablo.runner import run_dapp_workload
    from repro.workloads import fifa_trace, nasdaq_trace, uber_trace

    outcome = run_dapp_workload(workload, scale=scale, n=n, grace_s=grace_s)
    result = outcome.result

    # derive the engine deployment's effective parameters for the twin
    node = outcome.deployment.validators[0]
    # engine rounds: interval + execution; measured cadence ≈ interval at
    # light scaled load, single-region latency ≈ ms
    twin = engine_model_for(
        n,
        round_interval_s=node.round_interval + 0.05,
        per_proposer_block_txs=min(
            outcome.deployment.protocol.max_block_txs, 2_500
        ),
        execution_rate=node.execution_rate,
        mempool_capacity=outcome.deployment.protocol.txpool_capacity,
    )
    traces = {"nasdaq": nasdaq_trace, "uber": uber_trace, "fifa": fifa_trace}
    trace = traces[workload]().scaled(scale, name=workload)
    model_result = simulate_chain(twin, trace, grace_s=grace_s)

    return FidelityComparison(
        workload=workload,
        engine_throughput_tps=result.throughput_tps,
        model_throughput_tps=model_result.throughput_tps,
        engine_commit_rate=result.commit_rate,
        model_commit_rate=model_result.commit_rate,
        engine_latency_s=result.avg_latency_s,
        model_latency_s=model_result.avg_latency_s,
    )
