"""Multi-seed statistics for engine experiments.

The paper ran DIABLO once per workload (§V: "minimal statistical
variance ... due to a long experimental time"); the engine makes checking
that cheap.  `replicate` runs an experiment across seeds and summarizes
with mean, standard deviation and a bootstrap confidence interval, so any
headline number can be quoted with its spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class Replicates:
    """Per-seed values of one metric plus summary statistics."""

    name: str
    values: tuple[float, ...]
    seeds: tuple[int, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    @property
    def cv(self) -> float:
        """Coefficient of variation — the paper's 'minimal variance' claim
        is this number being small."""
        return self.std / self.mean if self.mean else 0.0

    def bootstrap_ci(
        self, *, confidence: float = 0.95, resamples: int = 2_000, seed: int = 9
    ) -> tuple[float, float]:
        """Percentile-bootstrap CI of the mean."""
        values = np.asarray(self.values)
        if len(values) < 2:
            return (float(values[0]), float(values[0])) if len(values) else (0.0, 0.0)
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, len(values), size=(resamples, len(values)))
        means = values[idx].mean(axis=1)
        alpha = (1.0 - confidence) / 2.0
        return (
            float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)),
        )

    def summary(self) -> str:
        lo, hi = self.bootstrap_ci()
        return (
            f"{self.name}: mean {self.mean:.3f} ± {self.std:.3f} "
            f"(95% CI [{lo:.3f}, {hi:.3f}], cv {self.cv:.1%}, "
            f"n={len(self.values)})"
        )


def replicate(
    experiment: Callable[[int], float],
    *,
    seeds: Sequence[int] = tuple(range(1, 6)),
    name: str = "metric",
) -> Replicates:
    """Run ``experiment(seed) -> metric`` for each seed."""
    values = tuple(float(experiment(seed)) for seed in seeds)
    return Replicates(name=name, values=values, seeds=tuple(seeds))


def replicate_many(
    experiment: Callable[[int], dict],
    *,
    seeds: Sequence[int] = tuple(range(1, 6)),
) -> dict[str, Replicates]:
    """Run an experiment returning a metric dict; one Replicates per key."""
    runs = [experiment(seed) for seed in seeds]
    if not runs:
        return {}
    return {
        key: Replicates(
            name=key,
            values=tuple(float(run[key]) for run in runs),
            seeds=tuple(seeds),
        )
        for key in runs[0]
    }
