"""SVM — the SRBB Virtual Machine substrate.

A from-scratch EVM-equivalent: world state (accounts, nonces, balances,
per-contract storage), a gas-metered stack machine, a transaction executor
implementing ``ApplyTransaction`` semantics (Alg. 1 line 36), and a native
contract framework hosting the DApp workload contracts and the RPM /
committee-reconfiguration system contracts.
"""

from repro.vm.state import Account, WorldState
from repro.vm.svm import SVM, VMResult
from repro.vm.executor import Executor, Receipt
from repro.vm.gas import GAS_TABLE, intrinsic_gas

__all__ = [
    "Account",
    "Executor",
    "GAS_TABLE",
    "Receipt",
    "SVM",
    "VMResult",
    "WorldState",
    "intrinsic_gas",
]
