"""Fee-market ordering and per-sender traffic accounting on the engine."""

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


def test_fee_priority_orders_commits():
    """With order_by_fee, a high-tip transaction submitted LAST commits
    before cheaper ones waiting in the same pool."""
    clients, balances = fund_clients(3)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, rpm=False),
        topology=single_region_topology(4),
        extra_balances=balances,
        round_interval=0.5,
    )
    for validator in deployment.validators:
        validator.order_by_fee = True
    deployment.start()
    cheap = [
        make_transfer(clients[0], clients[1].address, 1, nonce=i, gas_price=1)
        for i in range(3)
    ]
    rich = make_transfer(clients[2], clients[1].address, 1, nonce=0, gas_price=50)
    # all land in validator 0's pool before its first proposal
    for i, tx in enumerate(cheap):
        deployment.submit(tx, validator_id=0, at=0.01 * (i + 1))
    deployment.submit(rich, validator_id=0, at=0.1)
    deployment.run_until(5.0)
    chain = deployment.validators[1].blockchain
    assert all(chain.contains_tx(tx) for tx in cheap + [rich])
    first_block = chain.chain[1]
    # the fee-ordered proposer put the rich tx first in its block
    assert first_block.transactions[0].tx_hash == rich.tx_hash


def test_fee_revenue_reaches_proposer():
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, rpm=False),
        topology=single_region_topology(4),
        extra_balances=balances,
    )
    deployment.start()
    tx = make_transfer(clients[0], clients[1].address, 1, nonce=0, gas_price=5)
    deployment.submit(tx, validator_id=2, at=0.05)
    deployment.run_until(4.0)
    proposer_address = deployment.keypairs[2].address
    state = deployment.validators[0].blockchain.state
    from repro.core.deployment import GENESIS_BALANCE

    assert state.balance_of(proposer_address) == GENESIS_BALANCE + 21_000 * 5


def test_per_sender_traffic_accounting():
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, rpm=False),
        topology=single_region_topology(4),
        extra_balances=balances,
    )
    deployment.start()
    tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
    deployment.submit(tx, validator_id=0, at=0.05)
    deployment.run_until(3.0)
    stats = deployment.network.stats
    # every validator spent egress on consensus traffic
    for i in range(4):
        assert stats.egress_bytes(i) > 0
    assert stats.messages == sum(v[0] for v in stats.by_sender.values())
