"""Congestion simulator: queueing behaviour and the paper's orderings."""

import numpy as np
import pytest

from repro.sim.chains import CHAIN_MODELS, EVM_DBFT, SRBB, ChainModel, chain_model
from repro.sim.engine import CongestionSim, simulate_chain, _CohortQueue
from repro.workloads import burst_trace, constant_trace, fifa_trace, uber_trace


class TestCohortQueue:
    def test_push_pop_fifo(self):
        q = _CohortQueue()
        q.push(0.0, 5)
        q.push(1.0, 5)
        popped = q.pop(7)
        assert popped == [(0.0, 5.0), (1.0, 2.0)]
        assert q.size == 3

    def test_pop_empty(self):
        q = _CohortQueue()
        assert q.pop(10) == []

    def test_drop_newest(self):
        q = _CohortQueue()
        q.push(0.0, 5)
        q.push(1.0, 5)
        dropped = q.drop_newest(7)
        assert dropped == 7
        assert q.size == 3
        # survivors are the oldest
        assert q.pop(10) == [(0.0, 3.0)]

    def test_zero_push_ignored(self):
        q = _CohortQueue()
        q.push(0.0, 0)
        assert q.size == 0


class TestChainModels:
    def test_registry_complete(self):
        assert set(CHAIN_MODELS) == {
            "srbb", "evm+dbft", "algorand", "avalanche", "diem",
            "ethereum", "quorum", "solana",
        }

    def test_lookup_error_lists_options(self):
        with pytest.raises(KeyError, match="srbb"):
            chain_model("bitcoin")

    def test_srbb_validation_scales_with_n(self):
        assert SRBB.validation_rate() == SRBB.eager_rate * SRBB.n

    def test_gossip_validation_pays_handling(self):
        assert EVM_DBFT.validation_rate() < EVM_DBFT.eager_rate
        # dominated by redundancy × handling overhead
        expected = 1.0 / (
            1.0 / EVM_DBFT.eager_rate
            + EVM_DBFT.gossip_redundancy * EVM_DBFT.handling_overhead_s
        )
        assert EVM_DBFT.validation_rate() == pytest.approx(expected)

    def test_pool_capacity_partitioning(self):
        assert SRBB.pool_capacity_total() == SRBB.mempool_capacity * SRBB.n
        assert EVM_DBFT.pool_capacity_total() == EVM_DBFT.mempool_capacity

    def test_with_override(self):
        assert SRBB.with_(n=10).n == 10
        assert SRBB.n == 200  # immutable original


class TestQueueDynamics:
    def test_light_load_commits_everything(self):
        result = simulate_chain(SRBB, constant_trace(100, 30), grace_s=60)
        assert result.commit_rate == 1.0
        assert result.avg_latency_s < 5.0

    def test_overload_loses_transactions(self):
        model = ChainModel(name="tiny", mempool_capacity=100,
                           block_txs=10, block_interval=1.0, exec_rate=10.0)
        result = simulate_chain(model, constant_trace(1000, 30), grace_s=30)
        assert result.commit_rate < 0.5
        assert result.dropped_pool + result.dropped_validation + result.unfinished > 0

    def test_latency_grows_with_backlog(self):
        light = simulate_chain(SRBB, constant_trace(100, 60), grace_s=120)
        heavy = simulate_chain(SRBB, constant_trace(4000, 60), grace_s=120)
        assert heavy.avg_latency_s > light.avg_latency_s

    def test_burst_recovery(self):
        """A one-second burst above capacity queues but drains (the NASDAQ
        pattern): everything commits, at elevated latency."""
        trace = burst_trace(50, 5000, 30, burst_at=5)
        result = simulate_chain(SRBB, trace, grace_s=120)
        assert result.commit_rate == 1.0
        assert result.p99_latency_s > result.avg_latency_s

    def test_accounting_conserves_transactions(self):
        for chain in ("srbb", "ethereum", "solana"):
            result = simulate_chain(CHAIN_MODELS[chain], constant_trace(500, 20),
                                    grace_s=30)
            total = (result.committed + result.dropped_pool
                     + result.dropped_validation + result.unfinished)
            assert total == pytest.approx(result.sent, abs=2)

    def test_series_shapes(self):
        result = simulate_chain(SRBB, constant_trace(100, 10), grace_s=10)
        assert len(result.pool_series) > 0
        assert result.commit_series.sum() == pytest.approx(result.committed, abs=1)


class TestPaperOrderings:
    """The qualitative Figure 2/3 claims, asserted."""

    def test_srbb_beats_every_chain_on_uber(self):
        trace = uber_trace()
        srbb = simulate_chain(SRBB, trace)
        for name, model in CHAIN_MODELS.items():
            if name == "srbb":
                continue
            other = simulate_chain(model, trace)
            assert srbb.throughput_tps > other.throughput_tps, name
            assert srbb.avg_latency_s < other.avg_latency_s, name

    def test_only_srbb_commits_all_of_uber(self):
        trace = uber_trace()
        for name, model in CHAIN_MODELS.items():
            result = simulate_chain(model, trace)
            if name == "srbb":
                assert result.commit_rate == 1.0
            else:
                assert result.commit_rate < 1.0, name

    def test_srbb_commits_at_least_98pct_of_fifa(self):
        result = simulate_chain(SRBB, fifa_trace())
        assert result.commit_rate >= 0.97

    def test_tvpr_headline_ratio_order_of_magnitude(self):
        """§V-A: ×55 throughput, ÷3.5 latency vs EVM+DBFT (we assert the
        right ballpark: ≥ 20× and ≥ 2× respectively)."""
        trace = fifa_trace()
        srbb = simulate_chain(SRBB, trace)
        base = simulate_chain(EVM_DBFT, trace)
        assert srbb.throughput_tps / base.throughput_tps > 20
        assert base.avg_latency_s / srbb.avg_latency_s > 2
