"""HEADLINE-TVPR — §V-A: SRBB vs EVM+DBFT (×55 throughput, ÷3.5 latency).

Two renditions:

* the congestion-simulator headline on the FIFA workload (the paper's
  measurement), plus a gossip-cost sweep showing *why* — the baseline's
  admission rate collapses with gossip redundancy while SRBB's scales
  with committee size;
* a message-level engine rendition at small n: identical deployments,
  TVPR on vs off, measuring eager-validation and traffic amplification.
"""

from repro import params
from repro.analysis.figures import figure1_counts, tvpr_headline
from repro.sim.chains import EVM_DBFT, SRBB
from repro.sim.engine import simulate_chain
from repro.workloads import fifa_trace


def test_tvpr_headline(benchmark, run_once):
    headline = run_once(benchmark, tvpr_headline)
    print()
    print(
        f"SRBB      : {headline.srbb_tps:8.1f} TPS, {headline.srbb_latency_s:6.1f} s\n"
        f"EVM+DBFT  : {headline.baseline_tps:8.1f} TPS, {headline.baseline_latency_s:6.1f} s\n"
        f"throughput ×{headline.throughput_ratio:.1f} (paper ×55), "
        f"latency ÷{headline.latency_ratio:.1f} (paper ÷3.5)"
    )
    assert headline.throughput_ratio > 20
    assert headline.latency_ratio > 2


def test_gossip_redundancy_sweep(benchmark, run_once):
    """Ablation: baseline throughput vs gossip redundancy (overlay degree).

    The §III-A mechanism made visible: each extra duplicate delivery costs
    admission capacity; SRBB (no gossip) is flat."""

    def sweep():
        trace = fifa_trace()
        rows = []
        for redundancy in (5, 10, 25, 50):
            model = EVM_DBFT.with_(gossip_redundancy=float(redundancy))
            result = simulate_chain(model, trace)
            rows.append((redundancy, result.throughput_tps))
        srbb = simulate_chain(SRBB, trace)
        return rows, srbb.throughput_tps

    rows, srbb_tps = run_once(benchmark, sweep)
    print()
    print("redundancy  baseline TPS   (srbb: %.1f)" % srbb_tps)
    for redundancy, tps in rows:
        print(f"{redundancy:10d}  {tps:12.1f}")
    tputs = [tps for _, tps in rows]
    assert tputs == sorted(tputs, reverse=True)  # monotone collapse
    assert srbb_tps > tputs[0] * 5


def test_fig1_validation_counts(benchmark, run_once):
    """FIG1 — the protocol diagram as counts on the live engine."""
    counts = run_once(benchmark, figure1_counts, n=8, txs=16)
    print()
    print(
        f"modern: {counts['modern']['eager_validations_per_tx']:.1f} eager "
        f"validations/tx, {counts['modern']['tx_gossip_messages']} gossip msgs\n"
        f"tvpr  : {counts['tvpr']['eager_validations_per_tx']:.1f} eager "
        f"validations/tx, {counts['tvpr']['tx_gossip_messages']} gossip msgs"
    )
    assert counts["tvpr"]["eager_validations_per_tx"] == 1.0
    assert counts["modern"]["eager_validations_per_tx"] == 8.0
    assert counts["tvpr"]["tx_gossip_messages"] == 0
