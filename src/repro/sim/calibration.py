"""Cross-fidelity calibration: measure the tick model's constants on the
message-level engine.

The congestion model's per-chain `consensus_latency` / `block_interval`
for SRBB are not free parameters — they should match what the real
DBFT + superblock protocol costs on the simulated WAN.  This module runs
small committees on the message engine across the 10-region topology,
measures decided-round cadence, and extrapolates: DBFT's round structure
is O(1) communication steps regardless of n (BV-broadcast + AUX are
all-to-all, not sequential), so the WAN round time is a few max-RTTs plus
the proposal dissemination — roughly constant in committee size, which is
what lets the model reuse one number for n = 200.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.net.topology import Topology, global_topology


@dataclass(frozen=True)
class RoundTimeMeasurement:
    """Measured consensus cadence for one committee size."""

    n: int
    rounds: int
    mean_round_s: float
    p90_round_s: float


def measure_round_time(
    n: int,
    *,
    topology: Topology | None = None,
    rounds: int = 10,
    round_interval: float = 0.0,
    seed: int = 3,
) -> RoundTimeMeasurement:
    """Measure decided-round cadence on the engine (global WAN topology).

    ``round_interval=0`` makes rounds back-to-back, so the measured gap is
    the pure consensus cost: proposal RBC + n binary instances + commit.
    """
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=n, rpm=False),
        topology=topology or global_topology(n, seed=seed),
        extra_balances=balances,
        round_interval=max(0.001, round_interval),
        proposer_timeout=10.0,
        seed=seed,
    )
    node = deployment.validators[0]
    commit_times: list[float] = []
    original = node._commit

    def traced(superblock):
        original(superblock)
        commit_times.append(deployment.sim.now)

    node._commit = traced  # type: ignore[method-assign]
    deployment.start()
    deployment.run_until(120.0, max_events=None)
    while len(commit_times) < rounds + 1 and deployment.sim.pending:
        deployment.run_until(deployment.sim.now + 10.0)
        if deployment.sim.now > 600.0:
            break
    gaps = np.diff(np.array(commit_times[: rounds + 1]))
    if gaps.size == 0:
        raise RuntimeError(f"no rounds completed for n={n}")
    return RoundTimeMeasurement(
        n=n,
        rounds=int(gaps.size),
        mean_round_s=float(gaps.mean()),
        p90_round_s=float(np.percentile(gaps, 90)),
    )


def calibration_table(
    sizes: tuple[int, ...] = (4, 7, 10), **kwargs
) -> list[RoundTimeMeasurement]:
    """Round-time measurements across committee sizes."""
    return [measure_round_time(n, **kwargs) for n in sizes]


def model_consistency(
    measurements: list[RoundTimeMeasurement],
    *,
    model_round_s: float,
    tolerance_factor: float = 4.0,
) -> bool:
    """Is the tick model's round constant within a factor of the engine?

    A loose check by design: the model's 200-validator constant cannot be
    measured directly (the engine cannot run n=200), so we require the
    measured small-n WAN round times to bracket it within
    ``tolerance_factor`` and to be roughly flat in n (the leaderless
    all-to-all structure predicts O(1) growth).
    """
    means = [m.mean_round_s for m in measurements]
    flat = max(means) <= 3.0 * min(means)
    bracketed = (
        model_round_s / tolerance_factor
        <= float(np.median(means))
        <= model_round_s * tolerance_factor
    )
    return flat and bracketed
