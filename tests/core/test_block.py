"""Blocks, certificates (Cert_B), superblocks."""

from repro.core.block import (
    GENESIS,
    Block,
    BlockCertificate,
    SuperBlock,
    make_block,
    transactions_hash,
)
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair


def _txs(count, seed=1):
    kp = generate_keypair(seed)
    return [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(count)]


class TestBlock:
    def test_make_block_is_certified(self):
        kp = generate_keypair(1)
        block = make_block(kp, 0, 1, _txs(3))
        assert block.header_valid()
        assert block.certificate.proposer_address() == kp.address

    def test_uncertified_block_invalid(self):
        block = Block(proposer_id=0, index=1, transactions=tuple(_txs(2)))
        assert not block.header_valid()

    def test_tampered_txs_invalidate_certificate(self):
        kp = generate_keypair(1)
        block = make_block(kp, 0, 1, _txs(3))
        tampered = Block(
            proposer_id=0, index=1, transactions=tuple(_txs(2, seed=9)),
            certificate=block.certificate,
        )
        assert not tampered.header_valid()

    def test_certificate_from_wrong_key_invalid(self):
        kp, evil = generate_keypair(1), generate_keypair(66)
        txs = _txs(2)
        good = make_block(kp, 0, 1, txs)
        stolen = make_block(evil, 0, 1, txs)
        # evil's certificate verifies only for evil's key record
        assert stolen.header_valid()
        assert stolen.certificate.proposer_address() != kp.address

    def test_block_hash_covers_contents(self):
        kp = generate_keypair(1)
        a = make_block(kp, 0, 1, _txs(2))
        b = make_block(kp, 0, 2, _txs(2))
        assert a.block_hash != b.block_hash

    def test_encoded_size(self):
        kp = generate_keypair(1)
        assert make_block(kp, 0, 1, _txs(5)).encoded_size() > make_block(
            kp, 0, 1, []
        ).encoded_size()

    def test_len(self):
        kp = generate_keypair(1)
        assert len(make_block(kp, 0, 1, _txs(4))) == 4

    def test_genesis(self):
        assert GENESIS.index == 0
        assert len(GENESIS) == 0


class TestTransactionsHash:
    def test_empty(self):
        assert transactions_hash([]) == transactions_hash([])

    def test_order_sensitive(self):
        txs = _txs(2)
        assert transactions_hash(txs) != transactions_hash(list(reversed(txs)))


class TestSuperBlock:
    def test_iteration_and_counts(self):
        kp1, kp2 = generate_keypair(1), generate_keypair(2)
        b1 = make_block(kp1, 0, 1, _txs(2, seed=3))
        b2 = make_block(kp2, 1, 1, _txs(3, seed=4))
        sb = SuperBlock(index=1, blocks=(b1, b2))
        assert len(sb) == 2
        assert sb.transaction_count() == 5
        assert list(sb.all_transactions()) == list(b1.transactions) + list(
            b2.transactions
        )

    def test_hash_covers_blocks(self):
        kp = generate_keypair(1)
        b1 = make_block(kp, 0, 1, _txs(1, seed=3))
        b2 = make_block(kp, 0, 1, _txs(1, seed=4))
        assert (
            SuperBlock(index=1, blocks=(b1,)).superblock_hash
            != SuperBlock(index=1, blocks=(b2,)).superblock_hash
        )
