"""Critical-path analyzer: buckets, attribution, exec_share, headline."""

import pytest

from repro.telemetry.critical_path import (
    ATTRIBUTED_BUCKETS,
    RAW_BUCKETS,
    analyze,
    exec_share_from_trace,
)
from repro.telemetry.lifecycle import LifecycleRecorder


def _committed_tx(rec, tx, *, base=0.0, index=0):
    """One tx crossing every phase, 1s apart, starting at ``base``."""
    from repro.telemetry.lifecycle import PHASES

    for i, phase in enumerate(PHASES):
        rec.stamp(tx, phase, node=0, t=base + float(i), index=index)


class TestAnalyze:
    def test_raw_buckets_telescope_to_e2e(self):
        rec = LifecycleRecorder()
        _committed_tx(rec, b"a")
        report = analyze(rec)
        assert report.committed == 1
        total = sum(report.raw[b].mean for b in RAW_BUCKETS)
        assert total == pytest.approx(report.e2e.mean)

    def test_attributed_buckets_telescope_too(self):
        rec = LifecycleRecorder()
        _committed_tx(rec, b"a")
        report = analyze(rec, exec_share=0.7)
        total = sum(report.attributed[b].mean for b in ATTRIBUTED_BUCKETS)
        assert total == pytest.approx(report.e2e.mean)

    def test_exec_share_reattributes_queue_wait(self):
        rec = LifecycleRecorder()
        _committed_tx(rec, b"a")
        zero = analyze(rec, exec_share=0.0)
        full = analyze(rec, exec_share=1.0)
        queue_wait = (
            zero.raw["pool_wait"].mean + zero.raw["commit_wait"].mean
        )
        assert zero.attributed["ordering"].mean == pytest.approx(queue_wait)
        assert full.attributed["ordering"].mean == pytest.approx(0.0)
        assert full.attributed["execute"].mean == pytest.approx(
            zero.attributed["execute"].mean + queue_wait
        )

    def test_uncommitted_txs_excluded(self):
        rec = LifecycleRecorder()
        _committed_tx(rec, b"a")
        rec.stamp(b"pending", "submit", t=0.0)
        rec.stamp(b"pending", "pool", t=1.0)
        report = analyze(rec)
        assert report.txs == 2
        assert report.committed == 1

    def test_accepts_record_list(self):
        rec = LifecycleRecorder()
        _committed_tx(rec, b"a")
        report = analyze(rec.to_records())
        assert report.committed == 1

    def test_empty_recorder(self):
        report = analyze(LifecycleRecorder())
        assert report.committed == 0
        assert set(report.attributed) == set(ATTRIBUTED_BUCKETS)

    def test_superblock_summaries_grouped_by_index(self):
        rec = LifecycleRecorder()
        _committed_tx(rec, b"a", base=0.0, index=1)
        _committed_tx(rec, b"b", base=0.5, index=1)
        _committed_tx(rec, b"c", base=5.0, index=2)
        report = analyze(rec)
        assert [sb["index"] for sb in report.superblocks] == [1, 2]
        assert report.superblocks[0]["txs"] == 2

    def test_headline_keys_flat_numeric(self):
        rec = LifecycleRecorder()
        _committed_tx(rec, b"a")
        head = analyze(rec, exec_share=0.9).headline()
        assert head["latency_breakdown:txs"] == 1.0
        assert head["latency_breakdown:dominant_execute"] in (0.0, 1.0)
        for bucket in ATTRIBUTED_BUCKETS:
            assert f"latency_breakdown:{bucket}_p99_s" in head
        assert all(isinstance(v, float) for v in head.values())

    def test_render_text_marks_dominant(self):
        rec = LifecycleRecorder()
        _committed_tx(rec, b"a")
        report = analyze(rec, exec_share=1.0)
        assert report.dominant_phase == "execute"
        assert "◀ dominant" in report.render_text()


class TestExecShareFromTrace:
    @staticmethod
    def _commit(t, exec_s, node=0):
        return {
            "type": "event", "name": "node.commit",
            "ts": t, "attrs": {"node": node, "sim_now": t, "exec_s": exec_s},
        }

    def test_share_over_busy_intervals(self):
        # two 1s intervals, each 0.5s of execution -> 0.5
        records = [self._commit(0.0, 0.5), self._commit(1.0, 0.5),
                   self._commit(2.0, 0.0)]
        assert exec_share_from_trace(records) == pytest.approx(0.5)

    def test_empty_drain_rounds_excluded(self):
        # saturated first second, then nine idle commits: still 0.5
        records = [self._commit(0.0, 0.5), self._commit(1.0, 0.0)]
        records += [self._commit(1.0 + i, 0.0) for i in range(1, 10)]
        assert exec_share_from_trace(records) == pytest.approx(0.5)

    def test_busiest_node_wins(self):
        records = [self._commit(0.0, 1.0, node=1), self._commit(1.0, 0.0, node=1)]
        records += [self._commit(float(i), 0.25, node=2) for i in range(4)]
        assert exec_share_from_trace(records) == pytest.approx(0.25)

    def test_no_usable_events_returns_none(self):
        assert exec_share_from_trace([]) is None
        assert exec_share_from_trace(
            [{"type": "event", "name": "other", "attrs": {}}]
        ) is None
        assert exec_share_from_trace([self._commit(0.0, 0.5)]) is None

    def test_clamped_to_unit_interval(self):
        records = [self._commit(0.0, 5.0), self._commit(1.0, 0.0)]
        assert exec_share_from_trace(records) == 1.0
