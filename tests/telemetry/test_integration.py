"""Telemetry wired through the pipeline: exported numbers must reconcile
with the results the engines themselves report."""

from repro import params, telemetry
from repro.core.deployment import Deployment, fund_clients
from repro.core.node import NodeStats
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology
from repro.sim.chains import chain_model
from repro.sim.engine import simulate_chain
from repro.sim.metrics import LatencySample
from repro.workloads import constant_trace


def _sample(samples, name, **labels):
    return samples[(name, tuple(sorted((k, str(v)) for k, v in labels.items())))]


class TestTickEngineReconciliation:
    def test_counters_match_simresult(self):
        trace = constant_trace(200, 10)
        with telemetry.use_registry() as reg:
            result = simulate_chain(chain_model("srbb"), trace)
            samples = telemetry.parse_prometheus(telemetry.to_prometheus(reg))
        assert _sample(samples, "srbb_sim_txs_sent_total") == result.sent
        assert _sample(samples, "srbb_sim_txs_committed_total") == result.committed
        dropped = _sample(
            samples, "srbb_sim_txs_dropped_total", reason="pool"
        ) + _sample(samples, "srbb_sim_txs_dropped_total", reason="validation")
        assert dropped == result.dropped_pool + result.dropped_validation
        assert _sample(samples, "srbb_sim_txs_unfinished") == result.unfinished
        assert (
            _sample(samples, "srbb_sim_commit_latency_seconds_count")
            == result.committed
        )

    def test_disabled_registry_untouched(self):
        trace = constant_trace(100, 5)
        reg = telemetry.get_registry()
        assert not reg.enabled
        sent = reg.get("srbb_sim_txs_sent_total")
        before = sent.value if sent is not None else 0.0
        simulate_chain(chain_model("srbb"), trace)
        sent = reg.get("srbb_sim_txs_sent_total")
        assert (sent.value if sent is not None else 0.0) == before

    def test_trace_span_carries_result(self):
        tracer = telemetry.Tracer()
        previous = telemetry.set_tracer(tracer)
        try:
            result = simulate_chain(chain_model("srbb"), constant_trace(100, 5))
        finally:
            telemetry.set_tracer(previous)
        spans = [r for r in tracer.records if r["name"] == "sim.run"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["committed"] == result.committed
        assert spans[0]["attrs"]["sent"] == result.sent


class TestMessageEngineReconciliation:
    def test_node_commit_counters_match_chain(self):
        clients, balances = fund_clients(4)
        with telemetry.use_registry() as reg:
            deployment = Deployment(
                protocol=params.ProtocolParams(n=4),
                topology=single_region_topology(4),
                extra_balances=balances,
            )
            deployment.start()
            txs = [
                make_transfer(clients[i], clients[(i + 1) % 4].address, 1, nonce=0)
                for i in range(4)
            ]
            for i, tx in enumerate(txs):
                deployment.submit(tx, validator_id=i, at=0.05)
            deployment.run_until(5.0)
            samples = telemetry.parse_prometheus(telemetry.to_prometheus(reg))
        for node in deployment.validators:
            assert node.stats.txs_committed == node.blockchain.committed_count()
            assert (
                _sample(samples, "srbb_node_txs_committed_total", node=node.node_id)
                == node.stats.txs_committed
            )
        # consensus decided at least one superblock on every validator
        assert _sample(samples, "srbb_superblocks_decided_total") >= 4
        # transport counted traffic for the run (sum over {kind=...} children)
        total_messages = sum(
            value for (name, _), value in samples.items()
            if name == "srbb_net_messages_total"
        )
        assert total_messages > 0


class TestNodeStatsView:
    def test_attribute_api_preserved(self):
        stats = NodeStats()
        assert stats.txs_committed == 0
        stats.txs_committed += 5
        stats.txs_committed += 2
        assert stats.txs_committed == 7
        assert stats.as_dict()["txs_committed"] == 7

    def test_local_counts_exact_even_when_disabled(self):
        assert not telemetry.get_registry().enabled
        stats = NodeStats(node_id=3)
        stats.eager_validations += 10
        assert stats.eager_validations == 10

    def test_mirrors_into_registry_with_node_label(self):
        with telemetry.use_registry() as reg:
            stats = NodeStats(node_id=1)
            stats.txs_from_clients += 4
            stats.txs_from_peers += 2
            received = reg.get("srbb_node_txs_received_total")
            assert received.labels(node="1", source="client").value == 4
            assert received.labels(node="1", source="peer").value == 2


class TestLatencySample:
    def test_bounded_and_api_compatible(self):
        sample = LatencySample()
        for i in range(10_000):
            sample.add(0.001 * (i + 1), weight=2.0)
        assert sample.total_weight == 20_000
        assert sample.max_latency == 10.0
        assert 0 < sample.mean < 10.0
        assert sample.percentile(50.0) <= sample.percentile(99.0) <= 10.0
        # memory is bounded by the sketch bins, not the observation count
        assert len(sample.histogram.sketch._bins) <= sample.histogram.sketch.max_bins

    def test_empty(self):
        sample = LatencySample()
        assert sample.mean == 0.0
        assert sample.max_latency == 0.0
        assert sample.percentile(99.0) == 0.0
