"""Schedule-driven Byzantine campaigns end-to-end (message-level engine).

The FaultSchedule drives node 3 through misbehaviour windows on the
deployment clock; RPM's economics must then bite: n−f matching reports
slash the whole deposit, the exclusion event propagates, and correct
nodes stop accepting (and, with ``rpm_exclude_comms``, stop hearing)
the attacker — all while the honest chains stay byte-identical.
"""

import pytest

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.rewards import DepositLedger
from repro.core.rpm import RPMContract
from repro.core.transaction import make_transfer
from repro.faults import FaultSchedule
from repro.net.topology import single_region_topology
from repro.vm.executor import native_address_for


def run_campaign(
    schedule,
    *,
    rpm=True,
    rpm_exclude_comms=False,
    horizon_s=14.0,
    seed=5,
    ledger=None,
):
    clients, balances = fund_clients(6, seed=seed + 800)
    deployment = Deployment(
        protocol=params.ProtocolParams(
            n=4, rpm=rpm, rpm_exclude_comms=rpm_exclude_comms,
            watchdog_stall_rounds=8,
        ),
        topology=single_region_topology(4),
        fault_schedule=schedule,
        extra_balances=balances,
        seed=seed,
        execution_rate=2_000.0,
    )
    txs = []
    for j in range(4):
        for i, keypair in enumerate(clients):
            k = j * len(clients) + i
            tx = make_transfer(
                keypair, clients[(i + 1) % len(clients)].address, 1,
                nonce=j, created_at=0.0,
            )
            txs.append(tx)
            deployment.submit(tx, validator_id=k % 3, at=0.25 + k * 0.25)
    if ledger is not None:
        t = 0.0
        while t < horizon_s:
            t += 0.5
            deployment.sim.schedule(t, ledger.sample, deployment.validators[0])
    deployment.start()
    deployment.run_until(horizon_s)
    return deployment, txs


def flood_schedule(seed=5):
    return FaultSchedule(seed=seed).byzantine_flood(
        3, at=0.5, until=6.0, per_block=200, total=1_000, seed=seed + 99
    )


class TestSlashingBites:
    def test_flooder_is_slashed_excluded_and_silenced(self):
        deployment, txs = run_campaign(flood_schedule(), rpm=True)
        observer = deployment.validators[0]
        attacker = deployment.keypairs[3].address

        # Theorem 1: the whole deposit is gone and the seat is excluded.
        assert observer.rpm_deposit_of(attacker) == 0
        assert attacker in observer.excluded_validators

        # Exclusion event recorded on-chain (Alg. 2 line 42).
        rpm_addr = native_address_for(RPMContract.name)
        events = observer.blockchain.state.storage_get(rpm_addr, "events", ())
        assert events, "no ByzantineEvent recorded"

        # No-further-proposals: once excluded, correct nodes vote the
        # attacker's slot out, so its blocks stop entering the chain —
        # the committee must then decide many more rounds without it.
        attacker_rounds = [
            b.index for b in observer.blockchain.chain if b.proposer_id == 3
        ]
        final_round = observer.blockchain.chain[-1].index
        assert attacker_rounds, "flood blocks never landed"
        assert final_round - max(attacker_rounds) >= 5, (
            attacker_rounds, final_round
        )

    def test_campaign_does_not_break_honest_liveness_or_safety(self):
        deployment, txs = run_campaign(flood_schedule(), rpm=True)
        honest = deployment.validators[:3]
        assert deployment.safety_holds()
        assert len({tuple(v.blockchain.block_hashes()) for v in honest}) == 1
        assert len({v.blockchain.state.state_root() for v in honest}) == 1
        for tx in txs:
            assert all(
                tx.tx_hash in v.blockchain.commit_times for v in honest
            ), "honest-submitted valid tx failed to commit"

    def test_without_rpm_the_flooder_keeps_its_deposit(self):
        deployment, _ = run_campaign(flood_schedule(), rpm=False)
        observer = deployment.validators[0]
        attacker = deployment.keypairs[3].address
        assert attacker not in observer.excluded_validators
        assert observer.stats.txs_discarded > 0  # damage actually landed

    def test_deposit_ledger_tracks_the_slash(self):
        ledger = None
        schedule = flood_schedule()
        clients_seed = 5
        # build the ledger against the deployment's validator addresses:
        # run once to learn them, then re-run sampled (cheap, n=4)
        deployment, _ = run_campaign(schedule, rpm=True)
        addresses = tuple(kp.address for kp in deployment.keypairs[:4])
        ledger = DepositLedger(addresses)
        deployment, _ = run_campaign(
            flood_schedule(), rpm=True, seed=clients_seed, ledger=ledger
        )
        attacker = addresses[3]
        stats = ledger.stats(attacker=attacker)
        assert stats["attacker_final_deposit"] == 0
        assert stats["attacker_net_payoff"] < 0
        assert stats["attacker_excluded"] == 1.0
        assert stats["time_to_exclusion_s"] < 10.0
        assert stats["honest_yield"] > 0  # redistribution reached them
        assert stats["slash_events"] >= 1


class TestCommsExclusion:
    def test_excluded_seat_traffic_is_dropped_and_rounds_keep_cadence(self):
        deployment, txs = run_campaign(
            flood_schedule(), rpm=True, rpm_exclude_comms=True
        )
        honest = deployment.validators[:3]
        assert sum(v.excluded_msgs_dropped for v in honest) > 0
        assert len({tuple(v.blockchain.block_hashes()) for v in honest}) == 1
        for tx in txs:
            assert all(tx.tx_hash in v.blockchain.commit_times for v in honest)
        # vote_zero keeps post-exclusion rounds from waiting out the
        # 2 s proposer timeout: the chain must keep growing briskly.
        assert max(v.blockchain.height for v in honest) > 20


class TestEquivocation:
    def test_at_most_one_decided_block_per_proposer_slot(self):
        schedule = FaultSchedule(seed=7).byzantine_equivocate(
            3, at=0.5, until=8.0
        )
        deployment, _ = run_campaign(schedule, rpm=False, seed=7)
        honest = deployment.validators[:3]
        # RBC consistency: for every (proposer=3, index) slot that decided,
        # every honest node holds the same block — never both halves of
        # the equivocation.
        per_node = []
        for v in honest:
            per_node.append({
                b.index: b.block_hash
                for b in v.blockchain.chain
                if b.proposer_id == 3
            })
        assert per_node[0] == per_node[1] == per_node[2]
        assert deployment.safety_holds()


class TestWithholding:
    def test_vote_withholding_cannot_stall_n_minus_f(self):
        schedule = FaultSchedule(seed=9).byzantine_withhold(
            3, at=0.5, until=10.0
        )
        deployment, txs = run_campaign(schedule, rpm=True, seed=9)
        honest = deployment.validators[:3]
        flooder = deployment.validators[3]
        assert flooder.withheld_msgs > 0
        for tx in txs:
            assert all(tx.tx_hash in v.blockchain.commit_times for v in honest)
        assert len({tuple(v.blockchain.block_hashes()) for v in honest}) == 1


class TestBudget:
    def test_campaign_deployment_enforces_combined_budget(self):
        schedule = (
            FaultSchedule()
            .byzantine_flood(3, at=1.0, until=6.0)
            .crash(2, at=2.0)
            .restart(2, at=5.0)
        )
        with pytest.raises(ValueError, match="more than f=1"):
            Deployment(
                protocol=params.ProtocolParams(n=4),
                topology=single_region_topology(4),
                fault_schedule=schedule,
                seed=1,
            )
