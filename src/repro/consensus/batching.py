"""Vote batching — coalesce per-instance consensus traffic (tentpole, PR 3).

The superblock design runs ``n`` binary DBFT instances per chain index and
every instance broadcasts its BVAL/AUX/COORD votes individually, so a
4-validator dapp run emits hundreds of thousands of tiny wire messages —
re-creating at the vote layer exactly the congestion TVPR removed from the
transaction layer (§III of the paper).  Ersoy et al. show propagation, not
validation, dominates permissionless overhead; the fix is the same one the
SRBB follow-up work applies to transactions: coalesce.

:class:`VoteBatcher` sits between a node's consensus instances and the
transport.  Consensus emitters hand every outgoing message to
:meth:`submit`; batchable kinds (BVAL/AUX/COORD and the RBC ECHO/READY
digest traffic — everything except the proposal-carrying RBC SEND) are
buffered, and a ``flush()`` event scheduled on the simulation engine at
the next tick boundary sends the whole buffer as **one**
``MsgKind.BATCH`` wire message per broadcast.  The receiving node unpacks
the batch and feeds constituent votes to the right ``(index, instance)``
in deterministic (emission) order, so protocol semantics are untouched —
votes are merely delayed by at most one tick, which partial synchrony
absorbs (``vote_batch_tick`` ≪ δ ≪ proposer timeout).

A node that disables batching (``ProtocolParams.vote_batching = False``)
passes every message straight through, keeping the unbatched path alive
for ablation scenarios to quantify the reduction.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Callable

from repro import telemetry
from repro.consensus.messages import ConsensusBatch, ConsensusMessage, MsgKind

__all__ = ["VoteBatcher", "BATCHABLE_KINDS"]

#: kinds the batcher coalesces: every vote-sized message.  RBC SEND stays
#: on the direct path — it carries the block proposal itself, is emitted
#: once per round, and delaying it would push the whole round back a tick.
BATCHABLE_KINDS = frozenset(
    {
        MsgKind.BVAL,
        MsgKind.AUX,
        MsgKind.COORD,
        MsgKind.RBC_ECHO,
        MsgKind.RBC_READY,
    }
)


def _build_metrics(reg: telemetry.MetricsRegistry) -> SimpleNamespace:
    return SimpleNamespace(
        batches=reg.counter(
            "srbb_consensus_batches_total", "vote batches flushed to the wire"
        ),
        votes=reg.histogram(
            "srbb_consensus_batch_votes",
            "constituent votes per flushed batch",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        ),
        bytes_saved=reg.counter(
            "srbb_consensus_batch_bytes_saved_total",
            "wire bytes avoided by sharing one envelope per batch",
        ),
    )


_metrics = telemetry.bind(_build_metrics)


class VoteBatcher:
    """Per-node coalescing sink between consensus instances and the wire.

    Parameters
    ----------
    node_id:
        The owning node (stamped as the batch sender).
    sink:
        The wire-level broadcast, ``sink(msg: ConsensusMessage)`` — what
        the consensus instances used to call directly.
    sim:
        The simulation engine driving ``flush()`` at tick boundaries;
        anything with ``.now`` and ``.schedule(delay, fn)`` (duck-typed so
        unit tests can drive flushes by hand with ``sim=None``).
    tick:
        Flush quantum in simulated seconds.  ``0`` still batches — the
        flush runs at the *current* instant, after the triggering cascade
        finishes — but coalesces only messages emitted within one event.
    enabled:
        ``False`` bypasses buffering entirely (the ablation path).
    adaptive:
        When True the *effective* flush tick shrinks under light load:
        waiting the full tick when only a vote or two coalesces per flush
        buys no wire reduction and costs pure latency, so the tick scales
        with an EWMA of observed votes-per-flush, floored at
        ``tick / MIN_TICK_DIVISOR``.  Off by default — the adapted tick
        changes flush timing, so enabling it perturbs seeded runs.
    """

    #: votes-per-flush at (or above) which the full tick is warranted
    LIGHT_LOAD_VOTES = 16.0
    #: the adaptive tick never shrinks below ``tick / MIN_TICK_DIVISOR``
    MIN_TICK_DIVISOR = 8.0
    #: EWMA smoothing for the votes-per-flush load estimate
    EWMA_ALPHA = 0.25

    def __init__(
        self,
        *,
        node_id: int,
        sink: Callable[[ConsensusMessage], None],
        sim=None,
        tick: float = 0.0,
        enabled: bool = True,
        adaptive: bool = False,
    ):
        if tick < 0:
            raise ValueError(f"negative batch tick {tick}")
        self.node_id = node_id
        self.sink = sink
        self.sim = sim
        self.tick = tick
        self.enabled = enabled
        self.adaptive = adaptive
        self._effective_tick = tick
        self._load_ewma: "float | None" = None
        self._buffer: "list[ConsensusMessage]" = []
        self._flush_scheduled = False
        #: lifetime counters (cheap, always on — the bench comparisons read
        #: them without enabling global telemetry)
        self.batches_sent = 0
        self.votes_batched = 0
        self.bytes_saved = 0

    # -- emit path ---------------------------------------------------------------

    def submit(self, msg: ConsensusMessage) -> None:
        """Consensus-side entry point (the ``broadcast`` the instances see)."""
        if not self.enabled or msg.kind not in BATCHABLE_KINDS:
            self.sink(msg)
            return
        self._buffer.append(msg)
        self._schedule_flush()

    def _schedule_flush(self) -> None:
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        if self.sim is None:
            return  # manual flushing (unit tests)
        tick = self.effective_tick
        # Flushes from every node land on shared instants (tick-grid
        # boundaries, or the current instant), so a bucket-capable engine
        # coalesces the whole committee's flush timers into one heap entry
        # per boundary.  Duck-typed sims (unit tests) fall back to schedule.
        bucketed = getattr(self.sim, "schedule_bucketed", None)
        if tick <= 0.0:
            # End-of-instant flush: runs after the current event cascade.
            if bucketed is not None:
                bucketed(0.0, self.flush, tag="vote-flush")
            else:
                self.sim.schedule(0.0, self.flush)
        else:
            now = self.sim.now
            # Next tick boundary strictly after the enqueue instant (an
            # enqueue landing exactly on a boundary flushes immediately —
            # same instant, after the cascade — via the max(0, ...) clamp).
            # By Sterbenz's lemma ``now + (boundary - now)`` reproduces the
            # boundary bit-for-bit whenever now ∈ [boundary/2, 2·boundary],
            # so different nodes' flush timers really do share a timestamp.
            boundary = (int(now / tick) + 1) * tick
            delay = max(0.0, boundary - now)
            if bucketed is not None:
                bucketed(delay, self.flush, tag="vote-flush")
            else:
                self.sim.schedule(delay, self.flush)

    @property
    def effective_tick(self) -> float:
        """The flush quantum currently in force: ``tick`` when static,
        the load-scaled value when ``adaptive``."""
        return self._effective_tick if self.adaptive else self.tick

    # -- flush path --------------------------------------------------------------

    def flush(self) -> None:
        """Send everything buffered as one ``BATCH`` wire message."""
        self._flush_scheduled = False
        if not self._buffer:
            return
        buffered = tuple(self._buffer)
        self._buffer.clear()
        if self.adaptive and self.tick > 0.0:
            # Light-load adaptation: estimate votes-per-flush, shrink the
            # next flush window proportionally (full tick once the EWMA
            # reaches LIGHT_LOAD_VOTES, never below tick/MIN_TICK_DIVISOR).
            observed = float(len(buffered))
            if self._load_ewma is None:
                self._load_ewma = observed
            else:
                a = self.EWMA_ALPHA
                self._load_ewma = (1.0 - a) * self._load_ewma + a * observed
            target = self.tick * min(1.0, self._load_ewma / self.LIGHT_LOAD_VOTES)
            self._effective_tick = max(self.tick / self.MIN_TICK_DIVISOR, target)
        batch = ConsensusBatch(messages=buffered, sender=self.node_id)
        saved = batch.bytes_saved()
        self.batches_sent += 1
        self.votes_batched += len(buffered)
        self.bytes_saved += saved
        if telemetry.get_registry().enabled:
            m = _metrics()
            m.batches.inc()
            m.votes.observe(len(buffered))
            m.bytes_saved.inc(saved)
        self.sink(
            ConsensusMessage(
                kind=MsgKind.BATCH,
                index=-1,  # spans chain indexes; constituents carry their own
                instance=-1,
                round=0,
                value=batch,
                sender=self.node_id,
            )
        )

    def drop_pending(self) -> int:
        """Discard buffered votes (the owning node crashed); returns the
        number dropped.  An already-scheduled flush then no-ops."""
        dropped = len(self._buffer)
        self._buffer.clear()
        return dropped

    @property
    def pending(self) -> int:
        """Messages buffered but not yet flushed."""
        return len(self._buffer)
