"""Differential suite: fast-path engine vs reference scheduler.

``Simulator(coalesce=False)`` turns every ``schedule_bucketed`` into an
individual ``schedule`` — the reference scheduler the fast path must be
indistinguishable from.  Whole deployments are run twice over identical
workloads (same seeds, same pre-signed transactions, same fault
schedules) and everything observable is compared: block hashes, state
roots, receipts, commit times, the event count, and the network's
headline traffic counters.  Any divergence is a coalescing bug, not
noise — both runs are fully deterministic.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.faults import FaultSchedule
from repro.net.simulator import Simulator
from repro.net.topology import single_region_topology


def _digest(deployment):
    """Everything observable about a finished run, in comparable form."""
    sim = deployment.sim
    stats = deployment.network.stats
    validators = deployment.correct_validators
    return {
        "events": sim.events_processed,
        "now": sim.now,
        "hashes": [tuple(v.blockchain.block_hashes()) for v in validators],
        "heights": [v.blockchain.height for v in validators],
        "roots": [v.blockchain.state.state_root() for v in validators],
        "commit_times": [
            sorted(v.blockchain.commit_times.items()) for v in validators
        ],
        "receipts": [
            sorted(
                (
                    tx_hash,
                    rec.height,
                    rec.position,
                    rec.commit_time,
                    rec.receipt.success,
                    rec.receipt.gas_used,
                    rec.receipt.error,
                )
                for tx_hash, rec in v.receipts._records.items()
            )
            for v in validators
        ],
        "net": (
            stats.messages,
            stats.bytes,
            stats.logical_messages,
            stats.retransmissions,
            stats.duplicates_dropped,
            stats.dropped,
        ),
        "by_kind": sorted(
            (str(kind), tuple(counts)) for kind, counts in stats.by_kind.items()
        ),
    }


def _run_deployment(seed, *, coalesce, reliable, faulty, horizon_s=16.0):
    clients, balances = fund_clients(4, seed=900 + seed % 13)
    fault_schedule = None
    if faulty:
        fault_schedule = (
            FaultSchedule(seed=seed)
            .drop_rate(0.03, until=6.0)
            .crash(3, at=2.0)
            .restart(3, at=7.0)
        )
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, watchdog_stall_rounds=8),
        topology=single_region_topology(4),
        extra_balances=balances,
        net_params=params.NetParams(reliable_delivery=reliable),
        fault_schedule=fault_schedule,
        seed=seed,
        sim=Simulator(coalesce=coalesce),
    )
    deployment.start()
    for nonce in range(3):
        for i, keypair in enumerate(clients):
            k = nonce * len(clients) + i
            tx = make_transfer(
                keypair, clients[(i + 1) % len(clients)].address, 1,
                nonce=nonce, created_at=0.2 * k,
            )
            deployment.submit(tx, validator_id=k % 3, at=0.2 * k)
    deployment.run_until(horizon_s)
    return _digest(deployment)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    reliable=st.booleans(),
    faulty=st.booleans(),
)
def test_fast_path_unobservable(seed, reliable, faulty):
    fast = _run_deployment(seed, coalesce=True, reliable=reliable, faulty=faulty)
    reference = _run_deployment(
        seed, coalesce=False, reliable=reliable, faulty=faulty
    )
    # Compare field by field for a readable failure before the full check.
    for key in fast:
        assert fast[key] == reference[key], (key, seed, reliable, faulty)
    assert fast == reference


def test_fast_path_unobservable_multi_region_slow_node():
    # The weak_validator flavor: 10-region topology, one +400 ms node,
    # NASDAQ-derived workload — the exact shape the bench scenarios gate.
    from repro.diablo.benchmark import DiabloBenchmark
    from repro.diablo.client import LoadSchedule, RoundRobinSubmitter
    from repro.net.faults import slow_nodes
    from repro.net.topology import global_topology
    from repro.workloads import nasdaq_request_factory, nasdaq_trace
    from repro.workloads.synthetic import factory_balances

    digests = []
    for coalesce in (True, False):
        trace = nasdaq_trace().scaled(0.002, name="nasdaq")
        factory = nasdaq_request_factory(clients=8, seed=321)
        factory._materialized = True  # force per-run signing: no cache
        deployment = Deployment(
            protocol=params.ProtocolParams(n=8, tvpr=True),
            topology=global_topology(8, degree=4, seed=7),
            extra_balances=factory_balances(factory),
            seed=7,
            sim=Simulator(coalesce=coalesce),
        )
        deployment.network.adversarial_delay = slow_nodes([7], 0.4)
        schedule = LoadSchedule.from_trace(trace, factory)
        bench = DiabloBenchmark(deployment, submitter=RoundRobinSubmitter())
        result = bench.run(schedule, horizon_s=60.0)
        digest = _digest(deployment)
        digest["committed"] = result.committed
        digest["latencies"] = result.latencies_s.tobytes()
        digests.append(digest)
    fast, reference = digests
    for key in fast:
        assert fast[key] == reference[key], key
    assert fast == reference
