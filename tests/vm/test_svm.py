"""SVM interpreter: arithmetic, control flow, storage, faults, gas."""

import pytest

from repro.errors import (
    ArithmeticOverflow,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    StackUnderflow,
    VMRevert,
)
from repro.vm.opcodes import Op, WORD_MOD, assemble, disassemble
from repro.vm.state import WorldState
from repro.vm.svm import SVM, CallContext


def run(program, *, gas=100_000, calldata=(), value=0, state=None, address="c" * 40):
    state = state or WorldState()
    state.create_account(address, 0, code=b"")
    svm = SVM(state)
    ctx = CallContext(address=address, caller="a" * 40, value=value, calldata=calldata)
    return svm.execute(assemble(program), ctx, gas), state


class TestArithmetic:
    def test_add(self):
        result, _ = run([(Op.PUSH, 2), (Op.PUSH, 3), Op.ADD, Op.RETURN])
        assert result.return_value == 5

    def test_sub(self):
        result, _ = run([(Op.PUSH, 10), (Op.PUSH, 3), Op.SUB, Op.RETURN])
        assert result.return_value == 7

    def test_mul_div_mod(self):
        result, _ = run([(Op.PUSH, 7), (Op.PUSH, 6), Op.MUL, Op.RETURN])
        assert result.return_value == 42
        result, _ = run([(Op.PUSH, 42), (Op.PUSH, 5), Op.DIV, Op.RETURN])
        assert result.return_value == 8
        result, _ = run([(Op.PUSH, 42), (Op.PUSH, 5), Op.MOD, Op.RETURN])
        assert result.return_value == 2

    def test_div_by_zero_is_zero(self):
        result, _ = run([(Op.PUSH, 42), (Op.PUSH, 0), Op.DIV, Op.RETURN])
        assert result.return_value == 0

    def test_sub_underflow_raises(self):
        with pytest.raises(ArithmeticOverflow):
            run([(Op.PUSH, 3), (Op.PUSH, 10), Op.SUB, Op.RETURN])

    def test_exp_wraps_modulo(self):
        result, _ = run([(Op.PUSH, 2), (Op.PUSH, 256), Op.EXP, Op.RETURN])
        assert result.return_value == pow(2, 256, WORD_MOD)

    def test_comparisons(self):
        result, _ = run([(Op.PUSH, 1), (Op.PUSH, 2), Op.LT, Op.RETURN])
        assert result.return_value == 1
        result, _ = run([(Op.PUSH, 2), (Op.PUSH, 2), Op.EQ, Op.RETURN])
        assert result.return_value == 1
        result, _ = run([(Op.PUSH, 0), Op.ISZERO, Op.RETURN])
        assert result.return_value == 1

    def test_bitwise(self):
        result, _ = run([(Op.PUSH, 0b1100), (Op.PUSH, 0b1010), Op.AND, Op.RETURN])
        assert result.return_value == 0b1000
        result, _ = run([(Op.PUSH, 0b1100), (Op.PUSH, 0b1010), Op.XOR, Op.RETURN])
        assert result.return_value == 0b0110


class TestControlFlow:
    def test_jump_skips_code(self):
        # PUSH dest; JUMP; (dead: PUSH 99; RETURN); JUMPDEST; PUSH 1; RETURN
        program = [
            (Op.PUSH, 0),  # dest patched below
            Op.JUMP,
            (Op.PUSH, 99),
            Op.RETURN,
            Op.JUMPDEST,
            (Op.PUSH, 1),
            Op.RETURN,
        ]
        instructions = disassemble(assemble(program))
        dest = [i.offset for i in instructions if i.op == Op.JUMPDEST][0]
        program[0] = (Op.PUSH, dest)
        result, _ = run(program)
        assert result.return_value == 1

    def test_jumpi_taken_and_not_taken(self):
        program = [
            (Op.PUSH, 21),  # dest
            (Op.PUSH, 1),  # cond true
            Op.JUMPI,
            (Op.PUSH, 99),
            Op.RETURN,
            Op.JUMPDEST,  # offset 21 = 9+9+1+1+... let's compute via disassemble
            (Op.PUSH, 7),
            Op.RETURN,
        ]
        # fix the dest operand using actual offsets
        code = assemble(program)
        instructions = disassemble(code)
        dest = [i.offset for i in instructions if i.op == Op.JUMPDEST][0]
        program[0] = (Op.PUSH, dest)
        result, _ = run(program)
        assert result.return_value == 7

    def test_invalid_jump_raises(self):
        with pytest.raises(InvalidJump):
            run([(Op.PUSH, 3), Op.JUMP, Op.STOP])

    def test_stop_halts(self):
        result, _ = run([(Op.PUSH, 5), Op.STOP, (Op.PUSH, 9)])
        assert result.return_value is None

    def test_falling_off_end_halts(self):
        result, _ = run([(Op.PUSH, 5)])
        assert result.halted

    def test_loop_with_counter(self):
        """Sum 1..5 with a JUMPI loop exercises the full loop machinery."""
        program = [
            (Op.PUSH, 0),  # acc
            (Op.PUSH, 5),  # i
            Op.JUMPDEST,  # loop:  [acc, i]
            (Op.DUP, 1),  # [acc, i, i]
            Op.ISZERO,
            (Op.PUSH, 0),  # placeholder exit dest
            Op.SWAP,  # [.. dest cond] -> fix below
        ]
        # Simpler: compute 2+3 via straight code; full loop covered in
        # contracts tests. Keep this as a DUP/SWAP smoke test.
        result, _ = run(
            [(Op.PUSH, 2), (Op.PUSH, 3), (Op.DUP, 2), Op.ADD, Op.ADD, Op.RETURN]
        )
        assert result.return_value == 7


class TestFaults:
    def test_stack_underflow(self):
        with pytest.raises(StackUnderflow):
            run([Op.ADD])

    def test_invalid_opcode(self):
        state = WorldState()
        state.create_account("c" * 40, 0, code=b"")
        svm = SVM(state)
        ctx = CallContext(address="c" * 40, caller="a" * 40)
        with pytest.raises(InvalidOpcode):
            svm.execute(b"\xef", ctx, 1000)

    def test_out_of_gas(self):
        with pytest.raises(OutOfGas):
            run([(Op.PUSH, 1), (Op.PUSH, 2), Op.ADD], gas=3)

    def test_revert(self):
        with pytest.raises(VMRevert):
            run([(Op.PUSH, 1), Op.REVERT])

    def test_overflow_on_add(self):
        with pytest.raises(ArithmeticOverflow):
            run([(Op.PUSH, WORD_MOD - 1), (Op.PUSH, WORD_MOD - 1), Op.ADD])

    def test_push_operand_range(self):
        # PUSH carries an 8-byte immediate; large values round-trip
        result, _ = run([(Op.PUSH, 2**63), Op.RETURN])
        assert result.return_value == 2**63


class TestEnvironmentAndStorage:
    def test_callvalue_and_calldata(self):
        result, _ = run(
            [(Op.PUSH, 0), Op.CALLDATALOAD, Op.CALLVALUE, Op.ADD, Op.RETURN],
            calldata=(10,),
            value=32,
        )
        assert result.return_value == 42

    def test_calldatasize(self):
        result, _ = run([Op.CALLDATASIZE, Op.RETURN], calldata=(1, 2, 3))
        assert result.return_value == 3

    def test_out_of_range_calldata_is_zero(self):
        result, _ = run([(Op.PUSH, 9), Op.CALLDATALOAD, Op.RETURN], calldata=(1,))
        assert result.return_value == 0

    def test_sstore_sload(self):
        program = [
            (Op.PUSH, 1),  # key
            (Op.PUSH, 42),  # value
            Op.SSTORE,
            (Op.PUSH, 1),
            Op.SLOAD,
            Op.RETURN,
        ]
        result, state = run(program)
        assert result.return_value == 42
        assert state.storage_get("c" * 40, "1") == 42

    def test_memory(self):
        program = [
            (Op.PUSH, 0),
            (Op.PUSH, 7),
            Op.MSTORE,
            (Op.PUSH, 0),
            Op.MLOAD,
            Op.RETURN,
        ]
        result, _ = run(program)
        assert result.return_value == 7

    def test_logs(self):
        result, _ = run([(Op.PUSH, 123), Op.LOG, Op.STOP])
        assert result.logs == [123]

    def test_gas_introspection(self):
        result, _ = run([Op.GAS, Op.RETURN], gas=1000)
        assert 0 < result.return_value < 1000

    def test_transfer_moves_balance(self):
        state = WorldState()
        contract = "c" * 40
        state.create_account(contract, 500, code=b"")
        dest_word = int("ab" * 20, 16)
        program = [(Op.PUSH, dest_word), (Op.PUSH, 200), Op.TRANSFER, Op.STOP]
        svm = SVM(state)
        ctx = CallContext(address=contract, caller="a" * 40)
        svm.execute(assemble(program), ctx, 100_000)
        assert state.balance_of(contract) == 300
        assert state.balance_of("ab" * 20) == 200

    def test_transfer_insufficient_reverts(self):
        with pytest.raises(VMRevert):
            run([(Op.PUSH, 1), (Op.PUSH, 999), Op.TRANSFER])


class TestGasAccounting:
    def test_gas_used_is_sum_of_costs(self):
        from repro.vm.gas import GAS_TABLE

        result, _ = run([(Op.PUSH, 1), (Op.PUSH, 2), Op.ADD, Op.STOP])
        expected = 2 * GAS_TABLE[Op.PUSH] + GAS_TABLE[Op.ADD] + GAS_TABLE[Op.STOP]
        assert result.gas_used == expected

    def test_sstore_dominates(self):
        from repro.vm.gas import GAS_TABLE

        assert GAS_TABLE[Op.SSTORE] > GAS_TABLE[Op.SLOAD] > GAS_TABLE[Op.ADD]


class TestAssembler:
    def test_roundtrip(self):
        code = assemble([(Op.PUSH, 300), Op.ADD, (Op.DUP, 2)])
        ops = [(i.op, i.operand) for i in disassemble(code)]
        assert ops == [(Op.PUSH, 300), (Op.ADD, 0), (Op.DUP, 2)]

    def test_operand_required(self):
        with pytest.raises(ValueError):
            assemble([Op.PUSH])

    def test_no_operand_allowed(self):
        with pytest.raises(ValueError):
            assemble([(Op.ADD, 1)])
