"""Long-run soak: sparse traffic over hundreds of consensus rounds.

Regression for the grace-round deadlock: with mostly-empty rounds, one
minority binary-consensus input (a proposal arriving at one node just
before its round starts) could strand two replicas mid-round once the
early deciders committed and stopped answering that index's traffic.
Hundreds of rounds of sparse, bursty submissions maximize the chance of
hitting that interleaving; every transaction must still commit and the
round cadence must never stall.
"""

import numpy as np
import pytest

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


# vote batching trades per-round latency (up to one vote_batch_tick per
# message hop) for wire-message count, so the batched arm sustains a
# slower — but still steady — round cadence; a real stall strands the
# indexes far below either floor.
@pytest.mark.parametrize(
    "vote_batching,min_rounds", [(False, 300), (True, 200)]
)
def test_sparse_traffic_soak(vote_batching, min_rounds):
    clients, balances = fund_clients(6)
    deployment = Deployment(
        protocol=params.ProtocolParams(
            n=4, rpm=False, vote_batching=vote_batching
        ),
        topology=single_region_topology(4),
        extra_balances=balances,
        seed=11,
    )
    deployment.start()
    rng = np.random.default_rng(5)
    txs = []
    nonces = [0] * 6
    # ~120 txs spread thinly over 90 simulated seconds (~300 rounds),
    # arrival times deliberately unaligned with round boundaries
    t = 0.0
    while t < 90.0 and len(txs) < 120:
        t += float(rng.exponential(0.7))
        c = int(rng.integers(6))
        tx = make_transfer(
            clients[c], clients[(c + 1) % 6].address, 1,
            nonce=nonces[c], created_at=t,
        )
        nonces[c] += 1
        deployment.submit(tx, validator_id=int(rng.integers(4)), at=t)
        txs.append(tx)
    deployment.run_until(130.0)

    # no stall: every validator advanced far beyond the submission window
    indexes = [v._next_commit_index for v in deployment.validators]
    assert min(indexes) > min_rounds, indexes
    # total liveness
    for tx in txs:
        assert deployment.committed_everywhere(tx), tx
    assert deployment.safety_holds()
    assert deployment.states_agree()
    # and the validators stayed within one committed index of each other
    assert max(indexes) - min(indexes) <= 2
