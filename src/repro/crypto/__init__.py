"""Deterministic cryptography substrate.

The paper's implementation uses secp256k1/ECDSA via Geth.  Cryptographic
hardness is irrelevant to the protocol logic being reproduced — only the
*interface* matters: sign, verify, derive an address from a public key, and
a non-trivial CPU cost for verification (which the congestion model charges
separately).  We therefore implement keyed-hash (HMAC-SHA256) signatures:
deterministic, collision-resistant in practice for tests, and fast.
"""

from repro.crypto.hashing import sha256, sha256_hex, hash_items
from repro.crypto.keys import (
    KeyPair,
    PrivateKey,
    PublicKey,
    Signature,
    derive_address,
    generate_keypair,
    recover_check,
    sign,
    verify,
)
from repro.crypto.merkle import MerkleTree, merkle_root

__all__ = [
    "KeyPair",
    "MerkleTree",
    "PrivateKey",
    "PublicKey",
    "Signature",
    "derive_address",
    "generate_keypair",
    "hash_items",
    "merkle_root",
    "recover_check",
    "sha256",
    "sha256_hex",
    "sign",
    "verify",
]
