"""Byzantine validator behaviours used in the evaluation.

* :class:`CampaignValidator` — runtime-toggleable adversary driven by the
  chaos engine's ``byzantine_*`` schedule windows; with every flag off it
  behaves as a correct validator.
* :class:`FloodingValidator` — §V-B's attacker: skips eager validation and
  stuffs its block proposals with invalid transactions (senders with zero
  balance), consuming peers' CPU and bandwidth for no throughput.
* :class:`CensoringValidator` — §VI's drawback case: silently drops client
  transactions instead of including them in blocks.
* :class:`CrashValidator` — stops participating at a configured time.
* :class:`EquivocatingProposer` — sends different proposals to different
  peers (reliable broadcast must neutralize it).
"""

from repro.adversary.byzantine import (
    CAMPAIGN_BEHAVIOURS,
    CampaignValidator,
    CensoringValidator,
    CrashValidator,
    EquivocatingProposer,
    FloodingValidator,
    make_invalid_transactions,
)

__all__ = [
    "CAMPAIGN_BEHAVIOURS",
    "CampaignValidator",
    "CensoringValidator",
    "CrashValidator",
    "EquivocatingProposer",
    "FloodingValidator",
    "make_invalid_transactions",
]
