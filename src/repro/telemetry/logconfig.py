"""Stdlib logging wiring for the ``repro.*`` logger namespace.

Every module that logs uses ``logging.getLogger("repro.<module>")``; this
helper attaches one stream handler to the ``repro`` parent logger so a
single ``-v``/``-vv`` flag controls the whole pipeline without touching
the process root logger (library etiquette).
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure_logging", "verbosity_to_level"]

_HANDLER_FLAG = "_repro_cli_handler"

_FORMAT = "%(levelname)-7s %(name)s: %(message)s"


def verbosity_to_level(verbosity: int) -> int:
    """0 → WARNING, 1 → INFO, ≥2 → DEBUG."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree for CLI use; idempotent."""
    logger = logging.getLogger("repro")
    logger.setLevel(verbosity_to_level(verbosity))
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_FLAG, False):
            if stream is not None:
                handler.setStream(stream)
            break
    else:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_FLAG, True)
        logger.addHandler(handler)
    # The CLI handler is the sink of record; don't double-log through root.
    logger.propagate = False
    return logger
