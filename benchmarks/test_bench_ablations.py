"""Design-choice ablations called out in DESIGN.md.

* ABL-SUPERBLOCK — superblock (n proposers/round) vs single-leader rounds.
* ABL-POOL — partitioned (TVPR) vs replicated mempools under bursts.
* ABL-CENSOR — §VI: load-balancer resend loop vs censoring validators.
"""

import numpy as np

from repro import params
from repro.adversary import CensoringValidator
from repro.core.deployment import Deployment, fund_clients
from repro.core.loadbalancer import RandomLoadBalancer, censorship_probability
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology
from repro.sim.chains import SRBB
from repro.sim.engine import simulate_chain
from repro.workloads import constant_trace, nasdaq_trace


def test_superblock_vs_single_leader(benchmark, run_once):
    """The RBBC superblock multiplies per-round capacity by the committee
    size; a single-leader variant with the same per-proposer block size
    saturates n× earlier."""

    def sweep():
        trace = constant_trace(1500, 120)
        superblock = simulate_chain(SRBB, trace)
        single = simulate_chain(
            SRBB.with_(name="srbb-single-leader", proposers_per_round=1,
                       block_txs=SRBB.block_txs),
            trace,
        )
        return superblock, single

    superblock, single = run_once(benchmark, sweep)
    print()
    print(
        f"superblock   : {superblock.throughput_tps:8.1f} TPS, "
        f"commit {superblock.commit_rate:.0%}\n"
        f"single-leader: {single.throughput_tps:8.1f} TPS, "
        f"commit {single.commit_rate:.0%}"
    )
    assert superblock.throughput_tps > 10 * single.throughput_tps
    assert superblock.commit_rate > single.commit_rate


def test_pool_partitioning_ablation(benchmark, run_once):
    """TVPR's second effect: with one pool per transaction the network
    buffers n× more distinct transactions, absorbing the NASDAQ burst."""

    def sweep():
        trace = nasdaq_trace()
        partitioned = simulate_chain(SRBB, trace)
        replicated = simulate_chain(
            SRBB.with_(name="srbb-replicated-pool", pool_partitioned=False),
            trace,
        )
        return partitioned, replicated

    partitioned, replicated = run_once(benchmark, sweep)
    print()
    print(
        f"partitioned pools: commit {partitioned.commit_rate:.1%}, "
        f"dropped {partitioned.dropped_pool + partitioned.dropped_validation}\n"
        f"replicated pools : commit {replicated.commit_rate:.1%}, "
        f"dropped {replicated.dropped_pool + replicated.dropped_validation}"
    )
    assert partitioned.commit_rate == 1.0
    assert replicated.commit_rate < 1.0


def test_censorship_mitigation(benchmark, run_once):
    """ABL-CENSOR: with a random-forwarding load balancer and automated
    resends, every transaction commits despite a censoring validator, and
    the measured retry counts match the geometric model."""

    def run():
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            byzantine={2: CensoringValidator},
            extra_balances=balances,
        )
        lb = RandomLoadBalancer(deployment, receipt_timeout_s=1.5, seed=11)
        deployment.start()
        txs = [
            make_transfer(clients[0], clients[1].address, 1, nonce=i)
            for i in range(20)
        ]
        for i, tx in enumerate(txs):
            lb.submit(tx, at=0.05 + 0.02 * i)
        deployment.run_until(90.0)
        committed = sum(deployment.committed_everywhere(tx) for tx in txs)
        attempts = np.array(list(lb.stats.attempts.values()))
        return committed, len(txs), attempts, lb.stats

    committed, total, attempts, stats = run_once(benchmark, run)
    print()
    print(
        f"committed {committed}/{total}, resends={stats.resends}, "
        f"mean attempts={attempts.mean():.2f} "
        f"(analytic retry prob/round: {censorship_probability(4, 1, 1):.2f})"
    )
    assert committed == total
    # mean attempts ≈ 1/(1−c/n) = 1.33 for c=1, n=4 (small-sample slack)
    assert attempts.mean() < 2.5
