"""Reliable delivery: ack/retransmit, dedup, retry cap, crash interplay."""

from repro import params
from repro.net.simulator import Simulator
from repro.net.topology import single_region_topology
from repro.net.transport import ACK_KIND, Message, Network, _SeqTracker


class Sink:
    """Endpoint that records every delivered message."""

    def __init__(self):
        self.received = []

    def on_message(self, msg):
        self.received.append(msg)


class StaticFaults:
    """LinkFaultModel with fixed per-direction drop/duplicate probabilities."""

    def __init__(self, drop=None, duplicate=None, delay=0.0):
        self.drop = drop or {}
        self.duplicate = duplicate or {}
        self.delay = delay

    def drop_probability(self, src, dst, now):
        return self.drop.get((src, dst), 0.0)

    def duplicate_probability(self, src, dst, now):
        return self.duplicate.get((src, dst), 0.0)

    def extra_delay_s(self, src, dst, now):
        return self.delay


def make_network(n=2, *, faults=None, seed=11, **net_kwargs):
    sim = Simulator()
    network = Network(
        sim,
        single_region_topology(n),
        seed=seed,
        net=params.NetParams(reliable_delivery=True, **net_kwargs),
        faults=faults,
    )
    sinks = [Sink() for _ in range(n)]
    for i, sink in enumerate(sinks):
        network.register(i, sink)
    return sim, network, sinks


def payloads(sink):
    return [m.payload for m in sink.received if m.kind != ACK_KIND]


class TestSeqTracker:
    def test_compacts_contiguous_prefix(self):
        t = _SeqTracker()
        assert t.mark(0) and t.mark(1) and t.mark(2)
        assert t.cum == 2 and not t.sparse

    def test_reorder_gap_then_fill(self):
        t = _SeqTracker()
        assert t.mark(0)
        assert t.mark(2)  # gap: held sparse
        assert t.sparse == {2}
        assert t.mark(1)  # fill: prefix compacts through 2
        assert t.cum == 2 and not t.sparse

    def test_duplicates_rejected_in_both_regimes(self):
        t = _SeqTracker()
        t.mark(0)
        t.mark(5)
        assert not t.mark(0)  # below high-water mark
        assert not t.mark(5)  # in the sparse set


class TestReliableDelivery:
    def test_clean_link_delivers_exactly_once(self):
        sim, network, sinks = make_network()
        for i in range(5):
            network.send(0, 1, Message(kind="tx", payload=i, sender=0))
        sim.run_until(10.0)
        # Jitter may reorder (partial synchrony allows it) but every
        # message arrives exactly once.
        assert sorted(payloads(sinks[1])) == [0, 1, 2, 3, 4]
        assert network.stats.retransmissions == 0
        assert not network._pending  # every send acked

    def test_lossy_link_still_delivers_exactly_once(self):
        faults = StaticFaults(drop={(0, 1): 0.5})
        # cap=12 makes per-message abandonment odds ~0.01% at p=0.5
        sim, network, sinks = make_network(faults=faults, retransmit_cap=12)
        for i in range(20):
            network.send(0, 1, Message(kind="tx", payload=i, sender=0))
        sim.run_until(120.0)
        # Retransmission recovers every loss; dedup suppresses any extras.
        assert sorted(payloads(sinks[1])) == list(range(20))
        assert network.stats.retransmissions > 0
        assert network.stats.dropped > 0
        assert not network._pending

    def test_duplicated_link_is_suppressed(self):
        faults = StaticFaults(duplicate={(0, 1): 1.0})
        sim, network, sinks = make_network(faults=faults)
        for i in range(5):
            network.send(0, 1, Message(kind="tx", payload=i, sender=0))
        sim.run_until(10.0)
        assert sorted(payloads(sinks[1])) == [0, 1, 2, 3, 4]
        assert network.stats.duplicates_dropped >= 5

    def test_lost_acks_cause_retransmits_not_redelivery(self):
        # Forward link is clean; the reverse (ack) direction loses
        # everything for a while, so the sender keeps retransmitting and
        # the receiver must re-ack each copy while delivering only one.
        faults = StaticFaults(drop={(1, 0): 1.0})
        sim, network, sinks = make_network(faults=faults)
        network.send(0, 1, Message(kind="tx", payload="x", sender=0))
        sim.run_until(2.0)
        faults.drop.clear()  # acks start getting through
        sim.run_until(60.0)
        assert payloads(sinks[1]) == ["x"]
        assert network.stats.retransmissions >= 1
        assert network.stats.duplicates_dropped >= 1
        assert not network._pending

    def test_severed_link_gives_up_after_retry_cap(self):
        faults = StaticFaults(drop={(0, 1): 1.0})
        sim, network, sinks = make_network(faults=faults, retransmit_cap=3)
        network.send(0, 1, Message(kind="tx", payload="x", sender=0))
        sim.run_until(600.0)
        assert payloads(sinks[1]) == []
        assert network.stats.retransmissions == 3  # capped, not forever
        assert not network._pending  # the abandoned send left no timer

    def test_retransmissions_count_wire_but_not_logical_traffic(self):
        faults = StaticFaults(drop={(0, 1): 1.0})
        sim, network, _ = make_network(faults=faults, retransmit_cap=2)
        network.send(0, 1, Message(kind="tx", payload="x", sender=0, count=4))
        before_logical = network.stats.logical_messages
        sim.run_until(60.0)
        wire = network.stats.by_kind["tx"][0]
        assert wire == 3  # original + 2 retransmits
        assert network.stats.logical_messages == before_logical  # no growth

    def test_loopback_skips_the_reliable_machinery(self):
        sim, network, sinks = make_network()
        network.send(0, 0, Message(kind="tx", payload="self", sender=0))
        sim.run_until(1.0)
        assert payloads(sinks[0]) == ["self"]
        assert not network._pending


class TestCrashInterplay:
    def test_traffic_to_down_node_is_lost(self):
        sim, network, sinks = make_network()
        network.set_down(1, True)
        network.send(0, 1, Message(kind="tx", payload="x", sender=0))
        sim.run_until(60.0)
        assert payloads(sinks[1]) == []
        assert network.stats.dropped > 0

    def test_set_down_cancels_senders_pending_timers(self):
        # A dead process stops retrying: crashing the *sender* mid-flight
        # must cancel its retransmission timers.
        faults = StaticFaults(drop={(0, 1): 1.0})
        sim, network, _ = make_network(faults=faults)
        network.send(0, 1, Message(kind="tx", payload="x", sender=0))
        assert network._pending
        network.set_down(0, True)
        assert not network._pending
        retrans_before = network.stats.retransmissions
        sim.run_until(60.0)
        assert network.stats.retransmissions == retrans_before

    def test_receiver_restart_forgets_dedup_state(self):
        sim, network, _ = make_network()
        network.send(0, 1, Message(kind="tx", payload="x", sender=0))
        sim.run_until(5.0)
        assert (0, 1) in network._rx_seen
        network.set_down(1, True)
        assert (0, 1) not in network._rx_seen  # volatile RAM gone
        # ...but the sender's monotonic counter survives, so post-restart
        # sequence numbers cannot collide with pre-crash ones.
        assert network._next_seq[(0, 1)] == 1
        network.set_down(1, False)
        network.send(0, 1, Message(kind="tx", payload="y", sender=0))
        sim.run_until(10.0)
        assert network._next_seq[(0, 1)] == 2


class TestDefaultPathUnchanged:
    def test_reliable_delivery_off_sends_no_acks(self):
        sim = Simulator()
        network = Network(sim, single_region_topology(2), seed=11)
        sinks = [Sink(), Sink()]
        for i, sink in enumerate(sinks):
            network.register(i, sink)
        network.send(0, 1, Message(kind="tx", payload="x", sender=0))
        sim.run_until(5.0)
        assert payloads(sinks[1]) == ["x"]
        assert ACK_KIND not in network.stats.by_kind
        assert not network._pending and not network._rx_seen
