"""Gossip flood properties on random connected overlays."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.net.gossip import GossipLayer
from repro.net.simulator import Simulator
from repro.net.topology import Topology, global_topology
from repro.net.transport import Network


def build_mesh(graph: nx.Graph):
    regions = ("sydney",)
    topology = Topology(
        regions=regions,
        node_regions=tuple("sydney" for _ in graph.nodes),
        graph=graph,
    )
    sim = Simulator()
    network = Network(sim, topology)
    delivered = {i: [] for i in graph.nodes}
    layers = {}

    class Node:
        def __init__(self, i):
            self.i = i

        def on_message(self, msg):
            layers[self.i].handle(msg)

    for i in graph.nodes:
        layers[i] = GossipLayer(
            i, network, lambda payload, sender, i=i: delivered[i].append(payload)
        )
        network.register(i, Node(i))
    return sim, network, layers, delivered


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    degree=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    origin_pick=st.integers(min_value=0, max_value=10_000),
)
def test_flood_reaches_every_node_exactly_once(n, degree, seed, origin_pick):
    """On any connected overlay, one publish delivers the payload to every
    other node exactly once (dedup suppresses the extras)."""
    graph = global_topology(n, degree=min(degree, n - 1), seed=seed).graph
    assert nx.is_connected(graph)
    sim, network, layers, delivered = build_mesh(graph)
    origin = sorted(graph.nodes)[origin_pick % n]
    layers[origin].publish("item", {"payload": 1}, 200)
    sim.run()
    for node in graph.nodes:
        if node == origin:
            assert delivered[node] == []
        else:
            assert delivered[node] == [{"payload": 1}], node


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=15),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_flood_cost_at_least_edges(n, seed):
    """§III-A's cost claim: one publish costs at least one message per
    overlay edge (most edges carry the item in both directions)."""
    graph = global_topology(n, degree=4, seed=seed).graph
    sim, network, layers, delivered = build_mesh(graph)
    layers[0].publish("item", "x", 100)
    sim.run()
    assert network.stats.messages >= graph.number_of_edges()


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=3, max_value=12), seed=st.integers(min_value=0, max_value=999))
def test_hop_limit_bounds_spread(n, seed):
    """A TTL of 1 hop confines the item to the origin's neighbourhood."""
    graph = global_topology(n, degree=2, seed=seed).graph
    sim, network, layers, delivered = build_mesh(graph)
    for layer in layers.values():
        layer.max_hops = 1
    layers[0].publish("item", "x", 100)
    sim.run()
    neighbours = set(graph.neighbors(0))
    for node in graph.nodes:
        if node in neighbours:
            assert delivered[node] == ["x"]
        elif node != 0:
            assert delivered[node] == []