"""CLI --metrics-out / --trace-out / -v plumbing."""

import json

from repro import telemetry
from repro.cli import main


class TestMetricsOut:
    def test_simulate_writes_parseable_prometheus(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        rc = main(
            ["simulate", "srbb", "uber", "--scale", "0.2",
             "--metrics-out", str(path)]
        )
        assert rc == 0
        samples = telemetry.parse_prometheus(path.read_text())
        committed = int(samples[("srbb_sim_txs_committed_total", ())])
        # exported counter reconciles with the committed count the CLI printed
        assert str(committed) in capsys.readouterr().out

    def test_json_suffix_switches_format(self, tmp_path):
        path = tmp_path / "metrics.json"
        rc = main(
            ["simulate", "srbb", "uber", "--scale", "0.2",
             "--metrics-out", str(path)]
        )
        assert rc == 0
        snap = json.loads(path.read_text())
        assert snap["srbb_sim_txs_sent_total"]["type"] == "counter"

    def test_trace_out_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rc = main(
            ["simulate", "srbb", "uber", "--scale", "0.2",
             "--trace-out", str(path)]
        )
        assert rc == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(r["name"] == "sim.run" for r in records)

    def test_telemetry_disabled_again_after_run(self, tmp_path):
        main(["simulate", "srbb", "uber", "--scale", "0.2",
              "--metrics-out", str(tmp_path / "m.prom")])
        assert not telemetry.get_registry().enabled
        assert not telemetry.get_tracer().enabled

    def test_plain_run_never_enables_telemetry(self):
        assert main(["traces"]) == 0
        assert not telemetry.get_registry().enabled

    def test_verbose_flag_accepted(self):
        assert main(["traces", "-v"]) == 0
        assert main(["traces", "-vv"]) == 0
