"""End-to-end SRBB deployments: Theorem 2 (liveness, safety, validity).

These tests run the full message-level engine — clients, pools, TVPR,
reliable broadcast, DBFT superblock consensus, execution, RPM — on the
discrete-event network.
"""

import pytest

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_invoke, make_transfer
from repro.crypto.keys import generate_keypair
from repro.net.topology import global_topology, single_region_topology
from repro.vm.executor import native_address_for


def make_deployment(n=4, *, tvpr=True, rpm=True, clients=4, topology=None, **kw):
    client_keys, balances = fund_clients(clients)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=n, tvpr=tvpr, rpm=rpm),
        topology=topology or single_region_topology(n),
        extra_balances=balances,
        **kw,
    )
    return deployment, client_keys


class TestLiveness:
    def test_transfer_committed_on_all_validators(self):
        deployment, clients = make_deployment()
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 42, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.05)
        deployment.run_until(5.0)
        assert deployment.committed_everywhere(tx)

    def test_transaction_to_any_validator_commits(self):
        """TVPR liveness: a tx sent to exactly ONE validator still reaches
        every chain, through that validator's block."""
        deployment, clients = make_deployment()
        deployment.start()
        txs = []
        for v in range(4):
            tx = make_transfer(clients[v], clients[(v + 1) % 4].address, 1, nonce=0)
            deployment.submit(tx, validator_id=v, at=0.05)
            txs.append(tx)
        deployment.run_until(5.0)
        for tx in txs:
            assert deployment.committed_everywhere(tx)

    def test_nonce_sequence_commits_in_order(self):
        deployment, clients = make_deployment()
        deployment.start()
        txs = [
            make_transfer(clients[0], clients[1].address, 1, nonce=i)
            for i in range(10)
        ]
        for i, tx in enumerate(txs):
            deployment.submit(tx, validator_id=0, at=0.02 * (i + 1))
        deployment.run_until(8.0)
        chain = deployment.validators[1].blockchain
        assert all(chain.contains_tx(tx) for tx in txs)
        times = [chain.commit_times[tx.tx_hash] for tx in txs]
        assert times == sorted(times)

    def test_contract_invocation_end_to_end(self):
        deployment, clients = make_deployment()
        deployment.start()
        exchange = native_address_for("exchange")
        tx = make_invoke(clients[0], exchange, "trade", ("AAPL", 150_00, 10, "buy"), nonce=0)
        deployment.submit(tx, validator_id=2, at=0.05)
        deployment.run_until(5.0)
        for validator in deployment.validators:
            price = validator.blockchain.state.storage_get(exchange, "last_price:AAPL")
            assert price == 150_00

    def test_invalid_transaction_never_commits(self):
        deployment, clients = make_deployment()
        deployment.start()
        broke = generate_keypair(12345)
        bad = make_transfer(broke, clients[0].address, 5, nonce=0)
        deployment.submit(bad, validator_id=0, at=0.05)
        deployment.run_until(3.0)
        assert not any(
            v.blockchain.contains_tx(bad) for v in deployment.validators
        )
        # dropped at eager validation, never even pooled
        assert deployment.validators[0].stats.eager_failures == 1


class TestSafety:
    @pytest.mark.parametrize("n", [4, 7])
    def test_chains_prefix_consistent_under_load(self, n):
        deployment, clients = make_deployment(n=n, clients=8)
        deployment.start()
        for i in range(40):
            sender = clients[i % len(clients)]
            tx = make_transfer(
                sender, clients[(i + 1) % len(clients)].address, 1,
                nonce=i // len(clients), created_at=0.01 * i,
            )
            deployment.submit(tx, validator_id=i % n, at=0.01 * i)
        deployment.run_until(10.0)
        assert deployment.safety_holds()
        assert deployment.states_agree()
        assert deployment.total_committed() >= 40

    def test_state_roots_identical_at_same_height(self):
        deployment, clients = make_deployment()
        deployment.start()
        for i in range(10):
            tx = make_transfer(clients[0], clients[1].address, 1, nonce=i)
            deployment.submit(tx, validator_id=i % 4, at=0.05 + 0.01 * i)
        deployment.run_until(6.0)
        heights = {v.blockchain.height for v in deployment.validators}
        if len(heights) == 1:
            roots = {v.blockchain.state.state_root() for v in deployment.validators}
            assert len(roots) == 1


class TestValidity:
    def test_committed_blocks_contain_only_valid_txs(self):
        """Definition 1 validity: walk every committed block and re-verify
        every transaction's signature and the block's certificate."""
        deployment, clients = make_deployment()
        deployment.start()
        for i in range(6):
            tx = make_transfer(clients[i % 4], clients[(i + 1) % 4].address, 2, nonce=i // 4)
            deployment.submit(tx, validator_id=i % 4, at=0.05 + 0.01 * i)
        deployment.run_until(5.0)
        from repro.crypto.keys import recover_check

        for validator in deployment.validators:
            for block in validator.blockchain.chain[1:]:
                for tx in block.transactions:
                    assert recover_check(
                        tx.public_key, tx.signing_payload(), tx.signature, tx.sender
                    )


class TestGlobalDeployment:
    def test_cross_region_consensus(self):
        """10-region deployment still reaches consensus (higher latency)."""
        deployment, clients = make_deployment(
            n=10, topology=global_topology(10), round_interval=0.5,
            proposer_timeout=5.0,
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 3, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.1)
        deployment.run_until(20.0)
        assert deployment.committed_everywhere(tx)
        assert deployment.safety_holds()
