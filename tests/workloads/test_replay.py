"""Trace persistence + statistics."""

import numpy as np
import pytest

from repro.workloads import constant_trace, nasdaq_trace
from repro.workloads.replay import (
    load_trace,
    save_trace,
    trace_from_csv,
    trace_stats,
    trace_to_csv,
)


class TestCsvRoundtrip:
    def test_roundtrip_preserves_counts_and_name(self):
        trace = nasdaq_trace()
        text = trace_to_csv(trace)
        back = trace_from_csv(text)
        assert back.name == trace.name
        assert np.array_equal(back.counts_per_second, trace.counts_per_second)

    def test_file_roundtrip(self, tmp_path):
        trace = constant_trace(7, 5, name="sevens")
        path = save_trace(trace, tmp_path / "t.csv")
        back = load_trace(path)
        assert back.name == "sevens"
        assert back.total == 35

    def test_non_contiguous_seconds_rejected(self):
        with pytest.raises(ValueError):
            trace_from_csv("second,count\n0,5\n2,5\n")

    def test_name_override(self):
        trace = constant_trace(1, 2)
        back = trace_from_csv(trace_to_csv(trace), name="renamed")
        assert back.name == "renamed"


class TestStats:
    def test_constant_trace_stats(self):
        stats = trace_stats(constant_trace(100, 10))
        assert stats.avg_tps == 100
        assert stats.peak_tps == 100
        assert stats.burstiness == pytest.approx(1.0)
        assert stats.cv == pytest.approx(0.0)

    def test_nasdaq_burstiness_over_100(self):
        stats = trace_stats(nasdaq_trace())
        assert stats.burstiness > 100  # 19800 / 168

    def test_row_serializable(self):
        row = trace_stats(constant_trace(10, 3)).as_row()
        assert row["total"] == 30
        assert "burstiness" in row
