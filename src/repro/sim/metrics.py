"""Metric containers for the congestion simulator (DIABLO definitions).

* throughput — committed transactions per second as the client observes
  (committed count over the active experiment duration);
* latency — commit time minus client send time, averaged over commits;
* transaction loss — transactions never committed (dropped by a saturated
  pool/validation queue, or still uncommitted at the measurement horizon).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry import Histogram


class LatencySample:
    """Weighted latency accumulator (cohorts carry counts, not objects).

    Backed by a standalone telemetry :class:`Histogram`, whose bounded
    DDSketch-style quantile sketch replaces the old per-cohort list — a
    multi-hour run now costs O(bins), not O(commits), for the same
    ``.mean`` / ``.percentile()`` API (percentiles carry ~1 % relative
    error, far below the run-to-run noise of the simulator).

    ``add`` coalesces duplicate values in a small pending dict before
    touching the histogram: tick-engine latencies are quantized to the
    tick length, so most cohorts hit an existing entry and cost one dict
    update instead of a full ``observe``.
    """

    __slots__ = ("_hist", "_pending")

    #: flush threshold — bounds pending-dict memory for continuous-valued
    #: callers (the DIABLO harness) while staying far above the number of
    #: distinct tick-quantized latencies a simulator run produces
    _FLUSH_AT = 8192

    def __init__(self) -> None:
        self._hist = Histogram("latency_sample_seconds")
        self._pending: dict[float, float] = {}

    def add(self, latency: float, weight: float) -> None:
        pending = self._pending
        pending[latency] = pending.get(latency, 0.0) + weight
        if len(pending) >= self._FLUSH_AT:
            self._flush()

    def _flush(self) -> None:
        observe = self._hist.observe
        for value, weight in self._pending.items():
            observe(value, weight)
        self._pending.clear()

    @property
    def total_weight(self) -> float:
        self._flush()
        return self._hist.count

    @property
    def weighted_sum(self) -> float:
        self._flush()
        return self._hist.sum

    @property
    def max_latency(self) -> float:
        self._flush()
        return self._hist.max if self._hist.count else 0.0

    @property
    def mean(self) -> float:
        self._flush()
        return self._hist.mean

    def percentile(self, q: float) -> float:
        """Weighted percentile (q in [0, 100]), streaming-estimated."""
        self._flush()
        return self._hist.percentile(q)

    @property
    def histogram(self) -> Histogram:
        """The backing telemetry histogram (for export/inspection)."""
        self._flush()
        return self._hist


@dataclass
class SimResult:
    """Everything one congestion-simulation run reports."""

    chain: str
    workload: str
    sent: int
    committed: int
    dropped_pool: int
    dropped_validation: int
    unfinished: int
    duration_s: float
    avg_latency_s: float
    p99_latency_s: float
    #: streaming latency quantiles (DDSketch-backed, ~1 % relative error) —
    #: the bench harness diffs these without re-running the simulation
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    #: committed per tick, for time-series plots
    commit_series: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: pool occupancy per tick (congestion evidence)
    pool_series: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: validation (admission) queue occupancy per tick — where gossiping
    #: chains actually congest (§III-A)
    validation_series: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: per-phase latency stats, phase -> {mean, p50, p99} seconds: where a
    #: committed tx's end-to-end time was spent (validate / pool_wait /
    #: consensus — the tick-engine pipeline stages)
    phase_latency: dict = field(default_factory=dict)
    #: fraction of each production round spent executing taken txs
    #: (exec_time / block_interval, capped at 1) — how execution-bound
    #: the round cadence was
    exec_share: float = 0.0

    def phase_breakdown(self) -> dict:
        """Flat ``latency_breakdown:*`` keys for bench headlines: raw
        phase p50/p99 plus ``exec_share``, mirroring the message-level
        critical-path block's shape so metrics-diff thresholds apply."""
        out = {"latency_breakdown:exec_share": round(self.exec_share, 4)}
        for phase, stats in self.phase_latency.items():
            out[f"latency_breakdown:{phase}_p50_s"] = round(stats["p50"], 4)
            out[f"latency_breakdown:{phase}_p99_s"] = round(stats["p99"], 4)
        return out

    @property
    def throughput_tps(self) -> float:
        return self.committed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def commit_rate(self) -> float:
        """Fraction of sent transactions that committed (Fig. 2 bar labels)."""
        return self.committed / self.sent if self.sent else 0.0

    @property
    def lost(self) -> int:
        return self.sent - self.committed

    def summary_row(self) -> dict:
        return {
            "chain": self.chain,
            "workload": self.workload,
            "throughput_tps": round(self.throughput_tps, 2),
            "avg_latency_s": round(self.avg_latency_s, 2),
            "commit_pct": round(100.0 * self.commit_rate, 1),
            "sent": self.sent,
            "committed": self.committed,
            "lost": self.lost,
        }
