"""Engine-level adversarial schedules: safety and liveness on the DES.

Hypothesis controls the network seed, pre-GST adversarial delays, jitter
and client timing; after GST the deployment must converge with safety,
state agreement and full liveness for every valid transaction.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology
from repro.net.transport import PartialSynchrony


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    gst=st.floats(min_value=0.0, max_value=2.0),
    delay_scale=st.floats(min_value=0.0, max_value=2.0),
    submit_jitter=st.lists(
        st.floats(min_value=0.0, max_value=1.5), min_size=6, max_size=6
    ),
)
def test_convergence_after_gst(seed, gst, delay_scale, submit_jitter):
    clients, balances = fund_clients(3)
    timing = PartialSynchrony(gst=gst, delta=0.5, pre_gst_max_delay=3.0)

    def adversarial(src: int, dst: int, now: float) -> float:
        # deterministic pseudo-random stretch, active before GST only
        if now >= gst:
            return 0.0
        return delay_scale * (((src * 31 + dst * 17 + int(now * 10)) % 7) / 3.0)

    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, rpm=False),
        topology=single_region_topology(4),
        extra_balances=balances,
        seed=seed,
        timing=timing,
        proposer_timeout=4.0,
    )
    deployment.network.adversarial_delay = adversarial
    deployment.start()

    txs = []
    for i, jitter in enumerate(submit_jitter):
        sender = clients[i % 3]
        tx = make_transfer(
            sender, clients[(i + 1) % 3].address, 1,
            nonce=i // 3, created_at=jitter,
        )
        deployment.submit(tx, validator_id=i % 4, at=jitter)
        txs.append(tx)

    deployment.run_until(gst + 25.0)

    assert deployment.safety_holds()
    assert deployment.states_agree()
    for tx in txs:
        assert deployment.committed_everywhere(tx)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_flooding_never_breaks_safety_random_seeds(seed):
    from repro.adversary import FloodingValidator
    from repro.workloads.synthetic import factory_balances, transfer_request_factory

    factory = transfer_request_factory(clients=4, seed=seed % 1000 + 1)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, rpm=True),
        topology=single_region_topology(4),
        byzantine={3: FloodingValidator},
        byzantine_kwargs={3: {"flood_per_block": 10, "flood_total": 50}},
        extra_balances=factory_balances(factory),
        seed=seed,
    )
    deployment.start()
    txs = [factory(i, 0.01 * i) for i in range(8)]
    for i, tx in enumerate(txs):
        deployment.submit(tx, validator_id=i % 3, at=0.01 * i)
    deployment.run_until(10.0)
    assert deployment.safety_holds()
    assert deployment.states_agree()
    for tx in txs:
        assert deployment.committed_everywhere(tx)
