"""Bracha reliable broadcast for block proposals.

Guarantees with f < n/3 Byzantine:

* **Validity** — if the (correct) broadcaster sends m, every correct node
  delivers m.
* **Agreement/totality** — if any correct node delivers m, every correct
  node eventually delivers m (and no two correct nodes deliver different
  payloads for the same broadcaster slot).

ECHO and READY carry the payload alongside its digest so a node that never
received the original SEND (Byzantine broadcaster) can still assemble the
message — a simplification over hash-then-fetch that suits a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.consensus.messages import ConsensusMessage, MsgKind
from repro.crypto.hashing import hash_items


def _digest(payload: Any) -> bytes:
    if hasattr(payload, "block_hash"):
        return payload.block_hash
    if isinstance(payload, bytes):
        return hash_items([payload])
    return hash_items([repr(payload)])


@dataclass(slots=True)
class _SlotState:
    """State for one broadcaster slot."""

    echo_senders: dict[bytes, set[int]] = field(default_factory=dict)
    ready_senders: dict[bytes, set[int]] = field(default_factory=dict)
    payloads: dict[bytes, Any] = field(default_factory=dict)
    echoed: bool = False
    ready_sent: bool = False
    delivered: bool = False


class ReliableBroadcast:
    """Per-node RBC endpoint multiplexing all broadcaster slots of an index."""

    def __init__(
        self,
        *,
        n: int,
        f: int,
        my_id: int,
        index: int,
        broadcast: Callable[[ConsensusMessage], None],
        on_deliver: Callable[[int, Any], None],
        passive: bool = False,
    ):
        #: passive observers count echoes/readies and deliver, never send
        self.passive = passive
        self.n = n
        self.f = f
        self.my_id = my_id
        self.index = index
        #: outgoing-message sink — a VoteBatcher when the owning node
        #: batches votes (ECHO/READY coalesce; SEND always goes direct).
        self.sink = broadcast
        self._on_deliver = on_deliver
        self._slots: dict[int, _SlotState] = {}

    def _slot(self, instance: int) -> _SlotState:
        slot = self._slots.get(instance)
        if slot is None:
            slot = self._slots[instance] = _SlotState()
        return slot

    def _send(self, kind: MsgKind, instance: int, value: Any) -> None:
        if self.passive:
            return
        self.sink(
            ConsensusMessage(
                kind=kind,
                index=self.index,
                instance=instance,
                round=0,
                value=value,
                sender=self.my_id,
            )
        )

    # -- API --------------------------------------------------------------------

    def broadcast_payload(self, payload: Any) -> None:
        """RBC-broadcast ``payload`` in this node's own slot."""
        self._send(MsgKind.RBC_SEND, self.my_id, payload)

    def on_message(self, msg: ConsensusMessage) -> None:
        slot = self._slot(msg.instance)
        if msg.kind is MsgKind.RBC_SEND:
            # Only the slot owner's SEND counts (others are Byzantine noise).
            if msg.sender != msg.instance or slot.echoed:
                return
            slot.echoed = True
            digest = _digest(msg.value)
            slot.payloads[digest] = msg.value
            self._send(MsgKind.RBC_ECHO, msg.instance, (digest, msg.value))
            # Count our own echo implicitly via loopback delivery.
        elif msg.kind is MsgKind.RBC_ECHO:
            digest, payload = msg.value
            senders = slot.echo_senders.get(digest)
            if senders is None:
                senders = slot.echo_senders[digest] = set()
            elif msg.sender in senders:
                return
            senders.add(msg.sender)
            slot.payloads.setdefault(digest, payload)
            self._check_ready(msg.instance, digest, slot)
        elif msg.kind is MsgKind.RBC_READY:
            digest, payload = msg.value
            senders = slot.ready_senders.get(digest)
            if senders is None:
                senders = slot.ready_senders[digest] = set()
            elif msg.sender in senders:
                return
            senders.add(msg.sender)
            if payload is not None:
                slot.payloads.setdefault(digest, payload)
            self._check_ready(msg.instance, digest, slot)
            self._check_deliver(msg.instance, digest, slot)

    # -- thresholds ----------------------------------------------------------------

    def _check_ready(
        self, instance: int, digest: bytes, slot: _SlotState | None = None
    ) -> None:
        if slot is None:
            slot = self._slot(instance)
        if slot.ready_sent:
            return
        echoes = len(slot.echo_senders.get(digest, ()))
        readys = len(slot.ready_senders.get(digest, ()))
        if echoes >= 2 * self.f + 1 or readys >= self.f + 1:
            slot.ready_sent = True
            payload = slot.payloads.get(digest)
            self._send(MsgKind.RBC_READY, instance, (digest, payload))
            self._check_deliver(instance, digest, slot)

    def _check_deliver(
        self, instance: int, digest: bytes, slot: _SlotState | None = None
    ) -> None:
        if slot is None:
            slot = self._slot(instance)
        if slot.delivered:
            return
        readys = len(slot.ready_senders.get(digest, ()))
        if readys >= 2 * self.f + 1 and digest in slot.payloads:
            payload = slot.payloads[digest]
            if payload is None:
                return  # wait until someone forwards the payload
            slot.delivered = True
            self._on_deliver(instance, payload)

    def delivered(self, instance: int) -> bool:
        return self._slot(instance).delivered
