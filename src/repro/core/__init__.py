"""Core SRBB protocol: transactions, blocks, validation, pool, node, RPM.

This package is the paper's primary contribution — Algorithm 1 (the SRBB
protocol with TVPR) and Algorithm 2 (the Reward-Penalty Mechanism) — plus
the membership/committee layer and the Section VI load-balancer mitigation.
"""

from repro.core.transaction import (
    Transaction,
    TxType,
    make_deploy,
    make_invoke,
    make_transfer,
)
from repro.core.block import Block, BlockCertificate, SuperBlock
from repro.core.validation import (
    ValidationOutcome,
    eager_validate,
    lazy_validate,
)
from repro.core.txpool import TxPool
from repro.core.blockchain import Blockchain, CommitResult

__all__ = [
    "Block",
    "BlockCertificate",
    "Blockchain",
    "CommitResult",
    "SuperBlock",
    "Transaction",
    "TxPool",
    "TxType",
    "ValidationOutcome",
    "eager_validate",
    "lazy_validate",
    "make_deploy",
    "make_invoke",
    "make_transfer",
]
