"""Markdown report generation."""

from repro.analysis.report import ReportData, build_report, collect, render


def test_report_renders_all_sections():
    # Table I at 5% scale keeps this test quick while exercising the path.
    text = build_report(include_table1=True, table1_scale=0.05)
    assert "# SRBB reproduction" in text
    assert "## Figure 2" in text
    assert "## §V-A headline" in text
    assert "## Table I" in text
    assert "## Figure 1" in text
    assert "srbb" in text
    assert "RPM gain" in text


def test_report_without_table1():
    data = collect(include_table1=False)
    assert data.table1_rows is None
    assert data.rpm_gain is None
    text = render(data)
    assert "## Table I" not in text
    assert "## Figure 2" in text


def test_paper_comparison_lines_present():
    text = build_report(include_table1=False)
    assert "paper 166.61" in text
    assert "paper ×55" in text
