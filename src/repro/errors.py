"""Error taxonomy shared across the SRBB reproduction.

The paper distinguishes failures caught at *eager* validation (signature,
size, nonce, gas affordability, balance), failures caught at *lazy*
validation (nonce, gas affordability, balance) and failures raised at
*execution* time (signature, size — mirroring Geth's ``ErrInvalidSig`` and
VM/overflow exceptions).  Each failure mode gets a distinct exception class
so tests can assert exactly which layer rejected a transaction.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Transaction validation errors
# ---------------------------------------------------------------------------


class ValidationError(ReproError):
    """Base class for transaction validation failures."""

    #: short machine-readable code used in receipts and metrics
    code = "invalid"


class InvalidSignature(ValidationError):
    """Signature does not verify against the sender (Geth's ErrInvalidSig)."""

    code = "invalid-sig"


class OversizedTransaction(ValidationError):
    """Encoded transaction exceeds the protocol size limit."""

    code = "oversized"


class BadNonce(ValidationError):
    """Transaction nonce is not the sender's next sequence number."""

    code = "bad-nonce"


class InsufficientGas(ValidationError):
    """Sender balance cannot cover ``gas_limit * gas_price``."""

    code = "insufficient-gas"


class InsufficientBalance(ValidationError):
    """Sender balance cannot cover the transferred amount (+ gas)."""

    code = "insufficient-balance"


class UnknownSender(ValidationError):
    """Sender account does not exist in the world state."""

    code = "unknown-sender"


# ---------------------------------------------------------------------------
# VM execution errors
# ---------------------------------------------------------------------------


class VMError(ReproError):
    """Base class for SVM execution failures (state is rolled back)."""

    code = "vm-error"


class OutOfGas(VMError):
    code = "out-of-gas"


class StackUnderflow(VMError):
    code = "stack-underflow"


class StackOverflow(VMError):
    code = "stack-overflow"


class InvalidOpcode(VMError):
    code = "invalid-opcode"


class InvalidJump(VMError):
    code = "invalid-jump"


class VMRevert(VMError):
    """Explicit REVERT by contract code."""

    code = "revert"


class ArithmeticOverflow(VMError):
    """Checked-arithmetic overflow (paper: 'Overflow ... exceptions')."""

    code = "overflow"


class ContractNotFound(VMError):
    code = "no-contract"


# ---------------------------------------------------------------------------
# Consensus / networking errors
# ---------------------------------------------------------------------------


class ConsensusError(ReproError):
    """Violation of a consensus precondition (a bug, never expected)."""


class NetworkError(ReproError):
    """Misuse of the discrete-event network simulator."""


class MembershipError(ReproError):
    """Invalid committee/membership operation (e.g. deposit too small)."""


# ---------------------------------------------------------------------------
# Tooling errors
# ---------------------------------------------------------------------------


class OutputWriteError(ReproError):
    """An artifact output path could not be written (bad directory,
    permissions, full disk).  The CLI reports it as a one-line message and
    a non-zero exit code instead of a traceback."""
