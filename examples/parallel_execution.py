#!/usr/bin/env python
"""Conflict analysis and parallel-execution headroom (Definition 1).

Builds a realistic mixed block, shows its conflict graph and the
serializable parallel schedule, then executes it through the
conflict-aware parallel executor and verifies the state equals serial
execution — including the honest negative result that Uber-style
counter-bumping workloads do not parallelize.

Run:  python examples/parallel_execution.py
"""

from repro.vm.conflicts import analyze_block
from repro.vm.parallel import execute_parallel
from repro.workloads.nasdaq import nasdaq_request_factory
from repro.workloads.uber import uber_request_factory


def build_executor(factory):
    from repro.vm.contracts import ExchangeContract, MobilityContract
    from repro.vm.contracts.base import NativeRegistry
    from repro.vm.executor import Executor, install_native
    from repro.vm.state import WorldState

    registry = NativeRegistry()
    registry.register(ExchangeContract())
    registry.register(MobilityContract())
    state = WorldState()
    install_native(state, "exchange")
    install_native(state, "mobility")
    for kp in factory.keypairs:
        state.create_account(kp.address, 10**15)
    state.commit()
    return Executor(state, registry=registry)


def analyze(name, factory, batch=120):
    txs = [factory(i, 0.0) for i in range(batch)]
    report = analyze_block(txs)
    executor = build_executor(factory)
    result = execute_parallel(executor, txs, workers=8, exec_rate=20_000.0)
    # the real multi-core backend must land on the identical state
    threaded = build_executor(factory)
    threaded_result = execute_parallel(
        threaded, txs, workers=8, exec_rate=20_000.0, backend="threads"
    )
    assert threaded.state.state_root() == executor.state.state_root()
    assert [r.success for r in threaded_result.receipts] == [
        r.success for r in result.receipts
    ]
    ok = sum(r.success for r in result.receipts)
    print(f"{name:8s} {batch} txs → {report.parallel_depth:3d} groups, "
          f"{report.conflict_count:5d} conflict pairs, "
          f"×{result.speedup:.2f} speedup (8 workers), "
          f"{ok}/{batch} executed OK, threaded root matches")
    return result


def main() -> None:
    print("conflict-respecting parallel execution, per workload:\n")
    nasdaq = analyze("nasdaq", nasdaq_request_factory(clients=32))
    uber = analyze("uber", uber_request_factory(clients=32))
    assert nasdaq.speedup > 1.5
    assert abs(uber.speedup - 1.0) < 1e-6  # global ride counter serializes
    print("\nnasdaq parallelizes across its 5 symbols; uber's global ride "
          "counter forces serial execution —\nthe same analysis that "
          "verifies Definition 1's 'non-conflicting' property.")
    print("\nparallel execution demo OK")


if __name__ == "__main__":
    main()
