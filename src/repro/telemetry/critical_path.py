"""Post-hoc critical-path attribution of end-to-end commit latency.

Consumes the per-tx lifecycle stamps (:mod:`repro.telemetry.lifecycle`)
plus the tracer's span/event records and answers *where the time goes*:
for each committed transaction the resolved timeline is folded into six
raw buckets that telescope exactly to the end-to-end latency,

======================  ======================================
bucket                  boundary (monotone resolved times)
======================  ======================================
``admit``               submit → pool admit (incl. gossip hop)
``pool_wait``           pool admit → proposal inclusion
``propagate``           proposal → RBC echo/ready quorum
``consensus``           RBC deliver → DBFT decide
``commit_wait``         decide → ordered commit
``execute``             commit → VM execute → receipt
======================  ======================================

``pool_wait`` and ``commit_wait`` are *queue* time: the tx sits behind
the round cadence, and the cadence itself is split between ordering work
and execution work.  The analyzer measures that split — ``exec_share``,
the fraction of the busiest node's commit-loop span spent executing
(``Σ exec_s`` from ``node.commit`` trace events) — and reattributes the
queue buckets proportionally.  The **attributed** breakdown is therefore

* ``execute``  = raw execute + exec_share · (pool_wait + commit_wait)
* ``ordering`` = (1 − exec_share) · (pool_wait + commit_wait)
* ``admit`` / ``propagate`` / ``consensus`` unchanged,

which still telescopes to the same end-to-end latency while charging
queueing delay to the resource that caused it.  At saturation with a
slow VM this correctly pins ``execute`` as dominant even though most of
a tx's wall time is spent *waiting* rather than executing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.lifecycle import LifecycleRecorder, TxLifecycle

__all__ = [
    "RAW_BUCKETS",
    "ATTRIBUTED_BUCKETS",
    "PhaseStats",
    "CriticalPathReport",
    "analyze",
    "exec_share_from_trace",
]

#: raw buckets, pipeline order (telescoping: they sum to e2e)
RAW_BUCKETS = (
    "admit", "pool_wait", "propagate", "consensus", "commit_wait", "execute"
)

#: attributed buckets after queue-wait reattribution, pipeline order
ATTRIBUTED_BUCKETS = ("admit", "propagate", "consensus", "ordering", "execute")

#: lifecycle phase duration -> raw bucket
_PHASE_BUCKET = {
    "gossip": "admit",
    "pool": "admit",
    "propose": "pool_wait",
    "rbc": "propagate",
    "decide": "consensus",
    "commit": "commit_wait",
    "execute": "execute",
    "receipt": "execute",
}


@dataclass
class PhaseStats:
    """Aggregate seconds for one bucket across committed transactions."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p99: float = 0.0

    @classmethod
    def from_samples(cls, samples: "np.ndarray") -> "PhaseStats":
        if samples.size == 0:
            return cls()
        return cls(
            count=int(samples.size),
            mean=float(samples.mean()),
            p50=float(np.percentile(samples, 50)),
            p99=float(np.percentile(samples, 99)),
        )


@dataclass
class CriticalPathReport:
    """Scenario-level latency attribution (see module docstring)."""

    txs: int = 0
    committed: int = 0
    exec_share: float = 0.0
    e2e: PhaseStats = field(default_factory=PhaseStats)
    raw: "dict[str, PhaseStats]" = field(default_factory=dict)
    attributed: "dict[str, PhaseStats]" = field(default_factory=dict)
    dominant_phase: str = ""
    #: per-superblock chain summaries, index order
    superblocks: "list[dict]" = field(default_factory=list)

    def headline(self, prefix: str = "latency_breakdown") -> "dict[str, float]":
        """Flat numeric keys for a BENCH artifact headline block."""
        out: "dict[str, float]" = {
            f"{prefix}:txs": float(self.committed),
            f"{prefix}:exec_share": round(self.exec_share, 4),
            f"{prefix}:e2e_p50_s": round(self.e2e.p50, 4),
            f"{prefix}:e2e_p99_s": round(self.e2e.p99, 4),
            f"{prefix}:dominant_execute": (
                1.0 if self.dominant_phase == "execute" else 0.0
            ),
        }
        for bucket in ATTRIBUTED_BUCKETS:
            stats = self.attributed.get(bucket, PhaseStats())
            out[f"{prefix}:{bucket}_p50_s"] = round(stats.p50, 4)
            out[f"{prefix}:{bucket}_p99_s"] = round(stats.p99, 4)
        return out

    def render_text(self) -> str:
        """Terminal table: raw and attributed breakdowns side by side."""
        lines = [
            f"critical path — {self.committed}/{self.txs} txs committed, "
            f"exec_share={self.exec_share:.2f}, "
            f"e2e p50={self.e2e.p50:.3f}s p99={self.e2e.p99:.3f}s",
            f"{'bucket':<12} {'mean':>9} {'p50':>9} {'p99':>9}   share of e2e",
        ]
        e2e_mean = self.e2e.mean or 1.0
        for bucket in ATTRIBUTED_BUCKETS:
            stats = self.attributed.get(bucket, PhaseStats())
            share = stats.mean / e2e_mean
            bar = "#" * max(0, min(30, round(share * 30)))
            marker = "  ◀ dominant" if bucket == self.dominant_phase else ""
            lines.append(
                f"{bucket:<12} {stats.mean:>8.3f}s {stats.p50:>8.3f}s "
                f"{stats.p99:>8.3f}s   {share:>5.1%} {bar}{marker}"
            )
        if self.superblocks:
            lines.append("")
            lines.append(
                f"{'superblock':<11} {'txs':>5} {'e2e p50':>9} {'slowest bucket'}"
            )
            for sb in self.superblocks:
                lines.append(
                    f"{sb['index']:<11} {sb['txs']:>5} "
                    f"{sb['e2e_p50_s']:>8.3f}s {sb['slowest_bucket']}"
                )
        return "\n".join(lines)


def exec_share_from_trace(trace_records: "list[dict]") -> "float | None":
    """Fraction of the commit loop spent executing, from ``node.commit``
    trace events (their ``exec_s`` attr), measured on the node that
    committed the most superblocks.

    A commit's execution time delays the *next* round, so each
    commit-to-commit interval is attributed the leading commit's
    ``exec_s``.  Only intervals whose leading commit actually executed
    work count — empty drain rounds after the backlog clears (and idle
    rounds before load arrives) would otherwise dilute the share of a
    saturated window.  Returns None when the trace carries no usable
    commit events (analysis then skips reattribution).
    """
    by_node: "dict[int, list[tuple[float, float]]]" = {}
    for record in trace_records or ():
        if record.get("type") != "event" or record.get("name") != "node.commit":
            continue
        attrs = record.get("attrs", {})
        if "exec_s" not in attrs or "sim_now" not in attrs:
            continue
        node = attrs.get("node", -1)
        by_node.setdefault(node, []).append(
            (float(attrs["sim_now"]), float(attrs["exec_s"]))
        )
    if not by_node:
        return None
    commits = sorted(max(by_node.values(), key=len))
    if len(commits) < 2:
        return None
    exec_total = 0.0
    interval_total = 0.0
    for (t0, exec_s), (t1, _) in zip(commits, commits[1:]):
        if exec_s > 0 and t1 > t0:
            exec_total += exec_s
            interval_total += t1 - t0
    if interval_total <= 0:
        return None
    return max(0.0, min(1.0, exec_total / interval_total))


def _bucketize(lifecycle: TxLifecycle) -> "dict[str, float]":
    """Fold one resolved timeline into the raw buckets (telescoping)."""
    buckets = {bucket: 0.0 for bucket in RAW_BUCKETS}
    for phase, duration in lifecycle.durations.items():
        bucket = _PHASE_BUCKET.get(phase)
        if bucket is not None:
            buckets[bucket] += duration
    return buckets


def analyze(
    recorder,
    *,
    trace_records: "list[dict] | None" = None,
    exec_share: "float | None" = None,
) -> CriticalPathReport:
    """Build the attribution report from a :class:`LifecycleRecorder`
    (or the raw record list produced by its ``to_records()``).

    ``exec_share`` overrides the trace-derived measurement; when neither
    is available, queue wait is charged entirely to ``ordering``.
    """
    if isinstance(recorder, list):
        recorder = LifecycleRecorder.from_records(recorder)
    lifecycles = recorder.resolve_all()
    committed = [lc for lc in lifecycles if lc.committed]

    if exec_share is None and trace_records is not None:
        exec_share = exec_share_from_trace(trace_records)
    if exec_share is None:
        exec_share = 0.0

    report = CriticalPathReport(
        txs=len(lifecycles), committed=len(committed), exec_share=exec_share
    )
    if not committed:
        report.raw = {bucket: PhaseStats() for bucket in RAW_BUCKETS}
        report.attributed = {b: PhaseStats() for b in ATTRIBUTED_BUCKETS}
        return report

    raw_rows = [_bucketize(lc) for lc in committed]
    e2e = np.array([lc.e2e for lc in committed])
    report.e2e = PhaseStats.from_samples(e2e)
    for bucket in RAW_BUCKETS:
        samples = np.array([row[bucket] for row in raw_rows])
        report.raw[bucket] = PhaseStats.from_samples(samples)

    attributed_rows = []
    for row in raw_rows:
        queue_wait = row["pool_wait"] + row["commit_wait"]
        attributed_rows.append({
            "admit": row["admit"],
            "propagate": row["propagate"],
            "consensus": row["consensus"],
            "ordering": (1.0 - exec_share) * queue_wait,
            "execute": row["execute"] + exec_share * queue_wait,
        })
    for bucket in ATTRIBUTED_BUCKETS:
        samples = np.array([row[bucket] for row in attributed_rows])
        report.attributed[bucket] = PhaseStats.from_samples(samples)
    report.dominant_phase = max(
        ATTRIBUTED_BUCKETS, key=lambda b: report.attributed[b].mean
    )

    by_index: "dict[int, list[tuple[TxLifecycle, dict]]]" = {}
    for lc, row in zip(committed, raw_rows):
        if lc.index is not None:
            by_index.setdefault(lc.index, []).append((lc, row))
    for index in sorted(by_index):
        group = by_index[index]
        group_e2e = np.array([lc.e2e for lc, _ in group])
        bucket_means = {
            bucket: float(np.mean([row[bucket] for _, row in group]))
            for bucket in RAW_BUCKETS
        }
        report.superblocks.append({
            "index": index,
            "txs": len(group),
            "e2e_p50_s": round(float(np.percentile(group_e2e, 50)), 6),
            "e2e_p99_s": round(float(np.percentile(group_e2e, 99)), 6),
            "slowest_bucket": max(bucket_means, key=bucket_means.get),
        })
    return report
