"""``repro.telemetry`` — metrics, tracing and exporters for the SRBB pipeline.

Three layers, all off by default and one-branch-cheap until enabled:

* **Metrics** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  in a :class:`MetricsRegistry` (labeled children, bounded streaming
  quantiles).  A process-global default registry backs the CLI's
  ``--metrics-out``; ``use_registry()`` scopes a fresh one for tests.
* **Tracing** — :func:`span` context managers and point :func:`event` s
  buffered by a global :class:`Tracer` and dumped as JSONL
  (``--trace-out``).
* **Exporters / timing** — Prometheus text + JSON snapshots, and the
  :func:`timed` / :func:`stopwatch` wall-clock helpers for hot paths.
* **Profiling** — :class:`Profiler` attributes real elapsed time per
  event kind / subsystem / node across the event loops and exports
  flamegraphs (``repro profile``, ``repro.telemetry.profiling``).

The metric catalogue (names, labels, units) lives in
``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.critical_path import CriticalPathReport
from repro.telemetry.critical_path import analyze as analyze_critical_path
from repro.telemetry.exporters import (
    parse_prometheus,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.telemetry.lifecycle import (
    PHASES,
    LifecycleRecorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.telemetry.logconfig import configure_logging, verbosity_to_level
from repro.telemetry.observatory import CongestionObservatory
from repro.telemetry.profiling import (
    Profiler,
    profile_doc,
    set_profiler,
    use_profiler,
    validate_profile,
)
from repro.telemetry.registry import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    EXEMPLAR_RING,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    bind,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)
from repro.telemetry.timing import stopwatch, timed
from repro.telemetry.trace_event import to_trace_events, validate_trace_event
from repro.telemetry.tracing import (
    Tracer,
    current_span_id,
    event,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_BUCKETS",
    "EXEMPLAR_RING",
    "PHASES",
    "CongestionObservatory",
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "LifecycleRecorder",
    "MetricsRegistry",
    "Profiler",
    "QuantileSketch",
    "Tracer",
    "analyze_critical_path",
    "bind",
    "configure_logging",
    "current_span_id",
    "disable",
    "enable",
    "event",
    "get_recorder",
    "get_registry",
    "get_tracer",
    "parse_prometheus",
    "profile_doc",
    "set_profiler",
    "set_recorder",
    "set_registry",
    "set_tracer",
    "span",
    "stopwatch",
    "timed",
    "to_json",
    "to_prometheus",
    "to_trace_events",
    "use_profiler",
    "use_recorder",
    "use_registry",
    "validate_profile",
    "validate_trace_event",
    "verbosity_to_level",
    "write_metrics",
]
