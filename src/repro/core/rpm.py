"""The Reward-Penalty Mechanism (Algorithm 2) as a native contract.

``propReceived`` — validators attest each block of a decided superblock by
submitting the proposer's certificate ``Cert_B = {P_k, (h_t)_{S_k}}``;
once ``n − f`` distinct validators attest the same (proposer, tx-set,
superblock slot, round), the proposer's deposit is credited the reward
``R = I − C`` with ``I = r_b`` and ``C = |T| · c``.

``report`` — validators report an invalid transaction ``t ∈ T`` found in a
committed block; once ``n − f`` distinct validators file the same report
the proposer's **entire deposit** is slashed, redistributed equally among
the other committee members, and a Byzantine-validator event is emitted
(correct validators exclude the address from future communication).

The contract is deliberately state-machine pure: it can be driven through
consensus (as INVOKE transactions executed on every replica) or directly by
the simulator — both paths produce identical storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro import params
from repro.core.block import Block, BlockCertificate, transactions_hash
from repro.crypto.hashing import hash_items
from repro.crypto.keys import PublicKey, Signature, derive_address, verify
from repro.errors import VMRevert
from repro.vm.contracts.base import CallInfo, MeteredState, NativeContract, method


def encode_certificate(cert: BlockCertificate) -> tuple[str, str, str, str]:
    """Flatten ``Cert_B`` for transport inside a transaction payload."""
    return (
        cert.public_key.raw.hex(),
        cert.public_key.binding.hex(),
        cert.signed_tx_hash.tag.hex(),
        cert.signed_tx_hash.vk.hex(),
    )


def decode_certificate(enc: tuple[str, str, str, str]) -> BlockCertificate:
    pub_raw, binding, tag, vk = enc
    return BlockCertificate(
        public_key=PublicKey(raw=bytes.fromhex(pub_raw), binding=bytes.fromhex(binding)),
        signed_tx_hash=Signature(tag=bytes.fromhex(tag), vk=bytes.fromhex(vk)),
    )


@dataclass(frozen=True)
class ByzantineEvent:
    """Event emitted when a proposer is slashed (Alg. 2 line 42)."""

    address: str
    block_number: int
    tx_hash_hex: str
    penalty: int


class RPMContract(NativeContract):
    """Alg. 2, parameterized by committee size and reward constants."""

    name = "rpm"

    def __init__(
        self,
        *,
        n: int,
        f: int,
        block_reward: int = params.BLOCK_REWARD,
        validation_cost: float = params.EAGER_VALIDATION_COST,
    ):
        self.n = n
        self.f = f
        self.block_reward = block_reward
        # Fraction keeps reward arithmetic exact (deposits are integers;
        # fractional remainders accumulate in a rounding bucket).
        self.validation_cost = Fraction(validation_cost).limit_denominator(10**9)

    # -- committee management ----------------------------------------------------

    @method
    def join(self, storage: MeteredState, info: CallInfo, deposit: int) -> int:
        """Register the caller as a committee validator with a deposit."""
        if deposit <= 0:
            raise VMRevert("deposit must be positive")
        if info.value < deposit:
            raise VMRevert("call value does not cover the deposit")
        validators = list(storage.get("validators", ()))
        if info.caller in validators:
            raise VMRevert(f"{info.caller} already a validator")
        validators.append(info.caller)
        storage.set("validators", tuple(validators))
        storage.set(f"deposit:{info.caller}", deposit)
        return deposit

    @method
    def deposit_of(self, storage: MeteredState, info: CallInfo, address: str) -> int:
        return int(storage.get(f"deposit:{address}", 0))

    @method
    def validators(self, storage: MeteredState, info: CallInfo) -> tuple:
        return tuple(storage.get("validators", ()))

    @method
    def excluded(self, storage: MeteredState, info: CallInfo) -> tuple:
        return tuple(storage.get("excluded", ()))

    @method
    def events(self, storage: MeteredState, info: CallInfo) -> tuple:
        return tuple(storage.get("events", ()))

    # -- Alg. 2 propReceived --------------------------------------------------------

    @method
    def prop_received(
        self,
        storage: MeteredState,
        info: CallInfo,
        cert: tuple,
        h_t_hex: str,
        tx_count: int,
        slot: int,
        round_: int,
    ) -> bool:
        """Attest one block of a decided superblock (Alg. 2 lines 10-28).

        ``cert`` is an encoded :class:`BlockCertificate`; ``h_t_hex`` the
        Merkle root of the block's transactions (Alg. 2 transmits the full
        set ``T`` and recomputes the hash — sending the root instead keeps
        attestations O(1) in block size, with the binding to ``T``
        enforced by the certificate's signature over ``h_t``); ``slot`` is
        the block's index *i* in the superblock and ``round_`` the round
        *r*.  Returns True when this attestation crossed the n−f threshold
        and credited the reward ``R = r_b − |T|·c``.
        """
        validators = tuple(storage.get("validators", ()))
        if info.caller not in validators:
            raise VMRevert("only committee validators may attest")
        # line 11: one invocation per (caller, i, round)
        invoked_key = f"invoked:{info.caller}:{slot}:{round_}"
        if storage.get(invoked_key):
            return False
        storage.set(invoked_key, True)

        certificate = decode_certificate(tuple(cert))
        proposer = certificate.proposer_address()  # line 15: derive(P_k)
        if proposer not in validators:  # line 16: invalid Cert_B
            return False
        # lines 19-20: the signature over h_t replaces hash(T) == h_t
        h_t = bytes.fromhex(h_t_hex)
        if not verify(certificate.public_key, h_t, certificate.signed_tx_hash):
            return False

        # line 21: increment count for hash(P_k, T, i, r); tx_count is part
        # of the key, so n−f validators vouch for the same |T|.
        count_key = "propcount:" + hash_items(
            [certificate.public_key.raw, h_t, tx_count, slot, round_]
        ).hex()
        count = int(storage.get(count_key, 0)) + 1
        storage.set(count_key, count)
        if count != self.n - self.f:  # line 22 threshold (== so pays once)
            return False

        # lines 23-27: R = I − C credited to the proposer's deposit
        incentive = self.block_reward
        cost_frac = tx_count * self.validation_cost
        reward = incentive - int(cost_frac)  # integer token ledger
        deposit = int(storage.get(f"deposit:{proposer}", 0))
        storage.set(f"deposit:{proposer}", deposit + reward)
        storage.set(count_key, 0)  # line 28: reset count
        return True

    # -- Alg. 2 report ------------------------------------------------------------------

    @method
    def report(
        self,
        storage: MeteredState,
        info: CallInfo,
        cert: tuple,
        block_number: int,
        invalid_tx_hash: str,
        h_t_hex: str,
        proof_index: int,
        proof_siblings: tuple,
    ) -> bool:
        """Report an invalid transaction in a committed block (lines 29-42).

        The ``t ∈ T`` check of Alg. 2 line 32 is a Merkle inclusion proof
        of ``invalid_tx_hash`` under the certified root ``h_t`` (O(log |T|)
        instead of shipping ``T``).  Returns True when this report crossed
        the n−f threshold and slashed the proposer.
        """
        validators = tuple(storage.get("validators", ()))
        if info.caller not in validators:
            raise VMRevert("only committee validators may report")
        certificate = decode_certificate(tuple(cert))
        proposer = certificate.proposer_address()
        h_t = bytes.fromhex(h_t_hex)
        # line 32: invalid Cert_B or false report → exit
        if proposer not in validators:
            return False
        if not verify(certificate.public_key, h_t, certificate.signed_tx_hash):
            return False
        from repro.crypto.merkle import MerkleProof, MerkleTree

        proof = MerkleProof(
            index=int(proof_index),
            siblings=tuple(bytes.fromhex(s) for s in proof_siblings),
        )
        if not MerkleTree.verify_proof(h_t, bytes.fromhex(invalid_tx_hash), proof):
            return False  # t ∉ T: false report
        # one report per (caller, proposer, block, tx)
        dedup_key = f"reported:{info.caller}:{proposer}:{block_number}:{invalid_tx_hash}"
        if storage.get(dedup_key):
            return False
        storage.set(dedup_key, True)

        # line 36: count identical reports
        count_key = "repcount:" + hash_items(
            [certificate.public_key.raw, block_number, invalid_tx_hash]
        ).hex()
        count = int(storage.get(count_key, 0)) + 1
        storage.set(count_key, count)
        if count != self.n - self.f:  # line 37 threshold
            return False

        # lines 38-41: slash the full deposit, redistribute equally
        penalty = int(storage.get(f"deposit:{proposer}", 0))
        storage.set(f"deposit:{proposer}", 0)
        others = [v for v in validators if v != proposer]
        if others and penalty > 0:
            share, remainder = divmod(penalty, len(others))
            for i, v in enumerate(others):
                bonus = share + (1 if i < remainder else 0)
                storage.set(f"deposit:{v}", int(storage.get(f"deposit:{v}", 0)) + bonus)
        # line 42: emit the Byzantine-validator event
        events = list(storage.get("events", ()))
        events.append(
            ByzantineEvent(
                address=proposer,
                block_number=block_number,
                tx_hash_hex=invalid_tx_hash,
                penalty=penalty,
            )
        )
        storage.set("events", tuple(events))
        excluded = set(storage.get("excluded", ()))
        excluded.add(proposer)
        storage.set("excluded", tuple(sorted(excluded)))
        return True


def certificate_payload(block: Block) -> tuple[tuple, str, int]:
    """(encoded cert, h_t hex, |T|) for ``prop_received`` on ``block``."""
    if block.certificate is None:
        raise ValueError("block has no certificate")
    return (
        encode_certificate(block.certificate),
        transactions_hash(block.transactions).hex(),
        len(block.transactions),
    )


def report_payload(block: Block, bad_tx_hash: bytes) -> tuple:
    """Arguments for ``report``: cert, h_t, and the Merkle inclusion proof
    of ``bad_tx_hash`` inside the block."""
    from repro.crypto.merkle import MerkleTree

    if block.certificate is None:
        raise ValueError("block has no certificate")
    leaves = [tx.tx_hash for tx in block.transactions]
    try:
        index = leaves.index(bad_tx_hash)
    except ValueError:
        raise ValueError("transaction not in block") from None
    tree = MerkleTree(leaves)
    proof = tree.proof(index)
    return (
        encode_certificate(block.certificate),
        bad_tx_hash.hex(),
        tree.root.hex(),
        proof.index,
        tuple(s.hex() for s in proof.siblings),
    )
