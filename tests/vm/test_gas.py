"""Gas schedule units."""

from repro.vm.gas import G_CREATE, G_TX, G_TXDATA_BYTE, GAS_TABLE, intrinsic_gas
from repro.vm.opcodes import Op


class TestIntrinsicGas:
    def test_bare_transaction(self):
        assert intrinsic_gas(0) == G_TX == 21_000

    def test_per_byte(self):
        assert intrinsic_gas(100) == G_TX + 100 * G_TXDATA_BYTE

    def test_create_surcharge(self):
        assert intrinsic_gas(0, is_create=True) == G_TX + G_CREATE


class TestGasTable:
    def test_covers_every_opcode(self):
        assert set(GAS_TABLE) == set(Op)

    def test_cost_ordering(self):
        """EVM-like relative ordering: storage writes ≫ reads ≫ arithmetic
        ≫ stack ops; halting is free."""
        assert GAS_TABLE[Op.SSTORE] > GAS_TABLE[Op.SLOAD]
        assert GAS_TABLE[Op.SLOAD] > GAS_TABLE[Op.SHA3]
        assert GAS_TABLE[Op.SHA3] > GAS_TABLE[Op.ADD]
        assert GAS_TABLE[Op.STOP] == 0
        assert GAS_TABLE[Op.RETURN] == 0

    def test_all_costs_non_negative(self):
        assert all(cost >= 0 for cost in GAS_TABLE.values())

    def test_transfer_is_expensive(self):
        assert GAS_TABLE[Op.TRANSFER] >= 9_000
