"""SVM fuzzing: arbitrary bytecode must never escape the error taxonomy.

The paper's validity argument leans on "invalid transactions throw an
error without transitioning state"; for that to be trustworthy the
interpreter must be total — any byte string either halts cleanly or
raises a VMError subclass, and on a raise the journaled state reverts to
its pre-call root.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import VMError
from repro.vm.opcodes import Op, assemble
from repro.vm.state import WorldState
from repro.vm.svm import SVM, CallContext

ADDRESS = "c" * 40


def run_code(code: bytes, gas: int = 20_000):
    state = WorldState()
    state.create_account(ADDRESS, 1_000, code=code)
    state.commit()
    root = state.state_root()
    svm = SVM(state)
    ctx = CallContext(address=ADDRESS, caller="a" * 40, value=3, calldata=(1, 2, 3))
    try:
        result = svm.execute(code, ctx, gas)
        return state, root, result, None
    except VMError as exc:
        return state, root, None, exc


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_random_bytes_never_crash_interpreter(code):
    state, root, result, error = run_code(code)
    assert (result is None) != (error is None)
    if error is not None:
        # the caller (executor) reverts; simulate it and require exact root
        state.revert(0)
        assert state.state_root() == root


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.sampled_from([op for op in Op if op not in (Op.PUSH, Op.DUP, Op.SWAP)]),
            st.tuples(st.just(Op.PUSH), st.integers(min_value=0, max_value=2**64)),
            st.tuples(st.just(Op.DUP), st.integers(min_value=1, max_value=4)),
            st.tuples(st.just(Op.SWAP), st.integers(min_value=1, max_value=4)),
        ),
        max_size=30,
    )
)
def test_random_programs_respect_gas(program):
    """Well-formed random programs always halt within the gas budget and
    never report more gas used than granted."""
    code = assemble(program)
    state, root, result, error = run_code(code, gas=5_000)
    if result is not None:
        assert 0 <= result.gas_used <= 5_000


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=0, max_size=48), st.integers(min_value=0, max_value=200))
def test_tiny_gas_budgets_terminate(code, gas):
    """Starvation-level budgets must terminate promptly (no spin)."""
    state, root, result, error = run_code(code, gas=gas)
    assert (result is None) != (error is None)
