"""Congestion observatory: sampling, scheduling, gauges, rendering."""

import json
from types import SimpleNamespace

from repro import params, telemetry
from repro.core.deployment import Deployment
from repro.net.topology import single_region_topology
from repro.telemetry import CongestionObservatory
from repro.telemetry.observatory import (
    render_samples_figures,
    render_samples_html,
    render_samples_text,
)

import pytest


def _fake_deployment(n=2):
    """Structural stand-in: just the attributes sample() reads."""
    class Pool:
        def __init__(self):
            self.depth = 3

        def __len__(self):
            return self.depth

        def oldest_age(self, now):
            return 1.25

    nodes = [
        SimpleNamespace(
            node_id=i,
            pool=Pool(),
            vote_batcher=SimpleNamespace(pending=2),
            _consensus={7: object()},
            crashed=(i == 1),
        )
        for i in range(n)
    ]
    sim = SimpleNamespace(now=0.0, scheduled=[])
    sim.schedule = lambda delay, fn, *a: sim.scheduled.append((delay, fn))
    network = SimpleNamespace(
        inflight=lambda: 4,
        stats=SimpleNamespace(
            messages=10, bytes=1000, retransmissions=1, dropped=0
        ),
    )
    return SimpleNamespace(sim=sim, validators=nodes, network=network)


class TestSampling:
    def test_sample_reads_node_and_net_signals(self):
        obs = CongestionObservatory(_fake_deployment())
        sample = obs.sample()
        assert sample["t"] == 0.0
        assert sample["nodes"][0] == {
            "pool_depth": 3, "pool_age_s": 1.25, "vote_buffer": 2,
            "vote_tick_s": 0.0, "consensus_open": 1, "crashed": False,
        }
        assert sample["nodes"][1]["crashed"] is True
        assert sample["net"]["inflight"] == 4
        assert sample["net"]["retransmissions"] == 1
        assert obs.samples == [sample]

    def test_install_schedules_and_reschedules(self):
        deployment = _fake_deployment()
        obs = CongestionObservatory(deployment, interval_s=0.5).install()
        obs.install()  # idempotent
        assert len(deployment.sim.scheduled) == 1
        delay, tick = deployment.sim.scheduled.pop()
        assert delay == 0.0
        tick()  # samples, then schedules the next tick
        assert len(obs.samples) == 1
        assert deployment.sim.scheduled[0][0] == 0.5

    def test_horizon_stops_rescheduling(self):
        deployment = _fake_deployment()
        obs = CongestionObservatory(
            deployment, interval_s=1.0, horizon_s=0.5
        ).install()
        _, tick = deployment.sim.scheduled.pop()
        tick()
        assert deployment.sim.scheduled == []  # past horizon: no next tick

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CongestionObservatory(_fake_deployment(), interval_s=0.0)

    def test_gauges_updated_when_registry_enabled(self):
        with telemetry.use_registry() as registry:
            CongestionObservatory(_fake_deployment()).sample()
            dump = telemetry.to_json(registry)
        assert "srbb_obs_pool_depth" in dump
        assert "srbb_obs_net_inflight" in dump
        (sample,) = dump["srbb_obs_net_inflight"]["samples"]
        assert sample["value"] == 4

    def test_sampling_on_live_deployment_is_pure(self):
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4),
            topology=single_region_topology(4),
            seed=11,
        )
        obs = CongestionObservatory(deployment, interval_s=0.5).install()
        deployment.run_until(2.0)
        assert len(obs.samples) >= 4
        assert all(set(s["nodes"]) == {0, 1, 2, 3} for s in obs.samples)
        # observations only: times strictly increasing on the sim clock
        times = [s["t"] for s in obs.samples]
        assert times == sorted(times)


class TestRendering:
    def _samples(self):
        obs = CongestionObservatory(_fake_deployment())
        obs.sample()
        obs.deployment.sim.now = 1.0
        obs.sample()
        return obs

    def test_text_report_has_sparkline_rows(self):
        text = self._samples().render_text()
        assert "congestion observatory — 2 samples" in text
        assert "txpool depth" in text
        assert "crashed at some sample: nodes [1]" in text

    def test_crashed_nodes_excluded_from_sums(self):
        obs = self._samples()
        text = render_samples_text(obs.samples)
        # only node 0 counts: depth 3, not 6
        assert "last=     3.0" in text

    def test_empty_samples(self):
        assert render_samples_text([]) == "observatory: no samples"
        assert "no samples" in render_samples_html([])

    def test_html_is_self_contained(self):
        doc = self._samples().render_html(title="t & t")
        assert doc.startswith("<!doctype html>")
        assert "t &amp; t" in doc
        assert "<svg" in doc
        assert "</html>" in doc

    def test_figures_fragment_embeddable(self):
        frag = render_samples_figures(self._samples().samples)
        assert "<figure>" in frag and "<html>" not in frag

    def test_save_roundtrip(self, tmp_path):
        obs = self._samples()
        path = tmp_path / "obs.json"
        obs.save(str(path))
        doc = json.loads(path.read_text())
        assert doc["interval_s"] == 1.0
        assert len(doc["samples"]) == 2
        assert doc["samples"][0]["net"] == obs.samples[0]["net"]
        # JSON stringifies node-id keys; the renderers only read values
        assert set(doc["samples"][0]["nodes"]) == {"0", "1"}
        assert "txpool depth" in render_samples_text(doc["samples"])
