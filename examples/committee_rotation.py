#!/usr/bin/env python
"""Committee reconfiguration vs a slowly-adaptive adversary (§IV-E).

Candidates deposit stake, committees are drawn randomly each epoch, and a
slowly-adaptive adversary — who can only corrupt between epochs, at a
bounded rate — never controls f or more members of a sitting committee.
Also demonstrates deposit lock/recovery and RPM-driven exclusion.

Run:  python examples/committee_rotation.py
"""

from repro.core.membership import MembershipRegistry, SlowlyAdaptiveAdversary


def main() -> None:
    registry = MembershipRegistry(committee_size=4, min_deposit=1_000, seed=9)
    for i in range(12):
        registry.register(f"validator-{i:02d}", 1_000 + 10 * i)

    adversary = SlowlyAdaptiveAdversary(f=1, budget_per_epoch=1)

    print("epoch  committee                                              corrupted-in")
    for epoch in range(1, 13):
        committee = registry.committee_for(epoch)
        # the adversary greedily targets current committee members
        adversary.corrupt(committee, list(committee.members))
        inside = adversary.corrupted_in(committee)
        names = ",".join(m[-2:] for m in committee.members)
        print(f"{epoch:5d}  [{names}]  "
              f"total-corrupted={len(adversary.corrupted):2d}  inside={inside}")
        assert inside <= 1, "committee corruption must stay ≤ f"
        registry.advance_epoch()

    # every candidate is eventually selected (random + periodic selection)
    seen = set()
    for epoch in range(1, 200):
        seen.update(registry.committee_for(epoch).members)
    print(f"\ncandidates selected at least once over 200 epochs: "
          f"{len(seen)}/{len(registry.eligible())}")
    assert seen == set(registry.eligible())

    # deposit recovery with a lock period
    unlock = registry.request_withdrawal("validator-00")
    print(f"validator-00 withdrawal unlocks at epoch {unlock} "
          f"(now {registry.current_epoch})")
    while registry.current_epoch < unlock:
        registry.advance_epoch()
    refund = registry.withdraw("validator-00")
    print(f"validator-00 recovered deposit: {refund}")

    # a slashed validator is excluded even if it re-registers
    registry.slash("validator-01")
    registry.register("validator-01", 5_000)
    assert "validator-01" not in registry.eligible()
    print("validator-01 slashed → re-registration stays excluded")
    print("\ncommittee rotation demo OK")


if __name__ == "__main__":
    main()
