"""Wall-clock profiler for the simulation engines (tentpole, PR 6).

The DES engine's own CPU cost is the ceiling on every scaling direction
in the ROADMAP (200-validator committees, full-envelope trace replay),
and until now it was a black box: PR 5 attributed *simulated* time, this
module attributes *real* elapsed time.  A :class:`Profiler` is woven
through the event loop — ``Simulator.step`` times every callback,
``Network._deliver*`` opens a per-message-kind dispatch section, the
tick engine marks its four pipeline stages — and accumulates, in
``perf_counter_ns`` ticks:

* **per event kind** (callback qualname or dispatch label): count and
  inclusive nanoseconds, the ``µs/event`` table ``repro profile`` prints;
* **per subsystem** (consensus / vm / net / crypto / txpool / …),
  derived from the callback's module;
* **per node**, so a hot validator stands out;
* **per stack path** (self-time), the collapsed-stack data behind the
  flamegraph exporters (:func:`to_collapsed` emits Brendan-Gregg
  collapsed format, :func:`to_speedscope` the speedscope JSON schema —
  both load in standard viewers, alongside PR 5's trace-event output).

Cost discipline mirrors the rest of ``repro.telemetry``:

* **disabled is free** — the hot paths guard on ``sim.profiler is None``
  (one attribute load per event, no allocation; a regression test pins
  this down);
* **enabled is cheap** — ``push``/``pop`` are list operations plus two
  clock reads; classification is cached per code object so the
  per-schedule ``_guarded`` closures of ``Node._schedule`` don't defeat
  the cache (they carry a ``__profile_info__`` tuple instead).

Memory watermarks ride along: :meth:`Profiler.phase` records the peak
RSS (``resource.getrusage``) and — with ``track_memory=True`` — the
``tracemalloc`` traced/peak sizes plus a top-allocator table, sampled at
scenario phase boundaries rather than continuously (tracemalloc's
overhead would otherwise dwarf the thing being measured).

Like the registry/tracer/recorder, a process-global *active* profiler
(default ``None``) scopes enablement: ``use_profiler`` installs one, and
``Deployment``/``CongestionSim`` pick it up at construction.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "PROFILE_SCHEMA",
    "Profiler",
    "active",
    "describe",
    "profile_doc",
    "render_table",
    "set_profiler",
    "subsystem_of",
    "to_collapsed",
    "to_speedscope",
    "use_profiler",
    "validate_profile",
    "validate_speedscope",
]

#: schema tag stamped into ``PROFILE_*.json`` documents
PROFILE_SCHEMA = "repro.profile/v1"

#: module prefix -> subsystem, most specific first (first match wins)
_SUBSYSTEM_PREFIXES = (
    ("repro.core.txpool", "txpool"),
    ("repro.consensus", "consensus"),
    ("repro.vm", "vm"),
    ("repro.crypto", "crypto"),
    ("repro.net", "net"),
    ("repro.core", "core"),
    ("repro.sim", "sim"),
    ("repro.telemetry", "telemetry"),
    ("repro.faults", "faults"),
    ("repro.diablo", "diablo"),
)

#: wire message kind -> subsystem charged for its dispatch section
KIND_SUBSYSTEM = {
    "consensus": "consensus",
    "tx": "txpool",
    "gossip": "net",
    "ack": "net",
    "catchup-req": "consensus",
    "catchup-resp": "consensus",
}


def subsystem_of(module: str) -> str:
    """Map a module path to its accounting subsystem (``other`` fallback)."""
    for prefix, subsystem in _SUBSYSTEM_PREFIXES:
        if module.startswith(prefix):
            return subsystem
    return "other"


#: classification cache for :func:`describe`, keyed by the callback's
#: code object (stable and bounded) and node — ``Node._schedule`` calls
#: this on every scheduled event when profiling is enabled
_describe_cache: "dict[tuple, tuple]" = {}


def describe(callback: Callable, node: "int | None" = None) -> tuple:
    """``(name, subsystem, node)`` attribution for a callback.

    ``Node._schedule`` stamps this onto the scheduled event so the
    profiler attributes the *wrapped* target, not the anonymous
    incarnation guard.  Results are cached by code object: bound methods
    of the same function classify identically, so the prefix matching in
    :func:`subsystem_of` runs once per (function, node) pair.
    """
    func = getattr(callback, "__func__", callback)
    key = (getattr(func, "__code__", func), node)
    info = _describe_cache.get(key)
    if info is None:
        name = getattr(func, "__qualname__", None) or repr(func)
        module = getattr(func, "__module__", "") or ""
        info = _describe_cache[key] = (name, subsystem_of(module), node)
    return info


def _peak_rss_mb() -> float:
    """Process peak RSS in MB (0.0 where ``resource`` is unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-unix
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return round(peak / (1024.0 * 1024.0), 3)
    return round(peak / 1024.0, 3)


class Profiler:
    """Accumulating wall-clock cost accountant for one (or more) runs.

    All tables are plain dicts updated in place so the enabled hot path
    allocates nothing beyond the stack frame list per event:

    * :attr:`by_kind` / :attr:`by_subsystem` / :attr:`by_node` —
      ``key -> [count, inclusive_ns]``;
    * :attr:`stacks` — ``(name, ...) path -> self_ns`` (exclusive time,
      the flamegraph weights);
    * :attr:`events` — root events recorded via :meth:`record_event`.

    Event *counts* and table keys are deterministic for a seeded run;
    only the nanosecond columns vary with the host.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], int] = time.perf_counter_ns,
        track_memory: bool = False,
        top_allocators: int = 5,
    ):
        self._clock = clock
        self.track_memory = track_memory
        self.top_allocators = top_allocators
        self.by_kind: "dict[str, list]" = {}
        self.by_subsystem: "dict[str, list]" = {}
        self.by_node: "dict[int, list]" = {}
        self.stacks: "dict[tuple, int]" = {}
        self.watermarks: "list[dict]" = []
        self.events = 0
        self._stack: "list[list]" = []
        self._cache: "dict[Any, tuple]" = {}
        self._started_ns = clock()
        self._finished_ns: "int | None" = None
        self._tracemalloc_started = False
        if track_memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started = True

    # -- hot path ---------------------------------------------------------------

    def push(self, name: str, subsystem: str = "other", node: "int | None" = None) -> None:
        """Open a timed frame; every ``push`` must be paired with ``pop``.

        The frame carries its full stack path (parent path + own name),
        built by one small-tuple concat here so :meth:`pop` never walks
        the stack.  The clock is read last, keeping the frame's own
        bookkeeping out of the measured window.
        """
        stack = self._stack
        path = stack[-1][3] + (name,) if stack else (name,)
        stack.append([name, subsystem, node, path, self._clock(), 0])

    def pop(self) -> None:
        """Close the innermost frame, attributing inclusive + self time."""
        end_ns = self._clock()
        stack = self._stack
        name, subsystem, node, path, start_ns, child_ns = stack.pop()
        dt = end_ns - start_ns
        if stack:
            stack[-1][5] += dt
        self_ns = dt - child_ns
        if self_ns < 0:
            self_ns = 0
        stacks = self.stacks
        stacks[path] = stacks.get(path, 0) + self_ns
        entry = self.by_kind.get(name)
        if entry is None:
            entry = self.by_kind[name] = [0, 0]
        entry[0] += 1
        entry[1] += dt
        entry = self.by_subsystem.get(subsystem)
        if entry is None:
            entry = self.by_subsystem[subsystem] = [0, 0]
        entry[0] += 1
        entry[1] += dt
        if node is not None:
            entry = self.by_node.get(node)
            if entry is None:
                entry = self.by_node[node] = [0, 0]
            entry[0] += 1
            entry[1] += dt

    def record_event(
        self, callback: Callable, args: tuple, info: "tuple | None" = None
    ) -> None:
        """Run one scheduler callback under timing (``Simulator.step``).

        ``info`` is the event's pre-computed ``(name, subsystem, node)``
        attribution (``Event.profile_info``); when absent the callback is
        classified here — an attached ``__profile_info__`` wins, then a
        cache keyed by code object.
        """
        if info is None:
            info = getattr(callback, "__profile_info__", None)
        if info is None:
            func = getattr(callback, "__func__", callback)
            key = getattr(func, "__code__", func)
            pair = self._cache.get(key)
            if pair is None:
                name = getattr(func, "__qualname__", None) or repr(func)
                module = getattr(func, "__module__", "") or ""
                pair = (name, subsystem_of(module))
                self._cache[key] = pair
            name, subsystem = pair
            node = getattr(getattr(callback, "__self__", None), "node_id", None)
        else:
            name, subsystem, node = info
        self.events += 1
        self.push(name, subsystem, node)
        try:
            callback(*args)
        finally:
            self.pop()

    @contextmanager
    def section(
        self, name: str, *, subsystem: str = "other", node: "int | None" = None
    ) -> Iterator[None]:
        """Timed frame around a block (non-hot call sites and tests)."""
        self.push(name, subsystem, node)
        try:
            yield
        finally:
            self.pop()

    # -- memory watermarks -------------------------------------------------------

    def phase(self, label: str) -> dict:
        """Record a memory watermark at a scenario phase boundary."""
        entry: dict = {
            "label": label,
            "wall_s": round((self._clock() - self._started_ns) / 1e9, 6),
            "rss_mb": _peak_rss_mb(),
        }
        if self.track_memory:
            import tracemalloc

            if tracemalloc.is_tracing():
                current, peak = tracemalloc.get_traced_memory()
                entry["traced_mb"] = round(current / 1e6, 3)
                entry["traced_peak_mb"] = round(peak / 1e6, 3)
                stats = tracemalloc.take_snapshot().statistics("lineno")
                entry["top_allocators"] = [
                    {
                        "site": f"{stat.traceback[0].filename}:"
                        f"{stat.traceback[0].lineno}",
                        "mb": round(stat.size / 1e6, 3),
                        "blocks": stat.count,
                    }
                    for stat in stats[: self.top_allocators]
                ]
        self.watermarks.append(entry)
        return entry

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it."""
        if self._tracemalloc_started:
            import tracemalloc

            tracemalloc.stop()
            self._tracemalloc_started = False

    # -- results -----------------------------------------------------------------

    def finish(self) -> "Profiler":
        """Freeze the total wall-clock span (idempotent); returns self."""
        if self._finished_ns is None:
            self._finished_ns = self._clock()
        return self

    @property
    def wall_s(self) -> float:
        end = self._finished_ns if self._finished_ns is not None else self._clock()
        return (end - self._started_ns) / 1e9

    def count_tables(self) -> dict:
        """The deterministic slice of the accounting: counts and keys only
        (no nanoseconds) — what the determinism tests compare."""
        return {
            "events": self.events,
            "by_kind": {k: v[0] for k, v in sorted(self.by_kind.items())},
            "by_subsystem": {
                k: v[0] for k, v in sorted(self.by_subsystem.items())
            },
            "by_node": {k: v[0] for k, v in sorted(self.by_node.items())},
            "stack_paths": sorted(self.stacks),
        }


# -- process-global active profiler (the enablement scope) ---------------------

_active: "Profiler | None" = None


def active() -> "Profiler | None":
    """The currently-installed profiler, or None (profiling off)."""
    return _active


def set_profiler(profiler: "Profiler | None") -> "Profiler | None":
    global _active
    previous = _active
    _active = profiler
    return previous


@contextmanager
def use_profiler(profiler: Profiler) -> Iterator[Profiler]:
    """Scope ``profiler`` as the active one; engines constructed inside
    the block attach it to their event loops."""
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)


# -- exporters -----------------------------------------------------------------


def _sorted_stacks(profiler: Profiler) -> "list[tuple[tuple, int]]":
    return sorted(profiler.stacks.items())


def to_collapsed(profiler: Profiler) -> str:
    """Collapsed-stack format (``a;b;c <µs>`` per line) — the input both
    ``flamegraph.pl`` and speedscope accept directly."""
    lines = []
    for path, self_ns in _sorted_stacks(profiler):
        weight_us = self_ns // 1000
        if weight_us <= 0:
            continue
        lines.append(";".join(path) + f" {weight_us}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(profiler: Profiler, *, name: str = "repro profile") -> dict:
    """The profile as a speedscope ``sampled`` document: one weighted
    sample per distinct stack path, weights in self-time microseconds."""
    frames: "list[dict]" = []
    index: "dict[str, int]" = {}
    samples: "list[list[int]]" = []
    weights: "list[float]" = []
    for path, self_ns in _sorted_stacks(profiler):
        weight_us = self_ns / 1000.0
        if weight_us <= 0:
            continue
        stack = []
        for part in path:
            i = index.get(part)
            if i is None:
                index[part] = i = len(frames)
                frames.append({"name": part})
            stack.append(i)
        samples.append(stack)
        weights.append(round(weight_us, 3))
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro.telemetry.profiling",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "microseconds",
                "startValue": 0,
                "endValue": round(sum(weights), 3),
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def validate_speedscope(doc) -> "list[str]":
    """Structural checks on a speedscope document; empty list == valid."""
    problems: "list[str]" = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, not a dict"]
    if "speedscope" not in str(doc.get("$schema", "")):
        problems.append("missing/foreign $schema")
    frames = doc.get("shared", {}).get("frames")
    if not isinstance(frames, list):
        problems.append("shared.frames is not a list")
        frames = []
    for i, frame in enumerate(frames):
        if not isinstance(frame, dict) or "name" not in frame:
            problems.append(f"frame {i} has no name")
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        return problems + ["no profiles"]
    for p, profile in enumerate(profiles):
        if profile.get("type") != "sampled":
            problems.append(f"profile {p}: type != sampled")
            continue
        samples = profile.get("samples", [])
        weights = profile.get("weights", [])
        if len(samples) != len(weights):
            problems.append(
                f"profile {p}: {len(samples)} samples vs {len(weights)} weights"
            )
        for s, stack in enumerate(samples):
            if any(not (0 <= i < len(frames)) for i in stack):
                problems.append(f"profile {p} sample {s}: frame index range")
                break
        if any(w < 0 for w in weights):
            problems.append(f"profile {p}: negative weight")
    return problems


def _table(table: "dict", *, key=str) -> dict:
    out = {}
    for k, (count, total_ns) in sorted(table.items(), key=lambda kv: str(kv[0])):
        total_us = total_ns / 1000.0
        out[key(k)] = {
            "count": count,
            "total_us": round(total_us, 3),
            "us_per_event": round(total_us / count, 3) if count else 0.0,
        }
    return out


def profile_doc(profiler: Profiler, *, target: str = "") -> dict:
    """The full ``PROFILE_*.json`` document for one profiled run."""
    return {
        "schema": PROFILE_SCHEMA,
        "target": target,
        "wall_s": round(profiler.wall_s, 6),
        "events": profiler.events,
        "by_kind": _table(profiler.by_kind),
        "by_subsystem": _table(profiler.by_subsystem),
        "by_node": _table(profiler.by_node, key=lambda n: str(n)),
        "watermarks": list(profiler.watermarks),
        "stacks": [
            {"stack": list(path), "self_us": round(self_ns / 1000.0, 3)}
            for path, self_ns in _sorted_stacks(profiler)
            if self_ns > 0
        ],
    }


def validate_profile(doc) -> "list[str]":
    """Structural checks on a ``PROFILE_*.json`` doc; empty list == valid."""
    problems: "list[str]" = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, not a dict"]
    if doc.get("schema") != PROFILE_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, not {PROFILE_SCHEMA!r}")
    for field in ("wall_s", "events", "by_kind", "by_subsystem", "by_node",
                  "watermarks", "stacks"):
        if field not in doc:
            problems.append(f"missing field {field!r}")
    for table_name in ("by_kind", "by_subsystem", "by_node"):
        table = doc.get(table_name, {})
        if not isinstance(table, dict):
            problems.append(f"{table_name} is not a mapping")
            continue
        for k, row in table.items():
            if not isinstance(row, dict) or not {
                "count", "total_us", "us_per_event"
            } <= set(row):
                problems.append(f"{table_name}[{k!r}] malformed")
                break
    for i, entry in enumerate(doc.get("stacks", [])):
        if not isinstance(entry, dict) or "stack" not in entry or "self_us" not in entry:
            problems.append(f"stacks[{i}] malformed")
            break
    return problems


def render_table(profiler: Profiler, *, top: int = 15) -> str:
    """Terminal µs/event table: the ``top`` costliest event kinds plus a
    per-subsystem summary and any memory watermarks."""
    lines = [
        f"profile: {profiler.events} events in {profiler.wall_s:.3f}s wall"
        + (
            f" ({profiler.events / profiler.wall_s:,.0f} events/s)"
            if profiler.wall_s > 0 and profiler.events
            else ""
        )
    ]
    header = f"{'event kind':<44} {'count':>9} {'total ms':>10} {'µs/event':>9}"
    lines += [header, "-" * len(header)]
    ranked = sorted(profiler.by_kind.items(), key=lambda kv: -kv[1][1])
    for name, (count, total_ns) in ranked[:top]:
        shown = name if len(name) <= 44 else name[:41] + "..."
        lines.append(
            f"{shown:<44} {count:>9} {total_ns / 1e6:>10.2f} "
            f"{total_ns / 1000.0 / count:>9.2f}"
        )
    if len(ranked) > top:
        lines.append(f"... and {len(ranked) - top} more kinds")
    if profiler.by_subsystem:
        lines.append("")
        lines.append(f"{'subsystem':<44} {'count':>9} {'total ms':>10} {'µs/event':>9}")
        for name, (count, total_ns) in sorted(
            profiler.by_subsystem.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(
                f"{name:<44} {count:>9} {total_ns / 1e6:>10.2f} "
                f"{total_ns / 1000.0 / count:>9.2f}"
            )
    for mark in profiler.watermarks:
        extra = (
            f"  traced={mark['traced_mb']:.1f}MB peak={mark['traced_peak_mb']:.1f}MB"
            if "traced_mb" in mark
            else ""
        )
        lines.append(
            f"watermark[{mark['label']}] t={mark['wall_s']:.2f}s "
            f"rss={mark['rss_mb']:.1f}MB{extra}"
        )
        for site in mark.get("top_allocators", ()):
            lines.append(
                f"  ↳ {site['mb']:>8.2f}MB {site['blocks']:>8} blocks  {site['site']}"
            )
    return "\n".join(lines)
