"""TVPR invariants (Fig. 1 as measurable counts).

Modern protocol: every transaction is eagerly validated at *every*
validator and gossiped across the overlay.  TVPR: exactly one eager
validation per client transaction, zero individual-transaction gossip.
"""

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology

N = 6
TXS = 10


def run_deployment(tvpr: bool):
    clients, balances = fund_clients(4)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=N, tvpr=tvpr, rpm=False),
        topology=single_region_topology(N),
        extra_balances=balances,
    )
    deployment.start()
    txs = []
    for i in range(TXS):
        sender = clients[i % 4]
        tx = make_transfer(sender, clients[(i + 1) % 4].address, 1,
                           nonce=i // 4, created_at=0.01 * i)
        deployment.submit(tx, validator_id=i % N, at=0.01 * i)
        txs.append(tx)
    deployment.run_until(8.0)
    return deployment, txs


class TestTVPRInvariant:
    def test_tvpr_validates_each_tx_exactly_once(self):
        deployment, txs = run_deployment(tvpr=True)
        total_eager = sum(v.stats.eager_validations for v in deployment.validators)
        # exactly one eager validation per client tx (no RPM, no gossip,
        # no recycling in this quiet run)
        assert total_eager == TXS
        assert all(deployment.committed_everywhere(tx) for tx in txs)

    def test_tvpr_sends_zero_tx_gossip(self):
        deployment, _ = run_deployment(tvpr=True)
        assert "gossip" not in deployment.network.stats.by_kind

    def test_modern_validates_at_every_validator(self):
        deployment, txs = run_deployment(tvpr=False)
        total_eager = sum(v.stats.eager_validations for v in deployment.validators)
        # every validator sees (and validates) every transaction once
        assert total_eager == N * TXS
        assert all(deployment.committed_everywhere(tx) for tx in txs)

    def test_modern_gossip_traffic_nonzero(self):
        deployment, _ = run_deployment(tvpr=False)
        gossip = deployment.network.stats.by_kind.get("gossip")
        assert gossip is not None
        messages, _ = gossip
        # full mesh: ≥ (n-1) sends per tx origination, plus forwards
        assert messages >= TXS * (N - 1)

    def test_redundancy_factor_matches_paper_claim(self):
        """§IV-B: 'a transaction t is eagerly validated n times, whereas
        TVPR eagerly validates a transaction t once'."""
        modern, _ = run_deployment(tvpr=False)
        tvpr, _ = run_deployment(tvpr=True)
        modern_eager = sum(v.stats.eager_validations for v in modern.validators)
        tvpr_eager = sum(v.stats.eager_validations for v in tvpr.validators)
        assert modern_eager == N * tvpr_eager

    def test_both_modes_commit_everything(self):
        """TVPR removes redundancy without losing liveness (Theorem 2)."""
        for tvpr in (True, False):
            deployment, txs = run_deployment(tvpr=tvpr)
            for tx in txs:
                assert deployment.committed_everywhere(tx)

    def test_modern_mode_wastes_bandwidth(self):
        """§III-B's second cost: gossip consumes network bytes that TVPR's
        block-only propagation never spends."""
        modern, _ = run_deployment(tvpr=False)
        tvpr, _ = run_deployment(tvpr=True)
        modern_gossip_bytes = modern.network.stats.by_kind.get("gossip", [0, 0])[1]
        tvpr_gossip_bytes = tvpr.network.stats.by_kind.get("gossip", [0, 0])[1]
        assert tvpr_gossip_bytes == 0
        # each tx ~200B gossiped across a 6-node full mesh ≥ 5 sends
        assert modern_gossip_bytes > TXS * 5 * 150

    def test_duplicate_inclusion_suppressed_in_modern_mode(self):
        """Without TVPR a tx reaches every pool — proposers would all
        include it; dedup at commit keeps exactly one copy."""
        deployment, txs = run_deployment(tvpr=False)
        chain = deployment.validators[0].blockchain
        seen = {}
        for block in chain.chain[1:]:
            for tx in block.transactions:
                seen[tx.tx_hash] = seen.get(tx.tx_hash, 0) + 1
        assert all(count == 1 for count in seen.values())
