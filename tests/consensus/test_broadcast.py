"""Bracha reliable broadcast: validity, agreement, equivocation defence."""

import random

import pytest

from repro.consensus.broadcast import ReliableBroadcast
from repro.consensus.messages import ConsensusMessage, MsgKind


class RBCCluster:
    def __init__(self, n, f, *, byzantine=()):
        self.n, self.f = n, f
        self.delivered = {}  # node -> {slot: payload}
        self.queue = []
        self.byzantine = set(byzantine)
        self.nodes = {}
        for i in range(n):
            if i in self.byzantine:
                continue
            self.nodes[i] = ReliableBroadcast(
                n=n, f=f, my_id=i, index=0,
                broadcast=self.queue.append,
                on_deliver=self._make_deliver(i),
            )

    def _make_deliver(self, i):
        def deliver(slot, payload):
            self.delivered.setdefault(i, {})[slot] = payload
        return deliver

    def run(self, rng=None):
        steps = 0
        while self.queue and steps < 100_000:
            if rng is not None and len(self.queue) > 1:
                idx = rng.randrange(len(self.queue))
                self.queue[idx], self.queue[-1] = self.queue[-1], self.queue[idx]
            msg = self.queue.pop()
            for node in self.nodes.values():
                node.on_message(msg)
            steps += 1

    def inject(self, **kw):
        self.queue.append(ConsensusMessage(index=0, round=0, **kw))


class TestValidity:
    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2)])
    def test_correct_broadcaster_delivers_everywhere(self, n, f):
        cluster = RBCCluster(n, f)
        cluster.nodes[0].broadcast_payload(b"block-0")
        cluster.run()
        for i in cluster.nodes:
            assert cluster.delivered[i][0] == b"block-0"

    def test_all_nodes_broadcast_all_slots_deliver(self):
        cluster = RBCCluster(4, 1)
        for i, node in cluster.nodes.items():
            node.broadcast_payload(f"block-{i}".encode())
        cluster.run(rng=random.Random(3))
        for i in cluster.nodes:
            assert set(cluster.delivered[i]) == {0, 1, 2, 3}


class TestAgreement:
    def test_equivocating_broadcaster_never_splits(self):
        """Byzantine node 3 sends payload A to half, B to the other half:
        at most one payload can ever be delivered, identically everywhere."""
        for seed in range(8):
            cluster = RBCCluster(4, 1, byzantine={3})
            for dst, payload in ((0, b"A"), (1, b"A"), (2, b"B")):
                # targeted SENDs: simulate by delivering directly
                cluster.nodes[dst].on_message(ConsensusMessage(
                    kind=MsgKind.RBC_SEND, index=0, instance=3, round=0,
                    value=payload, sender=3,
                ))
            cluster.run(rng=random.Random(seed))
            values = {
                tuple(sorted(d.items())) for d in cluster.delivered.values()
            }
            delivered_payloads = {
                payload for d in cluster.delivered.values() for payload in d.values()
            }
            assert len(delivered_payloads) <= 1

    def test_spoofed_send_ignored(self):
        """A SEND claiming slot 1 but sent by node 3 must be ignored."""
        cluster = RBCCluster(4, 1)
        cluster.inject(kind=MsgKind.RBC_SEND, instance=1, value=b"fake", sender=3)
        cluster.run()
        assert all(1 not in d for d in cluster.delivered.values())

    def test_ready_amplification(self):
        """f+1 READYs trigger a READY even without 2f+1 ECHOs (totality)."""
        cluster = RBCCluster(4, 1)
        node = cluster.nodes[0]
        digest_payload = (b"\x01" * 32, b"payload")
        for sender in (1, 2):
            node.on_message(ConsensusMessage(
                kind=MsgKind.RBC_READY, index=0, instance=2, round=0,
                value=digest_payload, sender=sender,
            ))
        sent_kinds = [m.kind for m in cluster.queue]
        assert MsgKind.RBC_READY in sent_kinds


class TestThresholds:
    def test_single_echo_insufficient(self):
        cluster = RBCCluster(4, 1)
        node = cluster.nodes[0]
        node.on_message(ConsensusMessage(
            kind=MsgKind.RBC_ECHO, index=0, instance=2, round=0,
            value=(b"\x02" * 32, b"p"), sender=1,
        ))
        assert not cluster.queue  # no READY yet
        assert not node.delivered(2)

    def test_duplicate_echo_not_counted(self):
        cluster = RBCCluster(4, 1)
        node = cluster.nodes[0]
        for _ in range(5):
            node.on_message(ConsensusMessage(
                kind=MsgKind.RBC_ECHO, index=0, instance=2, round=0,
                value=(b"\x02" * 32, b"p"), sender=1,
            ))
        assert not cluster.queue
