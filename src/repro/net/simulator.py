"""Minimal deterministic discrete-event scheduler.

A binary-heap event loop with a monotonic tiebreaker so that runs are fully
deterministic given a seed — the foundation both the message-level engine
and the correctness property tests rely on (hypothesis drives adversarial
schedules through ``schedule`` delays).

Fast-path machinery (always on — it is *not* a knob; determinism is
preserved by construction and checked by the differential engine suite):

* **O(1) ``pending``** — a live-event counter maintained on push, pop and
  ``Event.cancel`` replaces the previous full heap scan.
* **Lazy heap compaction** — cancelled events (retransmission/ack timers
  under reliable delivery almost always cancel) are dropped in one O(n)
  ``heapify`` rebuild once they dominate the heap, instead of bloating it
  until each is individually popped.  Rebuilding is behaviour-neutral
  because ``(time, seq)`` is a total order.
* **Coalesced timer buckets** — ``schedule_bucketed`` merges callbacks due
  at a *bitwise-identical* timestamp into one heap entry (one push/pop for
  ``n`` per-node repeating timers on a shared tick grid).  Members fire in
  registration order, which equals individual ``(time, seq)`` order as
  long as no *other* event is scheduled at the same timestamp in between —
  so any schedule at an open bucket's exact timestamp seals that bucket
  first.  Each member still consumes one ``seq`` and counts as one
  processed event, keeping the event stream byte-identical to the
  reference (uncoalesced) scheduler.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: compaction heuristic: rebuild once at least this many cancelled events
#: sit in the heap AND they make up at least half of it
_COMPACT_MIN_CANCELLED = 64


@dataclass(slots=True)
class Event:
    """One scheduled callback.

    Ordered by ``(time, seq)``; the comparison is hand-written because the
    dataclass-generated one builds two tuples per heap sift comparison.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: optional (name, subsystem, node) attribution stamped by schedulers
    #: (Node._schedule) so the profiler skips per-event classification
    profile_info: tuple | None = field(compare=False, default=None)
    #: owning simulator while the event sits in its heap (cleared on pop)
    #: so ``cancel()`` can maintain the live/cancelled counters in O(1)
    owner: "Simulator | None" = field(compare=False, default=None, repr=False)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        owner = self.owner
        if owner is not None:
            owner._note_cancel()


class _BucketMember:
    """One callback registered into a coalesced timer bucket.

    Quacks like :class:`Event` for the caller-facing bits (``cancel()``,
    ``cancelled``, ``profile_info``) without being a heap entry itself.
    """

    __slots__ = ("callback", "args", "cancelled", "profile_info", "bucket")

    def __init__(self, callback: Callable[..., None], args: tuple, bucket):
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.profile_info: tuple | None = None
        self.bucket = bucket

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        bucket = self.bucket
        if bucket is not None:
            self.bucket = None
            bucket.live -= 1
            bucket.sim._live -= 1


class _TimerBucket:
    """All callbacks due at one exact timestamp under one coalescing tag."""

    __slots__ = ("time", "tag", "members", "live", "sim")

    def __init__(self, time: float, tag: Any, sim):
        self.time = time
        self.tag = tag
        self.members: list[_BucketMember] = []
        self.live = 0
        self.sim = sim


class Simulator:
    """Deterministic event loop over simulated seconds.

    ``coalesce=False`` builds the *reference scheduler*: every
    ``schedule_bucketed`` call degrades to an individual ``schedule``.
    The differential suite runs both engines over identical workloads and
    asserts byte-identical chains, receipts and counters — the fast path
    is not allowed to be observable.
    """

    def __init__(self, *, coalesce: bool = True) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_processed = 0
        #: optional wall-clock profiler (repro.telemetry.profiling); None
        #: keeps the hot path at a single attribute check per event
        self.profiler = None
        #: whether timer/delivery coalescing is active (False = reference)
        self.coalesce = coalesce
        # live/cancelled bookkeeping for O(1) ``pending`` + compaction
        self._live = 0
        self._cancelled_in_heap = 0
        self.compactions = 0
        #: open (joinable) buckets by (time, tag); sealed buckets are
        #: removed here but stay queued in the heap
        self._open_buckets: dict[tuple[float, Any], _TimerBucket] = {}
        #: open-bucket keys per exact timestamp (seal trigger index) —
        #: keyed by time so sealing never scans unrelated open buckets
        self._open_times: dict[float, set] = {}
        #: stable bound-method reference — ``self._fire_bucket`` creates a
        #: fresh object per access, so identity checks need this one
        self._fire_bucket_ref = self._fire_bucket

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        time = self.now + delay
        if self._open_times and time in self._open_times:
            # A foreign event lands at an open bucket's exact timestamp:
            # seal so bucket members stay seq-contiguous (ordering proof).
            self._seal_time(time)
        event = Event(time, next(self._seq), callback, args)
        event.owner = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback, *args)

    def schedule_bucketed(
        self, delay: float, callback: Callable[..., None], *args: Any, tag: Any = "timer"
    ):
        """Like :meth:`schedule`, but callbacks due at a bitwise-identical
        timestamp under the same ``tag`` share one heap entry.

        Returns an :class:`Event`-like handle supporting ``cancel()`` and
        ``profile_info`` stamping.  Members fire in registration order —
        identical to what individual ``schedule`` calls would produce,
        because each member still draws one ``seq`` and any non-member
        schedule at the same timestamp seals the bucket (see module doc).
        """
        if not self.coalesce:
            return self.schedule(delay, callback, *args)
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        time = self.now + delay
        key = (time, tag)
        bucket = self._open_buckets.get(key)
        open_here = self._open_times.get(time)
        if open_here is not None and len(open_here) > (1 if bucket is not None else 0):
            # Other tags are open at this exact timestamp: seal them (a
            # member joining tag A must order after tag B's earlier
            # members, which only holds if B stops accreting now).
            self._seal_time(time, keep=key)
            bucket = self._open_buckets.get(key)
        if bucket is None:
            bucket = _TimerBucket(time, tag, self)
            event = Event(time, next(self._seq), self._fire_bucket_ref, (bucket,))
            heapq.heappush(self._heap, event)
            self._open_buckets[key] = bucket
            keys = self._open_times.get(time)
            if keys is None:
                self._open_times[time] = {key}
            else:
                keys.add(key)
        else:
            # Keep the seq stream aligned with the reference scheduler so
            # every later tie still breaks identically in both engines.
            next(self._seq)
        member = _BucketMember(callback, args, bucket)
        bucket.members.append(member)
        bucket.live += 1
        self._live += 1
        return member

    def _seal_time(self, time: float, keep: "tuple[float, Any] | None" = None) -> None:
        keys = self._open_times.get(time)
        if keys is None:
            return
        for key in keys:
            if key != keep:
                del self._open_buckets[key]
        if keep is not None and keep in self._open_buckets:
            keys.clear()
            keys.add(keep)
        else:
            del self._open_times[time]

    # -- cancellation / compaction ------------------------------------------------

    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify (order-preserving: the
        ``(time, seq)`` order is total, so heap shape is irrelevant)."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    # -- draining ----------------------------------------------------------------

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            event.owner = None
            self.now = event.time
            if event.callback is self._fire_bucket_ref:
                if self._fire_bucket(event.args[0]) == 0:
                    continue  # every member was cancelled: not an event
                return True
            self._live -= 1
            self.events_processed += 1
            profiler = self.profiler
            if profiler is None:
                event.callback(*event.args)
            else:
                profiler.record_event(
                    event.callback, event.args, event.profile_info
                )
            return True
        return False

    def _discard_bucket(self, bucket: _TimerBucket) -> None:
        """Remove a bucket from the open-bucket tables (fired or dead)."""
        key = (bucket.time, bucket.tag)
        if self._open_buckets.pop(key, None) is not None:
            keys = self._open_times.get(bucket.time)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._open_times[bucket.time]

    def _fire_bucket(self, bucket: _TimerBucket) -> int:
        """Fire a bucket's live members in registration order; returns the
        number fired.  Each member is profiled and counted individually —
        per-callback attribution survives coalescing."""
        self._discard_bucket(bucket)
        fired = 0
        profiler = self.profiler
        for member in bucket.members:
            if member.cancelled:
                continue
            member.bucket = None
            bucket.live -= 1
            fired += 1
            self._live -= 1
            self.events_processed += 1
            if profiler is None:
                member.callback(*member.args)
            else:
                profiler.record_event(
                    member.callback, member.args, member.profile_info
                )
        return fired

    def run(self, *, max_events: int | None = None) -> None:
        """Drain the event queue (optionally bounding total events)."""
        budget = max_events if max_events is not None else float("inf")
        while self._heap and budget > 0:
            if self.step():
                budget -= 1

    def run_until(self, time: float, *, max_events: int | None = None) -> None:
        """Process events with timestamps ≤ ``time``; clock ends at ``time``."""
        budget = max_events if max_events is not None else float("inf")
        fire_bucket = self._fire_bucket_ref
        while self._heap and budget > 0:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                self._cancelled_in_heap -= 1
                continue
            if head.callback is fire_bucket and head.args[0].live == 0:
                # A bucket whose members all cancelled is dead weight —
                # discard it here so ``step`` cannot run past ``time``.
                heapq.heappop(self._heap)
                self._discard_bucket(head.args[0])
                continue
            if head.time > time:
                break
            self.step()
            budget -= 1
        self.now = max(self.now, time)

    @property
    def pending(self) -> int:
        """Live (non-cancelled) scheduled callbacks — O(1)."""
        return self._live

    @property
    def cancelled_in_heap(self) -> int:
        """Cancelled events still occupying heap slots (compaction input)."""
        return self._cancelled_in_heap
