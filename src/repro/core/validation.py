"""Eager and lazy transaction validation (§II-B, §IV-D).

* **Eager validation** — performed when a transaction arrives from a client
  (and, in modern-blockchain mode, from peers): signature, size limit,
  nonce plausibility, gas affordability, balance coverage.  It is the
  expensive check — the signature verification dominates.
* **Lazy validation** — performed just before execution: nonce exactness,
  gas affordability, balance coverage.  No signature check (that happens at
  execution, raising ``ErrInvalidSig``-equivalent errors), so it is cheap.

Both return a :class:`ValidationOutcome` rather than raising, because
validators *count* failures (they feed RPM reports and DIABLO loss metrics).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from types import SimpleNamespace

from repro import params, telemetry
from repro.core.transaction import Transaction
from repro.crypto.keys import recover_check
from repro.telemetry import timed

#: How far ahead of the account nonce the pool accepts transactions
#: (Geth tolerates gaps in the queued region; we use a simple window).
NONCE_WINDOW = 1024

_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        sig_hits=reg.counter(
            "srbb_sig_cache_hits_total", "signature checks served from cache"
        ),
        sig_misses=reg.counter(
            "srbb_sig_cache_misses_total", "signature checks fully recomputed"
        ),
    )
)


@dataclass(frozen=True)
class ValidationOutcome:
    """Result of a validation pass."""

    ok: bool
    error_code: str | None = None

    def __bool__(self) -> bool:
        return self.ok


_OK = ValidationOutcome(True)


def _fail(code: str) -> ValidationOutcome:
    return ValidationOutcome(False, code)


# -- signature cache -----------------------------------------------------------
#
# Every node eagerly validates every transaction it sees, and execution
# repeats the recovery check — so the same (tx, signature) pair is verified
# many times per process.  Cache *positive* verdicts only, keyed by tx hash,
# and guard against hash-reuse tampering by storing a fingerprint of every
# signature-relevant field: a doctored transaction that somehow reuses a
# cached hash still falls through to the full ``recover_check``.

SIG_CACHE_CAPACITY = 65_536

#: tx_hash -> fingerprint of the verified transaction (LRU, positives only)
_sig_cache: "OrderedDict[bytes, tuple]" = OrderedDict()

#: The cache is shared by the eager path and by every executor — including
#: the parallel backend's worker threads.  OrderedDict move-to-end/evict is
#: not atomic, so all cache access goes through this lock; the expensive
#: work (fingerprint hashing, ``recover_check``) stays outside it.
_sig_lock = threading.Lock()


def _sig_fingerprint(tx: Transaction) -> tuple:
    return (
        tx.signing_payload(),
        tx.signature.tag,
        tx.signature.vk,
        tx.public_key.raw,
        tx.public_key.binding,
        tx.sender,
    )


def check_signature(tx: Transaction) -> bool:
    """``recover_check`` with a bounded positive-result cache.

    Negative results are never cached (an attacker could otherwise poison
    a hash before the honest submission arrives), and a cache hit counts
    only when every signature-relevant field matches the entry — reusing a
    verified transaction's hash on tampered content misses the cache.
    """
    if tx.signature is None or tx.public_key is None:
        return False
    m = _metrics()
    fingerprint = _sig_fingerprint(tx)
    with _sig_lock:
        cached = _sig_cache.get(tx.tx_hash)
        if cached is not None and cached == fingerprint:
            _sig_cache.move_to_end(tx.tx_hash)
            hit = True
        else:
            hit = False
    if hit:
        m.sig_hits.inc()
        return True
    m.sig_misses.inc()
    ok = recover_check(tx.public_key, tx.signing_payload(), tx.signature, tx.sender)
    if ok:
        with _sig_lock:
            _sig_cache[tx.tx_hash] = fingerprint
            _sig_cache.move_to_end(tx.tx_hash)
            while len(_sig_cache) > SIG_CACHE_CAPACITY:
                _sig_cache.popitem(last=False)
    return ok


def clear_signature_cache() -> None:
    """Drop every cached verdict (tests and long-running sweeps)."""
    with _sig_lock:
        _sig_cache.clear()


@timed("srbb_eager_validate_seconds", "wall time per eager validation")
def eager_validate(
    tx: Transaction,
    state,
    protocol: params.ProtocolParams | None = None,
) -> ValidationOutcome:
    """Full admission check for a transaction entering the pool.

    ``state`` is a :class:`~repro.vm.state.WorldState` (duck-typed to avoid
    an import cycle).  Checks, in the paper's order: (i) signature,
    (ii) size, (iii) nonce window, (iv) gas affordability, (v) balance.
    """
    protocol = protocol or params.ProtocolParams()
    # (i) properly signed
    if tx.signature is None or tx.public_key is None:
        return _fail("invalid-sig")
    if not check_signature(tx):
        return _fail("invalid-sig")
    # (ii) size limit
    if tx.encoded_size() > protocol.max_tx_size:
        return _fail("oversized")
    # A gas limit above the block gas limit can never fit in any block —
    # an *intrinsic* defect, checked before the account-state lookups so
    # it is reported as such even when the sender is also broke (it used
    # to surface as "insufficient-gas" whenever the balance checks ran
    # first and tripped on the inflated fee cap).
    if tx.gas_limit > protocol.block_gas_limit:
        return _fail("exceeds-block-gas")
    # (iii) nonce: not in the past, not absurdly in the future
    current = state.nonce_of(tx.sender)
    if tx.nonce < current:
        return _fail("bad-nonce")
    if tx.nonce > current + NONCE_WINDOW:
        return _fail("bad-nonce")
    # (iv) gas cost covered + (v) amount covered
    balance = state.balance_of(tx.sender)
    if balance < tx.fee_cap():
        return _fail("insufficient-gas")
    if balance < tx.max_cost():
        return _fail("insufficient-balance")
    return _OK


def lazy_validate(
    tx: Transaction,
    state,
    protocol: params.ProtocolParams | None = None,
) -> ValidationOutcome:
    """Pre-execution check: (iii) exact nonce, (iv) gas, (v) balance.

    Deliberately weaker than eager validation — no signature or size check
    (§IV-D: "lazy validation checks (iii), (iv), (v) whereas the execution
    checks (i) and (ii)").
    """
    protocol = protocol or params.ProtocolParams()
    if tx.nonce != state.nonce_of(tx.sender):
        return _fail("bad-nonce")
    balance = state.balance_of(tx.sender)
    if balance < tx.fee_cap():
        return _fail("insufficient-gas")
    if balance < tx.max_cost():
        return _fail("insufficient-balance")
    return _OK
