#!/usr/bin/env python
"""Client reads and chain auditing — the operator/wallet surface.

* reads (§II-A): balance / storage / receipt / block queries against any
  validator, over the simulated network, with f+1-matching confirmation
  for distrustful clients;
* audit: full offline replay of a replica from genesis — certificates,
  linkage, re-execution, final state root.

Run:  python examples/read_api_and_audit.py
"""

from repro import params
from repro.core.audit import audit_chain
from repro.core.deployment import Deployment, fund_clients
from repro.core.queries import QueryAPI, RemoteClient, attach_query_service
from repro.core.transaction import make_invoke, make_transfer
from repro.net.topology import single_region_topology
from repro.vm.executor import native_address_for


def main() -> None:
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        extra_balances=balances,
    )
    deployment.start()
    payment = make_transfer(clients[0], clients[1].address, 1_234, nonce=0)
    trade = make_invoke(
        clients[0], native_address_for("exchange"), "trade",
        ("GOOG", 180_55, 7, "buy"), nonce=1,
    )
    deployment.submit(payment, validator_id=0, at=0.05)
    deployment.submit(trade, validator_id=1, at=0.06)
    deployment.run_until(4.0)

    # --- local reads against one validator -----------------------------------
    api = QueryAPI(deployment.validators[2])
    print("== local reads (validator 2) ==")
    print("  head          :", api.get_head())
    print("  GOOG price    :", api.get_storage(native_address_for("exchange"),
                                               "last_price:GOOG"))
    receipt = api.get_receipt(payment.tx_hash.hex())
    print("  payment receipt:", receipt)
    assert receipt["success"]

    # --- network reads with f+1 confirmation -----------------------------------
    for validator in deployment.validators:
        attach_query_service(validator)
    wallet = RemoteClient(deployment.network, endpoint_id=500)
    requests = wallet.ask_many(range(4), "get_balance", clients[1].address)
    deployment.run_until(deployment.sim.now + 1.0)
    confirmed = wallet.confirmed_result(
        requests, threshold=deployment.protocol.f + 1
    )
    print("\n== network reads ==")
    print(f"  f+1-confirmed balance of client 1: {confirmed}")
    from repro.core.deployment import GENESIS_BALANCE

    assert confirmed == GENESIS_BALANCE + 1_234

    # --- full audit of every replica ------------------------------------------
    print("\n== chain audit ==")
    committee = set(deployment.genesis.validator_addresses)
    for validator in deployment.validators:
        report = audit_chain(
            validator.blockchain,
            genesis=deployment.genesis.build,
            committee=committee,
            registry=deployment.registry,
            coinbase_of=validator.coinbase_of,
        )
        print(f"  validator {validator.node_id}: ok={report.ok} "
              f"blocks={report.blocks_checked} txs={report.txs_replayed} "
              f"root-match={report.final_root_matches}")
        assert report.ok and report.final_root_matches
    print("\nread API + audit demo OK")


if __name__ == "__main__":
    main()
