"""Membership / committee reconfiguration (§IV-E) + slowly-adaptive adversary."""

import pytest

from repro.core.membership import (
    Committee,
    MembershipRegistry,
    SlowlyAdaptiveAdversary,
)
from repro.errors import MembershipError


def registry(candidates=8, committee_size=4, **kw):
    reg = MembershipRegistry(committee_size=committee_size, min_deposit=100, **kw)
    for i in range(candidates):
        reg.register(f"validator-{i:02d}", 100)
    return reg


class TestCandidacy:
    def test_register_and_eligible(self):
        reg = registry(5)
        assert len(reg.eligible()) == 5

    def test_deposit_below_minimum_rejected(self):
        reg = MembershipRegistry(min_deposit=100)
        with pytest.raises(MembershipError):
            reg.register("v", 99)

    def test_double_registration_rejected(self):
        reg = registry(1)
        with pytest.raises(MembershipError):
            reg.register("validator-00", 100)

    def test_withdrawal_lock_period(self):
        reg = registry(5, lock_epochs=2)
        unlock = reg.request_withdrawal("validator-00")
        assert unlock == 2
        with pytest.raises(MembershipError):
            reg.withdraw("validator-00")  # still locked
        reg.advance_epoch()
        reg.advance_epoch()
        assert reg.withdraw("validator-00") == 100

    def test_withdrawing_candidate_not_eligible(self):
        reg = registry(5)
        reg.request_withdrawal("validator-00")
        assert "validator-00" not in reg.eligible()

    def test_withdraw_without_request_fails(self):
        reg = registry(5)
        with pytest.raises(MembershipError):
            reg.withdraw("validator-00")

    def test_slash_removes_and_excludes(self):
        reg = registry(5)
        assert reg.slash("validator-00") == 100
        assert "validator-00" not in reg.eligible()
        # cannot simply re-register under the same address
        reg.register("validator-00", 100)
        assert "validator-00" not in reg.eligible()  # excluded set persists


class TestCommitteeSelection:
    def test_committee_size(self):
        committee = registry(8).committee_for(1)
        assert committee.n == 4

    def test_deterministic_given_seed(self):
        assert registry(8, seed=5).committee_for(3).members == registry(
            8, seed=5
        ).committee_for(3).members

    def test_rotation_changes_committee(self):
        reg = registry(12)
        committees = {reg.committee_for(e).members for e in range(10)}
        assert len(committees) > 1  # rotation actually rotates

    def test_every_candidate_eventually_selected(self):
        """§IV-E: each candidate is eventually selected because selection
        is random and periodic."""
        reg = registry(6, committee_size=3)
        seen = set()
        for epoch in range(60):
            seen.update(reg.committee_for(epoch).members)
        assert seen == set(reg.eligible())

    def test_insufficient_candidates_raises(self):
        reg = registry(3, committee_size=4)
        with pytest.raises(MembershipError):
            reg.committee_for(1)

    def test_advance_epoch(self):
        reg = registry(8)
        committee = reg.advance_epoch()
        assert committee.epoch == 1
        assert reg.current_epoch == 1


class TestSlowlyAdaptiveAdversary:
    def test_corruption_only_between_epochs(self):
        adversary = SlowlyAdaptiveAdversary(f=1, budget_per_epoch=2)
        committee = Committee(epoch=1, members=("a", "b", "c", "d"))
        assert adversary.corrupt(committee, ["a", "b"]) == ["a"]  # global f cap
        assert adversary.corrupt(committee, ["c"]) == []  # same epoch: blocked

    def test_global_budget_never_exceeds_f(self):
        adversary = SlowlyAdaptiveAdversary(f=2, budget_per_epoch=5)
        members = ("a", "b", "c", "d", "e", "f", "g")
        for epoch in range(1, 10):
            committee = Committee(epoch=epoch, members=members)
            adversary.corrupt(committee, list(members))
            assert len(adversary.corrupted) <= 2
            assert adversary.corrupted_in(committee) <= 2

    def test_release_frees_budget(self):
        adversary = SlowlyAdaptiveAdversary(f=1, budget_per_epoch=1)
        c1 = Committee(epoch=1, members=("a", "b", "c", "d"))
        assert adversary.corrupt(c1, ["a"]) == ["a"]
        c2 = Committee(epoch=2, members=("a", "b", "c", "d"))
        assert adversary.corrupt(c2, ["b"]) == []  # budget exhausted
        adversary.release("a")
        c3 = Committee(epoch=3, members=("a", "b", "c", "d"))
        assert adversary.corrupt(c3, ["b"]) == ["b"]

    def test_already_corrupted_not_recounted(self):
        adversary = SlowlyAdaptiveAdversary(f=2, budget_per_epoch=2)
        c1 = Committee(epoch=1, members=("a", "b"))
        adversary.corrupt(c1, ["a"])
        c2 = Committee(epoch=2, members=("a", "b"))
        assert adversary.corrupt(c2, ["a", "b"]) == ["b"]


class TestApplyRpmEvents:
    def registry_with(self, *addresses):
        registry = MembershipRegistry(committee_size=2, min_deposit=10)
        for address in addresses:
            registry.register(address, 10)
        return registry

    def event(self, address):
        from repro.core.rpm import ByzantineEvent

        return ByzantineEvent(
            address=address, block_number=3,
            tx_hash_hex="ab" * 32, penalty=10,
        )

    def test_slashes_each_newly_named_address(self):
        registry = self.registry_with("a", "b", "c")
        slashed = registry.apply_rpm_events((self.event("b"),))
        assert slashed == ["b"]
        assert "b" in registry.excluded
        assert "b" not in registry.candidates
        assert registry.eligible() == ["a", "c"]

    def test_idempotent_over_replayed_events(self):
        registry = self.registry_with("a", "b", "c")
        registry.apply_rpm_events((self.event("b"),))
        assert registry.apply_rpm_events((self.event("b"),)) == []

    def test_excluded_never_drawn_again(self):
        registry = self.registry_with("a", "b", "c")
        registry.apply_rpm_events((self.event("c"),))
        committee = registry.committee_for(5)
        assert "c" not in committee.members
