"""Prometheus/JSON export and the round-trip parser."""

import json
import math

import pytest

from repro.telemetry import (
    MetricsRegistry,
    parse_prometheus,
    to_json,
    to_prometheus,
    use_registry,
    write_metrics,
)


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("srbb_txs_total", "transactions seen")
    c.labels(source="client").inc(7)
    c.labels(source="peer").inc(3)
    reg.gauge("srbb_pool_size", "pool occupancy").set(42)
    h = reg.histogram("srbb_latency_seconds", "latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5, weight=2)
    h.observe(30.0)
    return reg


class TestPrometheus:
    def test_headers_and_samples(self):
        text = to_prometheus(_populated_registry())
        assert "# HELP srbb_txs_total transactions seen" in text
        assert "# TYPE srbb_txs_total counter" in text
        assert 'srbb_txs_total{source="client"} 7' in text
        assert 'srbb_txs_total{source="peer"} 3' in text
        assert "srbb_pool_size 42" in text
        assert "# TYPE srbb_latency_seconds histogram" in text
        assert 'srbb_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'srbb_latency_seconds_bucket{le="1"} 3' in text
        assert 'srbb_latency_seconds_bucket{le="+Inf"} 4' in text
        assert "srbb_latency_seconds_count 4" in text

    def test_round_trip(self):
        reg = _populated_registry()
        samples = parse_prometheus(to_prometheus(reg))
        assert samples[("srbb_txs_total", (("source", "client"),))] == 7
        assert samples[("srbb_pool_size", ())] == 42
        assert samples[("srbb_latency_seconds_count", ())] == 4
        assert samples[("srbb_latency_seconds_sum", ())] == pytest.approx(31.05)
        assert samples[("srbb_latency_seconds_bucket", (("le", "+Inf"),))] == 4

    def test_label_escaping_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c_total").labels(err='bad "quote"').inc()
        samples = parse_prometheus(to_prometheus(reg))
        assert samples[("c_total", (("err", 'bad "quote"'),))] == 1

    def test_hostile_label_values_round_trip(self):
        hostile = {
            "quotes": 'she said "hi"',
            "backslash": r"C:\temp\new",
            "newline": "line1\nline2",
            "mixed": 'a\\"b\nc',
        }
        reg = MetricsRegistry()
        for key, value in hostile.items():
            reg.counter(f"{key}_total").labels(v=value).inc()
        samples = parse_prometheus(to_prometheus(reg))
        for key, value in hostile.items():
            assert samples[(f"{key}_total", (("v", value),))] == 1

    def test_label_names_sanitized_to_legal_charset(self):
        # names can't be quoted in exposition format, so they get mapped
        reg = MetricsRegistry()
        reg.counter("c_total").labels(**{"src.region": "x"}).inc()
        text = to_prometheus(reg)
        assert 'src_region="x"' in text
        assert "src.region" not in text

    def test_digit_leading_label_name_prefixed(self):
        reg = MetricsRegistry()
        reg.counter("c_total").labels(**{"0bad": "x"}).inc()
        assert '_0bad="x"' in to_prometheus(reg)

    def test_duplicate_label_names_after_sanitization_rejected(self):
        reg = MetricsRegistry()
        reg.counter("c_total").labels(**{"a.b": "x", "a_b": "y"}).inc()
        with pytest.raises(ValueError, match="duplicate label name"):
            to_prometheus(reg)

    def test_parser_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("no-value-here")
        with pytest.raises(ValueError):
            parse_prometheus('c_total{unclosed="x" 5')

    def test_parser_skips_comments_and_blanks(self):
        assert parse_prometheus("# HELP x y\n\n# TYPE x counter\n") == {}

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJson:
    def test_snapshot_shape(self):
        snap = to_json(_populated_registry())
        txs = snap["srbb_txs_total"]
        assert txs["type"] == "counter"
        by_label = {s["labels"].get("source"): s["value"] for s in txs["samples"]}
        assert by_label == {"client": 7.0, "peer": 3.0}
        hist = snap["srbb_latency_seconds"]["samples"][0]
        assert hist["count"] == 4
        assert hist["min"] == 0.05 and hist["max"] == 30.0
        assert hist["p50"] <= hist["p99"] <= 30.0
        assert hist["buckets"][-1]["le"] == "+Inf"

    def test_serializable(self):
        json.dumps(to_json(_populated_registry()))

    def test_empty_histogram_reports_null_extrema(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds")
        sample = to_json(reg)["h_seconds"]["samples"][0]
        assert sample["min"] is None and sample["max"] is None

    def test_exemplars_exported_when_traced(self):
        from repro.telemetry import Tracer, set_tracer

        reg = MetricsRegistry()
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            with tracer.span("commit"):
                reg.histogram("h_seconds").observe(0.7)
        finally:
            set_tracer(previous)
        sample = to_json(reg)["h_seconds"]["samples"][0]
        (ex,) = sample["exemplars"]
        assert ex["value"] == 0.7 and ex["span_id"] == "s1"
        json.dumps(sample)  # stays serializable

    def test_no_exemplars_key_without_tracing(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds").observe(0.7)
        assert "exemplars" not in to_json(reg)["h_seconds"]["samples"][0]


class TestWriteMetrics:
    def test_prometheus_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_metrics(str(path), _populated_registry())
        assert parse_prometheus(path.read_text())[("srbb_pool_size", ())] == 42

    def test_json_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(str(path), _populated_registry())
        assert json.loads(path.read_text())["srbb_pool_size"]["samples"][0]["value"] == 42

    def test_defaults_to_global_registry(self, tmp_path):
        path = tmp_path / "metrics.prom"
        with use_registry() as reg:
            reg.counter("global_total").inc(9)
            write_metrics(str(path))
        assert parse_prometheus(path.read_text())[("global_total", ())] == 9
