"""Shared fixtures for the SRBB reproduction test suite."""

from __future__ import annotations

import pytest

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.crypto.keys import generate_keypair
from repro.net.topology import single_region_topology
from repro.vm.contracts import (
    ExchangeContract,
    MobilityContract,
    TicketingContract,
)
from repro.vm.contracts.base import NativeRegistry
from repro.vm.executor import Executor, install_native
from repro.vm.state import WorldState

FUNDS = 10**12


@pytest.fixture(autouse=True)
def _fresh_signature_cache():
    """Keep the process-global verified-signature cache test-hermetic."""
    from repro.core.validation import clear_signature_cache

    clear_signature_cache()
    yield
    clear_signature_cache()


@pytest.fixture
def keypair():
    return generate_keypair(1)


@pytest.fixture
def keypair2():
    return generate_keypair(2)


@pytest.fixture
def state(keypair, keypair2):
    """World state with two funded externally-owned accounts."""
    ws = WorldState()
    ws.create_account(keypair.address, FUNDS)
    ws.create_account(keypair2.address, FUNDS)
    ws.commit()
    return ws


@pytest.fixture
def registry():
    reg = NativeRegistry()
    reg.register(ExchangeContract())
    reg.register(MobilityContract())
    reg.register(TicketingContract())
    return reg


@pytest.fixture
def executor(state, registry):
    for name in (ExchangeContract.name, MobilityContract.name, TicketingContract.name):
        install_native(state, name)
    state.commit()
    return Executor(state, registry=registry)


@pytest.fixture
def small_deployment():
    """4-validator single-region SRBB deployment with 4 funded clients."""
    clients, balances = fund_clients(4)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        extra_balances=balances,
    )
    deployment.client_keypairs = clients  # type: ignore[attr-defined]
    return deployment
