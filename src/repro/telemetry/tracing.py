"""Structured tracing — spans and point events, dumped as JSONL.

A trace is an append-only sequence of records with monotonic timestamps
(``time.monotonic`` relative to tracer creation), so a whole DIABLO run
can be replayed after the fact:

* ``{"ts": 0.0123, "type": "event", "name": "node.commit", "attrs": {...}}``
* ``{"ts": 0.0007, "type": "span", "name": "sim.run", "dur": 2.41, "attrs": {...}}``

Like the metrics registry, the process-global tracer starts *disabled*:
``span``/``event`` are one-branch no-ops until the CLI's ``--trace-out``
(or a test) enables it.  Simulation call-sites pass the simulated clock
as an ordinary attribute (e.g. ``sim_now=...``) — ``ts`` is always wall
monotonic time.
"""

from __future__ import annotations

import itertools
import json
import time
from contextlib import contextmanager, nullcontext
from typing import Iterator

__all__ = [
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "event",
    "current_span_id",
]


class Tracer:
    """Buffering trace recorder; cheap no-op while disabled.

    Every span gets a deterministic ID (``s1``, ``s2``, … in start order)
    and the tracer keeps the stack of currently-open spans, so other
    subsystems — histogram exemplars, notably — can link an observation
    back to the span that produced it via :attr:`current_span_id`.
    """

    def __init__(self, *, enabled: bool = True, clock=time.monotonic):
        self.enabled = enabled
        self._clock = clock
        self._t0 = clock()
        self._records: list[dict] = []
        self._next_span = itertools.count(1)
        self._stack: list[str] = []

    # -- recording -------------------------------------------------------------

    def now(self) -> float:
        return self._clock() - self._t0

    @property
    def current_span_id(self) -> "str | None":
        """ID of the innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def event(self, name: str, **attrs) -> None:
        """Record a point event (tagged with the enclosing span, if any)."""
        if not self.enabled:
            return
        record = {
            "ts": round(self.now(), 6), "type": "event", "name": name, "attrs": attrs
        }
        if self._stack:
            record["span_id"] = self._stack[-1]
        self._records.append(record)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Record a timed span around a block; yields the mutable attrs
        dict so the body can attach results (counts, outcomes)."""
        if not self.enabled:
            yield attrs
            return
        span_id = f"s{next(self._next_span)}"
        parent_id = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = self.now()
        try:
            yield attrs
        finally:
            end = self.now()
            self._stack.pop()
            record = {
                "ts": round(start, 6),
                "type": "span",
                "name": name,
                "span_id": span_id,
                "dur": round(end - start, 6),
                "attrs": attrs,
            }
            if parent_id is not None:
                record["parent_id"] = parent_id
            self._records.append(record)

    # -- access / export -------------------------------------------------------

    @property
    def records(self) -> "list[dict]":
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()
        self._t0 = self._clock()
        # Restart span IDs so repeated captured runs produce identical
        # traces (and exemplar span references) for identical work.
        self._next_span = itertools.count(1)
        self._stack.clear()

    def dumps(self) -> str:
        """The whole trace as JSONL (one record per line, ts-ordered)."""
        ordered = sorted(self._records, key=lambda r: r["ts"])
        return "".join(json.dumps(r, default=str) + "\n" for r in ordered)

    def dump(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps())


#: disabled by default, mirroring the metrics registry
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def span(name: str, **attrs):
    """Span on the global tracer (cheap nullcontext while disabled)."""
    tracer = _default_tracer
    if not tracer.enabled:
        return nullcontext(attrs)
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Point event on the global tracer."""
    tracer = _default_tracer
    if tracer.enabled:
        tracer.event(name, **attrs)


def current_span_id() -> "str | None":
    """ID of the global tracer's innermost open span (None when idle)."""
    tracer = _default_tracer
    return tracer._stack[-1] if (tracer.enabled and tracer._stack) else None
