"""Leader-based (PBFT-style) consensus: happy path, view change, safety."""

import random

import pytest

from repro.consensus.leader import (
    COMMIT,
    PREPARE,
    PROPOSAL,
    VIEWCHANGE,
    LeaderConsensus,
    LeaderMessage,
)
from repro.core.block import make_block
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair
from repro.net.simulator import Simulator


def _block(kp, proposer_id, index=1, seed=5):
    sender = generate_keypair(seed)
    txs = [make_transfer(sender, "aa" * 20, 1, nonce=0)]
    return make_block(kp, proposer_id, index, txs, round=index)


class LeaderCluster:
    """n LeaderConsensus instances on a shared Simulator."""

    def __init__(self, n=4, f=1, *, index=1, crashed=(), view_timeout=2.0):
        self.sim = Simulator()
        self.decided = {}
        self.keypairs = [generate_keypair(5000 + i) for i in range(n)]
        self.crashed = set(crashed)
        self.nodes = {}
        for i in range(n):
            if i in self.crashed:
                continue
            self.nodes[i] = LeaderConsensus(
                n=n, f=f, my_id=i, index=index,
                send=self._make_send(),
                on_decide=lambda b, i=i: self.decided.__setitem__(i, b),
                schedule_timeout=lambda d, cb: self.sim.schedule(d, cb),
                view_timeout=view_timeout,
            )
        self.index = index

    def _make_send(self):
        def send(msg: LeaderMessage):
            # network broadcast with small latency
            for j, node in self.nodes.items():
                self.sim.schedule(0.01, node.on_message, msg)
        return send

    def start(self):
        for i, node in self.nodes.items():
            node.start(lambda i=i: _block(self.keypairs[i], i, self.index))

    def run(self, until=30.0):
        self.sim.run_until(until)


class TestHappyPath:
    def test_leader_proposal_decided_by_all(self):
        cluster = LeaderCluster()
        cluster.start()
        cluster.run(5.0)
        assert len(cluster.decided) == 4
        hashes = {b.block_hash for b in cluster.decided.values()}
        assert len(hashes) == 1
        # view-1 leader for index 1 is node (1+0) % 4 = 1
        assert next(iter(cluster.decided.values())).proposer_id == 1

    def test_one_decision_per_instance(self):
        cluster = LeaderCluster()
        cluster.start()
        cluster.run(10.0)
        # decided is stable after more time (no re-decision)
        first = dict(cluster.decided)
        cluster.run(20.0)
        assert {k: v.block_hash for k, v in cluster.decided.items()} == {
            k: v.block_hash for k, v in first.items()
        }


class TestViewChange:
    def test_crashed_leader_replaced(self):
        # index 1 → leader of view 0 is node 1; crash it
        cluster = LeaderCluster(crashed={1}, view_timeout=1.0)
        cluster.start()
        cluster.run(15.0)
        assert len(cluster.decided) == 3
        block = next(iter(cluster.decided.values()))
        assert block.proposer_id != 1  # the view-1 leader took over
        hashes = {b.block_hash for b in cluster.decided.values()}
        assert len(hashes) == 1

    def test_two_crashed_leaders(self):
        # views 0,1 leaders for index 0: nodes 0 and 1 — n=7 so f=2
        cluster = LeaderCluster(n=7, f=2, index=0, crashed={0, 1},
                                view_timeout=1.0)
        cluster.start()
        cluster.run(25.0)
        assert len(cluster.decided) == 5
        hashes = {b.block_hash for b in cluster.decided.values()}
        assert len(hashes) == 1

    def test_view_timer_noop_after_decide(self):
        cluster = LeaderCluster(view_timeout=0.5)
        cluster.start()
        cluster.run(20.0)  # many timer firings post-decision
        assert all(node.view == 0 for node in cluster.nodes.values())


class TestByzantineLeader:
    def test_equivocating_leader_cannot_split(self):
        """Leader sends block A to half and block B to the other half:
        quorum intersection allows at most one digest to commit."""
        cluster = LeaderCluster(view_timeout=1.5)
        leader_id = 1
        kp = cluster.keypairs[leader_id]
        block_a = _block(kp, leader_id, seed=10)
        block_b = _block(kp, leader_id, seed=11)
        # bypass start(): hand-deliver conflicting proposals
        for i, node in cluster.nodes.items():
            block = block_a if i % 2 == 0 else block_b
            msg = LeaderMessage(kind=PROPOSAL, index=1, view=0,
                                payload=block, sender=leader_id)
            cluster.sim.schedule(0.01, node.on_message, msg)
        # non-leader replicas participate normally
        for i, node in cluster.nodes.items():
            if i != leader_id:
                node.start(lambda i=i: _block(cluster.keypairs[i], i))
        cluster.run(30.0)
        decided_hashes = {b.block_hash for b in cluster.decided.values()}
        assert len(decided_hashes) <= 1

    def test_non_leader_proposal_ignored(self):
        cluster = LeaderCluster()
        intruder = 3  # not the view-0 leader for index 1
        block = _block(cluster.keypairs[intruder], intruder)
        msg = LeaderMessage(kind=PROPOSAL, index=1, view=0,
                            payload=block, sender=intruder)
        for node in cluster.nodes.values():
            node.on_message(msg)
        assert all(
            node._state(0).proposal is None for node in cluster.nodes.values()
        )

    def test_forged_votes_insufficient(self):
        """One Byzantine sender repeating PREPAREs can't reach quorum."""
        cluster = LeaderCluster()
        node = cluster.nodes[0]
        digest = b"\x01" * 32
        for _ in range(10):
            node.on_message(LeaderMessage(
                kind=PREPARE, index=1, view=0, payload=digest, sender=3
            ))
        assert len(node._state(0).prepares[digest]) == 1


class TestSingleLeaderThroughputShape:
    def test_one_block_per_round_vs_superblock(self):
        """Engine-level §VI contrast: a leader round decides ONE proposer's
        block; the superblock decides everyone's."""
        cluster = LeaderCluster()
        cluster.start()
        cluster.run(5.0)
        block = next(iter(cluster.decided.values()))
        assert len(block) == 1  # one proposer's single-tx block

        # superblock, same conditions (4 proposers × 1 tx each)
        from tests.consensus.test_superblock import SBCluster

        sb_cluster = SBCluster(4, 1)
        sb_cluster.propose_all(txs=1)
        sb_cluster.run()
        superblock = next(iter(sb_cluster.superblocks.values()))
        assert superblock.transaction_count() == 4
