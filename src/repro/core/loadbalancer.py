"""Distributed load balancer + client resend loop (§VI).

TVPR's censorship drawback: a transaction sent only to a censoring
validator never enters a block.  The discussed mitigation is a randomly
forwarding load balancer in front of the validators, with an automated
client resend when no receipt arrives within a timeout — each retry lands
on an independently random validator, so the probability of hitting only
censors decays geometrically (with c censors out of n, P[still censored
after k tries] = (c/n)^k).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.deployment import Deployment
from repro.core.transaction import Transaction


@dataclass
class LoadBalancerStats:
    forwarded: int = 0
    resends: int = 0
    confirmed: int = 0
    gave_up: int = 0
    #: per-transaction attempt counts (censorship-cost evidence)
    attempts: dict[bytes, int] = field(default_factory=dict)


class RandomLoadBalancer:
    """Forwards each transaction to a uniformly random validator and
    resends on behalf of the client until a receipt appears."""

    def __init__(
        self,
        deployment: Deployment,
        *,
        receipt_timeout_s: float = 5.0,
        max_attempts: int = 10,
        confirmations: int | None = None,
        seed: int = 3,
    ):
        self.deployment = deployment
        self.receipt_timeout_s = receipt_timeout_s
        self.max_attempts = max_attempts
        self.confirmations = (
            confirmations if confirmations is not None
            else deployment.protocol.f + 1
        )
        self.rng = np.random.default_rng(seed)
        self.stats = LoadBalancerStats()

    def submit(self, tx: Transaction, *, at: float = 0.0) -> None:
        """Client entry point: forward now (or at a scheduled time)."""
        self.deployment.sim.schedule_at(at, self._attempt, tx, 1)

    # -- internals -----------------------------------------------------------------

    def _attempt(self, tx: Transaction, attempt: int) -> None:
        target = int(self.rng.integers(self.deployment.protocol.n))
        self.stats.forwarded += 1
        self.stats.attempts[tx.tx_hash] = attempt
        self.deployment.validators[target].submit_transaction(tx)
        self.deployment.sim.schedule(
            self.receipt_timeout_s, self._check_receipt, tx, attempt
        )

    def _confirmed(self, tx: Transaction) -> bool:
        count = sum(
            1
            for v in self.deployment.correct_validators
            if v.blockchain.contains_tx(tx)
        )
        return count >= self.confirmations

    def _check_receipt(self, tx: Transaction, attempt: int) -> None:
        if self._confirmed(tx):
            self.stats.confirmed += 1
            return
        if attempt >= self.max_attempts:
            self.stats.gave_up += 1
            return
        # No receipt within the period: automated resend (§VI).
        self.stats.resends += 1
        self._attempt(tx, attempt + 1)


def censorship_probability(n: int, censors: int, attempts: int) -> float:
    """Analytic P[transaction still censored after ``attempts`` forwards]."""
    if not 0 <= censors <= n:
        raise ValueError("censors must be within the validator count")
    return (censors / n) ** attempts
