"""Adversary unit behaviour (block-level, without a full deployment)."""

from repro.adversary import make_invalid_transactions
from repro.core.validation import eager_validate, lazy_validate
from repro.vm.state import WorldState


class TestInvalidTransactionFactory:
    def test_invalid_txs_are_signed_but_unfunded(self):
        state = WorldState()
        txs = make_invalid_transactions(5)
        for tx in txs:
            # genuine signature...
            assert tx.signature is not None
            # ...but zero balance: eager validation must reject (checks iv/v)
            outcome = eager_validate(tx, state)
            assert not outcome
            assert outcome.error_code in ("insufficient-gas", "insufficient-balance")

    def test_invalid_txs_fail_lazy_validation_too(self):
        state = WorldState()
        for tx in make_invalid_transactions(3):
            assert not lazy_validate(tx, state)

    def test_deterministic_per_seed(self):
        a = make_invalid_transactions(3, seed=5)
        b = make_invalid_transactions(3, seed=5)
        assert [t.tx_hash for t in a] == [t.tx_hash for t in b]

    def test_distinct_across_seeds(self):
        a = make_invalid_transactions(3, seed=5)
        b = make_invalid_transactions(3, seed=6)
        assert {t.tx_hash for t in a}.isdisjoint({t.tx_hash for t in b})

    def test_count(self):
        assert len(make_invalid_transactions(17)) == 17
        assert make_invalid_transactions(0) == []


class TestParams:
    def test_protocol_derives_f(self):
        from repro import params

        assert params.ProtocolParams(n=4).f == 1
        assert params.ProtocolParams(n=10).f == 3
        assert params.ProtocolParams(n=10).quorum == 7

    def test_invalid_resilience_rejected(self):
        import pytest

        from repro import params

        with pytest.raises(ValueError):
            params.ProtocolParams(n=3, f=1)
        with pytest.raises(ValueError):
            params.ProtocolParams(n=0)

    def test_with_override(self):
        from repro import params

        p = params.ProtocolParams(n=4)
        q = p.with_(tvpr=False)
        assert q.tvpr is False and p.tvpr is True
        assert q.n == 4
