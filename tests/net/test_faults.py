"""Delay strategies + their effect on live deployments."""

import pytest

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.net.faults import (
    combine,
    combine_drops,
    drop_rate,
    duplicate_rate,
    hard_partition,
    is_drop_fn,
    no_delay,
    slow_nodes,
    soft_partition,
    targeted_proposer_lag,
    uniform_jitter,
)
from repro.net.topology import single_region_topology
from repro.net.transport import PartialSynchrony


class TestStrategies:
    def test_no_delay(self):
        assert no_delay()(0, 1, 5.0) == 0.0

    def test_uniform_jitter_bounded(self):
        fn = uniform_jitter(0.5, seed=1)
        samples = [fn(0, 1, 0.0) for _ in range(100)]
        assert all(0.0 <= s <= 0.5 for s in samples)
        assert max(samples) > 0.1

    def test_slow_nodes(self):
        fn = slow_nodes([2], 1.5)
        assert fn(2, 0, 0.0) == 1.5
        assert fn(0, 2, 0.0) == 1.5
        assert fn(0, 1, 0.0) == 0.0

    def test_soft_partition_heals(self):
        fn = soft_partition([0, 1], [2, 3], 2.0, heal_at=10.0)
        assert fn(0, 2, 5.0) == 2.0
        assert fn(0, 1, 5.0) == 0.0
        assert fn(0, 2, 10.0) == 0.0

    def test_targeted_lag(self):
        fn = targeted_proposer_lag(1, 3.0, until=5.0)
        assert fn(1, 0, 1.0) == 3.0
        assert fn(0, 1, 1.0) == 0.0  # only outgoing
        assert fn(1, 0, 6.0) == 0.0

    def test_combine(self):
        fn = combine(slow_nodes([0], 1.0), targeted_proposer_lag(0, 2.0))
        assert fn(0, 1, 0.0) == 3.0


class TestDropStrategies:
    """Model-2 (lossy-link) factories are probability-valued."""

    def test_drop_rate_window_and_scope(self):
        fn = drop_rate(0.3, nodes=[2], start=1.0, until=5.0)
        assert fn(2, 0, 2.0) == 0.3
        assert fn(0, 2, 2.0) == 0.3
        assert fn(0, 1, 2.0) == 0.0  # doesn't touch node 2
        assert fn(2, 0, 0.5) == 0.0  # before the window
        assert fn(2, 0, 5.0) == 0.0  # window end is exclusive

    def test_drop_rate_link_scope(self):
        fn = drop_rate(0.5, links=[(0, 1)])
        assert fn(0, 1, 0.0) == 0.5
        assert fn(1, 0, 0.0) == 0.0  # directed

    def test_drop_rate_rejects_bad_probability(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            drop_rate(1.5)

    def test_duplicate_rate_window(self):
        fn = duplicate_rate(0.2, until=3.0)
        assert fn(0, 1, 1.0) == 0.2
        assert fn(0, 1, 3.0) == 0.0

    def test_hard_partition_severs_cross_group_until_heal(self):
        fn = hard_partition([[0, 1], [2, 3]], at=2.0, heal_at=8.0)
        assert fn(0, 2, 4.0) == 1.0
        assert fn(0, 1, 4.0) == 0.0  # same island
        assert fn(0, 2, 1.0) == 0.0  # before the partition
        assert fn(0, 2, 8.0) == 0.0  # healed

    def test_hard_partition_ungrouped_nodes_are_islands(self):
        fn = hard_partition([[0, 1]], at=0.0)
        assert fn(2, 3, 1.0) == 1.0  # two singleton islands
        assert fn(0, 2, 1.0) == 1.0
        assert fn(2, 2, 1.0) == 0.0  # loopback stays up

    def test_hard_partition_validates_groups(self):
        with pytest.raises(ValueError, match="disjoint"):
            hard_partition([[0, 1], [1, 2]])
        with pytest.raises(ValueError, match="heal_at"):
            hard_partition([[0], [1]], at=5.0, heal_at=2.0)

    def test_drop_fns_are_tagged(self):
        assert is_drop_fn(drop_rate(0.1))
        assert is_drop_fn(duplicate_rate(0.1))
        assert is_drop_fn(hard_partition([[0], [1]]))
        assert not is_drop_fn(slow_nodes([0], 1.0))


class TestComposition:
    """One algebra per fault model — never mixed silently."""

    def test_combine_rejects_drop_functions(self):
        # Summing probabilities is meaningless (60% + 60% != 120% loss);
        # the delay combinator must refuse rather than corrupt.
        with pytest.raises(TypeError, match="combine_drops"):
            combine(slow_nodes([0], 1.0), drop_rate(0.6))

    def test_combine_drops_independent_losses(self):
        fn = combine_drops(drop_rate(0.5), drop_rate(0.5))
        assert fn(0, 1, 0.0) == pytest.approx(0.75)  # 1 - 0.5 * 0.5

    def test_combine_drops_clamps_at_certain_loss(self):
        fn = combine_drops(drop_rate(0.4), hard_partition([[0], [1]]))
        assert fn(0, 1, 0.0) == 1.0

    def test_combine_drops_result_is_itself_a_drop_fn(self):
        assert is_drop_fn(combine_drops(drop_rate(0.1)))

    def test_combine_drops_rejects_delay_values(self):
        # A delay function sneaks past the tag check but returns seconds;
        # any value outside [0, 1] must raise at evaluation time.
        fn = combine_drops(slow_nodes([0], 3.0))
        with pytest.raises(ValueError, match="probability"):
            fn(0, 1, 0.0)


class TestLiveEffects:
    def _deployment(self, delay_fn, *, gst=5.0):
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4, rpm=False),
            topology=single_region_topology(4),
            extra_balances=balances,
            timing=PartialSynchrony(gst=gst, delta=0.5, pre_gst_max_delay=4.0),
            proposer_timeout=3.0,
        )
        deployment.network.adversarial_delay = delay_fn
        return deployment, clients

    def test_soft_partition_recovers_after_heal(self):
        deployment, clients = self._deployment(
            soft_partition([0, 1], [2, 3], 3.5, heal_at=6.0), gst=6.0
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.1)
        deployment.run_until(30.0)
        assert deployment.committed_everywhere(tx)
        assert deployment.safety_holds()
        assert deployment.states_agree()

    def test_targeted_lag_cannot_lose_transactions(self):
        """Delaying one correct proposer may get its blocks voted out, but
        recycling (and eventually GST) commits its transactions anyway."""
        deployment, clients = self._deployment(
            targeted_proposer_lag(0, 3.5, until=8.0), gst=8.0
        )
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.1)  # to the lagged node!
        deployment.run_until(40.0)
        assert deployment.committed_everywhere(tx)
        assert deployment.safety_holds()
