"""``repro.faults`` — the deterministic chaos engine (crash–recovery PR).

* :class:`FaultSchedule` / :class:`FaultEvent` — declarative, seeded
  fault timelines (crash, restart, drop, duplicate, reorder, partition).
* :class:`FaultController` — applies a schedule to a live deployment:
  clock-driven crash/restart plus the transport's link-fault model.
* :class:`LivenessWatchdog` — per-node stall detector separating "slow"
  from "wedged" in chaos runs.

Which fault *model* (delay-only, lossy-link, crash–recovery) preserves
which protocol guarantee is documented in ``docs/FAULTS.md`` and in the
:mod:`repro.net.faults` module docstring.
"""

from repro.faults.controller import FaultController
from repro.faults.schedule import EVENT_KINDS, FaultEvent, FaultSchedule
from repro.faults.watchdog import LivenessWatchdog

__all__ = [
    "EVENT_KINDS",
    "FaultController",
    "FaultEvent",
    "FaultSchedule",
    "LivenessWatchdog",
]
