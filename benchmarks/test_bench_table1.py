"""TAB1 — Table I: SRBB w/o RPM vs w/ RPM under a flooding attack.

Paper-scale message-level run: 4 validators in one region (Sydney), one
Byzantine flooder, 20 000 valid + 10 000 invalid transactions sent
open-loop at 15 000 TPS.  Paper of record: 3 998.2 TPS → 4 285.71 TPS
(+7 %), zero valid transactions dropped in both configurations.
"""

from repro.analysis.figures import table1
from repro.diablo.report import format_table1


def test_table1(benchmark, run_once):
    no_rpm, with_rpm = run_once(benchmark, table1)
    print()
    print(format_table1(no_rpm.as_report_mapping(), with_rpm.as_report_mapping()))
    print(
        f"RPM throughput gain: "
        f"{with_rpm.throughput_tps / no_rpm.throughput_tps - 1:+.1%} "
        f"(paper: +7%)"
    )

    # The attack volume matches the paper's row.
    assert no_rpm.valid_sent == 20_000 and no_rpm.invalid_sent == 10_000
    assert with_rpm.valid_sent == 20_000 and with_rpm.invalid_sent == 10_000
    assert no_rpm.byzantine_validators == 1

    # '#valid txs dropped: none' — both configurations.
    assert no_rpm.valid_dropped == 0
    assert with_rpm.valid_dropped == 0

    # RPM increases throughput under flooding (paper: +7 %; we accept any
    # clearly positive gain on this substrate).
    assert with_rpm.throughput_tps > no_rpm.throughput_tps * 1.02

    # Absolute magnitudes land in the paper's regime (thousands of TPS).
    assert 1_500 <= no_rpm.throughput_tps <= 8_000
    assert 1_500 <= with_rpm.throughput_tps <= 8_000
