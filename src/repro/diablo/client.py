"""Client-side submission: pre-signed schedules and submitter policies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.deployment import Deployment
from repro.core.transaction import Transaction
from repro.workloads.trace import RequestFactory, Trace

#: materialized schedules keyed (trace fingerprint, factory cache key).
#: Signing dominates schedule construction (every transaction is signed up
#: front, DIABLO-style), so repeated runs of the same workload — bench
#: repeats, baseline refreshes, scenario sweeps — reuse the signed set.
_SCHEDULE_CACHE: "dict[tuple, LoadSchedule]" = {}


def schedule_cache_info() -> dict:
    """Cache occupancy, for tests and diagnostics."""
    return {
        "entries": len(_SCHEDULE_CACHE),
        "transactions": sum(len(s) for s in _SCHEDULE_CACHE.values()),
    }


def schedule_cache_clear() -> None:
    """Drop every cached schedule (tests / memory pressure)."""
    _SCHEDULE_CACHE.clear()


@dataclass(frozen=True)
class LoadSchedule:
    """A fully materialized, pre-signed workload: (send_time, tx) pairs."""

    name: str
    entries: tuple[tuple[float, Transaction], ...]

    @classmethod
    def from_trace(cls, trace: Trace, factory: RequestFactory) -> "LoadSchedule":
        """Materialize (and sign) the trace's transactions via ``factory``.

        Factories advertising a ``cache_key`` attribute promise that a
        *fresh* instance built with the same key yields byte-identical
        transactions, so the materialized schedule is memoized under
        ``(trace.fingerprint(), cache_key)``.  A factory that has already
        materialized one schedule carries advanced nonce/RNG state and
        bypasses the cache entirely.
        """
        key = None
        factory_key = getattr(factory, "cache_key", None)
        if factory_key is not None and not getattr(factory, "_materialized", False):
            key = (trace.fingerprint(), factory_key)
            cached = _SCHEDULE_CACHE.get(key)
            if cached is not None:
                return cached
        entries = tuple(
            (float(t), factory(i, float(t)))
            for i, t in enumerate(trace.send_times())
        )
        try:
            factory._materialized = True  # type: ignore[attr-defined]
        except AttributeError:
            pass  # callables without a __dict__ simply skip the guard
        schedule = cls(name=trace.name, entries=entries)
        if key is not None:
            _SCHEDULE_CACHE[key] = schedule
        return schedule

    @classmethod
    def from_transactions(
        cls, txs: Iterable[Transaction], *, name: str = "explicit"
    ) -> "LoadSchedule":
        return cls(name=name, entries=tuple((tx.created_at, tx) for tx in txs))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def duration_s(self) -> float:
        return max((t for t, _ in self.entries), default=0.0)


class RoundRobinSubmitter:
    """Spread submissions across validators with sender affinity.

    Each sender account consistently talks to one validator (DIABLO's
    client threads own disjoint account sets), which keeps one sender's
    nonce sequence flowing through a single pool in order.
    """

    def __init__(self, targets: Sequence[int] | None = None):
        self.targets = tuple(targets) if targets else None

    def submit_all(self, deployment: Deployment, schedule: LoadSchedule) -> None:
        targets = self.targets or tuple(range(deployment.protocol.n))
        assignment: dict[str, int] = {}
        for send_time, tx in schedule.entries:
            if tx.sender not in assignment:
                assignment[tx.sender] = targets[len(assignment) % len(targets)]
            deployment.submit(tx, assignment[tx.sender], at=send_time)


class SingleNodeSubmitter:
    """Send everything to one validator (censorship / hotspot scenarios)."""

    def __init__(self, target: int = 0):
        self.target = target

    def submit_all(self, deployment: Deployment, schedule: LoadSchedule) -> None:
        for send_time, tx in schedule.entries:
            deployment.submit(tx, self.target, at=send_time)
