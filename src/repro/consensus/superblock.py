"""Red Belly superblock set consensus (one chain index).

Every validator RBC-broadcasts its block proposal; one DBFT binary
instance per proposer slot then decides whether that proposal enters the
superblock.  Protocol per correct node:

* on RBC-delivery of a proposal with a valid header → input 1 to that
  slot's binary instance (invalid-header proposals are discarded, Alg. 1
  line 16, and the slot gets a 0 input);
* once ``n − f`` slots decided 1 → input 0 to every slot still lacking an
  input (so the round terminates even with silent proposers);
* a proposer-silence timeout also inputs 0 (safety net before the n−f
  trigger fires);
* when **all** slots have decided and every decided-1 slot's proposal has
  been RBC-delivered (totality guarantees it will be), the superblock —
  the decided-1 proposals ordered by proposer id — is final.

Binary validity gives the key property: a slot decides 1 only if some
correct node input 1, i.e. some correct node RBC-delivered a valid
proposal — so every block in the superblock is available everywhere.
"""

from __future__ import annotations

import logging
from types import SimpleNamespace
from typing import Any, Callable

from repro import telemetry
from repro.telemetry import lifecycle
from repro.consensus.broadcast import ReliableBroadcast
from repro.consensus.dbft import BinaryConsensus
from repro.consensus.messages import ConsensusMessage, MsgKind
from repro.core.block import Block, SuperBlock
from repro.errors import ConsensusError

_RBC_KINDS = (MsgKind.RBC_SEND, MsgKind.RBC_ECHO, MsgKind.RBC_READY)

logger = logging.getLogger("repro.consensus.superblock")


def _build_metrics(reg: telemetry.MetricsRegistry) -> SimpleNamespace:
    messages = reg.counter(
        "srbb_consensus_messages_total", "consensus messages received, by kind"
    )
    return SimpleNamespace(
        # pre-resolved labeled children: one dict lookup per message
        by_kind={kind: messages.labels(kind=kind.name) for kind in MsgKind},
        superblocks=reg.counter(
            "srbb_superblocks_decided_total", "superblock rounds decided"
        ),
        blocks=reg.histogram(
            "srbb_superblock_blocks", "decided-1 blocks per superblock",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128),
        ),
        discarded=reg.counter(
            "srbb_consensus_headers_discarded_total",
            "RBC-delivered proposals discarded for invalid headers",
        ),
    )


_metrics = telemetry.bind(_build_metrics)


def record_wire_kind(kind: MsgKind) -> None:
    """Count one received consensus *wire* message of ``kind``.

    ``srbb_consensus_messages_total`` counts what actually crossed the
    wire: a vote batch increments the ``BATCH`` child once, and its
    constituents — delivered with ``record=False`` — are not re-counted
    (that is precisely the reduction the batching headline measures).
    """
    _metrics().by_kind[kind].inc()


class SuperBlockConsensus:
    """Per-node driver for one consensus iteration (chain index)."""

    def __init__(
        self,
        *,
        n: int,
        f: int,
        my_id: int,
        index: int,
        broadcast: Callable[[ConsensusMessage], None],
        on_superblock: Callable[[SuperBlock], None],
        validate_header: Callable[[Block], bool] | None = None,
        on_undecided_block: Callable[[Block], None] | None = None,
        passive: bool = False,
    ):
        #: passive observation: track every threshold, send nothing —
        #: full nodes outside the epoch's committee stay in lock-step
        self.passive = passive
        self.n = n
        self.f = f
        self.my_id = my_id
        self.index = index
        self._broadcast = broadcast
        self._on_superblock = on_superblock
        self._validate_header = validate_header or (lambda b: b.header_valid())
        #: invoked for proposals RBC-delivered *after* the round finished
        #: whose slot was decided 0 — Alg. 1 lines 28-31 must recycle them
        #: too, else their transactions leak (RBC totality guarantees the
        #: delivery, but not before the decision)
        self._on_undecided_block = on_undecided_block

        self.proposals: dict[int, Block] = {}
        self.decisions: dict[int, int] = {}
        self._ones = 0  # running count of decided-1 slots (close-round rule)
        self.finished = False
        self.superblock: SuperBlock | None = None
        #: proposals RBC-delivered but with invalid headers (discarded)
        self.discarded_headers: list[int] = []

        self.rbc = ReliableBroadcast(
            n=n, f=f, my_id=my_id, index=index,
            broadcast=broadcast, on_deliver=self._on_rbc_deliver,
            passive=passive,
        )
        self.instances = {
            i: BinaryConsensus(
                n=n, f=f, my_id=my_id, index=index, instance=i,
                broadcast=broadcast, on_decide=self._on_decide,
                passive=passive,
            )
            for i in range(n)
        }
        if passive:
            for instance in self.instances.values():
                instance.observe()

    # -- inputs -------------------------------------------------------------------

    def propose(self, block: Block) -> None:
        """Submit this node's own proposal for the round."""
        if self.passive:
            raise ConsensusError("passive observers cannot propose blocks")
        self.rbc.broadcast_payload(block)

    def timeout_silent_proposers(self) -> None:
        """Safety net: give 0 to every slot whose proposal never arrived."""
        if self.passive:
            return
        for i, instance in self.instances.items():
            if not instance.has_input:
                instance.propose(0)

    def vote_zero(self, instance_id: int) -> None:
        """Input 0 for one slot right away, without waiting for the round
        timeout — used for RPM-excluded proposers whose traffic correct
        nodes no longer accept (``ProtocolParams.rpm_exclude_comms``)."""
        if self.passive:
            return
        instance = self.instances.get(instance_id)
        if instance is not None and not instance.has_input:
            instance.propose(0)

    def on_message(self, msg: ConsensusMessage, *, record: bool = True) -> None:
        """Feed one consensus message (or a whole vote batch) to this index.

        ``record=False`` skips the wire-message counter — used for batch
        constituents, whose *batch* was already counted once.
        """
        if msg.kind is MsgKind.BATCH:
            # Standalone users (tests, single-index harnesses) may loop a
            # batch straight back in; unpack in emission order.  Node-level
            # callers unpack earlier so they can route across indexes.
            if record:
                record_wire_kind(msg.kind)
            for constituent in msg.value:
                self.on_message(constituent, record=False)
            return
        if msg.index != self.index:
            return
        if record:
            _metrics().by_kind[msg.kind].inc()
        if msg.kind in _RBC_KINDS:
            self.rbc.on_message(msg)
        else:
            instance = self.instances.get(msg.instance)
            if instance is not None:
                # No trailing _check_done here: the only mutations that can
                # complete the round happen inside _on_decide/_on_rbc_deliver,
                # and both already end with _check_done — calling it per
                # constituent was pure overhead at committee scale.
                instance.on_message(msg)

    def on_constituent(self, msg: ConsensusMessage) -> None:
        """Uncounted fast path for batch constituents.

        Equivalent to ``on_message(msg, record=False)`` with the counting
        and keyword plumbing stripped: the vote-batch unpack loop calls
        this millions of times per committee-scale run.
        """
        kind = msg.kind
        if kind is MsgKind.BVAL or kind is MsgKind.AUX or kind is MsgKind.COORD:
            if msg.index != self.index:
                return
            instance = self.instances.get(msg.instance)
            if instance is not None:
                instance.on_message(msg)
        elif kind is MsgKind.BATCH:
            for constituent in msg.value:
                self.on_constituent(constituent)
        elif msg.index != self.index:
            return
        elif kind in _RBC_KINDS:
            self.rbc.on_message(msg)
        else:
            instance = self.instances.get(msg.instance)
            if instance is not None:
                instance.on_message(msg)

    # -- callbacks -----------------------------------------------------------------

    def _vote(self, instance_id: int, value: int) -> None:
        """Input a vote unless observing or already input."""
        instance = self.instances[instance_id]
        if not self.passive and not instance.has_input:
            instance.propose(value)

    def _on_rbc_deliver(self, instance_id: int, payload: Any) -> None:
        if not isinstance(payload, Block):
            # Byzantine garbage proposal: vote this slot out.
            self._vote(instance_id, 0)
            return
        block = payload
        # Lifecycle: the carrying block reached RBC echo/ready quorum
        # here (simulated time via the recorder-bound deployment clock).
        if block.transactions and lifecycle.enabled():
            lifecycle.stamp_txs(block.transactions, "rbc", node=self.my_id)
        if self.finished:
            # Late delivery: the round is over.  If this slot was voted
            # out, hand the block to the recycler (Alg. 1 line 31).
            self.proposals[instance_id] = block
            if self.decisions.get(instance_id) == 0 and self._on_undecided_block:
                self._on_undecided_block(block)
            return
        # Store the delivered payload unconditionally: validity only drives
        # our *vote*.  If consensus decides 1 against our local judgement
        # (validators may transiently disagree, e.g. on RPM exclusions),
        # the commit loop still needs the block — its invalid transactions
        # are discarded at execution time.
        self.proposals[instance_id] = block
        if self._validate_header(block):
            self._vote(instance_id, 1)
        else:
            # Alg. 1 line 16: discard blocks with invalid headers.
            self.discarded_headers.append(instance_id)
            _metrics().discarded.inc()
            logger.warning(
                "node %d discarding proposal for slot %d of index %d: "
                "invalid header", self.my_id, instance_id, self.index,
            )
            self._vote(instance_id, 0)
        self._check_done()

    def _on_decide(self, instance_id: int, value: int) -> None:
        self.decisions[instance_id] = value
        if value == 1:
            self._ones += 1
        if value == 1 and not self.passive:
            if self._ones >= self.n - self.f:
                # RBBC rule: enough proposals are in — close the round by
                # voting 0 on everything still undecided on our side.
                for i in self.instances:
                    self._vote(i, 0)
        self._check_done()

    # -- completion -----------------------------------------------------------------

    def _check_done(self) -> None:
        if self.finished or len(self.decisions) < self.n:
            return
        accepted = sorted(i for i, v in self.decisions.items() if v == 1)
        # Totality: every decided-1 proposal will arrive; wait if needed.
        if any(i not in self.proposals for i in accepted):
            return
        self.finished = True
        self.superblock = SuperBlock(
            index=self.index,
            blocks=tuple(self.proposals[i] for i in accepted),
        )
        if lifecycle.enabled():
            for block in self.superblock.blocks:
                lifecycle.stamp_txs(
                    block.transactions, "decide",
                    node=self.my_id, index=self.index,
                )
        m = _metrics()
        m.superblocks.inc()
        m.blocks.observe(len(accepted))
        telemetry.event(
            "consensus.superblock",
            node=self.my_id,
            index=self.index,
            blocks=len(accepted),
            discarded_headers=len(self.discarded_headers),
        )
        logger.debug(
            "node %d decided superblock %d with %d block(s)",
            self.my_id, self.index, len(accepted),
        )
        self._on_superblock(self.superblock)
