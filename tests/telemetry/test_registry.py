"""Counter/Gauge/Histogram semantics, labels, no-op mode, sketch accuracy."""

import math
import random

import pytest

from repro.telemetry import (
    COUNT_BUCKETS,
    EXEMPLAR_RING,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    Tracer,
    get_registry,
    set_registry,
    set_tracer,
    use_registry,
)


class TestCounter:
    def test_inc(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        c = Counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_get_or_create(self):
        c = Counter("txs_total")
        a = c.labels(source="client")
        b = c.labels(source="client")
        assert a is b
        a.inc(3)
        c.labels(source="peer").inc(1)
        assert c.total() == 4
        assert c.value == 0  # parent untouched

    def test_label_order_insensitive(self):
        c = Counter("c_total")
        assert c.labels(a="1", b="2") is c.labels(b="2", a="1")

    def test_reserved_label_rejected(self):
        with pytest.raises(ValueError):
            Counter("c_total").labels(le="5")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Counter("")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_observe_accounting(self):
        h = Histogram("h_seconds", buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(3.0, weight=2)
        h.observe(100.0)
        assert h.count == 4
        assert h.sum == pytest.approx(0.5 + 6.0 + 100.0)
        assert h.min == 0.5
        assert h.max == 100.0
        assert h.mean == pytest.approx(106.5 / 4)
        assert h.cumulative_buckets() == [(1.0, 1.0), (5.0, 3.0), (math.inf, 4.0)]

    def test_empty(self):
        h = Histogram("h_seconds")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(99) == 0.0

    def test_percentile_within_relative_error(self):
        h = Histogram("h_seconds")
        rng = random.Random(42)
        values = sorted(rng.expovariate(1.0) for _ in range(5000))
        for v in values:
            h.observe(v)
        for q in (50, 90, 99):
            exact = values[int(q / 100 * len(values)) - 1]
            assert h.percentile(q) == pytest.approx(exact, rel=0.05)

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram("h_seconds")
        h.observe(2.0)
        assert h.percentile(0) >= 2.0
        assert h.percentile(100) <= 2.0

    def test_weighted_observations(self):
        h = Histogram("h_seconds")
        h.observe(1.0, weight=99)
        h.observe(10.0, weight=1)
        assert h.percentile(50) == pytest.approx(1.0, rel=0.05)

    def test_labeled_children_share_buckets(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        child = h.labels(kind="x")
        assert child.buckets == h.buckets
        child.observe(1.5)
        assert child.count == 1
        assert h.count == 0


class TestExemplars:
    def _scoped_tracer(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        return tracer, previous

    def test_observation_in_span_records_exemplar(self):
        tracer, previous = self._scoped_tracer()
        try:
            h = Histogram("h_seconds")
            with tracer.span("commit"):
                h.observe(0.25)
        finally:
            set_tracer(previous)
        (ex,) = h.exemplars
        assert ex["value"] == 0.25
        assert ex["span_id"] == "s1"
        assert ex["ts"] >= 0.0

    def test_no_exemplar_outside_span_or_when_disabled(self):
        tracer, previous = self._scoped_tracer()
        try:
            h = Histogram("h_seconds")
            h.observe(1.0)  # tracer enabled but no open span
            tracer.enabled = False
            with tracer.span("ignored"):
                h.observe(2.0)
        finally:
            set_tracer(previous)
        assert not h.exemplars

    def test_ring_is_bounded_and_keeps_newest(self):
        tracer, previous = self._scoped_tracer()
        try:
            h = Histogram("h_seconds")
            with tracer.span("burst"):
                for i in range(EXEMPLAR_RING + 5):
                    h.observe(float(i))
        finally:
            set_tracer(previous)
        assert len(h.exemplars) == EXEMPLAR_RING
        assert h.exemplars[-1]["value"] == float(EXEMPLAR_RING + 4)

    def test_reset_clears_exemplars(self):
        tracer, previous = self._scoped_tracer()
        try:
            reg = MetricsRegistry()
            h = reg.histogram("h_seconds")
            with tracer.span("work"):
                h.observe(1.0)
            reg.reset()
        finally:
            set_tracer(previous)
        assert not h.exemplars


class TestQuantileSketch:
    def test_bounded_memory(self):
        sk = QuantileSketch(max_bins=64)
        rng = random.Random(7)
        for _ in range(20_000):
            sk.add(rng.uniform(1e-6, 1e6))
        assert len(sk._bins) <= 64
        assert sk.total_weight == 20_000

    def test_zero_and_negative_values(self):
        sk = QuantileSketch()
        sk.add(0.0)
        sk.add(-5.0)
        sk.add(1.0)
        assert sk.total_weight == 3
        assert sk.quantile(0.1) == 0.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError):
            reg.gauge("a_total")

    def test_collect_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        assert [m.name for m in reg.collect()] == ["a_total", "b_total"]

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("a_total")
        c.inc(5)
        c.labels(k="v").inc(2)
        h = reg.histogram("h_seconds")
        h.observe(1.0)
        reg.reset()
        assert c.value == 0 and c.total() == 0
        assert h.count == 0 and h.min == math.inf
        assert reg.get("a_total") is c

    def test_noop_mode(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("a_total")
        h = reg.histogram("h_seconds")
        c.inc()
        h.observe(1.0)
        assert c.value == 0 and h.count == 0
        reg.enable()
        c.inc()
        h.observe(1.0)
        assert c.value == 1 and h.count == 1

    def test_standalone_metric_always_records(self):
        # registry=None metrics (NodeStats internals) ignore global state.
        c = Counter("standalone_total")
        c.inc()
        assert c.value == 1


class TestGlobalRegistry:
    def test_default_disabled(self):
        assert not get_registry().enabled

    def test_use_registry_scopes_and_restores(self):
        before = get_registry()
        with use_registry() as reg:
            assert get_registry() is reg
            assert reg.enabled
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)

    def test_count_buckets_sorted(self):
        assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)


class TestThreadSafety:
    def test_concurrent_counter_increments_sum_exactly(self):
        import threading

        from repro.telemetry.registry import Counter

        counter = Counter("t_threads_total")
        per_thread, threads = 5_000, 8

        def worker():
            for _ in range(per_thread):
                counter.inc()

        ts = [threading.Thread(target=worker) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert counter.value == per_thread * threads

    def test_concurrent_label_children_deduplicate(self):
        import threading

        from repro.telemetry.registry import Counter

        counter = Counter("t_labels_total")
        barrier = threading.Barrier(8)
        children = []

        def worker():
            barrier.wait()
            children.append(counter.labels(error="bad-nonce"))

        ts = [threading.Thread(target=worker) for _ in range(8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert all(c is children[0] for c in children)
        assert len(counter.children) == 1
