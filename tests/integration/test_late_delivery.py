"""Regression: undecided blocks delivered after the decision must recycle.

Found by the hypothesis schedule tests: under pre-GST delays a proposer's
block can be voted out (proposer timeout) while its reliable broadcast is
still in flight.  Two bugs conspired to lose the transactions forever:

1. the node dropped *all* consensus traffic for already-committed
   indices, including RBC ECHO/READY — breaking RBC totality, so the
   block never finished delivering anywhere;
2. even when delivered late, nothing recycled it (Alg. 1 line 31 only ran
   at decision time).

The fix routes RBC traffic regardless of round staleness and recycles
late deliveries via the ``on_undecided_block`` hook.  This test pins the
exact falsifying schedule.
"""

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology
from repro.net.transport import PartialSynchrony


def test_slow_rbc_block_recycles_and_commits():
    gst, delay_scale = 1.0, 1.0
    clients, balances = fund_clients(3)
    timing = PartialSynchrony(gst=gst, delta=0.5, pre_gst_max_delay=3.0)

    def adversarial(src: int, dst: int, now: float) -> float:
        if now >= gst:
            return 0.0
        return delay_scale * (((src * 31 + dst * 17 + int(now * 10)) % 7) / 3.0)

    deployment = Deployment(
        # vote_batching=False: this test replays the exact pre-batching
        # falsifying schedule; batching shifts vote timing enough that no
        # proposer is voted out at all (nothing left to recycle).
        protocol=params.ProtocolParams(n=4, rpm=False, vote_batching=False),
        topology=single_region_topology(4),
        extra_balances=balances,
        seed=0,
        timing=timing,
        proposer_timeout=4.0,
    )
    deployment.network.adversarial_delay = adversarial
    deployment.start()
    txs = []
    for i in range(6):
        sender = clients[i % 3]
        tx = make_transfer(sender, clients[(i + 1) % 3].address, 1, nonce=i // 3)
        deployment.submit(tx, validator_id=i % 4, at=0.0)
        txs.append(tx)
    deployment.run_until(gst + 25.0)

    # the slow proposer's block was voted out but its transactions recycle
    assert any(v.stats.recycled_from_undecided > 0 for v in deployment.validators)
    for tx in txs:
        assert deployment.committed_everywhere(tx)
    assert deployment.safety_holds()
    assert deployment.states_agree()
