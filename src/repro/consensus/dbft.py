"""DBFT-style leaderless binary Byzantine consensus.

Round structure (Mostéfaoui-Moumen-Raynal BV-broadcast core, as used by
DBFT, with DBFT's weak-coordinator hint and a deterministic round-parity
fallback in place of the common coin):

1. **BV-broadcast** — every node broadcasts ``BVAL(r, est)``.  A node that
   receives ``f+1`` BVALs for a value echoes it (so a value backed by one
   correct node reaches everyone); a value with ``2f+1`` BVALs enters
   ``bin_values[r]`` (so every value in ``bin_values`` was proposed by a
   correct node — Byzantine-only values never get 2f+1).
2. **AUX** — once ``bin_values[r]`` is non-empty the node broadcasts one of
   its values (preferring the round coordinator's suggestion when it is
   already in ``bin_values``).
3. **Collect** — wait for ``n − f`` AUX messages whose values all lie in
   ``bin_values[r]``; let ``values`` be the set of their values.
   * ``values == {v}`` and ``v == r mod 2`` → **decide v** (and keep
     participating for two more rounds so laggards can decide too);
   * ``values == {v}`` → ``est = v``;
   * otherwise → ``est = r mod 2``.

Safety (agreement + validity) is unconditional; termination holds for all
fair schedules (the classic FLP-style adversarial schedule can delay it,
which the property tests acknowledge by bounding rounds generously).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable

from repro import telemetry
from repro.consensus.messages import ConsensusMessage, MsgKind
from repro.errors import ConsensusError

#: Rounds a decided node keeps participating so peers can finish.
GRACE_ROUNDS = 2
#: Hard cap: a correct run of this protocol decides in a handful of rounds;
#: hitting the cap indicates a broken schedule and fails loudly.
MAX_ROUNDS = 64

logger = logging.getLogger("repro.consensus.dbft")

# hot-loop locals: one global load instead of an Enum attribute walk per
# message (this dispatcher sees every vote of every binary instance)
_BVAL = MsgKind.BVAL
_AUX = MsgKind.AUX
_COORD = MsgKind.COORD


def _build_metrics(reg: telemetry.MetricsRegistry) -> SimpleNamespace:
    decisions = reg.counter(
        "srbb_consensus_decisions_total", "binary-instance decisions, by value"
    )
    return SimpleNamespace(
        # pre-resolved labeled children: one dict lookup on the hot path
        decisions={0: decisions.labels(value="0"), 1: decisions.labels(value="1")},
        rounds=reg.histogram(
            "srbb_consensus_rounds_to_decision",
            "BV-broadcast rounds until a binary instance decided",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32, MAX_ROUNDS),
        ),
        coin=reg.counter(
            "srbb_consensus_coin_fallbacks_total",
            "rounds resolved by the coin/parity fallback (split AUX values)",
        ),
    )


_metrics = telemetry.bind(_build_metrics)


@dataclass(slots=True)
class _RoundState:
    """Per-round bookkeeping (sender sets prevent Byzantine double votes)."""

    bval_senders: dict[int, set[int]] = field(default_factory=dict)  # value -> senders
    bval_echoed: set[int] = field(default_factory=set)  # values we echoed
    bin_values: set[int] = field(default_factory=set)
    aux_senders: dict[int, int] = field(default_factory=dict)  # sender -> value
    #: per-value AUX tallies mirroring ``aux_senders`` so the round-exit
    #: check is O(1) instead of a scan over all recorded votes
    aux_counts: list[int] = field(default_factory=lambda: [0, 0])
    aux_sent: bool = False
    coord_value: int | None = None


class BinaryConsensus:
    """One binary consensus instance for one (chain index, proposer) slot."""

    def __init__(
        self,
        *,
        n: int,
        f: int,
        my_id: int,
        index: int,
        instance: int,
        broadcast: Callable[[ConsensusMessage], None],
        on_decide: Callable[[int, int], None],
        passive: bool = False,
        coin: str = "parity",
    ):
        if not f < n / 3:
            raise ConsensusError(f"requires f < n/3 (n={n}, f={f})")
        if coin not in ("parity", "hash"):
            raise ConsensusError(f"unknown coin scheme {coin!r}")
        #: fallback-value scheme: "parity" (r mod 2, the deterministic
        #: DBFT-style fallback) or "hash" (a shared pseudo-random coin
        #: derived from (index, instance, round) — harder for a schedule
        #: adversary to predict rounds ahead, same agreement proof)
        self.coin = coin
        #: passive observers track thresholds and decide, but never send —
        #: how non-committee full nodes stay in sync under reconfiguration
        self.passive = passive
        self.n = n
        self.f = f
        self.my_id = my_id
        self.index = index
        self.instance = instance
        #: outgoing-message sink.  Direct harnesses pass the wire broadcast;
        #: a ValidatorNode interposes a :class:`~repro.consensus.batching.
        #: VoteBatcher` here so per-round BVAL/AUX/COORD votes coalesce into
        #: one BATCH wire message per tick instead of going out one by one.
        self.sink = broadcast
        self._on_decide = on_decide

        self.est: int | None = None
        self.round = 0
        self.decided: int | None = None
        self._decided_round: int | None = None
        self._rounds: dict[int, _RoundState] = {}
        self._started = False

    # -- public API -----------------------------------------------------------

    def propose(self, value: int) -> None:
        """Input this node's estimate (0 or 1); idempotent."""
        if value not in (0, 1):
            raise ConsensusError(f"binary value required, got {value!r}")
        if self.passive:
            raise ConsensusError("passive observers cannot propose")
        if self._started:
            return
        self._started = True
        self.est = value
        self.round = 1
        self._start_round()

    def observe(self) -> None:
        """Start tracking as a passive observer (no input, no messages)."""
        if self._started:
            return
        self._started = True
        self.round = 1
        self._start_round()

    @property
    def has_input(self) -> bool:
        return self._started

    def on_message(self, msg: ConsensusMessage) -> None:
        """Feed a BVAL/AUX/COORD message addressed to this instance."""
        if msg.round > MAX_ROUNDS:
            return
        state = self._rounds.get(msg.round)
        if state is None:
            state = self._rounds[msg.round] = _RoundState()
        kind = msg.kind
        if kind is _BVAL:
            value = int(msg.value)
            if value not in (0, 1):
                return  # Byzantine garbage
            senders = state.bval_senders.get(value)
            if senders is None:
                senders = state.bval_senders[value] = set()
            elif msg.sender in senders:
                return  # duplicate vote
            senders.add(msg.sender)
            self._check_bval(msg.round, value, state)
        elif kind is _AUX:
            value = int(msg.value)
            if value not in (0, 1) or msg.sender in state.aux_senders:
                return
            state.aux_senders[msg.sender] = value
            state.aux_counts[value] += 1
            self._try_advance(msg.round, state)
        elif kind is _COORD:
            coord = (msg.round - 1) % self.n
            if msg.sender == coord and state.coord_value is None:
                value = int(msg.value)
                if value in (0, 1):
                    state.coord_value = value
                    self._maybe_send_aux(msg.round)

    # -- internals -----------------------------------------------------------

    def _round_state(self, r: int) -> _RoundState:
        state = self._rounds.get(r)
        if state is None:
            state = self._rounds[r] = _RoundState()
        return state

    def _participating(self) -> bool:
        """Whether this node still sends messages (grace after decide)."""
        if self.decided is None:
            return True
        assert self._decided_round is not None
        return self.round <= self._decided_round + GRACE_ROUNDS

    def _send(self, kind: MsgKind, round_: int, value: int) -> None:
        if self.passive:
            return
        self.sink(
            ConsensusMessage(
                kind=kind,
                index=self.index,
                instance=self.instance,
                round=round_,
                value=value,
                sender=self.my_id,
            )
        )

    def _start_round(self) -> None:
        if not self._participating():
            return
        if self.round > MAX_ROUNDS:
            logger.error(
                "binary consensus exceeded %d rounds (index=%d, instance=%d)",
                MAX_ROUNDS, self.index, self.instance,
            )
            raise ConsensusError(
                f"binary consensus exceeded {MAX_ROUNDS} rounds "
                f"(index={self.index}, instance={self.instance})"
            )
        if not self.passive:
            assert self.est is not None
            coord = (self.round - 1) % self.n
            if self.my_id == coord:
                self._send(MsgKind.COORD, self.round, self.est)
            state = self._round_state(self.round)
            if self.est not in state.bval_echoed:
                state.bval_echoed.add(self.est)
                self._send(MsgKind.BVAL, self.round, self.est)
        # BVALs may have arrived before we started this round.
        for value in (0, 1):
            self._check_bval(self.round, value)
        self._try_advance(self.round)

    def _check_bval(self, r: int, value: int, state: _RoundState | None = None) -> None:
        if state is None:
            state = self._round_state(r)
        count = len(state.bval_senders.get(value, ()))
        # Echo once f+1 distinct nodes back the value (amplification).
        if count >= self.f + 1 and value not in state.bval_echoed:
            state.bval_echoed.add(value)
            if r <= self.round + 1 and self._participating():
                self._send(MsgKind.BVAL, r, value)
        # 2f+1 distinct BVALs: at least one correct proposer → bin_values.
        if count >= 2 * self.f + 1 and value not in state.bin_values:
            state.bin_values.add(value)
            self._maybe_send_aux(r, state)
            self._try_advance(r, state)

    def _maybe_send_aux(self, r: int, state: _RoundState | None = None) -> None:
        if state is None:
            state = self._round_state(r)
        if state.aux_sent or not state.bin_values or r != self.round:
            return
        if not self._participating():
            return
        if state.coord_value is not None and state.coord_value in state.bin_values:
            value = state.coord_value
        else:
            value = min(state.bin_values)
        state.aux_sent = True
        self._send(MsgKind.AUX, r, value)

    def _try_advance(self, r: int, state: _RoundState | None = None) -> None:
        """Check the round-r exit condition and move to round r+1."""
        if r != self.round or not self._started:
            return
        if state is None:
            state = self._round_state(r)
        self._maybe_send_aux(r, state)
        bin_values = state.bin_values
        if not bin_values:
            return
        # n−f AUX messages whose values are all in bin_values; the
        # per-value tallies make this O(1) (it used to rebuild a dict of
        # every valid vote on each AUX arrival — the single hottest line
        # at committee scale).
        counts = state.aux_counts
        c0 = counts[0] if 0 in bin_values else 0
        c1 = counts[1] if 1 in bin_values else 0
        if c0 + c1 < self.n - self.f:
            return
        coin = self._coin(r)
        if not (c0 and c1):
            v = 0 if c0 else 1
            if v == coin and self.decided is None:
                self.decided = v
                self._decided_round = r
                m = _metrics()
                m.rounds.observe(r)
                m.decisions[v].inc()
                self._on_decide(self.instance, v)
            self.est = v
        else:
            _metrics().coin.inc()
            self.est = coin
        self.round = r + 1
        self._start_round()

    def _coin(self, r: int) -> int:
        """Round fallback value, identical at every correct node."""
        if self.coin == "parity":
            return r % 2
        from repro.crypto.hashing import hash_items

        return hash_items(["coin", self.index, self.instance, r])[0] & 1
