"""Benchmark-suite configuration.

Every experiment benchmark prints the regenerated paper artifact (run
pytest with ``-s`` to see the tables) and asserts the qualitative claims.
Heavy experiment functions run exactly once via ``benchmark.pedantic``.
"""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once
