"""Fast-path machinery of the DES engine: coalesced buckets, O(1)
pending, lazy compaction.

The invariant under test everywhere: ``Simulator(coalesce=True)`` (the
default) must be *unobservable* relative to ``coalesce=False`` (the
reference scheduler) — same firing order, same clock, same
``events_processed``.
"""

import random

import pytest

from repro.net.simulator import _COMPACT_MIN_CANCELLED, Simulator


class TestBucketedScheduling:
    def test_same_tag_same_time_coalesces_into_one_heap_entry(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule_bucketed(1.0, fired.append, i, tag="t")
        assert len(sim._heap) == 1
        assert sim.pending == 5
        sim.run()
        assert fired == [0, 1, 2, 3, 4]
        assert sim.events_processed == 5

    def test_coalesce_false_degrades_to_individual_events(self):
        sim = Simulator(coalesce=False)
        fired = []
        for i in range(5):
            sim.schedule_bucketed(1.0, fired.append, i, tag="t")
        assert len(sim._heap) == 5
        sim.run()
        assert fired == [0, 1, 2, 3, 4]
        assert sim.events_processed == 5

    def test_different_tags_do_not_share_a_bucket(self):
        sim = Simulator()
        fired = []
        sim.schedule_bucketed(1.0, fired.append, "a", tag="x")
        sim.schedule_bucketed(1.0, fired.append, "b", tag="y")
        sim.run()
        assert fired == ["a", "b"]

    def test_plain_schedule_at_bucket_time_preserves_order(self):
        # A foreign event at an open bucket's exact timestamp must fire
        # between earlier and later members, exactly as individual
        # (time, seq) events would.
        sim = Simulator()
        fired = []
        sim.schedule_bucketed(1.0, fired.append, "m0", tag="t")
        sim.schedule(1.0, fired.append, "plain")
        sim.schedule_bucketed(1.0, fired.append, "m1", tag="t")
        sim.run()
        assert fired == ["m0", "plain", "m1"]

    def test_interleaved_tags_at_same_time_preserve_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_bucketed(1.0, fired.append, 0, tag="a")
        sim.schedule_bucketed(1.0, fired.append, 1, tag="b")
        sim.schedule_bucketed(1.0, fired.append, 2, tag="a")
        sim.schedule_bucketed(1.0, fired.append, 3, tag="b")
        sim.run()
        assert fired == [0, 1, 2, 3]

    def test_member_cancel_suppresses_only_that_member(self):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule_bucketed(1.0, fired.append, i, tag="t")
            for i in range(4)
        ]
        handles[1].cancel()
        handles[1].cancel()  # idempotent
        assert sim.pending == 3
        sim.run()
        assert fired == [0, 2, 3]
        assert sim.events_processed == 3

    def test_fully_cancelled_bucket_counts_no_events(self):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule_bucketed(1.0, fired.append, i, tag="t")
            for i in range(3)
        ]
        for h in handles:
            h.cancel()
        sim.schedule(2.0, fired.append, "later")
        sim.run()
        assert fired == ["later"]
        assert sim.events_processed == 1

    def test_run_until_discards_dead_bucket_at_head(self):
        sim = Simulator()
        handle = sim.schedule_bucketed(1.0, lambda: None, tag="t")
        handle.cancel()
        sim.run_until(5.0)
        assert sim.now == 5.0
        assert sim.pending == 0
        assert not sim._heap

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_bucketed(-0.1, lambda: None)


class TestFuzzAgainstReference:
    def test_random_schedules_identical_to_reference(self):
        # Random interleavings of schedule / schedule_bucketed / cancel
        # (decisions precomputed so both engines see the same ops) must
        # produce the identical firing sequence, clock, and event count.
        rnd = random.Random(0xC0A1)
        for trial in range(60):
            ops = []
            for i in range(rnd.randint(5, 40)):
                ops.append((
                    rnd.random() < 0.6,            # bucketed?
                    rnd.choice([0.5, 1.0, 1.0, 1.5, 2.0]),  # delay
                    rnd.choice(["a", "b"]),        # tag
                    rnd.random() < 0.15,           # cancel afterwards?
                ))
            results = []
            for coalesce in (True, False):
                sim = Simulator(coalesce=coalesce)
                fired = []
                handles = []
                for i, (bucketed, delay, tag, do_cancel) in enumerate(ops):
                    if bucketed:
                        h = sim.schedule_bucketed(delay, fired.append, i, tag=tag)
                    else:
                        h = sim.schedule(delay, fired.append, i)
                    handles.append((h, do_cancel))
                for h, do_cancel in handles:
                    if do_cancel:
                        h.cancel()
                sim.run()
                results.append((fired, sim.now, sim.events_processed))
            assert results[0] == results[1], (trial, ops)

    def test_nested_rescheduling_identical_to_reference(self):
        # Callbacks that schedule more bucketed work while draining.
        def run(coalesce):
            sim = Simulator(coalesce=coalesce)
            fired = []

            def chain(label, depth):
                fired.append((label, sim.now))
                if depth:
                    sim.schedule_bucketed(
                        0.5, chain, f"{label}.{depth}", depth - 1, tag="c"
                    )
                    sim.schedule(0.5, fired.append, (f"{label}-plain", depth))

            for i in range(3):
                sim.schedule_bucketed(1.0, chain, f"r{i}", 3, tag="c")
            sim.run()
            return fired, sim.now, sim.events_processed

        assert run(True) == run(False)


class TestPendingAndCompaction:
    def test_pending_is_live_counter(self):
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        assert sim.pending == 10
        events[0].cancel()
        events[1].cancel()
        assert sim.pending == 8
        assert sim.cancelled_in_heap == 2

    def test_compaction_triggers_at_threshold(self):
        assert _COMPACT_MIN_CANCELLED == 64  # the arithmetic below assumes it
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(300)]
        for e in events[:200]:
            e.cancel()
        # Compaction fires once cancelled >= 64 AND >= half the heap
        # (at 150 of 300); the trailing 50 cancels stay below the floor.
        assert sim.compactions == 1
        assert sim.pending == 100
        assert sim.cancelled_in_heap == 50
        assert len(sim._heap) == 150
        sim.run()
        assert sim.events_processed == 100

    def test_popped_events_do_not_count_as_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.cancelled_in_heap == 1
        assert sim.pending == 0


class TestProfilerAttribution:
    def test_bucket_members_profiled_individually(self):
        class Recorder:
            def __init__(self):
                self.seen = []

            def record_event(self, callback, args, info):
                self.seen.append((args, info))
                callback(*args)

        sim = Simulator()
        sim.profiler = rec = Recorder()
        out = []
        m0 = sim.schedule_bucketed(1.0, out.append, "x", tag="t")
        m0.profile_info = ("kx", "net", 0)
        m1 = sim.schedule_bucketed(1.0, out.append, "y", tag="t")
        m1.profile_info = ("ky", "net", 1)
        sim.run()
        assert out == ["x", "y"]
        assert rec.seen == [(("x",), ("kx", "net", 0)), (("y",), ("ky", "net", 1))]
