"""LifecycleRecorder: stamping, monotone resolution, globals, export."""

import pytest

from repro.telemetry import lifecycle
from repro.telemetry.lifecycle import PHASES, LifecycleRecorder


class TestStamping:
    def test_stamp_and_resolve_ordered_phases(self):
        rec = LifecycleRecorder()
        for i, phase in enumerate(PHASES):
            rec.stamp(b"tx1", phase, node=0, t=float(i))
        lc = rec.resolve(b"tx1")
        assert lc.times["submit"] == 0.0
        assert lc.times["receipt"] == 8.0
        assert lc.e2e == 8.0
        assert all(d == 1.0 for d in lc.durations.values())

    def test_unknown_phase_raises(self):
        rec = LifecycleRecorder()
        with pytest.raises(ValueError):
            rec.stamp(b"tx", "warp")

    def test_clock_fallback_and_bind(self):
        rec = LifecycleRecorder()
        rec.stamp(b"tx", "submit")  # no clock bound -> t=0.0
        rec.bind_clock(lambda: 7.5)
        rec.stamp(b"tx", "pool")
        lc = rec.resolve(b"tx")
        assert lc.times == {"submit": 0.0, "pool": 7.5}

    def test_stamp_txs_shares_one_clock_read(self):
        class Tx:
            def __init__(self, h):
                self.tx_hash = h

        rec = LifecycleRecorder()
        rec.stamp_txs([Tx(b"a"), Tx(b"b")], "pool", node=2, t=1.0)
        assert rec.resolve(b"a").times["pool"] == 1.0
        assert rec.resolve(b"b").times["pool"] == 1.0

    def test_max_txs_drops_new_keeps_known(self):
        rec = LifecycleRecorder(max_txs=1)
        rec.stamp(b"a", "submit", t=0.0)
        rec.stamp(b"b", "submit", t=0.0)  # over budget: dropped
        rec.stamp(b"a", "commit", t=1.0)  # known tx keeps stamping
        assert rec.dropped_txs == 1
        assert rec.resolve(b"b") is None
        assert rec.resolve(b"a").committed

    def test_index_recorded_once(self):
        rec = LifecycleRecorder()
        rec.stamp(b"a", "commit", t=1.0, index=4)
        rec.stamp(b"a", "commit", t=2.0, index=9)  # replica commit: ignored
        assert rec.resolve(b"a").index == 4


class TestMonotoneResolution:
    def test_out_of_order_stamps_clamp_to_zero_duration(self):
        rec = LifecycleRecorder()
        rec.stamp(b"tx", "pool", node=0, t=5.0)
        rec.stamp(b"tx", "gossip", node=1, t=9.0)  # arrives after admit
        rec.stamp(b"tx", "submit", node=0, t=4.0)
        lc = rec.resolve(b"tx")
        # gossip has no stamp >= submit resolution that precedes pool's,
        # so it clamps forward; every duration stays non-negative
        assert all(d >= 0.0 for d in lc.durations.values())
        assert lc.times["gossip"] == 9.0
        assert lc.times["pool"] == 9.0  # clamped to prev (no onward stamp)

    def test_durations_telescope_to_e2e(self):
        rec = LifecycleRecorder()
        # duplicate stamps per phase across nodes, deliberately messy
        rec.stamp(b"tx", "submit", node=0, t=1.0)
        rec.stamp(b"tx", "pool", node=0, t=1.5)
        rec.stamp(b"tx", "pool", node=1, t=3.0)
        rec.stamp(b"tx", "propose", node=2, t=2.0)
        rec.stamp(b"tx", "commit", node=0, t=6.0)
        rec.stamp(b"tx", "commit", node=1, t=7.0)
        lc = rec.resolve(b"tx")
        assert sum(lc.durations.values()) == pytest.approx(lc.e2e)

    def test_resolve_unknown_tx_is_none(self):
        assert LifecycleRecorder().resolve(b"nope") is None


class TestExport:
    def test_to_records_roundtrip(self):
        rec = LifecycleRecorder()
        rec.stamp(b"\x01\x02", "submit", node=0, t=0.25)
        rec.stamp(b"\x01\x02", "commit", node=1, t=1.5, index=3)
        records = rec.to_records()
        assert records[0]["tx"] == "0102"
        clone = LifecycleRecorder.from_records(records)
        lc0, lc1 = rec.resolve(b"\x01\x02"), clone.resolve(b"\x01\x02")
        assert lc0.times == lc1.times
        assert lc1.index == 3


class TestGlobals:
    def test_default_recorder_disabled(self):
        assert not lifecycle.enabled()
        lifecycle.stamp(b"tx", "submit", t=1.0)  # no-op, no error
        assert lifecycle.get_recorder().resolve(b"tx") is None

    def test_use_recorder_scopes_and_restores(self):
        rec = LifecycleRecorder()
        with lifecycle.use_recorder(rec):
            assert lifecycle.enabled()
            lifecycle.stamp(b"tx", "submit", t=1.0)
        assert not lifecycle.enabled()
        assert rec.resolve(b"tx").times["submit"] == 1.0

    def test_disabled_recorder_ignores_direct_stamp(self):
        rec = LifecycleRecorder(enabled=False)
        rec.stamp(b"tx", "submit", t=1.0)
        assert len(rec) == 0

    def test_clear(self):
        rec = LifecycleRecorder(max_txs=1)
        rec.stamp(b"a", "submit", t=0.0)
        rec.stamp(b"b", "submit", t=0.0)
        rec.clear()
        assert len(rec) == 0 and rec.dropped_txs == 0
        rec.stamp(b"c", "submit", t=0.0)
        assert rec.resolve(b"c") is not None
