"""Discrete-event scheduler: ordering, cancellation, run_until."""

import pytest

from repro.net.simulator import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, fired.append, name)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: sim.schedule_at(1.0, seen.append, "past"))
        sim.run()
        # scheduling "at 1.0" when now=2.0 clamps to now
        assert seen == ["past"]
        assert sim.now == 2.0

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending == 1


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run_until(3.0)
        assert fired == ["a"]
        assert sim.now == 3.0
        sim.run_until(10.0)
        assert fired == ["a", "b"]

    def test_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "x")
        sim.run_until(3.0)
        assert fired == ["x"]

    def test_max_events_bound(self):
        sim = Simulator()
        count = [0]

        def respawn():
            count[0] += 1
            sim.schedule(0.1, respawn)

        sim.schedule(0.0, respawn)
        sim.run(max_events=50)
        assert count[0] == 50
