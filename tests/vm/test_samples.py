"""Sample bytecode contracts, end to end through the executor."""

import pytest

from repro.core.transaction import make_deploy, make_invoke
from repro.errors import VMRevert
from repro.vm.samples import (
    adder_contract,
    bank_contract,
    counter_contract,
    gated_store_contract,
    summation_contract,
)


def deploy_and_get(executor, keypair, code, nonce=0):
    receipt = executor.execute(make_deploy(keypair, code, nonce=nonce))
    assert receipt.success, receipt.error
    return receipt.contract_address


class TestCounter:
    def test_accumulates_across_calls(self, executor, keypair):
        address = deploy_and_get(executor, keypair, counter_contract())
        r1 = executor.execute(make_invoke(keypair, address, "", (5,), nonce=1))
        assert r1.success and r1.return_value == 5
        r2 = executor.execute(make_invoke(keypair, address, "", (7,), nonce=2))
        assert r2.return_value == 12
        assert executor.state.storage_get(address, "0") == 12


class TestAdder:
    def test_adds_calldata(self, executor, keypair):
        address = deploy_and_get(executor, keypair, adder_contract())
        receipt = executor.execute(
            make_invoke(keypair, address, "", (19, 23), nonce=1)
        )
        assert receipt.return_value == 42


class TestGatedStore:
    def test_correct_password_stores(self, executor, keypair):
        address = deploy_and_get(executor, keypair, gated_store_contract(1234))
        receipt = executor.execute(
            make_invoke(keypair, address, "", (1234, 777), nonce=1)
        )
        assert receipt.success
        assert executor.state.storage_get(address, "1") == 777

    def test_wrong_password_reverts_cleanly(self, executor, keypair):
        address = deploy_and_get(executor, keypair, gated_store_contract(1234))
        receipt = executor.execute(
            make_invoke(keypair, address, "", (9999, 777), nonce=1)
        )
        assert not receipt.success
        assert receipt.error == "revert"
        assert executor.state.storage_get(address, "1") is None


class TestSummation:
    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (5, 15), (20, 210)])
    def test_sums_one_to_n(self, executor, keypair, n, expected):
        address = deploy_and_get(executor, keypair, summation_contract())
        receipt = executor.execute(
            make_invoke(keypair, address, "", (n,), nonce=1, gas_limit=500_000)
        )
        assert receipt.success, receipt.error
        assert receipt.return_value == expected

    def test_gas_grows_with_input(self, executor, keypair):
        address = deploy_and_get(executor, keypair, summation_contract())
        small = executor.execute(
            make_invoke(keypair, address, "", (2,), nonce=1, gas_limit=500_000)
        )
        big = executor.execute(
            make_invoke(keypair, address, "", (50,), nonce=2, gas_limit=500_000)
        )
        assert big.gas_used > small.gas_used

    def test_runs_out_of_gas_on_huge_input(self, executor, keypair):
        address = deploy_and_get(executor, keypair, summation_contract())
        receipt = executor.execute(
            make_invoke(keypair, address, "", (10_000,), nonce=1, gas_limit=30_000)
        )
        assert not receipt.success
        assert receipt.error == "out-of-gas"


class TestBank:
    def test_pays_out_held_value(self, executor, keypair, keypair2):
        address = deploy_and_get(executor, keypair, bank_contract())
        # fund the bank
        executor.state.add_balance(address, 10_000)
        executor.state.commit()
        recipient_word = int(keypair2.address, 16)
        before = executor.state.balance_of(keypair2.address)
        receipt = executor.execute(
            make_invoke(keypair, address, "", (recipient_word, 900), nonce=1)
        )
        assert receipt.success, receipt.error
        assert executor.state.balance_of(keypair2.address) == before + 900
        assert executor.state.balance_of(address) == 9_100

    def test_overdraft_reverts_without_side_effects(self, executor, keypair, keypair2):
        address = deploy_and_get(executor, keypair, bank_contract())
        executor.state.add_balance(address, 10)
        executor.state.commit()
        recipient_word = int(keypair2.address, 16)
        before = executor.state.balance_of(keypair2.address)
        receipt = executor.execute(
            make_invoke(keypair, address, "", (recipient_word, 900), nonce=1)
        )
        assert not receipt.success
        assert executor.state.balance_of(keypair2.address) == before
        assert executor.state.balance_of(address) == 10
