"""Declarative, seeded fault timelines for chaos runs.

A :class:`FaultSchedule` is a pure description — an ordered list of
:class:`FaultEvent` records built through a fluent API::

    schedule = (
        FaultSchedule(seed=13)
        .drop_rate(0.05, until=25.0)
        .crash(3, at=4.0)
        .restart(3, at=10.0)
        .hard_partition([[0, 1], [2, 3]], at=14.0, heal_at=18.0)
        .duplicate(0.02, at=2.0, until=20.0)
        .reorder(0.1, spread=0.3, until=25.0)
    )

Nothing happens until a :class:`~repro.faults.controller.FaultController`
applies it to a deployment: crash/restart events fire at their scheduled
instants on the deployment clock, and the window-based link faults
(drop/duplicate/reorder/partition) answer the transport's per-message
queries.  The schedule's ``seed`` feeds the controller's RNG, so the
same schedule on the same deployment seed reproduces the same run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

__all__ = ["FaultEvent", "FaultSchedule", "EVENT_KINDS"]

EVENT_KINDS = (
    "crash", "restart", "drop", "duplicate", "reorder", "partition",
)

_INF = float("inf")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``kind`` is one of :data:`EVENT_KINDS`.  Point events (crash,
    restart) use only ``at`` and ``node``; window events are active on
    ``at <= now < until`` and scope by ``node``/``link``/``groups``.
    """

    kind: str
    at: float
    until: float = _INF
    node: "int | None" = None
    link: "tuple[int, int] | None" = None
    p: float = 0.0
    spread: float = 0.0
    groups: "tuple[frozenset[int], ...]" = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.until < self.at:
            raise ValueError(
                f"fault window ends ({self.until}) before it starts ({self.at})"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        if self.kind in ("crash", "restart") and self.node is None:
            raise ValueError(f"{self.kind} events require a node id")

    def active(self, now: float) -> bool:
        return self.at <= now < self.until

    def touches(self, src: int, dst: int) -> bool:
        """Does this window event apply to the (src, dst) link?"""
        if self.link is not None:
            return self.link == (src, dst)
        if self.node is not None:
            return src == self.node or dst == self.node
        return True


@dataclass(frozen=True)
class FaultSchedule:
    """Immutable, seeded timeline of fault events (builder-style API)."""

    events: "tuple[FaultEvent, ...]" = ()
    seed: int = 0

    # -- builders (each returns a new schedule) -----------------------------------

    def _add(self, event: FaultEvent) -> "FaultSchedule":
        ordered = tuple(sorted(
            self.events + (event,), key=lambda e: (e.at, e.kind)
        ))
        return replace(self, events=ordered)

    def crash(self, node: int, *, at: float) -> "FaultSchedule":
        """Halt ``node`` at ``at``: volatile state lost, traffic eaten."""
        return self._add(FaultEvent(kind="crash", at=at, node=node))

    def restart(self, node: int, *, at: float) -> "FaultSchedule":
        """Bring ``node`` back at ``at``; it catches up via snapshots."""
        return self._add(FaultEvent(kind="restart", at=at, node=node))

    def drop_rate(
        self,
        p: float,
        *,
        node: "int | None" = None,
        link: "tuple[int, int] | None" = None,
        at: float = 0.0,
        until: float = _INF,
    ) -> "FaultSchedule":
        """Lose matching transmissions with probability ``p`` in the window."""
        return self._add(FaultEvent(
            kind="drop", at=at, until=until, node=node,
            link=tuple(link) if link else None, p=p,
        ))

    def duplicate(
        self,
        p: float,
        *,
        node: "int | None" = None,
        link: "tuple[int, int] | None" = None,
        at: float = 0.0,
        until: float = _INF,
    ) -> "FaultSchedule":
        """Deliver matching transmissions twice with probability ``p``."""
        return self._add(FaultEvent(
            kind="duplicate", at=at, until=until, node=node,
            link=tuple(link) if link else None, p=p,
        ))

    def reorder(
        self,
        p: float,
        *,
        spread: float,
        node: "int | None" = None,
        at: float = 0.0,
        until: float = _INF,
    ) -> "FaultSchedule":
        """With probability ``p`` delay a transmission by U(0, spread) s
        beyond the partial-synchrony clamp, so it overtakes later sends."""
        if spread < 0:
            raise ValueError(f"reorder spread must be >= 0, got {spread}")
        return self._add(FaultEvent(
            kind="reorder", at=at, until=until, node=node, p=p, spread=spread,
        ))

    def hard_partition(
        self,
        groups: "Sequence[Iterable[int]]",
        *,
        at: float,
        heal_at: float,
    ) -> "FaultSchedule":
        """Sever all cross-group links on ``at <= now < heal_at``."""
        sets = tuple(frozenset(g) for g in groups)
        seen: set[int] = set()
        for g in sets:
            if g & seen:
                raise ValueError("hard_partition groups must be disjoint")
            seen |= g
        return self._add(FaultEvent(
            kind="partition", at=at, until=heal_at, p=1.0, groups=sets,
        ))

    # -- queries -------------------------------------------------------------------

    def point_events(self) -> "tuple[FaultEvent, ...]":
        """Crash/restart events, in time order."""
        return tuple(e for e in self.events if e.kind in ("crash", "restart"))

    def window_events(self) -> "tuple[FaultEvent, ...]":
        """Link-fault windows (drop/duplicate/reorder/partition)."""
        return tuple(e for e in self.events if e.kind not in ("crash", "restart"))

    def crashed_nodes(self) -> "frozenset[int]":
        return frozenset(
            e.node for e in self.events if e.kind == "crash" and e.node is not None
        )

    @property
    def horizon(self) -> float:
        """Last finite instant any event fires or any window closes."""
        times = [e.at for e in self.events]
        times += [e.until for e in self.events if e.until != _INF]
        return max(times, default=0.0)

    def validate(self, *, n: "int | None" = None, f: "int | None" = None) -> None:
        """Sanity-check the timeline.

        Every restart must follow a crash of the same node; with ``n``
        given, node ids must be in range; with ``f`` given, the number of
        *simultaneously* crashed nodes must never exceed ``f`` (DBFT
        tolerates at most f unavailable members per round).
        """
        downtime: dict[int, float] = {}
        simultaneous: list[tuple[float, int]] = []  # (time, +1/-1)
        for event in self.events:
            if event.kind not in ("crash", "restart"):
                continue
            node = event.node
            if n is not None and not 0 <= node < n:
                raise ValueError(f"fault names node {node}, committee has {n}")
            if event.kind == "crash":
                if node in downtime:
                    raise ValueError(f"node {node} crashed twice without restart")
                downtime[node] = event.at
                simultaneous.append((event.at, +1))
            else:
                if node not in downtime:
                    raise ValueError(f"restart of node {node} without a crash")
                if event.at <= downtime.pop(node):
                    raise ValueError(
                        f"restart of node {node} does not follow its crash"
                    )
                simultaneous.append((event.at, -1))
        if f is not None:
            down = 0
            # restarts (-1) sort before crashes (+1) at equal times
            for _, delta in sorted(simultaneous):
                down += delta
                if down > f:
                    raise ValueError(
                        f"schedule crashes more than f={f} nodes at once"
                    )
