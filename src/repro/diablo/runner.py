"""One-call DApp workload runs on the message-level engine.

``run_dapp_workload`` assembles the whole stack — trace, request factory,
funded deployment, submitter, collector — for engine-scale experiments
(small committees, scaled traces).  The full-scale counterpart is
:func:`repro.sim.simulate_chain`; this runner is for when you need the
*real* protocol executing real contract calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import params
from repro.telemetry import CongestionObservatory
from repro.core.deployment import Deployment
from repro.diablo.benchmark import BenchmarkResult, DiabloBenchmark
from repro.diablo.client import LoadSchedule, RoundRobinSubmitter
from repro.net.topology import Topology, single_region_topology
from repro.workloads import (
    fifa_request_factory,
    fifa_trace,
    nasdaq_request_factory,
    nasdaq_trace,
    uber_request_factory,
    uber_trace,
)
from repro.workloads.fifa import fifa_genesis_setup
from repro.workloads.synthetic import factory_balances

#: workload -> (trace, request factory, genesis setup or None); the setup
#: hook seeds contract state the workload assumes exists (FIFA's matches
#: must already be on sale or every buy_ticket reverts and TVPR drops it)
_WORKLOADS = {
    "nasdaq": (nasdaq_trace, nasdaq_request_factory, None),
    "uber": (uber_trace, uber_request_factory, None),
    "fifa": (fifa_trace, fifa_request_factory, fifa_genesis_setup),
}


@dataclass
class DappRunOutcome:
    """Result + the deployment for post-hoc inspection."""

    result: BenchmarkResult
    deployment: Deployment
    schedule: LoadSchedule
    #: congestion sample series, present when ``observatory_interval_s``
    #: was passed to :func:`run_dapp_workload`
    observatory: "CongestionObservatory | None" = None

    @property
    def safety_holds(self) -> bool:
        return self.deployment.safety_holds()

    @property
    def states_agree(self) -> bool:
        return self.deployment.states_agree()


def run_dapp_workload(
    workload: str,
    *,
    scale: float = 0.01,
    n: int = 4,
    tvpr: bool = True,
    rpm: bool = False,
    clients: int = 16,
    topology: Topology | None = None,
    grace_s: float = 30.0,
    seed: int = 1,
    observatory_interval_s: "float | None" = None,
) -> DappRunOutcome:
    """Run one DApp workload end to end on the engine.

    ``scale`` shrinks the paper-scale trace (1 % by default — engine runs
    are exact, so they pay per-transaction cost).  Returns the DIABLO
    metrics plus the live deployment.
    """
    try:
        trace_fn, factory_fn, genesis_setup = _WORKLOADS[workload]
    except KeyError:
        raise KeyError(
            f"unknown workload {workload!r}; options: {sorted(_WORKLOADS)}"
        ) from None
    trace = trace_fn()
    if scale != 1.0:
        trace = trace.scaled(scale, name=trace.name)
    factory = factory_fn(clients=clients, seed=seed + 40)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=n, tvpr=tvpr, rpm=rpm),
        topology=topology or single_region_topology(n),
        extra_balances=factory_balances(factory),
        seed=seed,
        genesis_setup=genesis_setup,
    )
    observatory = None
    if observatory_interval_s is not None:
        observatory = CongestionObservatory(
            deployment, interval_s=observatory_interval_s
        ).install()
    schedule = LoadSchedule.from_trace(trace, factory)
    bench = DiabloBenchmark(deployment, submitter=RoundRobinSubmitter())
    result = bench.run(schedule, grace_s=grace_s)
    return DappRunOutcome(
        result=result, deployment=deployment, schedule=schedule,
        observatory=observatory,
    )
