"""Transaction executor — ``ApplyTransaction`` (Alg. 1 line 36).

The executor realizes the paper's execution semantics:

* ``execute(t)`` first lazy-validates (nonce, gas affordability, balance —
  checks iii–v of §IV-D), then attempts to apply the transaction.
* Execution-time checks cover signature and size (checks i–ii), mirroring
  Geth raising ``ErrInvalidSig`` / overflow exceptions at execution.
* Any failure reverts the state snapshot completely: an invalid transaction
  "has no impact on the blockchain state" and is discarded from its block
  by the commit loop.
* On success: nonce bump, value transfer / contract call, gas fee paid to
  the block proposer (coinbase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any

from repro import params, telemetry
# NB: repro.core imports are deferred to call time — repro.core.blockchain
# imports this module, and eager cross-imports would make the package
# import order (vm-first vs core-first) matter.
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transaction import Transaction
from repro.crypto.hashing import hash_items
from repro.errors import (
    InsufficientBalance,
    InsufficientGas,
    InvalidSignature,
    OutOfGas,
    OversizedTransaction,
    ReproError,
    VMError,
    ValidationError,
)
from repro.vm.contracts.base import NativeRegistry, native_registry
from repro.vm.gas import intrinsic_gas
from repro.vm.state import WorldState
from repro.vm.svm import SVM, CallContext


def _build_metrics(reg: telemetry.MetricsRegistry) -> SimpleNamespace:
    executed = reg.counter(
        "srbb_vm_txs_executed_total", "transactions executed, by outcome"
    )
    return SimpleNamespace(
        ok=executed.labels(status="ok"),
        failed=executed.labels(status="failed"),
        failures=reg.counter(
            "srbb_vm_tx_failures_total", "failed executions, by error code"
        ),
        gas=reg.counter("srbb_vm_gas_used_total", "gas consumed by successful txs"),
    )


_metrics = telemetry.bind(_build_metrics)


@dataclass
class Receipt:
    """Execution outcome of one transaction."""

    tx_hash: bytes
    success: bool
    gas_used: int = 0
    error: str | None = None
    return_value: Any = None
    contract_address: str | None = None
    logs: list = field(default_factory=list)


def contract_address_for(sender: str, nonce: int) -> str:
    """Deterministic deployed-contract address (Ethereum-style)."""
    return hash_items(["create", sender, nonce])[-20:].hex()


def native_address_for(name: str) -> str:
    """Well-known address of a native contract."""
    return hash_items(["native", name])[-20:].hex()


def install_native(state: WorldState, name: str) -> str:
    """Create the account hosting native contract ``name``; returns address."""
    address = native_address_for(name)
    state.create_account(address, native=name)
    return address


class Executor:
    """Applies transactions to a :class:`WorldState`."""

    def __init__(
        self,
        state: WorldState,
        *,
        registry: NativeRegistry | None = None,
        protocol: params.ProtocolParams | None = None,
    ):
        self.state = state
        self.registry = registry if registry is not None else native_registry
        self.protocol = protocol or params.ProtocolParams()
        self.svm = SVM(state)

    # -- Alg. 1 execute(t) ---------------------------------------------------

    def execute(self, tx: Transaction, *, coinbase: str = "") -> Receipt:
        """Lazy-validate then apply; never raises, returns a Receipt.

        A failed receipt implies zero state transition (full rollback).
        """
        from repro.core.validation import lazy_validate  # cycle-free at runtime

        outcome = lazy_validate(tx, self.state)
        if not outcome.ok:
            receipt = Receipt(
                tx_hash=tx.tx_hash, success=False, error=outcome.error_code
            )
        else:
            receipt = self.apply_transaction(tx, coinbase=coinbase)
        m = _metrics()
        if receipt.success:
            m.ok.inc()
            m.gas.inc(receipt.gas_used)
        else:
            m.failed.inc()
            m.failures.labels(error=receipt.error or "unknown").inc()
        return receipt

    # -- ApplyTransaction ------------------------------------------------------

    def apply_transaction(self, tx: Transaction, *, coinbase: str = "") -> Receipt:
        """Apply ``tx`` on the current state; rollback-on-error."""
        snap = self.state.snapshot()
        try:
            return self._apply(tx, coinbase)
        except ReproError as exc:
            self.state.revert(snap)
            code = getattr(exc, "code", "error")
            return Receipt(tx_hash=tx.tx_hash, success=False, error=code)

    def _apply(self, tx: "Transaction", coinbase: str) -> Receipt:
        from repro.core.transaction import TxType
        from repro.core.validation import check_signature

        # Execution-time checks (i) signature and (ii) size — §IV-D.
        # ``check_signature`` caches positive verdicts, so a tx already
        # eagerly validated by this process skips the recovery here.
        if tx.signature is None or tx.public_key is None:
            raise InvalidSignature("unsigned transaction")
        if not check_signature(tx):
            raise InvalidSignature("signature does not recover sender")
        if tx.encoded_size() > self.protocol.max_tx_size:
            raise OversizedTransaction(
                f"{tx.encoded_size()} bytes > limit {self.protocol.max_tx_size}"
            )

        sender = tx.sender
        is_create = tx.tx_type is TxType.DEPLOY
        base_gas = intrinsic_gas(tx.data_size(), is_create=is_create)
        if base_gas > tx.gas_limit:
            raise OutOfGas(f"intrinsic gas {base_gas} > limit {tx.gas_limit}")

        # Buy gas up front.
        fee_cap = tx.gas_limit * tx.gas_price
        if self.state.balance_of(sender) < fee_cap + tx.amount:
            raise InsufficientBalance(
                f"balance {self.state.balance_of(sender)} < cost {fee_cap + tx.amount}"
            )
        self.state.sub_balance(sender, fee_cap)
        self.state.bump_nonce(sender)

        gas_used = base_gas
        return_value: Any = None
        contract_address: str | None = None
        logs: list = []
        exec_gas = tx.gas_limit - base_gas

        if tx.tx_type is TxType.TRANSFER:
            self.state.sub_balance(sender, tx.amount)
            self.state.add_balance(tx.receiver, tx.amount)
        elif tx.tx_type is TxType.DEPLOY:
            contract_address = contract_address_for(sender, tx.nonce)
            bytecode = tx.payload.get("bytecode", b"")
            if not isinstance(bytecode, bytes):
                raise VMError("deploy payload must carry bytecode")
            self.state.create_account(contract_address, code=bytecode)
            if tx.amount:
                self.state.sub_balance(sender, tx.amount)
                self.state.add_balance(contract_address, tx.amount)
        elif tx.tx_type is TxType.INVOKE:
            target = tx.payload.get("contract", tx.receiver)
            if tx.amount:
                self.state.sub_balance(sender, tx.amount)
                self.state.add_balance(target, tx.amount)
            account = (
                self.state.get_account(target)
                if self.state.account_exists(target)
                else None
            )
            if account is None or not account.is_contract:
                raise VMError(f"call target {target!r} is not a contract")
            if account.native is not None:
                contract = self.registry.get(account.native)
                return_value, used = contract.call(
                    self.state,
                    target,
                    sender,
                    str(tx.payload.get("function", "")),
                    tuple(tx.payload.get("args", ())),
                    tx.amount,
                    exec_gas,
                )
                gas_used += used
            else:
                context = CallContext(
                    address=target,
                    caller=sender,
                    value=tx.amount,
                    calldata=tuple(
                        a for a in tx.payload.get("args", ()) if isinstance(a, int)
                    ),
                )
                result = self.svm.execute(account.code or b"", context, exec_gas)
                gas_used += result.gas_used
                return_value = result.return_value
                logs = result.logs
        else:  # pragma: no cover - exhaustive over TxType
            raise VMError(f"unknown tx type {tx.tx_type!r}")

        # Refund unused gas; pay the proposer.
        refund = (tx.gas_limit - gas_used) * tx.gas_price
        self.state.add_balance(sender, refund)
        if coinbase:
            self.state.add_balance(coinbase, gas_used * tx.gas_price)
        return Receipt(
            tx_hash=tx.tx_hash,
            success=True,
            gas_used=gas_used,
            return_value=return_value,
            contract_address=contract_address,
            logs=logs,
        )
