"""FaultSchedule builders and timeline validation."""

import pytest

from repro.faults import BYZANTINE_KINDS, EVENT_KINDS, FaultEvent, FaultSchedule


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor", at=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultEvent(kind="drop", at=-1.0)

    def test_window_must_not_end_before_it_starts(self):
        with pytest.raises(ValueError, match="before it starts"):
            FaultEvent(kind="drop", at=5.0, until=2.0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultEvent(kind="drop", at=0.0, p=1.5)

    def test_crash_and_restart_require_a_node(self):
        for kind in ("crash", "restart"):
            with pytest.raises(ValueError, match="node id"):
                FaultEvent(kind=kind, at=1.0)

    def test_touches_scoping(self):
        by_node = FaultEvent(kind="drop", at=0.0, node=2, p=0.1)
        assert by_node.touches(2, 0) and by_node.touches(0, 2)
        assert not by_node.touches(0, 1)
        by_link = FaultEvent(kind="drop", at=0.0, link=(0, 1), p=0.1)
        assert by_link.touches(0, 1) and not by_link.touches(1, 0)
        everywhere = FaultEvent(kind="drop", at=0.0, p=0.1)
        assert everywhere.touches(0, 1)

    def test_active_window_is_half_open(self):
        e = FaultEvent(kind="drop", at=2.0, until=5.0, p=0.1)
        assert not e.active(1.9)
        assert e.active(2.0) and e.active(4.99)
        assert not e.active(5.0)


class TestBuilders:
    def test_builders_are_pure_and_sorted_by_time(self):
        base = FaultSchedule(seed=7)
        schedule = (
            base
            .restart(1, at=9.0)
            .crash(1, at=3.0)
            .drop_rate(0.1, at=1.0, until=20.0)
        )
        assert base.events == ()  # builder never mutates
        assert [e.at for e in schedule.events] == [1.0, 3.0, 9.0]
        assert schedule.seed == 7

    def test_event_kind_partitions(self):
        schedule = (
            FaultSchedule()
            .crash(0, at=1.0)
            .restart(0, at=2.0)
            .drop_rate(0.1)
            .duplicate(0.1)
            .reorder(0.1, spread=0.5)
            .hard_partition([[0], [1]], at=3.0, heal_at=4.0)
            .byzantine_flood(1, at=5.0, until=6.0)
            .byzantine_equivocate(1, at=6.0, until=7.0)
            .byzantine_withhold(1, at=7.0, until=8.0)
            .byzantine_censor(1, at=8.0, until=9.0)
        )
        assert {e.kind for e in schedule.events} == set(EVENT_KINDS)
        assert [e.kind for e in schedule.point_events()] == ["crash", "restart"]
        # byzantine windows are toggled on the clock, never handed to the
        # transport's link-fault model
        assert len(schedule.window_events()) == 4
        assert {e.kind for e in schedule.byzantine_events()} == set(BYZANTINE_KINDS)
        assert schedule.crashed_nodes() == {0}
        assert schedule.byzantine_nodes() == {1}

    def test_byzantine_windows_require_a_node(self):
        for kind in BYZANTINE_KINDS:
            with pytest.raises(ValueError, match="node id"):
                FaultEvent(kind=kind, at=1.0)

    def test_flood_knobs_are_recorded(self):
        schedule = FaultSchedule().byzantine_flood(
            2, at=1.0, until=5.0, per_block=300, total=4000, seed=7
        )
        (event,) = schedule.byzantine_events()
        assert dict(event.knobs) == {"per_block": 300, "total": 4000, "seed": 7}

    def test_horizon_is_last_finite_edge(self):
        schedule = FaultSchedule().crash(0, at=3.0).drop_rate(0.1, until=25.0)
        assert schedule.horizon == 25.0
        assert FaultSchedule().drop_rate(0.1).horizon == 0.0  # open window

    def test_reorder_rejects_negative_spread(self):
        with pytest.raises(ValueError, match="spread"):
            FaultSchedule().reorder(0.1, spread=-1.0)

    def test_hard_partition_groups_must_be_disjoint(self):
        with pytest.raises(ValueError, match="disjoint"):
            FaultSchedule().hard_partition([[0, 1], [1]], at=0.0, heal_at=1.0)


class TestValidate:
    def test_clean_schedule_passes(self):
        (
            FaultSchedule()
            .crash(3, at=4.0)
            .restart(3, at=10.0)
            .crash(3, at=15.0)  # a second crash after the restart is fine
            .validate(n=4, f=1)
        )

    def test_restart_without_crash(self):
        with pytest.raises(ValueError, match="without a crash"):
            FaultSchedule().restart(0, at=5.0).validate()

    def test_restart_must_follow_its_crash(self):
        # builders sort by time, so build an already-invalid pair directly
        schedule = FaultSchedule(events=(
            FaultEvent(kind="crash", at=5.0, node=0),
            FaultEvent(kind="restart", at=5.0, node=0),
        ))
        with pytest.raises(ValueError, match="does not follow"):
            schedule.validate()

    def test_double_crash_without_restart(self):
        with pytest.raises(ValueError, match="crashed twice"):
            FaultSchedule().crash(0, at=1.0).crash(0, at=2.0).validate()

    def test_node_id_range(self):
        with pytest.raises(ValueError, match="committee has 4"):
            FaultSchedule().crash(7, at=1.0).validate(n=4)

    def test_more_than_f_down_at_once(self):
        schedule = (
            FaultSchedule()
            .crash(0, at=1.0)
            .crash(1, at=2.0)
            .restart(0, at=5.0)
            .restart(1, at=6.0)
        )
        with pytest.raises(ValueError, match="more than f=1"):
            schedule.validate(f=1)
        schedule.validate(f=2)  # within budget

    def test_staggered_crashes_stay_within_budget(self):
        # never more than one node down at a time: restart before the
        # next crash must be counted as freeing the budget
        (
            FaultSchedule()
            .crash(0, at=1.0)
            .restart(0, at=3.0)
            .crash(1, at=3.0)  # same instant: restart applies first
            .restart(1, at=8.0)
            .validate(n=4, f=1)
        )

    def test_crash_plus_byzantine_overlap_exceeds_budget(self):
        schedule = (
            FaultSchedule()
            .crash(0, at=1.0)
            .restart(0, at=10.0)
            .byzantine_flood(3, at=4.0, until=8.0)
        )
        with pytest.raises(ValueError, match="more than f=1"):
            schedule.validate(n=4, f=1)
        schedule.validate(n=4, f=2)

    def test_crash_plus_byzantine_disjoint_is_fine(self):
        (
            FaultSchedule()
            .byzantine_withhold(3, at=1.0, until=4.0)
            .crash(0, at=4.0)  # starts the instant the window closes
            .restart(0, at=9.0)
            .validate(n=4, f=1)
        )

    def test_one_node_misbehaving_many_ways_costs_one_budget_unit(self):
        # overlapping flood + withhold + crash on the same node is one
        # faulty node, not three
        (
            FaultSchedule()
            .byzantine_flood(3, at=1.0, until=10.0)
            .byzantine_withhold(3, at=2.0, until=6.0)
            .byzantine_equivocate(3, at=4.0, until=12.0)
            .validate(n=4, f=1)
        )

    def test_byzantine_node_range_checked(self):
        with pytest.raises(ValueError, match="committee has 4"):
            FaultSchedule().byzantine_censor(9, at=1.0, until=2.0).validate(n=4)

    def test_open_ended_byzantine_window_holds_budget_forever(self):
        schedule = (
            FaultSchedule()
            .byzantine_withhold(2, at=1.0)  # no until: open-ended
            .crash(0, at=50.0)
        )
        with pytest.raises(ValueError, match="more than f=1"):
            schedule.validate(n=4, f=1)


class TestValidateBudgetProperty:
    """Property: validate(f) accepts iff peak simultaneous-faulty <= f."""

    def test_budget_matches_bruteforce_peak(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        window = st.tuples(
            st.integers(0, 3),  # node
            st.integers(0, 20),  # start
            st.integers(1, 10),  # length
            st.sampled_from(["crash", "flood", "withhold"]),
        )

        @settings(max_examples=60, deadline=None)
        @given(st.lists(window, min_size=1, max_size=6), st.integers(1, 3))
        def check(windows, f):
            schedule = FaultSchedule()
            spans: list[tuple[int, float, float]] = []
            crashed: set[int] = set()
            for node, start, length, kind in windows:
                at, until = float(start), float(start + length)
                if kind == "crash":
                    if node in crashed:
                        continue  # crash/restart pairing is not under test
                    crashed.add(node)
                    schedule = schedule.crash(node, at=at).restart(node, at=until)
                elif kind == "flood":
                    schedule = schedule.byzantine_flood(node, at=at, until=until)
                else:
                    schedule = schedule.byzantine_withhold(node, at=at, until=until)
                spans.append((node, at, until))
            # brute-force the peak count of simultaneously-faulty nodes
            # on a fine grid (all spans have integer edges)
            edges = sorted({t for _, a, b in spans for t in (a, b)})
            peak = 0
            for t in edges:
                active = {n for n, a, b in spans if a <= t < b}
                peak = max(peak, len(active))
            if peak > f:
                with pytest.raises(ValueError, match=f"more than f={f}"):
                    schedule.validate(n=4, f=f)
            else:
                schedule.validate(n=4, f=f)

        check()
