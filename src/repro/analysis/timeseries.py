"""Congestion time series: commit rate and pool occupancy over time.

Turns the per-tick series the congestion simulator records into
presentation-ready data — per-second resampling, peak/onset detection and
terminal sparklines (the text-mode stand-in for the paper's figures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.chains import ChainModel
from repro.sim.engine import DT, simulate_chain
from repro.sim.metrics import SimResult
from repro.workloads.trace import Trace

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, *, width: int = 60) -> str:
    """Render a series as a unicode sparkline of at most ``width`` chars."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        # resample by averaging whole buckets
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([
            values[a:b].mean() if b > a else 0.0
            for a, b in zip(edges[:-1], edges[1:])
        ])
    top = values.max()
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    scaled = np.minimum(
        (values / top * (len(_SPARK_LEVELS) - 1)).round().astype(int),
        len(_SPARK_LEVELS) - 1,
    )
    return "".join(_SPARK_LEVELS[i] for i in scaled)


@dataclass
class CongestionSeries:
    """Per-second views of one simulation run."""

    chain: str
    workload: str
    commits_per_s: np.ndarray
    pool_occupancy: np.ndarray  # sampled at second boundaries
    admission_backlog: np.ndarray = None  # validation-queue occupancy

    @property
    def peak_pool(self) -> float:
        return float(self.pool_occupancy.max()) if self.pool_occupancy.size else 0.0

    def congestion_onset_s(self, *, threshold: float = 1000.0) -> float | None:
        """First second any backlog (pool OR admission queue) crosses
        ``threshold`` — gossiping chains congest at admission, SRBB-style
        chains at the pool."""
        series = self.pool_occupancy
        if self.admission_backlog is not None and self.admission_backlog.size:
            n = min(len(series), len(self.admission_backlog))
            series = np.maximum(series[:n], self.admission_backlog[:n])
        above = np.nonzero(series > threshold)[0]
        return float(above[0]) if above.size else None

    def drain_time_s(self, *, threshold: float = 1.0) -> float | None:
        """Last second the pool still held more than ``threshold`` txs."""
        above = np.nonzero(self.pool_occupancy > threshold)[0]
        return float(above[-1]) if above.size else None

    def render(self, *, width: int = 60) -> str:
        lines = [
            f"{self.chain} × {self.workload}",
            f"  commits/s {sparkline(self.commits_per_s, width=width)}",
            f"  pool      {sparkline(self.pool_occupancy, width=width)} "
            f"(peak {self.peak_pool:.0f})",
        ]
        if self.admission_backlog is not None and self.admission_backlog.size:
            peak = float(self.admission_backlog.max())
            lines.append(
                f"  admission {sparkline(self.admission_backlog, width=width)} "
                f"(peak {peak:.0f})"
            )
        return "\n".join(lines)


def _per_second(series: np.ndarray, dt: float, *, how: str) -> np.ndarray:
    ticks_per_s = int(round(1.0 / dt))
    usable = (len(series) // ticks_per_s) * ticks_per_s
    if usable == 0:
        return np.zeros(0)
    shaped = series[:usable].reshape(-1, ticks_per_s)
    return shaped.sum(axis=1) if how == "sum" else shaped.max(axis=1)


def congestion_series(
    model: ChainModel, trace: Trace, *, dt: float = DT, **kwargs
) -> tuple[SimResult, CongestionSeries]:
    """Run one simulation and extract its per-second series."""
    result = simulate_chain(model, trace, dt=dt, **kwargs)
    return result, CongestionSeries(
        chain=model.name,
        workload=trace.name,
        commits_per_s=_per_second(result.commit_series, dt, how="sum"),
        pool_occupancy=_per_second(result.pool_series, dt, how="max"),
        admission_backlog=_per_second(result.validation_series, dt, how="max"),
    )
