"""Superblock set consensus: union of decided proposals, Byzantine cases."""

import random

import pytest

from repro.consensus.messages import ConsensusMessage, MsgKind
from repro.consensus.superblock import SuperBlockConsensus
from repro.core.block import make_block
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair


def _block(kp, proposer_id, txs=1, seed=None):
    seed = seed if seed is not None else 10 + proposer_id
    sender = generate_keypair(seed)
    transactions = [
        make_transfer(sender, "aa" * 20, 1, nonce=i) for i in range(txs)
    ]
    return make_block(kp, proposer_id, 1, transactions, round=1)


class SBCluster:
    def __init__(self, n, f, *, byzantine=(), validate_header=None):
        self.n, self.f = n, f
        self.superblocks = {}
        self.queue = []
        self.byzantine = set(byzantine)
        self.keypairs = [generate_keypair(1000 + i) for i in range(n)]
        self.nodes = {}
        for i in range(n):
            if i in self.byzantine:
                continue
            self.nodes[i] = SuperBlockConsensus(
                n=n, f=f, my_id=i, index=1,
                broadcast=self.queue.append,
                on_superblock=self._make_cb(i),
                validate_header=validate_header,
            )

    def _make_cb(self, i):
        def on_superblock(sb):
            self.superblocks[i] = sb
        return on_superblock

    def propose_all(self, txs=1):
        for i, node in self.nodes.items():
            node.propose(_block(self.keypairs[i], i, txs=txs))

    def run(self, rng=None, timeout_after=None):
        steps = 0
        fired_timeout = False
        while steps < 500_000:
            if not self.queue:
                if timeout_after is not None and not fired_timeout:
                    for node in self.nodes.values():
                        node.timeout_silent_proposers()
                    fired_timeout = True
                    steps += 1
                    continue
                break
            if rng is not None and len(self.queue) > 1:
                idx = rng.randrange(len(self.queue))
                self.queue[idx], self.queue[-1] = self.queue[-1], self.queue[idx]
                msg = self.queue.pop()
            else:
                # FIFO delivery approximates a synchronous network
                msg = self.queue.pop(0)
            for node in self.nodes.values():
                node.on_message(msg)
            steps += 1


class TestAllCorrect:
    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2)])
    def test_fifo_superblock_contains_all_proposals(self, n, f):
        """With timely delivery every validator's block makes the
        superblock — the §VI no-single-winner property."""
        cluster = SBCluster(n, f)
        cluster.propose_all()
        cluster.run()
        assert len(cluster.superblocks) == n
        for sb in cluster.superblocks.values():
            assert sorted(b.proposer_id for b in sb.blocks) == list(range(n))

    def test_superblocks_identical_across_nodes(self):
        """Under adversarial delivery orders the superblock may be a
        subset of proposals (RBBC allows it) but must be identical at
        every correct node and contain ≥ n−f blocks."""
        for seed in range(5):
            cluster = SBCluster(4, 1)
            cluster.propose_all(txs=3)
            cluster.run(rng=random.Random(seed))
            hashes = {sb.superblock_hash for sb in cluster.superblocks.values()}
            assert len(hashes) == 1
            assert len(next(iter(cluster.superblocks.values()))) >= 3


class TestSilentProposer:
    def test_round_terminates_without_one_proposer(self):
        cluster = SBCluster(4, 1, byzantine={3})
        cluster.propose_all()
        cluster.run(rng=random.Random(1), timeout_after=True)
        assert len(cluster.superblocks) == 3
        for sb in cluster.superblocks.values():
            ids = sorted(b.proposer_id for b in sb.blocks)
            assert 3 not in ids
            assert len(ids) >= 3 - 1  # at least n−f−… all correct proposals land
            assert ids == [0, 1, 2]

    def test_decisions_agree_on_silent_slot(self):
        cluster = SBCluster(4, 1, byzantine={3})
        cluster.propose_all()
        cluster.run(timeout_after=True)
        decisions = {tuple(sorted(n.decisions.items())) for n in cluster.nodes.values()}
        assert len(decisions) == 1


class TestInvalidHeaders:
    def test_uncertified_proposal_voted_out(self):
        """A proposal without a valid certificate is discarded (Alg. 1 l.16)."""
        from repro.core.block import Block

        cluster = SBCluster(4, 1, byzantine={3})
        cluster.propose_all()
        bad_block = Block(proposer_id=3, index=1, transactions=())
        cluster.queue.append(ConsensusMessage(
            kind=MsgKind.RBC_SEND, index=1, instance=3, round=0,
            value=bad_block, sender=3,
        ))
        cluster.run(rng=random.Random(2), timeout_after=True)
        for i, sb in cluster.superblocks.items():
            assert 3 not in [b.proposer_id for b in sb.blocks]
            assert 3 in cluster.nodes[i].discarded_headers

    def test_garbage_payload_voted_out(self):
        cluster = SBCluster(4, 1, byzantine={3})
        cluster.propose_all()
        cluster.queue.append(ConsensusMessage(
            kind=MsgKind.RBC_SEND, index=1, instance=3, round=0,
            value="not a block", sender=3,
        ))
        cluster.run(rng=random.Random(3), timeout_after=True)
        for sb in cluster.superblocks.values():
            assert 3 not in [b.proposer_id for b in sb.blocks]


class TestMessageRouting:
    def test_wrong_index_ignored(self):
        cluster = SBCluster(4, 1)
        node = cluster.nodes[0]
        node.on_message(ConsensusMessage(
            kind=MsgKind.RBC_SEND, index=99, instance=0, round=0,
            value=b"x", sender=0,
        ))
        assert not node.proposals

    def test_out_of_range_instance_ignored(self):
        cluster = SBCluster(4, 1)
        node = cluster.nodes[0]
        node.on_message(ConsensusMessage(
            kind=MsgKind.BVAL, index=1, instance=77, round=1, value=1, sender=0,
        ))  # silently dropped, no crash
