"""Substrate micro-benchmarks (true pytest-benchmark timing loops).

Not a paper artifact — these keep the simulator's own hot paths honest:
signature verification, Merkle trees, the executor, the tick engine and a
full consensus round, so regressions in the substrate are visible.
"""

import pytest

from repro import params
from repro.core.block import SuperBlock, make_block
from repro.core.blockchain import Blockchain
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair, sign, verify
from repro.crypto.merkle import MerkleTree
from repro.sim.chains import SRBB
from repro.sim.engine import simulate_chain
from repro.vm.state import WorldState
from repro.workloads import constant_trace


def test_signature_verify(benchmark):
    kp = generate_keypair(1)
    sig = sign(kp.private, b"message")
    assert benchmark(verify, kp.public, b"message", sig)


def test_merkle_tree_1024_leaves(benchmark):
    leaves = [bytes([i % 256]) * 32 for i in range(1024)]
    tree = benchmark(MerkleTree, leaves)
    assert len(tree) == 1024


def test_executor_transfer_throughput(benchmark):
    kp = generate_keypair(1)

    def setup():
        state = WorldState()
        state.create_account(kp.address, 10**12)
        state.commit()
        chain = Blockchain(protocol=params.ProtocolParams(n=4), state=state)
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(200)]
        block = make_block(kp, 0, 1, txs)
        return (chain, SuperBlock(index=1, blocks=(block,))), {}

    def commit(chain, superblock):
        return chain.commit_superblock(superblock)

    result = benchmark.pedantic(commit, setup=setup, rounds=10)
    assert len(result.committed) == 200


def test_tick_engine_fifa_scale(benchmark):
    trace = constant_trace(3500, 180)
    result = benchmark.pedantic(
        simulate_chain, args=(SRBB, trace), rounds=3, iterations=1
    )
    assert result.sent == 3500 * 180


def test_consensus_round_n4(benchmark):
    """One full superblock round (RBC + n binary instances) at n=4."""
    from repro.core.deployment import Deployment, fund_clients
    from repro.net.topology import single_region_topology

    def setup():
        clients, balances = fund_clients(2)
        deployment = Deployment(
            protocol=params.ProtocolParams(n=4, rpm=False),
            topology=single_region_topology(4),
            extra_balances=balances,
        )
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.start()
        deployment.submit(tx, validator_id=0, at=0.01)
        return (deployment,), {}

    def run_round(deployment):
        deployment.run_until(1.0)
        return deployment.validators[0].blockchain.height

    height = benchmark.pedantic(run_round, setup=setup, rounds=5)
    assert height >= 1
