"""Wire messages exchanged by the consensus protocols."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterator

#: fixed per-message envelope: kind + index + instance + round + sender + auth
BASE_MESSAGE_BYTES = 64


class MsgKind(Enum):
    # binary consensus (DBFT)
    BVAL = "bval"  # BV-broadcast estimate
    AUX = "aux"  # auxiliary phase value
    COORD = "coord"  # weak-coordinator suggestion
    # reliable broadcast (Bracha)
    RBC_SEND = "rbc-send"
    RBC_ECHO = "rbc-echo"
    RBC_READY = "rbc-ready"
    # vote batching (one wire message carrying many of the above)
    BATCH = "batch"


def _payload_size(value: Any) -> int:
    """Approximate encoded size of one message payload, in bytes.

    Handles every payload shape the protocols put on the wire: raw bytes
    (digests), objects exposing ``encoded_size`` (blocks, transactions),
    scalars, and — crucially for RBC ECHO/READY, whose payload is a
    ``(digest, block-or-None)`` tuple — containers of *mixed* element
    types, each element sized recursively.
    """
    if type(value) is int:
        # Exact-type check first: 0/1 vote estimates dominate the traffic
        # (bool stays on its own branch below — it is an int subclass).
        return max(1, (value.bit_length() + 7) // 8)
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if hasattr(value, "encoded_size"):
        return int(value.encoded_size())
    if isinstance(value, (tuple, list)):
        return sum(_payload_size(v) for v in value)
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, (value.bit_length() + 7) // 8)
    if isinstance(value, str):
        return len(value.encode())
    return BASE_MESSAGE_BYTES  # unknown payloads: charge a full envelope


@dataclass(frozen=True)
class ConsensusMessage:
    """One consensus protocol message.

    ``index`` is the chain index (consensus iteration k), ``instance`` the
    per-proposer binary instance id (or the RBC broadcaster id), ``round``
    the binary-consensus round, ``value`` the payload (0/1 estimate, the
    RBC payload/digest, or a :class:`ConsensusBatch` for ``BATCH``).
    """

    kind: MsgKind
    index: int
    instance: int
    round: int
    value: Any
    sender: int

    def approx_size(self) -> int:
        """Rough wire size in bytes for traffic accounting."""
        if isinstance(self.value, ConsensusBatch):
            # The batch *is* the wire encoding — no outer envelope copy.
            return self.value.approx_size()
        return BASE_MESSAGE_BYTES + _payload_size(self.value)


@dataclass(frozen=True)
class ConsensusBatch:
    """Coalesced consensus traffic: every vote one node emitted in one tick.

    On the wire the batch shares a single envelope (sender, authentication)
    across all constituent messages, so each vote costs only its compact
    ``(kind, index, instance, round, value)`` record plus any structured
    payload bytes it carries — the saving the paper's congestion argument
    (§III) wants at the vote layer.
    """

    messages: "tuple[ConsensusMessage, ...]"
    sender: int

    #: shared batch envelope: sender, auth tag, message count
    HEADER_BYTES = 32
    #: compact per-vote record: kind tag + index + instance + round varints
    PER_MESSAGE_BYTES = 12

    def __post_init__(self) -> None:
        if not self.messages:
            raise ValueError("a ConsensusBatch must carry at least one message")

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> "Iterator[ConsensusMessage]":
        return iter(self.messages)

    def approx_size(self) -> int:
        """Wire size: one shared envelope + compact per-vote records."""
        cached = self.__dict__.get("_approx_size")
        if cached is None:
            cached = self.HEADER_BYTES + sum(
                self.PER_MESSAGE_BYTES + _payload_size(m.value)
                for m in self.messages
            )
            # Frozen dataclass: memoize via object.__setattr__ (the batch
            # is immutable, and its size is re-read on flush and on send).
            object.__setattr__(self, "_approx_size", cached)
        return cached

    def standalone_size(self) -> int:
        """What the constituents would have cost sent individually."""
        cached = self.__dict__.get("_standalone_size")
        if cached is None:
            cached = sum(m.approx_size() for m in self.messages)
            object.__setattr__(self, "_standalone_size", cached)
        return cached

    def bytes_saved(self) -> int:
        """Wire bytes avoided by batching (never negative)."""
        return max(0, self.standalone_size() - self.approx_size())
