"""Trace persistence and statistics.

Traces serialize to a two-column CSV (``second,count``) so experiments
are reproducible from artifacts rather than seeds, and a summary gives
the envelope and burstiness numbers used throughout the evaluation text.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.workloads.trace import Trace


def trace_to_csv(trace: Trace) -> str:
    """Render a trace as ``second,count`` CSV with a name header."""
    out = io.StringIO()
    out.write(f"# trace: {trace.name}\n")
    out.write("second,count\n")
    for second, count in enumerate(trace.counts_per_second):
        out.write(f"{second},{int(count)}\n")
    return out.getvalue()


def trace_from_csv(text: str, *, name: str | None = None) -> Trace:
    """Parse a trace produced by :func:`trace_to_csv`."""
    parsed_name = "trace"
    counts: list[int] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            if "trace:" in line:
                parsed_name = line.split("trace:", 1)[1].strip()
            continue
        if line.startswith("second"):
            continue
        second_str, count_str = line.split(",")
        second = int(second_str)
        if second != len(counts):
            raise ValueError(
                f"non-contiguous seconds: expected {len(counts)}, got {second}"
            )
        counts.append(int(count_str))
    return Trace(
        name=name or parsed_name,
        counts_per_second=np.array(counts, dtype=np.int64),
    )


def save_trace(trace: Trace, path: "str | Path") -> Path:
    path = Path(path)
    path.write_text(trace_to_csv(trace))
    return path


def load_trace(path: "str | Path") -> Trace:
    return trace_from_csv(Path(path).read_text())


@dataclass(frozen=True)
class TraceStats:
    """Envelope + burstiness summary of a trace."""

    name: str
    duration_s: float
    total: int
    avg_tps: float
    peak_tps: int
    p95_tps: float
    #: peak-to-average ratio — the burstiness figure quoted in §V
    burstiness: float
    #: coefficient of variation of per-second rates
    cv: float

    def as_row(self) -> dict:
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "total": self.total,
            "avg_tps": round(self.avg_tps, 1),
            "peak_tps": self.peak_tps,
            "p95_tps": round(self.p95_tps, 1),
            "burstiness": round(self.burstiness, 2),
            "cv": round(self.cv, 3),
        }


def trace_stats(trace: Trace) -> TraceStats:
    counts = trace.counts_per_second.astype(np.float64)
    avg = trace.avg_tps
    return TraceStats(
        name=trace.name,
        duration_s=trace.duration_s,
        total=trace.total,
        avg_tps=avg,
        peak_tps=trace.peak_tps,
        p95_tps=float(np.percentile(counts, 95)) if len(counts) else 0.0,
        burstiness=trace.peak_tps / avg if avg else 0.0,
        cv=float(counts.std() / avg) if avg else 0.0,
    )
