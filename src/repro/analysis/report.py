"""Markdown experiment report generation.

``build_report()`` reruns every paper artifact and renders a
paper-vs-measured markdown document (the automated counterpart of
EXPERIMENTS.md), so a user who changes calibration constants can
regenerate the whole evidence file in one call / one CLI command.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.analysis.figures import (
    Table1Row,
    TvprHeadline,
    figure1_counts,
    figure2,
    figure3,
    table1,
    tvpr_headline,
)

#: the paper's values of record, used in the side-by-side tables
PAPER = {
    ("nasdaq", "srbb"): {"tput": 166.61, "commit": 100.0, "latency": 6.6},
    ("uber", "srbb"): {"tput": 835.15, "commit": 100.0, "latency": 3.9},
    ("fifa", "srbb"): {"tput": 1819.0, "commit": 98.0, "latency": 64.0},
    "tvpr_throughput_ratio": 55.0,
    "tvpr_latency_ratio": 3.5,
    "rpm_gain": 0.07,
    "table1_no_rpm_tps": 3998.2,
    "table1_with_rpm_tps": 4285.71,
}


def _md_table(rows: list[dict]) -> str:
    if not rows:
        return "(no rows)\n"
    columns = list(rows[0].keys())
    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(row.get(c, "")) for c in columns) + " |")
    return "\n".join(out) + "\n"


@dataclass
class ReportData:
    """Everything the report renders (exposed for tests)."""

    figure2_rows: list[dict]
    figure3_rows: list[dict]
    headline: TvprHeadline
    table1_rows: tuple[Table1Row, Table1Row] | None
    fig1_counts: dict

    @property
    def rpm_gain(self) -> float | None:
        if self.table1_rows is None:
            return None
        no_rpm, with_rpm = self.table1_rows
        if not no_rpm.throughput_tps:
            return None
        return with_rpm.throughput_tps / no_rpm.throughput_tps - 1


def collect(
    *, include_table1: bool = True, table1_scale: float = 1.0
) -> ReportData:
    """Run every experiment (Table I optionally scaled for speed)."""
    rows1 = None
    if include_table1:
        rows1 = table1(
            valid_count=int(20_000 * table1_scale),
            invalid_count=int(10_000 * table1_scale),
            flood_per_block=max(50, int(2_500 * table1_scale)),
        )
    return ReportData(
        figure2_rows=figure2(),
        figure3_rows=figure3(),
        headline=tvpr_headline(),
        table1_rows=rows1,
        fig1_counts=figure1_counts(n=8, txs=16),
    )


def render(data: ReportData) -> str:
    """Render the collected data as a markdown report."""
    out = io.StringIO()
    w = out.write
    w("# SRBB reproduction — generated experiment report\n\n")
    w("Paper: *Smart Redbelly Blockchain: Reducing Congestion for Web3* "
      "(IPDPS 2023).  Shapes, not absolute numbers, are the reproduction "
      "target (see DESIGN.md §2).\n\n")

    w("## Figure 2 — throughput and commit %\n\n")
    latency = {(r["workload"], r["chain"]): r["avg_latency_s"] for r in data.figure3_rows}
    merged = [
        {**row, "avg_latency_s": latency[(row["workload"], row["chain"])]}
        for row in data.figure2_rows
    ]
    w(_md_table(merged))
    for workload in ("nasdaq", "uber", "fifa"):
        srbb = next(
            r for r in merged if r["chain"] == "srbb" and r["workload"] == workload
        )
        paper = PAPER[(workload, "srbb")]
        w(f"\n*SRBB on {workload}*: measured {srbb['throughput_tps']} TPS / "
          f"{srbb['commit_pct']} % / {srbb['avg_latency_s']} s — paper "
          f"{paper['tput']} TPS / {paper['commit']} % / {paper['latency']} s.\n")

    w("\n## §V-A headline — TVPR ablation\n\n")
    h = data.headline
    w(f"- throughput ×{h.throughput_ratio:.1f} "
      f"(paper ×{PAPER['tvpr_throughput_ratio']:.0f})\n")
    w(f"- latency ÷{h.latency_ratio:.1f} "
      f"(paper ÷{PAPER['tvpr_latency_ratio']})\n")

    if data.table1_rows is not None:
        w("\n## Table I — RPM under flooding\n\n")
        rows = [
            {
                "config": r.config,
                "valid sent": r.valid_sent,
                "invalid sent": r.invalid_sent,
                "throughput (TPS)": round(r.throughput_tps, 1),
                "valid dropped": "none" if r.valid_dropped == 0 else r.valid_dropped,
            }
            for r in data.table1_rows
        ]
        w(_md_table(rows))
        gain = data.rpm_gain
        if gain is not None:
            w(f"\nRPM gain: {gain:+.1%} (paper {PAPER['rpm_gain']:+.0%}; paper "
              f"absolutes {PAPER['table1_no_rpm_tps']} → "
              f"{PAPER['table1_with_rpm_tps']} TPS).\n")

    w("\n## Figure 1 — validation/propagation counts\n\n")
    rows = [
        {"protocol": mode,
         "eager validations per tx": counts["eager_validations_per_tx"],
         "tx gossip messages": counts["tx_gossip_messages"]}
        for mode, counts in data.fig1_counts.items()
    ]
    w(_md_table(rows))
    return out.getvalue()


def build_report(**kwargs) -> str:
    """Collect + render in one call."""
    return render(collect(**kwargs))
