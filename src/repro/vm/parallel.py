"""Conflict-aware parallel execution.

The block's transactions are scheduled into the conflict-free groups of
:mod:`repro.vm.conflicts` (Definition 1's "non-conflicting" criterion)
and executed group by group.  Two backends share that schedule:

* ``serial`` — the differential oracle: every transaction runs through
  the ordinary serial executor in schedule order.  Because groups run in
  ascending order and intra-group transactions touch disjoint (or
  commutative) data, the result equals block-order serial execution.
* ``threads`` — real multi-core execution: each group is split into
  contiguous chunks, each chunk executes on a copy-on-write
  :class:`~repro.vm.state.StateFork` of the shared state inside a
  ``ThreadPoolExecutor`` worker, and the fork deltas are merged back in
  deterministic chunk order once the whole group has joined.  The GIL is
  released inside the signature/hash paths (``hashlib`` drops it for
  large buffers), which is where execution time is spent.

Both backends fill ``receipts`` indexed by **original block position**
(``receipts[i]`` belongs to ``txs[i]``), and both produce byte-identical
state roots to block-order serial execution.  The result also carries
the simulated unit-cost timing model (used by the commit-timestamp
ablations) and the measured wall time of this call.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from math import ceil
from types import SimpleNamespace
from typing import Sequence

from repro import telemetry
from repro.core.transaction import Transaction
from repro.vm.conflicts import analyze_block
from repro.vm.executor import Executor, Receipt

_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        speedup=reg.histogram(
            "srbb_vm_parallel_speedup",
            "serial/parallel time ratio per executed batch",
            buckets=(1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32),
        ),
        groups=reg.histogram(
            "srbb_vm_parallel_groups",
            "conflict-free group count (schedule depth) per batch",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        ),
    )
)

BACKENDS = ("serial", "threads")


@dataclass
class ParallelExecutionResult:
    """Receipts (block-position indexed) plus schedule and timing."""

    #: ``receipts[i]`` is the receipt of ``txs[i]`` — block order, not
    #: schedule order
    receipts: list[Receipt] = field(default_factory=list)
    #: schedule: group index per transaction position
    group_of: dict[int, int] = field(default_factory=dict)
    groups: int = 0
    serial_time_s: float = 0.0
    parallel_time_s: float = 0.0
    backend: str = "serial"
    workers: int = 1
    #: measured wall-clock of this call (perf_counter), not simulated
    wall_time_s: float = 0.0

    @property
    def speedup(self) -> float:
        """Simulated speedup under the unit-cost timing model."""
        return (
            self.serial_time_s / self.parallel_time_s
            if self.parallel_time_s
            else 1.0
        )


def _chunk(group: Sequence[int], workers: int) -> list[list[int]]:
    """Split a group's positions into ≤ ``workers`` contiguous chunks."""
    parts = min(workers, len(group))
    size, extra = divmod(len(group), parts)
    chunks: list[list[int]] = []
    start = 0
    for part in range(parts):
        end = start + size + (1 if part < extra else 0)
        chunks.append(list(group[start:end]))
        start = end
    return chunks


def _prewarm(executor: Executor, txs: Sequence[Transaction]) -> None:
    """Resolve every lazily-created shared structure from the main thread.

    ``telemetry.bind`` handles, labeled metric children and the
    ``tx_hash`` cached property are all create-on-first-use; touching
    them here means worker threads only ever *read* them.
    """
    from repro.core import validation as _validation
    from repro.vm import executor as _executor_mod

    _executor_mod._metrics()
    _validation._metrics()
    _metrics()
    for tx in txs:
        tx.tx_hash

def execute_parallel(
    executor: Executor,
    txs: Sequence[Transaction],
    *,
    workers: int = 8,
    exec_rate: float = 20_000.0,
    coinbase: str = "",
    backend: str = "serial",
) -> ParallelExecutionResult:
    """Execute a batch under the conflict-group schedule.

    State effects equal block-order serial execution: groups run in
    ascending order, and within a group transactions touch disjoint or
    commutative data (by construction of the conflict graph), so any
    intra-group order — or true concurrency over per-chunk state forks —
    gives the same state.  ``receipts[i]`` always corresponds to
    ``txs[i]``.

    ``backend="serial"`` keeps everything on the caller's thread (the
    differential oracle); ``backend="threads"`` executes each group's
    chunks concurrently on :class:`~repro.vm.state.StateFork` overlays
    and merges the deltas in deterministic chunk order.

    The simulated unit-cost timing (``serial_time_s``/``parallel_time_s``,
    each group costs ``ceil(len(group)/workers) / exec_rate``) is kept
    for the commit-timestamp model; ``wall_time_s`` is the measured wall
    clock of this call.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (expected {BACKENDS})")
    report = analyze_block(txs, coinbase=coinbase)
    result = ParallelExecutionResult(
        receipts=[None] * len(txs),  # type: ignore[list-item]
        groups=report.parallel_depth,
        backend=backend,
        workers=workers,
    )
    unit = 1.0 / exec_rate
    state = executor.state
    started = time.perf_counter()
    pool: ThreadPoolExecutor | None = None
    use_threads = (
        backend == "threads"
        and workers > 1
        and any(len(group) > 1 for group in report.groups)
    )
    if use_threads:
        _prewarm(executor, txs)
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="srbb-exec"
        )

    def run_chunk(chunk: list[int]):
        fork = state.fork()
        chunk_executor = Executor(
            fork, registry=executor.registry, protocol=executor.protocol
        )
        receipts = [
            (position, chunk_executor.execute(txs[position], coinbase=coinbase))
            for position in chunk
        ]
        return fork, receipts

    try:
        for group_index, group in enumerate(report.groups):
            for position in group:
                result.group_of[position] = group_index
            chunks = _chunk(group, workers) if pool is not None else [list(group)]
            if pool is None or len(chunks) < 2:
                # Serial fast path (oracle backend, singleton groups, or a
                # group too small to split): execute on the shared state
                # directly — semantically identical to fork-and-merge.
                for position in group:
                    result.receipts[position] = executor.execute(
                        txs[position], coinbase=coinbase
                    )
            else:
                futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
                outcomes = [future.result() for future in futures]
                # Merge in chunk order — deterministic regardless of which
                # worker finished first.
                for fork, receipts in outcomes:
                    state.apply_delta(fork.delta())
                    for position, receipt in receipts:
                        result.receipts[position] = receipt
            result.parallel_time_s += ceil(len(group) / workers) * unit
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    result.serial_time_s = len(txs) * unit
    result.wall_time_s = time.perf_counter() - started
    if txs:
        m = _metrics()
        m.speedup.observe(result.speedup)
        m.groups.observe(result.groups)
    return result


def parallel_commit_time_s(
    txs: Sequence[Transaction],
    *,
    workers: int,
    exec_rate: float,
    coinbase: str = "",
) -> float:
    """Timing-only estimate (no execution): the ablation's fast path."""
    report = analyze_block(txs, coinbase=coinbase)
    unit = 1.0 / exec_rate
    return sum(ceil(len(g) / workers) * unit for g in report.groups)
