"""Smart Redbelly Blockchain (SRBB) reproduction.

Top-level convenience namespace.  The usual entry points:

* :class:`repro.core.deployment.Deployment` — a full message-level SRBB
  (or baseline) deployment on the discrete-event network;
* :mod:`repro.sim` — the 200-validator congestion simulator behind
  Figures 2 and 3;
* :mod:`repro.analysis.figures` — one function per paper artifact;
* :mod:`repro.cli` / ``python -m repro`` — the command line.
"""

from repro import params
from repro.params import ProtocolParams

__version__ = "1.0.0"

__all__ = ["ProtocolParams", "params", "__version__"]
