"""Chain storage and the commit loop (Alg. 1 lines 18-26).

``Blockchain`` owns a :class:`~repro.vm.state.WorldState` and an
:class:`~repro.vm.executor.Executor`; committing a superblock walks its
blocks in proposer order, executes each transaction (lazy-validate →
apply), discards invalid transactions from the block, and appends the
filtered block to the permanent chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.core.block import GENESIS, Block, SuperBlock
from repro.core.transaction import Transaction
from repro.telemetry import timed
from repro.vm.executor import Executor, Receipt
from repro.vm.state import WorldState


@dataclass
class CommitResult:
    """Outcome of committing one superblock."""

    index: int
    committed: list[Transaction] = field(default_factory=list)
    discarded: list[tuple[Transaction, str]] = field(default_factory=list)
    receipts: list[Receipt] = field(default_factory=list)
    #: (proposer_id, invalid tx, error code) triples — the raw material for
    #: RPM ``report`` invocations
    invalid_by_proposer: list[tuple[int, Transaction, str]] = field(
        default_factory=list
    )
    appended_blocks: list[Block] = field(default_factory=list)


class Blockchain:
    """Append-only chain + deterministic state machine."""

    def __init__(
        self,
        *,
        protocol: params.ProtocolParams | None = None,
        state: WorldState | None = None,
    ):
        self.protocol = protocol or params.ProtocolParams()
        self.state = state if state is not None else WorldState()
        self.executor = Executor(self.state, protocol=self.protocol)
        self.chain: list[Block] = [GENESIS]
        #: hashes of every committed transaction (dedup against re-inclusion)
        self._committed_hashes: set[bytes] = set()
        #: committed tx -> commit info for client confirmation queries
        self.commit_times: dict[bytes, float] = {}

    # -- queries -----------------------------------------------------------------

    @property
    def height(self) -> int:
        return len(self.chain) - 1

    def head(self) -> Block:
        return self.chain[-1]

    def contains_tx(self, tx: Transaction) -> bool:
        """The ``t ∈ blockchain`` test of Alg. 1 line 6."""
        return tx.tx_hash in self._committed_hashes

    def contains_hash(self, tx_hash: bytes) -> bool:
        return tx_hash in self._committed_hashes

    def committed_count(self) -> int:
        return len(self._committed_hashes)

    def block_hashes(self) -> list[bytes]:
        return [b.block_hash for b in self.chain]

    # -- commit loop ---------------------------------------------------------------

    @timed("srbb_commit_superblock_seconds", "wall time per superblock commit")
    def commit_superblock(
        self,
        superblock: SuperBlock,
        *,
        now: float = 0.0,
        coinbase_of=None,
        exec_rate: float | None = None,
    ) -> CommitResult:
        """Execute and append a decided superblock (Alg. 1 lines 18-26).

        ``coinbase_of(proposer_id) -> address`` routes gas fees to block
        proposers; defaults to burning fees.  ``exec_rate`` (tx/s) advances
        the recorded commit timestamp by 1/exec_rate per executed
        transaction — valid *or* invalid — so flooded junk ahead of a
        transaction in the superblock delays its client-visible commit
        (the §V-B CPU-theft effect).
        """
        result = CommitResult(index=superblock.index)
        cursor = 0.0
        step = 1.0 / exec_rate if exec_rate else 0.0
        for block in superblock.blocks:
            kept: list[Transaction] = []
            coinbase = coinbase_of(block.proposer_id) if coinbase_of else ""
            receipt_of = self._execute_block_parallel(block.transactions, coinbase)
            for tx in block.transactions:
                cursor += step
                if tx.tx_hash in self._committed_hashes:
                    # Same tx decided via two proposers: keep first only.
                    result.discarded.append((tx, "duplicate"))
                    continue
                if receipt_of is not None:
                    receipt = receipt_of[tx.tx_hash]
                else:
                    receipt = self.executor.execute(tx, coinbase=coinbase)
                result.receipts.append(receipt)
                if receipt.success:
                    kept.append(tx)
                    self._committed_hashes.add(tx.tx_hash)
                    self.commit_times[tx.tx_hash] = now + cursor
                    result.committed.append(tx)
                else:
                    # Alg. 1 line 23: remove invalid t from b_i.
                    result.discarded.append((tx, receipt.error or "invalid"))
                    result.invalid_by_proposer.append(
                        (block.proposer_id, tx, receipt.error or "invalid")
                    )
            if kept:  # Alg. 1 line 24: only non-empty blocks are appended
                filtered = Block(
                    proposer_id=block.proposer_id,
                    index=self.height + 1,
                    transactions=tuple(kept),
                    parent_hash=self.head().block_hash,
                    certificate=block.certificate,
                    round=block.round,
                )
                self.chain.append(filtered)
                result.appended_blocks.append(filtered)
        self.state.commit()
        return result

    def _execute_block_parallel(
        self, txs, coinbase: str
    ) -> dict[bytes, Receipt] | None:
        """Pre-execute one block with the threaded backend when enabled.

        Returns ``tx_hash -> receipt`` for every transaction the serial
        loop would execute, or ``None`` to fall back to per-transaction
        serial execution.  Blocks containing intra-block duplicate hashes
        fall back: the serial loop treats a later duplicate as executable
        when the first copy *failed*, a data dependency the conflict
        schedule does not model.
        """
        # deferred import: repro.vm.parallel needs conflict analysis,
        # which needs repro.core — a cycle at module-import time
        from repro.vm.parallel import execute_parallel

        if not self.protocol.parallel_execution or len(txs) < 2:
            return None
        hashes = [tx.tx_hash for tx in txs]
        if len(set(hashes)) != len(hashes):
            return None
        runnable = [
            tx for tx in txs if tx.tx_hash not in self._committed_hashes
        ]
        if not runnable:
            return None
        outcome = execute_parallel(
            self.executor,
            runnable,
            workers=self.protocol.parallel_workers,
            coinbase=coinbase,
            backend="threads",
        )
        return {
            tx.tx_hash: receipt
            for tx, receipt in zip(runnable, outcome.receipts)
        }

    # -- safety helpers -----------------------------------------------------------

    def is_prefix_of(self, other: "Blockchain") -> bool:
        """True when self's chain is a prefix of (or equal to) other's."""
        mine, theirs = self.block_hashes(), other.block_hashes()
        return len(mine) <= len(theirs) and theirs[: len(mine)] == mine

    def prefix_consistent_with(self, other: "Blockchain") -> bool:
        """The safety relation of Definition 1."""
        return self.is_prefix_of(other) or other.is_prefix_of(self)
