"""Wire messages exchanged by the consensus protocols."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any


class MsgKind(Enum):
    # binary consensus (DBFT)
    BVAL = "bval"  # BV-broadcast estimate
    AUX = "aux"  # auxiliary phase value
    COORD = "coord"  # weak-coordinator suggestion
    # reliable broadcast (Bracha)
    RBC_SEND = "rbc-send"
    RBC_ECHO = "rbc-echo"
    RBC_READY = "rbc-ready"


@dataclass(frozen=True)
class ConsensusMessage:
    """One consensus protocol message.

    ``index`` is the chain index (consensus iteration k), ``instance`` the
    per-proposer binary instance id (or the RBC broadcaster id), ``round``
    the binary-consensus round, ``value`` the payload (0/1 estimate, or the
    RBC payload/digest).
    """

    kind: MsgKind
    index: int
    instance: int
    round: int
    value: Any
    sender: int

    def approx_size(self) -> int:
        """Rough wire size in bytes for traffic accounting."""
        base = 64
        value = self.value
        if isinstance(value, (bytes, bytearray)):
            return base + len(value)
        if hasattr(value, "encoded_size"):
            return base + value.encoded_size()
        if isinstance(value, tuple) and value and hasattr(value[0], "encoded_size"):
            return base + sum(v.encoded_size() for v in value)
        return base
