"""Reward design and the block-proposal game (§IV-F, Theorem 1)."""

from hypothesis import given, strategies as st

from repro.core.rewards import (
    PayoffOutcome,
    RewardDesign,
    Strategy,
    best_response,
    byzantine_payoff,
    correct_payoff,
    theorem1_holds,
)


DESIGN = RewardDesign(block_reward=100, validation_cost=0.01)


class TestRewardAlgebra:
    def test_incentive(self):
        assert DESIGN.incentive(tx_fees=25) == 125  # I = r_b + Σ fees

    def test_validation_cost(self):
        assert DESIGN.validation_cost_for(1000) == 10.0  # C = |T|·c

    def test_reward_equation(self):
        # R = I − C − P
        assert DESIGN.reward(1000, tx_fees=25, penalty=5) == 125 - 10 - 5


class TestPayoffs:
    def test_correct_strategy_gains(self):
        outcome = correct_payoff(DESIGN, 1000, tx_fees=50, deposit=10_000)
        assert outcome.payoff == 150 - 10
        assert outcome.deposit_after == 10_000 + 140
        assert not outcome.slashed

    def test_byzantine_saves_cost_if_unreported(self):
        outcome = byzantine_payoff(
            DESIGN, 1000, tx_fees=50, deposit=10_000,
            skipped_validations=1000, reported=False,
        )
        assert outcome.payoff == 150  # C' = 0, pockets the savings
        assert not outcome.slashed

    def test_byzantine_reported_loses_whole_deposit(self):
        outcome = byzantine_payoff(
            DESIGN, 1000, tx_fees=50, deposit=10_000,
            skipped_validations=1000, reported=True,
        )
        assert outcome.payoff == -10_000  # −D, Theorem 1
        assert outcome.deposit_after == 0
        assert outcome.slashed

    def test_partial_skip(self):
        outcome = byzantine_payoff(
            DESIGN, 1000, tx_fees=0, deposit=0,
            skipped_validations=400, reported=False,
        )
        # C' = (1000−400)·0.01 = 6
        assert outcome.payoff == 100 - 6


class TestBestResponse:
    def test_certain_reporting_makes_correct_dominant(self):
        assert (
            best_response(DESIGN, 1000, tx_fees=50, deposit=10_000)
            is Strategy.CORRECT
        )

    def test_no_reporting_makes_byzantine_tempting(self):
        assert (
            best_response(DESIGN, 1000, tx_fees=50, deposit=10_000,
                          report_probability=0.0)
            is Strategy.BYZANTINE
        )

    def test_threshold_probability(self):
        """Correct dominates once p · (D + gain) ≥ savings."""
        deposit = 10_000
        # savings = C = 10; caught payoff = −10000; free payoff = 150
        # correct payoff = 140. Indifference: 140 = p(−10000) + (1−p)150
        # → p* ≈ 0.000985; any p above flips to CORRECT.
        assert (
            best_response(DESIGN, 1000, 50, deposit, report_probability=0.01)
            is Strategy.CORRECT
        )
        assert (
            best_response(DESIGN, 1000, 50, deposit, report_probability=0.0001)
            is Strategy.BYZANTINE
        )

    @given(
        st.integers(min_value=1, max_value=100_000),  # tx_count
        st.floats(min_value=0, max_value=10_000, allow_nan=False),
        st.integers(min_value=1, max_value=10**9),  # deposit
    )
    def test_property_theorem1(self, tx_count, tx_fees, deposit):
        """Reported Byzantine proposers always end at zero deposit with a
        strictly negative round payoff (for any positive deposit)."""
        assert theorem1_holds(DESIGN, tx_count, tx_fees, deposit)

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=10**8),
    )
    def test_property_correct_beats_reported_byzantine(self, tx_count, deposit):
        correct = correct_payoff(DESIGN, tx_count, 0, deposit).payoff
        byz = byzantine_payoff(
            DESIGN, tx_count, 0, deposit,
            skipped_validations=tx_count, reported=True,
        ).payoff
        assert correct > byz
