"""Artifact regeneration functions: shapes, orderings, headline ratios.

These run the real experiment code at reduced scale where the full run is
heavy; the benchmarks/ directory regenerates everything at paper scale.
"""

import pytest

from repro.analysis.figures import (
    figure1_counts,
    figure2,
    figure3,
    table1,
    tvpr_headline,
)
from repro.sim.chains import FIGURE_ORDER


class TestFigure2:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure2()

    def test_full_grid(self, rows):
        assert len(rows) == 3 * len(FIGURE_ORDER)

    def test_srbb_wins_throughput_everywhere(self, rows):
        for workload in ("nasdaq", "uber", "fifa"):
            chunk = {r["chain"]: r for r in rows if r["workload"] == workload}
            best = max(chunk.values(), key=lambda r: r["throughput_tps"])
            assert best["chain"] == "srbb", workload

    def test_srbb_commits_all_nasdaq_and_uber(self, rows):
        for workload in ("nasdaq", "uber"):
            srbb = next(
                r for r in rows if r["chain"] == "srbb" and r["workload"] == workload
            )
            assert srbb["commit_pct"] == 100.0

    def test_no_other_chain_commits_all(self, rows):
        for r in rows:
            if r["chain"] != "srbb":
                assert r["commit_pct"] < 100.0

    def test_srbb_fifa_commit_about_98(self, rows):
        srbb = next(
            r for r in rows if r["chain"] == "srbb" and r["workload"] == "fifa"
        )
        assert 96.0 <= srbb["commit_pct"] <= 100.0


class TestFigure3:
    def test_srbb_lowest_latency_nasdaq_uber(self):
        rows = figure3(chains=("srbb", "ethereum", "solana", "evm+dbft"))
        for workload in ("nasdaq", "uber"):
            chunk = {r["chain"]: r for r in rows if r["workload"] == workload}
            assert chunk["srbb"]["avg_latency_s"] == min(
                r["avg_latency_s"] for r in chunk.values()
            )


class TestHeadlines:
    def test_tvpr_headline_ratios(self):
        headline = tvpr_headline()
        # paper: ×55 throughput, ÷3.5 latency; we assert the right regime
        assert headline.throughput_ratio > 20
        assert headline.latency_ratio > 2

    def test_figure1_counts(self):
        counts = figure1_counts(n=6, txs=10)
        modern = counts["modern"]["eager_validations_per_tx"]
        tvpr = counts["tvpr"]["eager_validations_per_tx"]
        assert tvpr == 1.0
        assert modern == 6.0
        assert counts["tvpr"]["tx_gossip_messages"] == 0
        assert counts["modern"]["tx_gossip_messages"] > 0


class TestTable1:
    def test_reduced_scale_run(self):
        """Small but complete Table I: RPM ≥ no-RPM throughput, no valid
        transactions dropped in either configuration."""
        no_rpm, with_rpm = table1(
            valid_count=3_000, invalid_count=1_500, flood_per_block=500,
            horizon_s=15.0,
        )
        assert no_rpm.valid_dropped == 0
        assert with_rpm.valid_dropped == 0
        assert no_rpm.invalid_sent == 1_500
        assert with_rpm.throughput_tps >= no_rpm.throughput_tps * 0.98
        row = with_rpm.as_report_mapping()
        assert row["#valid txs dropped"] == "none"
