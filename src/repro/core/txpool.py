"""Transaction pool — the pending queue ``p`` of Algorithm 1.

Responsibilities (Alg. 1 lines 6-8, 11-12, 29-31):

* admit only transactions not already in the pool nor in the chain,
* honour a TTL (line 8) and a bounded capacity with FIFO eviction,
* hand out batches for block creation and remove them (lines 11-12),
* re-admit transactions from undecided blocks (line 31).
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from types import SimpleNamespace

from repro import params, telemetry
from repro.core.transaction import Transaction

#: global-registry mirrors (aggregated over every pool in the process)
_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        admitted=reg.counter("srbb_txpool_admitted_total", "txs admitted to a pool"),
        duplicates=reg.counter("srbb_txpool_duplicates_total", "duplicate admissions rejected"),
        expired=reg.counter("srbb_txpool_expired_total", "txs dropped on TTL expiry"),
        evicted=reg.counter("srbb_txpool_evicted_total", "txs evicted by capacity pressure"),
        taken=reg.counter("srbb_txpool_batched_total", "txs taken into block batches"),
        occupancy=reg.histogram(
            "srbb_txpool_occupancy", "pool size sampled at each admission",
            buckets=telemetry.COUNT_BUCKETS,
        ),
        size=reg.gauge("srbb_txpool_size", "most recent pool size"),
    )
)


@dataclass
class PoolStats:
    """Counters a validator exports for the congestion metrics."""

    admitted: int = 0
    duplicates: int = 0
    expired: int = 0
    evicted: int = 0


class TxPool:
    """FIFO pending queue with dedup, TTL and capacity eviction."""

    def __init__(
        self,
        *,
        capacity: int = params.TXPOOL_CAPACITY,
        ttl: float = params.TX_TTL,
    ):
        self.capacity = capacity
        self.ttl = ttl
        # tx_hash -> (Transaction, admission_time)
        self._pending: "OrderedDict[bytes, tuple[Transaction, float]]" = OrderedDict()
        # Fee index for ``take_batch(by_fee=True)``: a heap of
        # (-gas_price, nonce, admission_seq, tx_hash) so the top-fee
        # candidate is an O(log n) pop instead of an O(n log n) sort per
        # block.  Removals are lazy — entries whose hash left the pool (or
        # was re-admitted under a newer seq) are skipped when popped.
        self._fee_heap: list[tuple[int, int, int, bytes]] = []
        # tx_hash -> admission seq of the *live* entry (stale detection)
        self._entry_seq: dict[bytes, int] = {}
        self._admission_seq = itertools.count()
        self.stats = PoolStats()

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx: Transaction) -> bool:
        return tx.tx_hash in self._pending

    def contains_hash(self, tx_hash: bytes) -> bool:
        return tx_hash in self._pending

    # -- admission ------------------------------------------------------------

    def add(self, tx: Transaction, now: float = 0.0) -> bool:
        """Admit ``tx``; returns False on duplicate or evicts oldest if full."""
        m = _metrics()
        if tx.tx_hash in self._pending:
            self.stats.duplicates += 1
            m.duplicates.inc()
            return False
        if len(self._pending) >= self.capacity:
            # FIFO eviction: congestion makes the pool drop the oldest tx —
            # precisely the "transaction loss" DIABLO observes.
            evicted_hash, _ = self._pending.popitem(last=False)
            self._entry_seq.pop(evicted_hash, None)
            self.stats.evicted += 1
            m.evicted.inc()
        self._pending[tx.tx_hash] = (tx, now)
        seq = next(self._admission_seq)
        self._entry_seq[tx.tx_hash] = seq
        heapq.heappush(self._fee_heap, (-tx.gas_price, tx.nonce, seq, tx.tx_hash))
        if len(self._fee_heap) > 2 * len(self._pending) + 64:
            self._rebuild_fee_heap()
        self.stats.admitted += 1
        m.admitted.inc()
        m.occupancy.observe(len(self._pending))
        m.size.set(len(self._pending))
        return True

    # -- expiry ----------------------------------------------------------------

    def expire(self, now: float) -> list[Transaction]:
        """Drop transactions whose TTL lapsed; returns them."""
        dropped = []
        for tx_hash in list(self._pending):
            tx, admitted = self._pending[tx_hash]
            if now - admitted > self.ttl:
                del self._pending[tx_hash]
                self._entry_seq.pop(tx_hash, None)
                dropped.append(tx)
                self.stats.expired += 1
                _metrics().expired.inc()
            else:
                # OrderedDict is FIFO by admission time: first fresh entry
                # means the rest are fresh too.
                break
        return dropped

    # -- block building ----------------------------------------------------------

    def _rebuild_fee_heap(self) -> None:
        """Compact the fee index, dropping lazily-deleted (stale) entries."""
        self._fee_heap = [
            (-tx.gas_price, tx.nonce, self._entry_seq[tx_hash], tx_hash)
            for tx_hash, (tx, _) in self._pending.items()
        ]
        heapq.heapify(self._fee_heap)

    def _pop_live(self):
        """Pop fee-heap entries until one refers to a pending transaction."""
        while self._fee_heap:
            entry = heapq.heappop(self._fee_heap)
            tx_hash = entry[3]
            rec = self._pending.get(tx_hash)
            if rec is not None and self._entry_seq.get(tx_hash) == entry[2]:
                return entry, rec[0]
        return None

    def _take_batch_by_fee(self, max_txs, gas_limit, next_nonce):
        """Fee-ordered selection via the heap: O(k log n) for a k-tx batch.

        Candidate order is (gas_price desc, nonce asc, admission FIFO) —
        identical to what a stable sort of the FIFO queue by
        ``(-gas_price, nonce)`` yields — and the sweep rules (nonce gating,
        gas-limit stop, multi-sweep unlock) match the FIFO path exactly.
        """
        batch: list[Transaction] = []
        gas = 0
        taken_nonces: dict[str, int] = {}
        deferred: list = []  # (entry, tx) examined-but-not-taken, fee order

        def sweep(source, *, spill: bool) -> bool:
            """One selection sweep over fee-ordered (entry, tx) pairs.

            Taken entries drop out; everything examined-but-skipped lands
            in ``deferred`` in fee order for the next sweep.  ``spill``
            says whether an early stop must also carry the unexamined rest
            of ``source`` into ``deferred`` (needed for list sources whose
            entries already left the heap; the heap-drain source instead
            leaves them in the heap, untouched).
            """
            nonlocal gas
            progress = False
            it = iter(source)
            for entry, tx in it:
                if len(batch) >= max_txs or (
                    gas_limit is not None and gas + tx.gas_limit > gas_limit
                ):
                    # Same early stop as the FIFO sweep: the remaining
                    # candidates are not examined this sweep — and since
                    # gas/batch only grow, no later sweep gets past this
                    # entry either, so an unspilled rest is never missed.
                    deferred.append((entry, tx))
                    if spill:
                        deferred.extend(it)
                    return progress
                if next_nonce is not None:
                    expected = taken_nonces.get(tx.sender)
                    if expected is None:
                        expected = next_nonce(tx.sender)
                    if tx.nonce != expected:
                        deferred.append((entry, tx))
                        continue  # gapped: leave queued for a later block
                    taken_nonces[tx.sender] = expected + 1
                batch.append(tx)
                gas += tx.gas_limit
                del self._pending[entry[3]]
                del self._entry_seq[entry[3]]
                progress = True
            return progress

        def drain():
            while True:
                live = self._pop_live()
                if live is None:
                    return
                yield live

        progress = sweep(drain(), spill=False)
        # Multiple sweeps: taking nonce k can unlock the same sender's
        # nonce k+1 that sorted earlier in the candidate order.  Only the
        # deferred prefix needs revisiting — candidates past an early stop
        # stay in the heap and stay unreachable.
        while progress and next_nonce is not None and len(batch) < max_txs:
            prev, deferred = deferred, []
            progress = sweep(prev, spill=True)
        for entry, _tx in deferred:
            heapq.heappush(self._fee_heap, entry)
        return batch

    def take_batch(
        self,
        max_txs: int,
        *,
        gas_limit: int | None = None,
        next_nonce=None,
        by_fee: bool = False,
    ) -> list[Transaction]:
        """Remove and return up to ``max_txs`` transactions (FIFO order),
        optionally bounded by a cumulative gas limit (Alg. 1 lines 11-12).

        ``next_nonce(sender) -> int`` makes batching nonce-aware (Geth's
        pending-vs-queued split): a transaction is only taken when its
        nonce is the sender's next expected — accounting for same-sender
        transactions already in the batch — so gapped transactions wait in
        the pool instead of being discarded at execution.

        ``by_fee`` switches candidate order from FIFO to descending gas
        price (a fee market: proposers maximize Σ Txfees, the RPM
        incentive term), with per-sender nonce order still enforced — it
        runs on the fee-indexed heap, O(k log n) per k-transaction batch.
        """
        if by_fee:
            batch = self._take_batch_by_fee(max_txs, gas_limit, next_nonce)
            if batch:
                m = _metrics()
                m.taken.inc(len(batch))
                m.size.set(len(self._pending))
            return batch

        batch: list[Transaction] = []
        gas = 0
        taken_nonces: dict[str, int] = {}

        def one_pass() -> bool:
            """Single selection sweep; returns True if anything was taken."""
            nonlocal gas
            candidates = list(self._pending)
            progress = False
            for tx_hash in candidates:
                if len(batch) >= max_txs:
                    return progress
                tx, _ = self._pending[tx_hash]
                if gas_limit is not None and gas + tx.gas_limit > gas_limit:
                    return progress
                if next_nonce is not None:
                    expected = taken_nonces.get(tx.sender)
                    if expected is None:
                        expected = next_nonce(tx.sender)
                    if tx.nonce != expected:
                        continue  # gapped: leave queued for a later block
                    taken_nonces[tx.sender] = expected + 1
                batch.append(tx)
                gas += tx.gas_limit
                del self._pending[tx_hash]
                self._entry_seq.pop(tx_hash, None)
                progress = True
            return progress

        # Multiple sweeps: taking nonce k can unlock the same sender's
        # nonce k+1 that sorted earlier in the candidate order.
        while len(batch) < max_txs and one_pass():
            if next_nonce is None:
                break  # without nonce gating one sweep sees everything
        if batch:
            m = _metrics()
            m.taken.inc(len(batch))
            m.size.set(len(self._pending))
        return batch

    def oldest_age(self, now: float) -> float:
        """Age in seconds of the oldest pending transaction (0.0 when
        empty) — the congestion observatory's queue-delay signal: a
        growing oldest-age means arrivals outpace block inclusion."""
        for _, admitted in self._pending.values():
            return max(0.0, now - admitted)
        return 0.0

    def peek(self, count: int) -> list[Transaction]:
        """First ``count`` pending transactions without removing them."""
        out = []
        for tx, _ in self._pending.values():
            if len(out) >= count:
                break
            out.append(tx)
        return out

    def remove_hashes(self, tx_hashes: "set[bytes] | frozenset[bytes]") -> int:
        """Remove any pending transaction whose hash is in ``tx_hashes``
        (used when a decided superblock contains txs we also hold)."""
        removed = 0
        for tx_hash in list(self._pending):
            if tx_hash in tx_hashes:
                del self._pending[tx_hash]
                self._entry_seq.pop(tx_hash, None)
                removed += 1
        return removed

    def clear(self) -> None:
        self._pending.clear()
        self._entry_seq.clear()
        self._fee_heap.clear()
