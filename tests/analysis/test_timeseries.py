"""Time-series extraction and sparklines."""

import numpy as np

from repro.analysis.timeseries import (
    CongestionSeries,
    congestion_series,
    sparkline,
)
from repro.sim.chains import SRBB
from repro.workloads import burst_trace, constant_trace


class TestSparkline:
    def test_empty(self):
        assert sparkline(np.zeros(0)) == ""

    def test_flat_zero(self):
        assert sparkline(np.zeros(5)) == "▁▁▁▁▁"

    def test_monotone_shape(self):
        line = sparkline(np.array([0, 1, 2, 3, 4, 5, 6, 7], dtype=float))
        assert line[0] == "▁" and line[-1] == "█"

    def test_resamples_to_width(self):
        line = sparkline(np.arange(1000, dtype=float), width=40)
        assert len(line) == 40


class TestCongestionSeries:
    def test_light_load_series(self):
        result, series = congestion_series(SRBB, constant_trace(100, 20), grace_s=20)
        assert series.commits_per_s.sum() == result.committed
        assert series.congestion_onset_s(threshold=10_000) is None

    def test_burst_creates_pool_spike(self):
        trace = burst_trace(50, 8000, 30, burst_at=5)
        result, series = congestion_series(SRBB, trace, grace_s=60)
        onset = series.congestion_onset_s(threshold=1000.0)
        assert onset is not None
        assert 4 <= onset <= 7  # the burst second
        drain = series.drain_time_s()
        assert drain is not None and drain > onset

    def test_render_contains_both_rows(self):
        _, series = congestion_series(SRBB, constant_trace(50, 10), grace_s=10)
        text = series.render()
        assert "commits/s" in text and "pool" in text
        assert "srbb" in text
