"""Flattening, direction-aware thresholds, diff statuses, exit codes."""

import json

import pytest

from repro.bench import (
    ARTIFACT_SCHEMA,
    Threshold,
    compare_files,
    diff_docs,
    flatten_doc,
    render_comparison,
)
from repro.telemetry import MetricsRegistry, to_json, to_prometheus


def _snapshot() -> dict:
    reg = MetricsRegistry()
    reg.counter("srbb_sim_txs_committed_total", "committed").inc(1000)
    reg.counter("srbb_net_messages_total").labels(
        kind="consensus", src_region="sydney", dst_region="oregon"
    ).inc(50)
    h = reg.histogram("srbb_sim_commit_latency_seconds", buckets=(0.1, 1.0))
    for _ in range(10):
        h.observe(0.5)
    return to_json(reg)


def _artifact_doc(headline=None, metrics=None) -> dict:
    return {
        "schema": ARTIFACT_SCHEMA,
        "scenario": "demo",
        "description": "",
        "seed": 1,
        "env": {"python": "3", "platform": "x", "host": "h",
                "created_utc": "t", "wall_time_s": 0.1, "git_sha": None},
        "headline": headline if headline is not None else {"throughput_tps": 100.0},
        "metrics": metrics if metrics is not None else {},
    }


class TestFlatten:
    def test_snapshot_scalars_and_histograms(self):
        flat = flatten_doc(_snapshot())
        assert flat["srbb_sim_txs_committed_total"] == 1000
        key = ('srbb_net_messages_total{dst_region="oregon",kind="consensus",'
               'src_region="sydney"}')
        assert flat[key] == 50
        assert flat["srbb_sim_commit_latency_seconds:count"] == 10
        assert flat["srbb_sim_commit_latency_seconds:p50"] == pytest.approx(0.5, rel=0.05)

    def test_artifact_headline_prefixed(self):
        flat = flatten_doc(_artifact_doc())
        assert flat["headline:throughput_tps"] == 100.0

    def test_prometheus_text_accepted(self):
        reg = MetricsRegistry()
        reg.counter("srbb_sim_txs_sent_total").inc(7)
        flat = flatten_doc(to_prometheus(reg))
        assert flat["srbb_sim_txs_sent_total"] == 7

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            flatten_doc(42)


class TestThreshold:
    def test_higher_is_better_drop_regresses(self):
        t = Threshold("*", "higher", 5.0)
        assert t.is_regression(100.0, 90.0)
        assert not t.is_regression(100.0, 96.0)
        assert not t.is_regression(100.0, 120.0)

    def test_lower_is_better_growth_regresses(self):
        t = Threshold("*", "lower", 10.0)
        assert t.is_regression(100.0, 120.0)
        assert not t.is_regression(100.0, 105.0)
        assert not t.is_regression(100.0, 50.0)

    def test_abs_slack_protects_near_zero(self):
        t = Threshold("*", "lower", 10.0, abs_slack=5.0)
        assert not t.is_regression(0.0, 4.0)
        assert t.is_regression(0.0, 6.0)

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            Threshold("*", "sideways", 5.0)


class TestDiff:
    def test_identical_docs_ok(self):
        result = diff_docs(_snapshot(), _snapshot())
        assert result.ok
        assert all(d.status in ("ok", "info") for d in result.deltas)

    def test_throughput_drop_is_regression(self):
        old = _artifact_doc({"throughput_tps": 100.0})
        new = _artifact_doc({"throughput_tps": 80.0})
        result = diff_docs(old, new)
        assert not result.ok
        (reg,) = result.regressions
        assert reg.key == "headline:throughput_tps"

    def test_latency_growth_is_regression_and_drop_improves(self):
        old = _artifact_doc({"p99_latency_s": 10.0})
        new = _artifact_doc({"p99_latency_s": 20.0})
        assert not diff_docs(old, new).ok
        back = diff_docs(new, old)
        assert back.ok
        assert any(d.status == "improved" for d in back.deltas)

    def test_message_count_growth_is_regression(self):
        old = _artifact_doc({"net_messages_total": 1000.0})
        new = _artifact_doc({"net_messages_total": 1500.0})
        assert not diff_docs(old, new).ok

    def test_latency_histogram_count_growth_not_gated(self):
        # more observations in the latency histogram = more commits: good
        reg_a = MetricsRegistry()
        h = reg_a.histogram("srbb_sim_commit_latency_seconds", buckets=(1.0,))
        h.observe(0.5)
        reg_b = MetricsRegistry()
        h = reg_b.histogram("srbb_sim_commit_latency_seconds", buckets=(1.0,))
        for _ in range(100):
            h.observe(0.5)
        assert diff_docs(to_json(reg_a), to_json(reg_b)).ok

    def test_wall_clock_metrics_never_gated(self):
        reg_a = MetricsRegistry()
        reg_a.histogram("srbb_eager_validate_seconds", buckets=(1.0,)).observe(0.001)
        reg_b = MetricsRegistry()
        reg_b.histogram("srbb_eager_validate_seconds", buckets=(1.0,)).observe(0.9)
        result = diff_docs(to_json(reg_a), to_json(reg_b))
        assert result.ok
        assert all(d.threshold is None for d in result.deltas)

    def test_added_and_removed_metrics_reported(self):
        result = diff_docs(
            _artifact_doc({"only_old": 1.0}), _artifact_doc({"only_new": 2.0})
        )
        statuses = {d.key: d.status for d in result.deltas}
        assert statuses["headline:only_old"] == "removed"
        assert statuses["headline:only_new"] == "added"


class TestLatencyBreakdownGates:
    def test_losing_execute_dominance_regresses(self):
        old = _artifact_doc({"latency_breakdown:dominant_execute": 1.0})
        new = _artifact_doc({"latency_breakdown:dominant_execute": 0.0})
        result = diff_docs(old, new)
        assert [d.key for d in result.regressions] == [
            "headline:latency_breakdown:dominant_execute"
        ]

    def test_bucket_p99_growth_regresses_drop_improves(self):
        old = _artifact_doc({"latency_breakdown:execute_p99_s": 2.0})
        worse = _artifact_doc({"latency_breakdown:execute_p99_s": 2.6})
        better = _artifact_doc({"latency_breakdown:execute_p99_s": 1.0})
        assert not diff_docs(old, worse).ok
        result = diff_docs(old, better)
        assert result.ok
        assert result.deltas[0].status == "improved"

    def test_exec_share_is_informational(self):
        old = _artifact_doc({"latency_breakdown:exec_share": 0.2})
        new = _artifact_doc({"latency_breakdown:exec_share": 0.9})
        (delta,) = diff_docs(old, new).deltas
        assert delta.status == "info"

    def test_tiny_absolute_jitter_absorbed_by_slack(self):
        old = _artifact_doc({"latency_breakdown:admit_p50_s": 0.01})
        new = _artifact_doc({"latency_breakdown:admit_p50_s": 0.05})
        assert diff_docs(old, new).ok  # +400% but under 0.1s abs slack

    def test_sim_phase_keys_gated(self):
        old = _artifact_doc({"srbb_phase_pool_wait_p99_s": 1.0})
        new = _artifact_doc({"srbb_phase_pool_wait_p99_s": 2.0})
        assert not diff_docs(old, new).ok


def _snapshot_with_exemplars(latency: float) -> dict:
    snap = _snapshot()
    hist = snap["srbb_sim_commit_latency_seconds"]
    hist["samples"][0]["p99"] = latency
    hist["samples"][0]["exemplars"] = [
        {"value": latency, "span_id": "s7", "ts": 12.5},
        {"value": latency / 2, "span_id": "s3", "ts": 1.0},
    ]
    return snap


class TestExemplarSurfacing:
    def test_exemplars_collected_from_new_doc(self):
        result = diff_docs(_snapshot(), _snapshot_with_exemplars(5.0))
        exemplars = result.exemplars["srbb_sim_commit_latency_seconds"]
        assert [e["span_id"] for e in exemplars] == ["s7", "s3"]

    def test_regression_row_links_worst_spans(self):
        text = render_comparison(
            diff_docs(_snapshot(), _snapshot_with_exemplars(5.0))
        )
        assert "srbb_sim_commit_latency_seconds:p99" in text
        # worst observation first, linked by span ID and timestamp
        assert "↳ span s7 observed 5 at ts=12.5" in text

    def test_no_exemplar_lines_without_regression(self):
        snap = _snapshot_with_exemplars(0.5)
        text = render_comparison(diff_docs(snap, snap))
        assert "↳ span" not in text

    def test_prometheus_input_yields_no_exemplars(self):
        reg = MetricsRegistry()
        reg.counter("srbb_sim_txs_sent_total").inc(7)
        result = diff_docs(to_prometheus(reg), to_prometheus(reg))
        assert result.exemplars == {}


class TestRender:
    def test_regression_named_in_output(self):
        old = _artifact_doc({"throughput_tps": 100.0})
        new = _artifact_doc({"throughput_tps": 50.0})
        text = render_comparison(diff_docs(old, new))
        assert "REGRESSION" in text
        assert "headline:throughput_tps" in text
        assert "-50.0%" in text

    def test_ok_summary_when_clean(self):
        text = render_comparison(diff_docs(_snapshot(), _snapshot()))
        assert "no thresholded metric regressed" in text

    def test_truncates_to_max_rows(self):
        headline = {f"metric_{i:03d}": float(i) for i in range(60)}
        bumped = {k: v + 1.0 for k, v in headline.items()}
        text = render_comparison(
            diff_docs(_artifact_doc(headline), _artifact_doc(bumped)), max_rows=10
        )
        assert "more changed metrics" in text


class TestCompareFiles:
    def test_exit_codes_and_prometheus_input(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("srbb_sim_txs_committed_total").inc(100)
        good = tmp_path / "good.prom"
        good.write_text(to_prometheus(reg))
        reg2 = MetricsRegistry()
        reg2.counter("srbb_sim_txs_committed_total").inc(50)
        bad = tmp_path / "bad.prom"
        bad.write_text(to_prometheus(reg2))

        text, rc = compare_files(str(good), str(good))
        assert rc == 0
        text, rc = compare_files(str(good), str(bad))
        assert rc == 1 and "srbb_sim_txs_committed_total" in text

    def test_json_artifact_files(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(_artifact_doc({"throughput_tps": 10.0})))
        b.write_text(json.dumps(_artifact_doc({"throughput_tps": 10.0})))
        _, rc = compare_files(str(a), str(b))
        assert rc == 0
