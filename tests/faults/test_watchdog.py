"""Liveness watchdog: stall detection, recovery, crash pause/resume."""

import pytest

from repro.faults import LivenessWatchdog
from repro.net.simulator import Simulator


def make_watchdog(**kwargs):
    sim = Simulator()
    calls = []
    kwargs.setdefault("stall_after_s", 2.0)
    dog = LivenessWatchdog(
        node_id=0, sim=sim, on_stall=lambda: calls.append(sim.now), **kwargs
    )
    return sim, dog, calls


class TestStallDetection:
    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError, match="> 0"):
            LivenessWatchdog(node_id=0, sim=Simulator(), stall_after_s=0.0)

    def test_no_stall_while_commits_flow(self):
        sim, dog, calls = make_watchdog()
        dog.start()
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule_at(t, dog.notify_commit)
        sim.run_until(5.0)
        assert not dog.stalled
        assert dog.stall_count == 0
        assert calls == []

    def test_silence_trips_the_watchdog_once(self):
        sim, dog, calls = make_watchdog()
        dog.start()
        sim.run_until(10.0)
        assert dog.stalled
        assert dog.stall_count == 1  # one stall episode, not one per check
        assert len(calls) >= 1

    def test_keeps_nudging_while_wedged(self):
        # on_stall re-fires on every later check until progress resumes —
        # a single lost catch-up request must not wedge recovery forever.
        sim, dog, calls = make_watchdog()
        dog.start()
        sim.run_until(10.0)
        assert len(calls) >= 3

    def test_commit_clears_the_stall(self):
        sim, dog, calls = make_watchdog()
        dog.start()
        sim.run_until(5.0)
        assert dog.stalled
        sim.schedule_at(5.5, dog.notify_commit)
        sim.run_until(6.0)
        assert not dog.stalled
        assert dog.stall_count == 1

    def test_restall_counts_a_new_episode(self):
        sim, dog, _ = make_watchdog()
        dog.start()
        sim.run_until(5.0)
        sim.schedule_at(5.5, dog.notify_commit)
        sim.run_until(20.0)  # silence again after the commit
        assert dog.stall_count == 2


class TestWithheldClassification:
    def test_withheld_wedge_suppresses_the_nudge(self):
        # A declared Byzantine withholder wedges everyone at the same
        # height: catch-up cannot help, so no re-nudge spam.
        sim, dog, calls = make_watchdog(classify=lambda: "withheld")
        dog.start()
        dog.byzantine_windows = 1
        sim.run_until(10.0)
        assert dog.stalled
        assert calls == []
        assert dog.withheld_checks >= 1

    def test_genuinely_behind_still_nudges_during_a_window(self):
        sim, dog, calls = make_watchdog(classify=lambda: "behind")
        dog.start()
        dog.byzantine_windows = 1
        sim.run_until(10.0)
        assert len(calls) >= 1
        assert dog.withheld_checks == 0

    def test_classifier_ignored_outside_byzantine_windows(self):
        # With no declared window the stall is never attributed to
        # withholding — defaults behave exactly as before.
        sim, dog, calls = make_watchdog(classify=lambda: "withheld")
        dog.start()
        sim.run_until(10.0)
        assert len(calls) >= 1
        assert dog.withheld_checks == 0

    def test_no_classifier_means_always_nudge(self):
        sim, dog, calls = make_watchdog()
        dog.start()
        dog.byzantine_windows = 1
        sim.run_until(10.0)
        assert len(calls) >= 1


class TestLifecycle:
    def test_stop_pauses_checks_and_clears_the_flag(self):
        sim, dog, calls = make_watchdog()
        dog.start()
        sim.run_until(5.0)
        assert dog.stalled
        dog.stop()
        assert not dog.stalled  # down, not wedged
        n = len(calls)
        sim.run_until(30.0)
        assert len(calls) == n  # no nudges while stopped

    def test_resume_rearms_with_a_fresh_clock(self):
        sim, dog, _ = make_watchdog()
        dog.start()
        sim.run_until(5.0)
        dog.stop()
        sim.run_until(12.0)
        dog.resume()
        assert dog.last_commit_at == 12.0  # downtime is not counted as idle
        sim.run_until(13.0)
        assert not dog.stalled
        sim.run_until(20.0)
        assert dog.stalled

    def test_start_is_idempotent(self):
        sim, dog, _ = make_watchdog(check_interval_s=1.0)
        dog.start()
        dog.start()
        sim.schedule_at(0.5, dog.notify_commit)
        sim.run_until(0.9)
        # one check loop scheduled, not two
        assert sim.pending == 1
