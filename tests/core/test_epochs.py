"""Live committee reconfiguration: schedules, passive observers, rotation."""

import pytest

from repro import params
from repro.core.epochs import (
    CommitteeSchedule,
    ReconfigurableDeployment,
    ReconfigurableNode,
)
from repro.core.deployment import fund_clients
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


class TestSchedule:
    def test_deterministic(self):
        a = CommitteeSchedule(pool_size=8, committee_size=4, seed=5)
        b = CommitteeSchedule(pool_size=8, committee_size=4, seed=5)
        assert a.committee_for_epoch(3) == b.committee_for_epoch(3)

    def test_rotation_changes_membership(self):
        schedule = CommitteeSchedule(pool_size=10, committee_size=4)
        committees = {schedule.committee_for_epoch(e) for e in range(12)}
        assert len(committees) > 1

    def test_epoch_of_index(self):
        schedule = CommitteeSchedule(pool_size=8, committee_size=4, epoch_length=8)
        assert schedule.epoch_of(1) == 0
        assert schedule.epoch_of(8) == 0
        assert schedule.epoch_of(9) == 1
        assert schedule.epoch_of(17) == 2

    def test_every_candidate_eventually_serves(self):
        schedule = CommitteeSchedule(pool_size=8, committee_size=4)
        seen = set()
        for epoch in range(50):
            seen.update(schedule.committee_for_epoch(epoch))
        assert seen == set(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            CommitteeSchedule(pool_size=3, committee_size=4)
        with pytest.raises(ValueError):
            CommitteeSchedule(pool_size=8, committee_size=3)


def build_deployment(pool_size=6, epoch_length=4, **kw):
    clients, balances = fund_clients(3)
    deployment = ReconfigurableDeployment(
        pool_size=pool_size,
        committee_size=4,
        epoch_length=epoch_length,
        topology=single_region_topology(pool_size),
        extra_balances=balances,
        **kw,
    )
    return deployment, clients


class TestReconfigurableDeployment:
    def test_rpm_must_be_off(self):
        with pytest.raises(ValueError):
            ReconfigurableDeployment(
                pool_size=6, committee_size=4,
                protocol=params.ProtocolParams(n=6, rpm=True),
                topology=single_region_topology(6),
            )

    def test_commits_across_epoch_boundary(self):
        deployment, clients = build_deployment()
        deployment.start()
        txs = []
        # keep submitting so rounds stay busy across ≥ 3 epochs
        for i in range(12):
            sender = clients[i % 3]
            tx = make_transfer(sender, clients[(i + 1) % 3].address, 1, nonce=i // 3)
            # target a member of the round-1 committee first; later txs go
            # round-robin over the pool (members change anyway)
            target = deployment.committee_for_index(1)[i % 4]
            deployment.submit(tx, validator_id=target, at=0.05 + 0.3 * i)
            txs.append(tx)
        deployment.run_until(25.0)
        heights = [v.blockchain.height for v in deployment.validators]
        committed_indexes = [v._next_commit_index for v in deployment.validators]
        # the chain crossed at least two epoch boundaries (epoch_length=4)
        assert min(committed_indexes) > 12
        assert deployment.safety_holds()
        assert deployment.states_agree()

    def test_observers_track_the_chain(self):
        """Nodes outside the committee commit the same superblocks."""
        deployment, clients = build_deployment(epoch_length=1000)  # one epoch
        committee = set(deployment.committee_for_index(1))
        observers = [
            v for v in deployment.validators if v.node_id not in committee
        ]
        assert observers, "pool must exceed committee for this test"
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 9, nonce=0)
        member = next(iter(sorted(committee)))
        deployment.submit(tx, validator_id=member, at=0.05)
        deployment.run_until(6.0)
        for observer in observers:
            assert observer.blockchain.contains_tx(tx)
            assert observer.stats.blocks_proposed == 0
        assert deployment.states_agree()

    def test_observers_send_no_consensus_traffic(self):
        deployment, clients = build_deployment(epoch_length=1000)
        committee = set(deployment.committee_for_index(1))
        deployment.start()
        deployment.run_until(3.0)
        # count consensus messages by sender (network-level, authentic)
        sent_by = {}
        # rely on node stats: observers never proposed; and no messages from
        # them means their logical check is moot — probe via network stats
        # is aggregate, so check SBC passivity directly:
        for v in deployment.validators:
            if v.node_id not in committee:
                for sbc in v._consensus.values():
                    assert sbc.passive

    def test_new_committee_members_proceed_without_sync(self):
        """A node that was an observer in epoch 0 proposes in a later epoch
        with full state (observers replicate everything)."""
        deployment, clients = build_deployment(pool_size=6, epoch_length=3)
        first = set(deployment.committee_for_index(1))
        # find an epoch whose committee contains a node not in the first
        target_epoch, newcomer = None, None
        for epoch in range(1, 20):
            committee = set(deployment.schedule.committee_for_epoch(epoch))
            fresh = committee - first
            if fresh:
                target_epoch, newcomer = epoch, next(iter(sorted(fresh)))
                break
        assert target_epoch is not None
        deployment.start()
        deployment.run_until(30.0)
        node = deployment.validators[newcomer]
        reached = node._next_commit_index - 1
        if reached >= target_epoch * 3 + 1:  # the epoch actually ran
            assert node.stats.blocks_proposed > 0
        assert deployment.states_agree()
