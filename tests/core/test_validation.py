"""Eager vs lazy validation — the layering §IV-D depends on."""

import pytest

from repro import params
from repro.core.transaction import Transaction, TxType, make_transfer
from repro.core.validation import (
    NONCE_WINDOW,
    check_signature,
    clear_signature_cache,
    eager_validate,
    lazy_validate,
)
from repro.crypto.keys import generate_keypair
from repro.vm.state import WorldState

FUNDS = 10**9


@pytest.fixture
def kp():
    return generate_keypair(5)


@pytest.fixture
def state(kp):
    ws = WorldState()
    ws.create_account(kp.address, FUNDS)
    return ws


class TestEagerValidation:
    def test_valid_transfer_passes(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 10, nonce=0)
        assert eager_validate(tx, state)

    def test_unsigned_fails(self, kp, state):
        tx = Transaction(
            tx_type=TxType.TRANSFER, sender=kp.address, receiver="aa" * 20,
            amount=1, nonce=0, gas_limit=21_000, gas_price=1,
        )
        assert eager_validate(tx, state).error_code == "invalid-sig"

    def test_forged_sender_fails(self, kp, state):
        other = generate_keypair(6)
        tx = make_transfer(other, "aa" * 20, 1, nonce=0)
        forged = Transaction(
            tx_type=tx.tx_type, sender=kp.address, receiver=tx.receiver,
            amount=tx.amount, nonce=tx.nonce, gas_limit=tx.gas_limit,
            gas_price=tx.gas_price, public_key=tx.public_key, signature=tx.signature,
        )
        assert eager_validate(forged, state).error_code == "invalid-sig"

    def test_oversized_fails(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0, padding=params.MAX_TX_SIZE)
        assert eager_validate(tx, state).error_code == "oversized"

    def test_past_nonce_fails(self, kp, state):
        state.bump_nonce(kp.address)
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0)
        assert eager_validate(tx, state).error_code == "bad-nonce"

    def test_future_nonce_within_window_passes(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=NONCE_WINDOW)
        assert eager_validate(tx, state)

    def test_far_future_nonce_fails(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=NONCE_WINDOW + 1)
        assert eager_validate(tx, state).error_code == "bad-nonce"

    def test_zero_balance_sender_fails(self, state):
        broke = generate_keypair(7)
        tx = make_transfer(broke, "aa" * 20, 1, nonce=0)
        outcome = eager_validate(tx, state)
        assert outcome.error_code in ("insufficient-gas", "insufficient-balance")

    def test_amount_beyond_balance_fails(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, FUNDS, nonce=0)
        assert eager_validate(tx, state).error_code == "insufficient-balance"

    def test_gas_limit_above_block_limit_fails(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0,
                           gas_limit=params.BLOCK_GAS_LIMIT + 1)
        assert eager_validate(tx, state).error_code == "exceeds-block-gas"

    def test_unfittable_gas_limit_reported_before_balance(self, kp, state):
        """Regression: a gas limit no block can fit is an *intrinsic*
        defect.  It used to be checked after the balance checks, so a
        sender who (of course) couldn't afford the inflated fee cap got a
        misleading "insufficient-gas" — and RPM reports blamed the wrong
        failure class.  A broke sender must still see exceeds-block-gas."""
        broke = generate_keypair(9)
        state.create_account(broke.address, 1)  # cannot cover any fee cap
        tx = make_transfer(broke, "aa" * 20, 1, nonce=0,
                           gas_limit=params.BLOCK_GAS_LIMIT + 1)
        assert eager_validate(tx, state).error_code == "exceeds-block-gas"


class TestLazyValidation:
    def test_valid_passes(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 10, nonce=0)
        assert lazy_validate(tx, state)

    def test_lazy_skips_signature(self, kp, state):
        """Lazy validation is weaker than eager: an unsigned transaction
        passes (the execution layer catches it) — §IV-D's check split."""
        tx = Transaction(
            tx_type=TxType.TRANSFER, sender=kp.address, receiver="aa" * 20,
            amount=1, nonce=0, gas_limit=21_000, gas_price=1,
        )
        assert lazy_validate(tx, state)

    def test_lazy_skips_size(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0, padding=params.MAX_TX_SIZE)
        assert lazy_validate(tx, state)

    def test_lazy_requires_exact_nonce(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=1)
        assert lazy_validate(tx, state).error_code == "bad-nonce"

    def test_lazy_checks_balance(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, FUNDS, nonce=0)
        assert lazy_validate(tx, state).error_code == "insufficient-balance"

    def test_lazy_checks_gas_affordability(self, state):
        poor = generate_keypair(8)
        state.create_account(poor.address, 100)  # can't cover 21000 gas
        tx = make_transfer(poor, "aa" * 20, 1, nonce=0)
        assert lazy_validate(tx, state).error_code == "insufficient-gas"

    def test_eager_strictly_stronger(self, kp, state):
        """Everything lazy rejects, eager rejects too (on fresh state)."""
        cases = [
            make_transfer(kp, "aa" * 20, FUNDS, nonce=0),
            make_transfer(kp, "aa" * 20, 1, nonce=NONCE_WINDOW + 5),
        ]
        for tx in cases:
            if not lazy_validate(tx, state):
                assert not eager_validate(tx, state)


class TestSignatureCache:
    def _count_recoveries(self, monkeypatch):
        """Wrap the underlying recover_check with an invocation counter."""
        from repro.core import validation
        from repro.crypto.keys import recover_check as real

        calls = []

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(validation, "recover_check", counting)
        return calls

    def test_second_check_hits_cache(self, kp, monkeypatch):
        calls = self._count_recoveries(monkeypatch)
        tx = make_transfer(kp, "aa" * 20, 10, nonce=0)
        assert check_signature(tx)
        assert check_signature(tx)
        assert len(calls) == 1  # one full recovery, one cache hit

    def test_negative_results_are_not_cached(self, kp, monkeypatch):
        calls = self._count_recoveries(monkeypatch)
        good = make_transfer(kp, "aa" * 20, 10, nonce=0)
        forged = Transaction(
            tx_type=good.tx_type, sender=generate_keypair(10).address,
            receiver=good.receiver, amount=good.amount, nonce=good.nonce,
            gas_limit=good.gas_limit, gas_price=good.gas_price,
            public_key=good.public_key, signature=good.signature,
        )
        assert not check_signature(forged)
        assert not check_signature(forged)
        assert len(calls) == 2  # both failures recomputed in full

    def test_tampered_resubmission_with_reused_hash_misses_cache(self, kp):
        """An attacker who re-submits tampered content under an
        already-verified transaction hash must not be vouched for by the
        cache: the fingerprint covers every signature-relevant field, so
        the check falls through to full recovery — which fails."""
        good = make_transfer(kp, "aa" * 20, 10, nonce=0)
        assert check_signature(good)  # hash now cached as verified
        tampered = Transaction(
            tx_type=good.tx_type, sender=good.sender, receiver=good.receiver,
            amount=good.amount + 10**6, nonce=good.nonce,
            gas_limit=good.gas_limit, gas_price=good.gas_price,
            public_key=good.public_key, signature=good.signature,
        )
        # Force the collision: pre-seed the cached_property with the
        # verified transaction's hash, as a malicious peer would claim.
        tampered.__dict__["tx_hash"] = good.tx_hash
        assert tampered.tx_hash == good.tx_hash
        assert not check_signature(tampered)
        # ... and the poisoned attempt did not evict/overwrite the entry
        assert check_signature(good)

    def test_cache_is_bounded(self, kp, monkeypatch):
        from repro.core import validation

        monkeypatch.setattr(validation, "SIG_CACHE_CAPACITY", 4)
        clear_signature_cache()
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(10)]
        for tx in txs:
            assert check_signature(tx)
        assert len(validation._sig_cache) == 4
        # LRU: the most recent entries survive
        assert txs[-1].tx_hash in validation._sig_cache
        assert txs[0].tx_hash not in validation._sig_cache

    def test_unsigned_rejected_without_recovery(self, kp, monkeypatch):
        calls = self._count_recoveries(monkeypatch)
        tx = Transaction(
            tx_type=TxType.TRANSFER, sender=kp.address, receiver="aa" * 20,
            amount=1, nonce=0, gas_limit=21_000, gas_price=1,
        )
        assert not check_signature(tx)
        assert not calls


class TestSignatureCacheThreadSafety:
    def test_concurrent_check_signature(self):
        """Worker threads hammering the LRU (with churn past capacity)
        must neither crash nor return a wrong verdict."""
        import threading

        from repro.core import validation as v
        from repro.core.transaction import make_transfer
        from repro.crypto.keys import generate_keypair

        keypairs = [generate_keypair(8800 + i) for i in range(4)]
        txs = [
            make_transfer(kp, "aa" * 20, 1, nonce=n)
            for kp in keypairs
            for n in range(60)
        ]
        old_capacity = v.SIG_CACHE_CAPACITY
        v.SIG_CACHE_CAPACITY = 32  # force constant eviction
        v.clear_signature_cache()
        failures: list = []

        def worker(rounds):
            try:
                for _ in range(rounds):
                    for tx in txs:
                        if not v.check_signature(tx):
                            failures.append(tx)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        try:
            threads = [
                threading.Thread(target=worker, args=(3,)) for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            v.SIG_CACHE_CAPACITY = old_capacity
            v.clear_signature_cache()
        assert not failures
        assert len(v._sig_cache) <= 32
