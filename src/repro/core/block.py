"""Blocks, proposer certificates, and superblocks.

A block is a batch of transactions proposed by one validator.  Its
certificate ``Cert_B = {P_k, (h_t)_{S_k}}`` (Alg. 2) carries the proposer's
public key and the signed hash of the block's transactions; RPM verifies it
to credit rewards and attribute invalid transactions.

A superblock (RBBC's optimization) is the ordered union of the blocks whose
DBFT binary instance decided 1 in a consensus round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Sequence

from repro.core.transaction import Transaction
from repro.crypto import (
    KeyPair,
    PublicKey,
    Signature,
    hash_items,
    merkle_root,
    sign,
    verify,
)
from repro.crypto.keys import derive_address


def transactions_hash(txs: Sequence[Transaction]) -> bytes:
    """``h_t`` of Alg. 2 — Merkle root over the transaction hashes."""
    return merkle_root([tx.tx_hash for tx in txs])


@dataclass(frozen=True)
class BlockCertificate:
    """``Cert_B``: proposer public key + signed transactions hash."""

    public_key: PublicKey
    signed_tx_hash: Signature

    def proposer_address(self) -> str:
        """``derive(P_k)`` of Alg. 2."""
        return derive_address(self.public_key)

    def verify_against(self, txs: Sequence[Transaction]) -> bool:
        """Check the signature covers exactly these transactions."""
        return verify(self.public_key, transactions_hash(txs), self.signed_tx_hash)


@dataclass(frozen=True)
class Block:
    """One proposer's batch of transactions for a chain index."""

    proposer_id: int
    index: int
    transactions: tuple[Transaction, ...]
    parent_hash: bytes = b""
    certificate: BlockCertificate | None = None
    #: round of the consensus instance that proposed this block
    round: int = 0

    @cached_property
    def tx_root(self) -> bytes:
        return transactions_hash(self.transactions)

    @cached_property
    def block_hash(self) -> bytes:
        return hash_items(
            ["block", self.proposer_id, self.index, self.round,
             self.parent_hash, self.tx_root]
        )

    def __len__(self) -> int:
        return len(self.transactions)

    def encoded_size(self) -> int:
        """Wire size: ~200-byte header + transactions."""
        return 200 + sum(tx.encoded_size() for tx in self.transactions)

    def header_valid(self) -> bool:
        """The 'invalid header' check of Alg. 1 line 16: a block's
        certificate must exist and must sign exactly its transactions."""
        return self.certificate is not None and self.certificate.verify_against(
            self.transactions
        )

    def with_certificate(self, keypair: KeyPair) -> "Block":
        """Return a copy certified by the proposer's key pair."""
        cert = BlockCertificate(
            public_key=keypair.public,
            signed_tx_hash=sign(keypair.private, transactions_hash(self.transactions)),
        )
        return Block(
            proposer_id=self.proposer_id,
            index=self.index,
            transactions=self.transactions,
            parent_hash=self.parent_hash,
            certificate=cert,
            round=self.round,
        )


def make_block(
    proposer: KeyPair,
    proposer_id: int,
    index: int,
    txs: Sequence[Transaction],
    *,
    parent_hash: bytes = b"",
    round: int = 0,
) -> Block:
    """Build and certify a block in one step."""
    return Block(
        proposer_id=proposer_id,
        index=index,
        transactions=tuple(txs),
        parent_hash=parent_hash,
        round=round,
    ).with_certificate(proposer)


@dataclass(frozen=True)
class SuperBlock:
    """Decided superblock ``B*`` for one chain index: ordered sub-blocks."""

    index: int
    blocks: tuple[Block, ...]
    round: int = 0

    @cached_property
    def superblock_hash(self) -> bytes:
        return hash_items(
            ["superblock", self.index, self.round]
            + [b.block_hash for b in self.blocks]
        )

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def transaction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def all_transactions(self) -> Iterator[Transaction]:
        for block in self.blocks:
            yield from block.transactions


GENESIS = Block(proposer_id=-1, index=0, transactions=())
