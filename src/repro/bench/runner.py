"""Execute bench scenarios and write ``BENCH_<scenario>.json`` artifacts.

Each scenario runs against a *fresh, scoped* metrics registry and tracer
(telemetry enabled for the duration, restored afterwards), so:

* artifacts never mix counts from unrelated work in the same process;
* two runs of the same scenario produce identical registries — the
  determinism the regression gate relies on;
* histogram exemplars link observations to this run's spans.
"""

from __future__ import annotations

import os
import time

from repro import telemetry
from repro.bench.artifact import (
    BenchArtifact,
    artifact_filename,
    environment_fingerprint,
)
from repro.bench.scenarios import Scenario, get_scenario

__all__ = ["run_scenario", "run_scenarios"]


def run_scenario(name: "str | Scenario") -> BenchArtifact:
    """Run one scenario with scoped telemetry; returns the artifact."""
    scenario = name if isinstance(name, Scenario) else get_scenario(name)
    registry = telemetry.MetricsRegistry(enabled=True)
    tracer = telemetry.Tracer(enabled=True)
    previous_tracer = telemetry.set_tracer(tracer)
    t0 = time.perf_counter()
    try:
        with telemetry.use_registry(registry):
            with telemetry.span("bench.run", scenario=scenario.name) as attrs:
                headline = scenario.run(registry)
                attrs["headline_stats"] = len(headline)
    finally:
        telemetry.set_tracer(previous_tracer)
    wall = time.perf_counter() - t0
    return BenchArtifact(
        scenario=scenario.name,
        description=scenario.description,
        seed=scenario.seed,
        headline=headline,
        metrics=telemetry.to_json(registry),
        env=environment_fingerprint(wall_time_s=wall),
    )


def run_scenarios(
    names: "list[str]",
    *,
    out_dir: "str | None" = None,
    log=None,
) -> "list[tuple[BenchArtifact, str | None]]":
    """Run several scenarios; write artifacts when ``out_dir`` is given.

    Unknown names fail fast (before any scenario runs) so a typo cannot
    burn minutes of benchmarking first.
    """
    scenarios = [get_scenario(n) for n in names]
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    results: "list[tuple[BenchArtifact, str | None]]" = []
    for scenario in scenarios:
        if log:
            log(f"bench: running {scenario.name} ...")
        artifact = run_scenario(scenario)
        path = None
        if out_dir:
            path = os.path.join(out_dir, artifact_filename(scenario.name))
            artifact.save(path)
        if log:
            log(
                f"bench: {scenario.name} done in "
                f"{artifact.env['wall_time_s']:.2f}s"
                + (f" -> {path}" if path else "")
            )
        results.append((artifact, path))
    return results
