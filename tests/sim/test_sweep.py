"""Sweep utilities: saturation bisection, curves, crossovers."""

import pytest

from repro.sim.chains import ChainModel, EVM_DBFT, SRBB
from repro.sim.sweep import (
    crossover_rate,
    latency_curve,
    loss_curve,
    saturation_throughput,
)

#: cheap toy model so bisection runs fast in unit tests
TOY = ChainModel(
    name="toy", n=4, tx_gossip=False, pool_partitioned=True,
    mempool_capacity=100_000, block_interval=1.0, block_txs=500,
    proposers_per_round=1, consensus_latency=1.0, exec_rate=10_000.0,
)


class TestSaturation:
    def test_saturation_near_round_capacity(self):
        rate = saturation_throughput(TOY, duration_s=30, hi=2_000, tolerance=25)
        # commit ceiling is 500 tx / 1 s round (+ the 2 s drain window)
        assert 400 <= rate <= 600

    def test_srbb_sustains_more_than_baseline(self):
        srbb = saturation_throughput(SRBB, duration_s=30, hi=4_000, tolerance=100)
        base = saturation_throughput(EVM_DBFT, duration_s=30, hi=4_000, tolerance=100)
        assert srbb > 10 * base


class TestCurves:
    def test_latency_monotone_under_load(self):
        points = latency_curve(TOY, [100, 300, 450], duration_s=30)
        latencies = [p.avg_latency_s for p in points]
        assert latencies[0] <= latencies[-1]

    def test_loss_curve_onset(self):
        pairs = loss_curve(TOY, [100, 2_000], duration_s=30)
        assert pairs[0][1] == pytest.approx(1.0)
        assert pairs[1][1] < 1.0

    def test_crossover_detects_divergence(self):
        rate = crossover_rate(SRBB, EVM_DBFT, rates=[10, 100, 1_000], duration_s=30)
        assert rate is not None
        assert rate <= 1_000

    def test_crossover_none_for_identical(self):
        assert crossover_rate(TOY, TOY, rates=[100], duration_s=10) is None
