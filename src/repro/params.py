"""Protocol-wide constants and tunable parameter bundles.

Values mirror the paper's experimental setup where it states them (200
validators, 10 AWS regions, c5.2xlarge = 8 vCPU / 16 GB, DIABLO workload
envelopes) and sensible Geth-like defaults elsewhere.  Everything an
experiment may want to sweep lives in a frozen dataclass so parameter sets
are hashable, comparable and printable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

# -- transaction / block level ------------------------------------------------

#: Maximum encoded transaction size in bytes (Geth: 128 KiB for txs; DApp
#: invocations here are far smaller).
MAX_TX_SIZE = 128 * 1024

#: Default per-transaction gas limit for simple transfers (Ethereum: 21000).
TRANSFER_GAS = 21_000

#: Default block gas limit (Ethereum mainnet ballpark).
BLOCK_GAS_LIMIT = 30_000_000

#: Maximum number of transactions a proposer packs into one block.
MAX_BLOCK_TXS = 10_000

#: Time-to-live for a transaction in the pending pool, in simulated seconds.
TX_TTL = 600.0

#: Default transaction-pool capacity (Geth default: 4096+1024 slots; modern
#: chains differ and the chain models override this).
TXPOOL_CAPACITY = 16_384

# -- RPM / membership ----------------------------------------------------------

#: Validator deposit required for candidacy (in the native token).
VALIDATOR_DEPOSIT = 1_000_000

#: Constant block reward r_b credited per block included in a superblock.
BLOCK_REWARD = 100

#: Eager-validation cost c per transaction (token-denominated, Alg. 2).
EAGER_VALIDATION_COST = 10 ** -3

#: Epoch length in consensus rounds before committee reconfiguration.
EPOCH_LENGTH = 64

# -- timing --------------------------------------------------------------------

#: Known post-GST message delay bound (seconds) for partial synchrony.
DELTA = 0.5


@dataclass(frozen=True)
class ProtocolParams:
    """Bundle of consensus/transaction-level parameters for one deployment.

    ``n`` is the committee size and ``f`` the tolerated Byzantine count;
    the constructor derives ``f = floor((n - 1) / 3)`` when not given,
    matching the optimal-resilience assumption f < n/3.
    """

    n: int = 4
    f: int = -1  # derived in __post_init__ when negative
    max_tx_size: int = MAX_TX_SIZE
    block_gas_limit: int = BLOCK_GAS_LIMIT
    max_block_txs: int = MAX_BLOCK_TXS
    tx_ttl: float = TX_TTL
    txpool_capacity: int = TXPOOL_CAPACITY
    validator_deposit: int = VALIDATOR_DEPOSIT
    block_reward: int = BLOCK_REWARD
    eager_validation_cost: float = EAGER_VALIDATION_COST
    epoch_length: int = EPOCH_LENGTH
    delta: float = DELTA
    #: TVPR on/off: when True validators never gossip individual transactions.
    tvpr: bool = True
    #: RPM on/off: when True the reward-penalty contract is active.
    rpm: bool = True
    #: Honour RPM exclusions at the communication layer: once the RPM
    #: contract emits a Byzantine-validator event (Alg. 2 line 42),
    #: correct nodes also drop the excluded seat's gossip and consensus
    #: traffic instead of merely rejecting its proposals.  Off by default
    #: so seeded baselines are untouched.
    rpm_exclude_comms: bool = False
    #: Vote batching on/off: when True each validator coalesces the
    #: BVAL/AUX/COORD (and RBC ECHO/READY) traffic it emits within one
    #: tick into a single BATCH wire message per broadcast; off keeps the
    #: one-message-per-vote path alive for ablation comparisons.
    vote_batching: bool = True
    #: Flush quantum for vote batching, simulated seconds.  Must stay well
    #: under ``delta`` (votes are delayed at most one tick) and the
    #: proposer timeout; 0 batches only within one event cascade.  At 0.1
    #: a single-region deployment coalesces enough of each round's votes
    #: for a >=10x wire-message reduction without altering decisions.
    vote_batch_tick: float = 0.1
    #: Adaptive vote-batch tick: when True each batcher shrinks its
    #: effective flush quantum under light load (EWMA of votes-per-flush),
    #: trading a little coalescing for latency when there is nothing to
    #: coalesce.  Off by default — flush timing shifts perturb seeded
    #: runs, so baselines stay byte-identical.
    vote_batch_adaptive: bool = False
    #: Parallel transaction execution: when True the commit loop executes
    #: each block's conflict-free groups (Definition 1) concurrently via
    #: the ``threads`` backend of :mod:`repro.vm.parallel`, merging
    #: per-chunk state forks in deterministic order.  State roots and
    #: receipts are byte-identical to serial execution; off by default so
    #: existing baselines are untouched.
    parallel_execution: bool = False
    #: Worker-thread count for parallel execution (the paper's c5.2xlarge
    #: validators have 8 vCPUs).
    parallel_workers: int = 8
    #: Liveness watchdog: flag a node as wedged after this many round
    #: intervals without a commit (0 disables the watchdog entirely, the
    #: default, so fault-free baselines schedule no extra events).  A
    #: stalled node re-broadcasts a catch-up request on each trip, which
    #: is what lets a restarted replica converge even if its first
    #: CATCHUP_RESP raced ongoing consensus rounds.
    watchdog_stall_rounds: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"committee size must be positive, got {self.n}")
        if self.f < 0:
            object.__setattr__(self, "f", (self.n - 1) // 3)
        if not self.f < self.n / 3:
            raise ValueError(
                f"optimal resilience requires f < n/3, got f={self.f} n={self.n}"
            )
        if self.vote_batch_tick < 0:
            raise ValueError(
                f"vote_batch_tick must be >= 0, got {self.vote_batch_tick}"
            )
        if self.watchdog_stall_rounds < 0:
            raise ValueError(
                f"watchdog_stall_rounds must be >= 0, got {self.watchdog_stall_rounds}"
            )
        if self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1, got {self.parallel_workers}"
            )

    @property
    def quorum(self) -> int:
        """Size of a Byzantine quorum, ``n - f`` (the paper's n − t)."""
        return self.n - self.f

    def with_(self, **changes) -> "ProtocolParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class NetParams:
    """Transport-layer knobs: reliable delivery over lossy links.

    All defaults keep the seed behavior byte-identical: the delay-only
    partial-synchrony transport, no sequence numbers, no acks.  Chaos
    scenarios flip ``reliable_delivery`` on so that injected loss and
    duplication degrade to the delay-only model DBFT already tolerates
    (a dropped message becomes a delayed one via retransmission; a
    duplicated one is suppressed by the per-link sequence dedup).
    """

    #: per-link monotonic sequence numbers + ack/retransmit + dedup
    reliable_delivery: bool = False
    #: first retransmission fires after this many simulated seconds
    retransmit_timeout_s: float = 0.6
    #: exponential backoff factor applied per retry
    retransmit_backoff: float = 2.0
    #: retransmission attempts before the sender gives up.  A finite cap
    #: keeps the event queue bounded when the peer is crashed; the
    #: crash-recovery catch-up protocol (not the transport) is what
    #: guarantees a restarted node converges.
    retransmit_cap: int = 6
    #: wire size charged per ACK control message
    ack_bytes: int = 32

    def __post_init__(self) -> None:
        if self.retransmit_timeout_s <= 0:
            raise ValueError(
                f"retransmit_timeout_s must be > 0, got {self.retransmit_timeout_s}"
            )
        if self.retransmit_backoff < 1.0:
            raise ValueError(
                f"retransmit_backoff must be >= 1, got {self.retransmit_backoff}"
            )
        if self.retransmit_cap < 0:
            raise ValueError(
                f"retransmit_cap must be >= 0, got {self.retransmit_cap}"
            )

    def with_(self, **changes) -> "NetParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Inter-region one-way latency (milliseconds) between the paper's 10 AWS
#: regions.  Symmetric, measured-order-of-magnitude values assembled from
#: public inter-region RTT tables (half-RTT).  Keyed by region name.
AWS_REGIONS = (
    "bahrain",
    "cape-town",
    "milan",
    "mumbai",
    "n-virginia",
    "ohio",
    "oregon",
    "stockholm",
    "sydney",
    "tokyo",
)

_LAT = {
    ("bahrain", "bahrain"): 1,
    ("bahrain", "cape-town"): 105,
    ("bahrain", "milan"): 55,
    ("bahrain", "mumbai"): 18,
    ("bahrain", "n-virginia"): 95,
    ("bahrain", "ohio"): 100,
    ("bahrain", "oregon"): 130,
    ("bahrain", "stockholm"): 65,
    ("bahrain", "sydney"): 135,
    ("bahrain", "tokyo"): 90,
    ("cape-town", "cape-town"): 1,
    ("cape-town", "milan"): 80,
    ("cape-town", "mumbai"): 110,
    ("cape-town", "n-virginia"): 112,
    ("cape-town", "ohio"): 120,
    ("cape-town", "oregon"): 145,
    ("cape-town", "stockholm"): 85,
    ("cape-town", "sydney"): 175,
    ("cape-town", "tokyo"): 180,
    ("milan", "milan"): 1,
    ("milan", "mumbai"): 60,
    ("milan", "n-virginia"): 48,
    ("milan", "ohio"): 55,
    ("milan", "oregon"): 80,
    ("milan", "stockholm"): 15,
    ("milan", "sydney"): 145,
    ("milan", "tokyo"): 110,
    ("mumbai", "mumbai"): 1,
    ("mumbai", "n-virginia"): 95,
    ("mumbai", "ohio"): 100,
    ("mumbai", "oregon"): 110,
    ("mumbai", "stockholm"): 70,
    ("mumbai", "sydney"): 75,
    ("mumbai", "tokyo"): 60,
    ("n-virginia", "n-virginia"): 1,
    ("n-virginia", "ohio"): 6,
    ("n-virginia", "oregon"): 35,
    ("n-virginia", "stockholm"): 55,
    ("n-virginia", "sydney"): 100,
    ("n-virginia", "tokyo"): 75,
    ("ohio", "ohio"): 1,
    ("ohio", "oregon"): 25,
    ("ohio", "stockholm"): 60,
    ("ohio", "sydney"): 95,
    ("ohio", "tokyo"): 70,
    ("oregon", "oregon"): 1,
    ("oregon", "stockholm"): 80,
    ("oregon", "sydney"): 70,
    ("oregon", "tokyo"): 50,
    ("stockholm", "stockholm"): 1,
    ("stockholm", "sydney"): 150,
    ("stockholm", "tokyo"): 125,
    ("sydney", "sydney"): 1,
    ("sydney", "tokyo"): 52,
    ("tokyo", "tokyo"): 1,
}


def region_latency_ms(a: str, b: str) -> float:
    """One-way latency in milliseconds between two AWS regions."""
    if (a, b) in _LAT:
        return float(_LAT[(a, b)])
    if (b, a) in _LAT:
        return float(_LAT[(b, a)])
    raise KeyError(f"unknown region pair ({a!r}, {b!r})")


def region_latency_matrix() -> "Mapping[tuple[str, str], float]":
    """Full symmetric latency mapping over :data:`AWS_REGIONS`."""
    out = {}
    for a in AWS_REGIONS:
        for b in AWS_REGIONS:
            out[(a, b)] = region_latency_ms(a, b)
    return out


# -- DIABLO workload envelopes (paper §V) ---------------------------------------

@dataclass(frozen=True)
class WorkloadEnvelope:
    """Published rate envelope of one DIABLO DApp workload."""

    name: str
    duration_s: float
    avg_tps: float
    peak_tps: float


NASDAQ_ENVELOPE = WorkloadEnvelope("nasdaq", 180.0, 168.0, 19_800.0)
UBER_ENVELOPE = WorkloadEnvelope("uber", 120.0, 852.0, 900.0)
FIFA_ENVELOPE = WorkloadEnvelope("fifa", 180.0, 3_483.0, 5_305.0)

#: c5.2xlarge-equivalent node capability used by the congestion model.
@dataclass(frozen=True)
class NodeResources:
    """CPU / network budget of one validator machine (c5.2xlarge-like)."""

    #: eager (signature) validations per second a node can perform
    eager_validations_per_s: float = 20_000.0
    #: lazy validations per second (cheaper: nonce/gas/balance lookups)
    lazy_validations_per_s: float = 200_000.0
    #: transaction executions per second on the VM
    executions_per_s: float = 40_000.0
    #: network egress budget, bytes per second (~1.2 GiB/s burst on c5.2xlarge,
    #: sustained cross-region far lower; we use a conservative WAN figure)
    egress_bytes_per_s: float = 150e6
    #: ingress budget, bytes per second
    ingress_bytes_per_s: float = 150e6


DEFAULT_RESOURCES = NodeResources()
