"""CLI --metrics-out / --trace-out / observability-output plumbing."""

import json

from repro import telemetry
from repro.cli import main
from repro.telemetry import lifecycle, validate_trace_event


class TestMetricsOut:
    def test_simulate_writes_parseable_prometheus(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        rc = main(
            ["simulate", "srbb", "uber", "--scale", "0.2",
             "--metrics-out", str(path)]
        )
        assert rc == 0
        samples = telemetry.parse_prometheus(path.read_text())
        committed = int(samples[("srbb_sim_txs_committed_total", ())])
        # exported counter reconciles with the committed count the CLI printed
        assert str(committed) in capsys.readouterr().out

    def test_json_suffix_switches_format(self, tmp_path):
        path = tmp_path / "metrics.json"
        rc = main(
            ["simulate", "srbb", "uber", "--scale", "0.2",
             "--metrics-out", str(path)]
        )
        assert rc == 0
        snap = json.loads(path.read_text())
        assert snap["srbb_sim_txs_sent_total"]["type"] == "counter"

    def test_trace_out_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rc = main(
            ["simulate", "srbb", "uber", "--scale", "0.2",
             "--trace-out", str(path)]
        )
        assert rc == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(r["name"] == "sim.run" for r in records)

    def test_telemetry_disabled_again_after_run(self, tmp_path):
        main(["simulate", "srbb", "uber", "--scale", "0.2",
              "--metrics-out", str(tmp_path / "m.prom")])
        assert not telemetry.get_registry().enabled
        assert not telemetry.get_tracer().enabled

    def test_plain_run_never_enables_telemetry(self):
        assert main(["traces"]) == 0
        assert not telemetry.get_registry().enabled

    def test_verbose_flag_accepted(self):
        assert main(["traces", "-v"]) == 0
        assert main(["traces", "-vv"]) == 0


_DAPP = ["dapp", "nasdaq", "--scale", "0.002", "--n", "4"]


class TestObservabilityOuts:
    def test_trace_event_out_is_valid_and_has_flows(self, tmp_path):
        path = tmp_path / "te.json"
        rc = main(_DAPP + ["--trace-event-out", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert validate_trace_event(doc) == []
        assert doc["otherData"]["flows"] > 0  # lifecycle fed flow arrows

    def test_lifecycle_out_records_phases(self, tmp_path):
        path = tmp_path / "lc.json"
        rc = main(_DAPP + ["--lifecycle-out", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["phases"] == list(lifecycle.PHASES)
        assert doc["records"], "no transactions were lifecycle-tracked"
        assert all("commit" in r["stamps"] for r in doc["records"][:5])

    def test_lifecycle_recorder_disabled_again_after_run(self, tmp_path):
        main(_DAPP + ["--lifecycle-out", str(tmp_path / "lc.json")])
        assert not lifecycle.enabled()

    def test_trace_out_streams_when_trace_event_not_requested(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rc = main(_DAPP + ["--trace-out", str(path)])
        assert rc == 0
        assert telemetry.get_tracer().stream_path is None  # closed again
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(r["name"] == "node.commit" for r in records)

    def test_observatory_out_and_report_rendering(self, tmp_path, capsys):
        obs = tmp_path / "obs.json"
        lc = tmp_path / "lc.json"
        trace = tmp_path / "trace.jsonl"
        rc = main(_DAPP + [
            "--observatory-out", str(obs), "--lifecycle-out", str(lc),
            "--trace-out", str(trace),
        ])
        assert rc == 0
        assert json.loads(obs.read_text())["samples"]
        capsys.readouterr()

        assert main(["report", "--observatory", str(obs),
                     "--lifecycle", str(lc), "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "congestion observatory" in out
        assert "busiest spans" in out

        html = tmp_path / "report.html"
        assert main(["report", "--lifecycle", str(lc),
                     "-o", str(html)]) == 0
        assert "<svg" in html.read_text() or "critical path" in html.read_text()
