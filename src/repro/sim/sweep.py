"""Parameter sweeps over the congestion simulator.

Tools the ablation benches and downstream users share:

* :func:`saturation_throughput` — the maximum constant send rate a chain
  sustains with (almost) no loss, found by bisection.  This is the
  "claimed performance" a vendor would quote — contrast it with the
  DApp-workload numbers of Figure 2 (§V: "much lower compared to their
  claimed performances").
* :func:`latency_curve` — average latency as a function of offered load.
* :func:`loss_curve` — commit rate as a function of offered load.
* :func:`crossover_rate` — the load at which one chain starts beating
  another on commit rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.chains import ChainModel
from repro.sim.engine import simulate_chain
from repro.workloads import constant_trace


@dataclass(frozen=True)
class SweepPoint:
    rate_tps: int
    throughput_tps: float
    avg_latency_s: float
    commit_rate: float


def _probe(model: ChainModel, rate: int, *, duration_s: int, grace_s: float) -> SweepPoint:
    result = simulate_chain(
        model, constant_trace(rate, duration_s), grace_s=grace_s
    )
    return SweepPoint(
        rate_tps=rate,
        throughput_tps=result.throughput_tps,
        avg_latency_s=result.avg_latency_s,
        commit_rate=result.commit_rate,
    )


def saturation_throughput(
    model: ChainModel,
    *,
    min_commit_rate: float = 0.999,
    duration_s: int = 60,
    grace_s: float | None = None,
    hi: int = 50_000,
    tolerance: int = 50,
) -> int:
    """Largest constant TPS the chain commits ≥ ``min_commit_rate`` of.

    The drain window defaults to two pipeline delays (block interval +
    consensus latency) — just enough for the last block to land, so this
    is the *steady-state* ceiling rather than "can eventually drain given
    idle time".
    """
    if grace_s is None:
        grace_s = 2.0 * (model.block_interval + model.consensus_latency) + 2.0
    lo = 0
    # Expand the bracket first in case hi is already sustainable.
    while _probe(model, hi, duration_s=duration_s, grace_s=grace_s).commit_rate >= min_commit_rate:
        lo, hi = hi, hi * 2
        if hi > 2_000_000:
            return lo
    while hi - lo > tolerance:
        mid = (lo + hi) // 2
        point = _probe(model, mid, duration_s=duration_s, grace_s=grace_s)
        if point.commit_rate >= min_commit_rate:
            lo = mid
        else:
            hi = mid
    return lo


def latency_curve(
    model: ChainModel,
    rates: "list[int] | np.ndarray",
    *,
    duration_s: int = 60,
    grace_s: float = 60.0,
) -> list[SweepPoint]:
    """Latency / throughput / commit-rate at each offered load."""
    return [
        _probe(model, int(rate), duration_s=duration_s, grace_s=grace_s)
        for rate in rates
    ]


def loss_curve(
    model: ChainModel,
    rates: "list[int] | np.ndarray",
    **kwargs,
) -> list[tuple[int, float]]:
    """(rate, commit_rate) pairs — the loss onset made visible."""
    return [(p.rate_tps, p.commit_rate) for p in latency_curve(model, rates, **kwargs)]


def crossover_rate(
    better: ChainModel,
    worse: ChainModel,
    *,
    rates: "list[int] | None" = None,
    duration_s: int = 60,
) -> int | None:
    """First offered load where ``better`` commits more than ``worse``.

    Returns None if they never diverge over the probed range.
    """
    rates = rates or [10, 30, 100, 300, 1_000, 3_000, 10_000]
    for rate in rates:
        a = _probe(better, rate, duration_s=duration_s, grace_s=60.0)
        b = _probe(worse, rate, duration_s=duration_s, grace_s=60.0)
        if a.commit_rate > b.commit_rate + 1e-9:
            return rate
    return None
