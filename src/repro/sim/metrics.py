"""Metric containers for the congestion simulator (DIABLO definitions).

* throughput — committed transactions per second as the client observes
  (committed count over the active experiment duration);
* latency — commit time minus client send time, averaged over commits;
* transaction loss — transactions never committed (dropped by a saturated
  pool/validation queue, or still uncommitted at the measurement horizon).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class LatencySample:
    """Weighted latency accumulator (cohorts carry counts, not objects)."""

    total_weight: float = 0.0
    weighted_sum: float = 0.0
    max_latency: float = 0.0
    _values: list[tuple[float, float]] = field(default_factory=list)

    def add(self, latency: float, weight: float) -> None:
        if weight <= 0:
            return
        self.total_weight += weight
        self.weighted_sum += latency * weight
        self.max_latency = max(self.max_latency, latency)
        self._values.append((latency, weight))

    @property
    def mean(self) -> float:
        return self.weighted_sum / self.total_weight if self.total_weight else 0.0

    def percentile(self, q: float) -> float:
        """Weighted percentile (q in [0, 100])."""
        if not self._values:
            return 0.0
        values = np.array([v for v, _ in self._values])
        weights = np.array([w for _, w in self._values])
        order = np.argsort(values)
        values, weights = values[order], weights[order]
        cumulative = np.cumsum(weights)
        cutoff = q / 100.0 * cumulative[-1]
        idx = int(np.searchsorted(cumulative, cutoff))
        return float(values[min(idx, len(values) - 1)])


@dataclass
class SimResult:
    """Everything one congestion-simulation run reports."""

    chain: str
    workload: str
    sent: int
    committed: int
    dropped_pool: int
    dropped_validation: int
    unfinished: int
    duration_s: float
    avg_latency_s: float
    p99_latency_s: float
    #: committed per tick, for time-series plots
    commit_series: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: pool occupancy per tick (congestion evidence)
    pool_series: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: validation (admission) queue occupancy per tick — where gossiping
    #: chains actually congest (§III-A)
    validation_series: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def throughput_tps(self) -> float:
        return self.committed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def commit_rate(self) -> float:
        """Fraction of sent transactions that committed (Fig. 2 bar labels)."""
        return self.committed / self.sent if self.sent else 0.0

    @property
    def lost(self) -> int:
        return self.sent - self.committed

    def summary_row(self) -> dict:
        return {
            "chain": self.chain,
            "workload": self.workload,
            "throughput_tps": round(self.throughput_tps, 2),
            "avg_latency_s": round(self.avg_latency_s, 2),
            "commit_pct": round(100.0 * self.commit_rate, 1),
            "sent": self.sent,
            "committed": self.committed,
            "lost": self.lost,
        }
