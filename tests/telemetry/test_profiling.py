"""Wall-clock profiler: attribution, determinism, zero-cost-when-off."""

import json
import tracemalloc

import pytest

from repro.telemetry import profiling
from repro.telemetry.profiling import (
    KIND_SUBSYSTEM,
    Profiler,
    describe,
    profile_doc,
    render_table,
    subsystem_of,
    to_collapsed,
    to_speedscope,
    use_profiler,
    validate_profile,
    validate_speedscope,
)


def _clock(values):
    """A deterministic ns clock yielding ``values`` in order."""
    it = iter(values)
    return lambda: next(it)


def _small_deployment(profiler=None, *, seed=3, txs=8, horizon_s=5.0):
    from repro import params
    from repro.core.deployment import Deployment, fund_clients
    from repro.core.transaction import make_transfer

    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        extra_balances=balances,
        seed=seed,
    )
    if profiler is not None:
        deployment.sim.profiler = profiler
    deployment.start()
    for i in range(txs):
        keypair = clients[i % 2]
        tx = make_transfer(
            keypair, clients[(i + 1) % 2].address, 1,
            nonce=i // 2, created_at=0.05 * i,
        )
        deployment.submit(tx, i % 4, at=0.05 * i)
    deployment.run_until(horizon_s)
    return deployment


class TestAttribution:
    def test_push_pop_inclusive_and_self_time(self):
        # init=0; push outer@10; push inner@20; pop inner@30; pop outer@50
        prof = Profiler(clock=_clock([0, 10, 20, 30, 50]))
        prof.push("outer", "core", 1)
        prof.push("inner", "vm", 1)
        prof.pop()
        prof.pop()
        assert prof.by_kind["inner"] == [1, 10]
        assert prof.by_kind["outer"] == [1, 40]  # inclusive
        assert prof.stacks[("outer", "inner")] == 10
        assert prof.stacks[("outer",)] == 30  # self = 40 - 10
        assert prof.by_subsystem["vm"] == [1, 10]
        assert prof.by_subsystem["core"] == [1, 40]
        assert prof.by_node[1] == [2, 50]

    def test_subsystem_mapping_most_specific_wins(self):
        assert subsystem_of("repro.core.txpool") == "txpool"
        assert subsystem_of("repro.core.node") == "core"
        assert subsystem_of("repro.consensus.binary") == "consensus"
        assert subsystem_of("repro.vm.executor") == "vm"
        assert subsystem_of("repro.crypto.keys") == "crypto"
        assert subsystem_of("repro.net.transport") == "net"
        assert subsystem_of("repro.sim.engine") == "sim"
        assert subsystem_of("somewhere.else") == "other"
        assert KIND_SUBSYSTEM["tx"] == "txpool"
        assert KIND_SUBSYSTEM["consensus"] == "consensus"

    def test_record_event_classifies_bound_methods(self):
        class Node:
            node_id = 7

            def tick(self):
                pass

        Node.tick.__module__ = "repro.consensus.fake"
        prof = Profiler()
        node = Node()
        prof.record_event(node.tick, ())
        assert prof.events == 1
        (name,) = prof.by_kind
        assert name.endswith("Node.tick")
        assert list(prof.by_subsystem) == ["consensus"]
        assert list(prof.by_node) == [7]

    def test_profile_info_overrides_classification(self):
        # _guarded-style wrappers share one code object; the attached
        # __profile_info__ must win over code-object classification
        def wrapper():
            pass

        wrapper.__profile_info__ = ("Real.target", "vm", 3)
        prof = Profiler()
        prof.record_event(wrapper, ())
        assert list(prof.by_kind) == ["Real.target"]
        assert list(prof.by_subsystem) == ["vm"]
        assert list(prof.by_node) == [3]

    def test_describe_unwraps_bound_methods(self):
        class Thing:
            def go(self):
                pass

        Thing.go.__module__ = "repro.vm.fake"
        name, subsystem, node = describe(Thing().go, 5)
        assert name.endswith("Thing.go")
        assert subsystem == "vm"
        assert node == 5

    def test_record_event_runs_callback_and_pops_on_error(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            prof.record_event(lambda: (_ for _ in ()).throw(RuntimeError()), ())
        assert prof._stack == []  # frame closed despite the raise
        assert prof.events == 1

    def test_use_profiler_scopes_the_active_one(self):
        assert profiling.active() is None
        prof = Profiler()
        with use_profiler(prof):
            assert profiling.active() is prof
            inner = Profiler()
            with use_profiler(inner):
                assert profiling.active() is inner
            assert profiling.active() is prof
        assert profiling.active() is None


class TestEngineIntegration:
    def test_deployment_attribution_covers_subsystems_and_nodes(self):
        prof = Profiler()
        with use_profiler(prof):
            deployment = _small_deployment()
        assert deployment.sim.profiler is prof
        prof.finish()
        assert prof.events == deployment.sim.events_processed
        # delivery events are labelled per wire kind and charged as a
        # single frame to the receiving subsystem and node — the old
        # Network._deliver wrapper frame is folded away
        assert "deliver:consensus" in prof.by_kind
        assert prof.by_subsystem["consensus"][0] > 0
        assert "Network._deliver" not in prof.by_kind
        assert sorted(prof.by_node) == [0, 1, 2, 3]

    def test_count_tables_deterministic_across_same_seed_runs(self):
        tables = []
        for _ in range(2):
            prof = Profiler()
            _small_deployment(prof)
            tables.append(prof.count_tables())
        assert tables[0] == tables[1]
        assert tables[0]["events"] > 0

    def test_profiling_does_not_change_the_chain(self):
        plain = _small_deployment(None)
        profiled = _small_deployment(Profiler())
        assert (
            tuple(plain.validators[0].blockchain.block_hashes())
            == tuple(profiled.validators[0].blockchain.block_hashes())
        )
        assert plain.sim.events_processed == profiled.sim.events_processed

    def test_tick_engine_marks_pipeline_stages(self):
        from repro.sim.chains import chain_model
        from repro.sim.engine import simulate_chain
        from repro.workloads import nasdaq_trace

        trace = nasdaq_trace().scaled(0.001, name="nasdaq")
        prof = Profiler()
        with use_profiler(prof):
            simulate_chain(chain_model("srbb"), trace)
        for stage in (
            "tick.arrivals", "tick.validation",
            "tick.block_production", "tick.commits",
        ):
            assert stage in prof.by_kind, stage
            assert prof.by_kind[stage][0] > 0
        assert prof.by_subsystem["sim"][0] > 0
        # phase watermarks at the send-window end and the horizon
        labels = [m["label"] for m in prof.watermarks]
        assert any(l.startswith("engine.send_window_end") for l in labels)
        assert any(l.startswith("engine.horizon") for l in labels)

    def test_disabled_path_allocates_nothing_per_event(self):
        from repro.net.simulator import Simulator

        sim = Simulator()

        def noop():
            pass

        for i in range(2200):
            sim.schedule(i * 0.001, noop)
        # warm-up: first steps may touch lazy imports/caches
        for _ in range(200):
            sim.step()
        tracemalloc.start()
        try:
            base, _ = tracemalloc.get_traced_memory()
            while sim.step():
                pass
            current, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert sim.profiler is None
        # 2000 events must not allocate per-event state (small constant
        # slack for interpreter incidentals)
        assert current - base < 16_384


class TestExporters:
    def _profiled(self):
        prof = Profiler(clock=_clock(range(0, 10_000_000, 50_000)))
        with prof.section("outer", subsystem="core", node=0):
            with prof.section("inner", subsystem="vm", node=0):
                pass
        prof.events = 2
        return prof.finish()

    def test_collapsed_format(self):
        text = to_collapsed(self._profiled())
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert stack  # "outer" or "outer;inner"
        assert any(line.startswith("outer;inner ") for line in lines)

    def test_speedscope_document_validates(self):
        doc = to_speedscope(self._profiled(), name="unit")
        assert validate_speedscope(doc) == []
        assert doc["profiles"][0]["unit"] == "microseconds"
        names = {f["name"] for f in doc["shared"]["frames"]}
        assert {"outer", "inner"} <= names
        assert json.dumps(doc)  # JSON-serializable

    def test_speedscope_validator_catches_malformed(self):
        assert validate_speedscope([]) != []
        assert validate_speedscope({}) != []
        doc = to_speedscope(self._profiled())
        doc["profiles"][0]["weights"] = []
        assert validate_speedscope(doc) != []

    def test_profile_doc_validates_and_round_trips(self):
        prof = self._profiled()
        prof.phase("unit")
        doc = profile_doc(prof, target="unit-test")
        assert validate_profile(doc) == []
        assert doc["target"] == "unit-test"
        assert doc["by_kind"]["inner"]["count"] == 1
        assert doc["watermarks"][0]["label"] == "unit"
        again = json.loads(json.dumps(doc))
        assert validate_profile(again) == []

    def test_profile_validator_catches_malformed(self):
        assert validate_profile(None) != []
        assert validate_profile({"schema": "wrong"}) != []
        doc = profile_doc(self._profiled())
        doc["by_kind"]["inner"] = {"count": 1}  # missing columns
        assert validate_profile(doc) != []

    def test_render_table_mentions_kinds_and_watermarks(self):
        prof = self._profiled()
        prof.phase("done")
        text = render_table(prof, top=5)
        assert "inner" in text and "outer" in text
        assert "watermark[done]" in text
        assert "events" in text


class TestMemoryWatermarks:
    def test_phase_records_rss_and_tracemalloc(self):
        prof = Profiler(track_memory=True, top_allocators=3)
        try:
            ballast = [bytes(1000) for _ in range(200)]
            mark = prof.phase("after-alloc")
            assert mark["rss_mb"] >= 0.0
            assert mark["traced_mb"] > 0.0
            assert mark["traced_peak_mb"] >= mark["traced_mb"]
            assert len(mark["top_allocators"]) <= 3
            for site in mark["top_allocators"]:
                assert ":" in site["site"]
                assert site["mb"] >= 0.0
            del ballast
        finally:
            prof.close()
        assert not tracemalloc.is_tracing()

    def test_phase_without_memory_tracking_is_rss_only(self):
        prof = Profiler()
        mark = prof.phase("plain")
        assert "traced_mb" not in mark
        assert prof.watermarks == [mark]
