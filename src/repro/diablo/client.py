"""Client-side submission: pre-signed schedules and submitter policies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.deployment import Deployment
from repro.core.transaction import Transaction
from repro.workloads.trace import RequestFactory, Trace


@dataclass(frozen=True)
class LoadSchedule:
    """A fully materialized, pre-signed workload: (send_time, tx) pairs."""

    name: str
    entries: tuple[tuple[float, Transaction], ...]

    @classmethod
    def from_trace(cls, trace: Trace, factory: RequestFactory) -> "LoadSchedule":
        entries = tuple(
            (float(t), factory(i, float(t)))
            for i, t in enumerate(trace.send_times())
        )
        return cls(name=trace.name, entries=entries)

    @classmethod
    def from_transactions(
        cls, txs: Iterable[Transaction], *, name: str = "explicit"
    ) -> "LoadSchedule":
        return cls(name=name, entries=tuple((tx.created_at, tx) for tx in txs))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def duration_s(self) -> float:
        return max((t for t, _ in self.entries), default=0.0)


class RoundRobinSubmitter:
    """Spread submissions across validators with sender affinity.

    Each sender account consistently talks to one validator (DIABLO's
    client threads own disjoint account sets), which keeps one sender's
    nonce sequence flowing through a single pool in order.
    """

    def __init__(self, targets: Sequence[int] | None = None):
        self.targets = tuple(targets) if targets else None

    def submit_all(self, deployment: Deployment, schedule: LoadSchedule) -> None:
        targets = self.targets or tuple(range(deployment.protocol.n))
        assignment: dict[str, int] = {}
        for send_time, tx in schedule.entries:
            if tx.sender not in assignment:
                assignment[tx.sender] = targets[len(assignment) % len(targets)]
            deployment.submit(tx, assignment[tx.sender], at=send_time)


class SingleNodeSubmitter:
    """Send everything to one validator (censorship / hotspot scenarios)."""

    def __init__(self, target: int = 0):
        self.target = target

    def submit_all(self, deployment: Deployment, schedule: LoadSchedule) -> None:
        for send_time, tx in schedule.entries:
            deployment.submit(tx, self.target, at=send_time)
