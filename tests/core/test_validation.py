"""Eager vs lazy validation — the layering §IV-D depends on."""

import pytest

from repro import params
from repro.core.transaction import Transaction, TxType, make_transfer
from repro.core.validation import NONCE_WINDOW, eager_validate, lazy_validate
from repro.crypto.keys import generate_keypair
from repro.vm.state import WorldState

FUNDS = 10**9


@pytest.fixture
def kp():
    return generate_keypair(5)


@pytest.fixture
def state(kp):
    ws = WorldState()
    ws.create_account(kp.address, FUNDS)
    return ws


class TestEagerValidation:
    def test_valid_transfer_passes(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 10, nonce=0)
        assert eager_validate(tx, state)

    def test_unsigned_fails(self, kp, state):
        tx = Transaction(
            tx_type=TxType.TRANSFER, sender=kp.address, receiver="aa" * 20,
            amount=1, nonce=0, gas_limit=21_000, gas_price=1,
        )
        assert eager_validate(tx, state).error_code == "invalid-sig"

    def test_forged_sender_fails(self, kp, state):
        other = generate_keypair(6)
        tx = make_transfer(other, "aa" * 20, 1, nonce=0)
        forged = Transaction(
            tx_type=tx.tx_type, sender=kp.address, receiver=tx.receiver,
            amount=tx.amount, nonce=tx.nonce, gas_limit=tx.gas_limit,
            gas_price=tx.gas_price, public_key=tx.public_key, signature=tx.signature,
        )
        assert eager_validate(forged, state).error_code == "invalid-sig"

    def test_oversized_fails(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0, padding=params.MAX_TX_SIZE)
        assert eager_validate(tx, state).error_code == "oversized"

    def test_past_nonce_fails(self, kp, state):
        state.bump_nonce(kp.address)
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0)
        assert eager_validate(tx, state).error_code == "bad-nonce"

    def test_future_nonce_within_window_passes(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=NONCE_WINDOW)
        assert eager_validate(tx, state)

    def test_far_future_nonce_fails(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=NONCE_WINDOW + 1)
        assert eager_validate(tx, state).error_code == "bad-nonce"

    def test_zero_balance_sender_fails(self, state):
        broke = generate_keypair(7)
        tx = make_transfer(broke, "aa" * 20, 1, nonce=0)
        outcome = eager_validate(tx, state)
        assert outcome.error_code in ("insufficient-gas", "insufficient-balance")

    def test_amount_beyond_balance_fails(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, FUNDS, nonce=0)
        assert eager_validate(tx, state).error_code == "insufficient-balance"

    def test_gas_limit_above_block_limit_fails(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0,
                           gas_limit=params.BLOCK_GAS_LIMIT + 1)
        assert not eager_validate(tx, state)


class TestLazyValidation:
    def test_valid_passes(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 10, nonce=0)
        assert lazy_validate(tx, state)

    def test_lazy_skips_signature(self, kp, state):
        """Lazy validation is weaker than eager: an unsigned transaction
        passes (the execution layer catches it) — §IV-D's check split."""
        tx = Transaction(
            tx_type=TxType.TRANSFER, sender=kp.address, receiver="aa" * 20,
            amount=1, nonce=0, gas_limit=21_000, gas_price=1,
        )
        assert lazy_validate(tx, state)

    def test_lazy_skips_size(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=0, padding=params.MAX_TX_SIZE)
        assert lazy_validate(tx, state)

    def test_lazy_requires_exact_nonce(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, 1, nonce=1)
        assert lazy_validate(tx, state).error_code == "bad-nonce"

    def test_lazy_checks_balance(self, kp, state):
        tx = make_transfer(kp, "aa" * 20, FUNDS, nonce=0)
        assert lazy_validate(tx, state).error_code == "insufficient-balance"

    def test_lazy_checks_gas_affordability(self, state):
        poor = generate_keypair(8)
        state.create_account(poor.address, 100)  # can't cover 21000 gas
        tx = make_transfer(poor, "aa" * 20, 1, nonce=0)
        assert lazy_validate(tx, state).error_code == "insufficient-gas"

    def test_eager_strictly_stronger(self, kp, state):
        """Everything lazy rejects, eager rejects too (on fresh state)."""
        cases = [
            make_transfer(kp, "aa" * 20, FUNDS, nonce=0),
            make_transfer(kp, "aa" * 20, 1, nonce=NONCE_WINDOW + 5),
        ]
        for tx in cases:
            if not lazy_validate(tx, state):
                assert not eager_validate(tx, state)
