"""Canonical benchmark scenarios — named, seeded, deterministic.

Each scenario is a fixed configuration over the existing engines (tick
simulator or message-level deployment) with every RNG seeded and every
topology taken from :mod:`repro.net.topology`, so the same code on the
same inputs produces the *identical* headline-stats dict — that is what
makes ``repro metrics-diff`` against a checked-in baseline meaningful.

Headline stats are flat ``name -> float`` and must only contain
simulated-time quantities (never wall-clock), so artifacts from
different hosts stay comparable.  The one sanctioned exception is the
``engine_scaling`` scenario, whose *point* is wall-clock cost: its
wall-derived keys (``wall_s_n*``, ``events_per_sec*``,
``us_per_event:*``, ``peak_rss_mb``) are matched by
``compare._WALL_CLOCK_MARKERS`` so the diff reports them without ever
gating on them; only its event counts and the generously-bounded
``wall_scaling_exponent`` fit are enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.telemetry import MetricsRegistry

__all__ = [
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "cheapest_scenarios",
    "run_byzantine_campaign",
    "run_byzantine_chaos",
    "run_chaos_soak",
    "run_engine_scaling",
    "run_saturation_probe",
    "run_table1_scale",
    "run_trace_replay",
]


@dataclass(frozen=True)
class Scenario:
    """One canonical run: a deterministic config plus a headline extractor."""

    name: str
    description: str
    run: "Callable[[MetricsRegistry], dict]"
    seed: int = 1
    #: relative cost rank — lower is cheaper; CI runs the cheapest ones
    cost_rank: int = 0
    tags: tuple = field(default_factory=tuple)


_SCENARIOS: "dict[str, Scenario]" = {}


def register_scenario(scenario: Scenario) -> Scenario:
    if scenario.name in _SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; options: {sorted(_SCENARIOS)}"
        ) from None


def scenario_names() -> "list[str]":
    return sorted(_SCENARIOS)


def cheapest_scenarios(k: int = 2) -> "list[str]":
    """The ``k`` cheapest scenario names (CI's regression-gate set)."""
    ranked = sorted(_SCENARIOS.values(), key=lambda s: (s.cost_rank, s.name))
    return [s.name for s in ranked[:k]]


# ---------------------------------------------------------------------------
# Shared headline helpers
# ---------------------------------------------------------------------------


def _counter_total(reg: MetricsRegistry, name: str) -> float:
    metric = reg.get(name)
    return float(metric.total()) if metric is not None else 0.0


def _ratio(num: float, den: float) -> float:
    return num / den if den else 0.0


def _sim_headline(prefix: str, result) -> dict:
    """SimResult -> headline fragment (sim-time only, JSON-safe floats)."""
    out = {
        f"{prefix}_throughput_tps": round(result.throughput_tps, 4),
        f"{prefix}_commit_rate": round(result.commit_rate, 6),
        f"{prefix}_avg_latency_s": round(result.avg_latency_s, 4),
        f"{prefix}_p50_latency_s": round(result.p50_latency_s, 4),
        f"{prefix}_p95_latency_s": round(result.p95_latency_s, 4),
        f"{prefix}_p99_latency_s": round(result.p99_latency_s, 4),
        f"{prefix}_dropped": float(result.dropped_pool + result.dropped_validation),
        f"{prefix}_exec_share": round(result.exec_share, 4),
    }
    for phase, stats in result.phase_latency.items():
        out[f"{prefix}_phase_{phase}_p50_s"] = round(stats["p50"], 4)
        out[f"{prefix}_phase_{phase}_p99_s"] = round(stats["p99"], 4)
    return out


# ---------------------------------------------------------------------------
# Scenario implementations
# ---------------------------------------------------------------------------


def _run_tvpr_ablation(reg: MetricsRegistry) -> dict:
    """§V-A ablation on the tick engine: SRBB (TVPR on) vs EVM+DBFT
    (gossip everything) against the full FIFA workload."""
    from repro.sim.chains import EVM_DBFT, SRBB
    from repro.sim.engine import simulate_chain
    from repro.workloads import fifa_trace

    trace = fifa_trace()
    srbb = simulate_chain(SRBB, trace)
    base = simulate_chain(EVM_DBFT, trace)
    headline = {}
    headline.update(_sim_headline("srbb", srbb))
    headline.update(_sim_headline("baseline", base))
    headline["throughput_ratio"] = round(
        _ratio(srbb.throughput_tps, base.throughput_tps), 4
    )
    headline["latency_ratio"] = round(
        _ratio(base.avg_latency_s, srbb.avg_latency_s), 4
    )
    return headline


def run_saturation_probe(
    *,
    seed: int = 21,
    clients: int = 16,
    nonces: int = 220,
    send_window_s: float = 4.0,
    execution_rate: float = 500.0,
    horizon_s: float = 30.0,
) -> "tuple[dict, object]":
    """Execution-bound saturation probe on the *message-level* engine.

    The tick sweep above finds the saturation point but cannot say where
    a transaction's time goes — its SRBB model is round-capacity-bound,
    not execution-bound.  This probe drives a real 4-validator deployment
    with a deliberately slow VM (``execution_rate`` txs/s, ~600-tx
    superblocks ⇒ each commit defers the next round by >1 s of execution)
    well past capacity, with per-tx lifecycle recording on, and returns
    ``(headline, CriticalPathReport)``: the critical-path attribution —
    flat ``latency_breakdown:*`` keys — must pin ``execute`` as the
    dominant phase at saturation.
    """
    from repro import params, telemetry
    from repro.telemetry import lifecycle
    from repro.core.deployment import Deployment, fund_clients
    from repro.core.transaction import make_transfer
    from repro.net.topology import single_region_topology
    from repro.telemetry.critical_path import analyze

    recorder = telemetry.LifecycleRecorder()
    # Scope a private tracer too: the probe's exec_share comes from its
    # own node.commit events, independent of whether the caller traces.
    tracer = telemetry.Tracer(enabled=True)
    previous_tracer = telemetry.set_tracer(tracer)
    try:
        with lifecycle.use_recorder(recorder):
            keypairs, balances = fund_clients(clients, seed=5000 + seed)
            deployment = Deployment(
                protocol=params.ProtocolParams(
                    n=4, tvpr=True, rpm=False, max_block_txs=150
                ),
                topology=single_region_topology(4),
                extra_balances=balances,
                execution_rate=execution_rate,
                seed=seed,
            )
            deployment.start()
            total = clients * nonces
            gap = send_window_s / total
            sent = 0
            for nonce in range(nonces):
                for i, keypair in enumerate(keypairs):
                    k = nonce * clients + i
                    tx = make_transfer(
                        keypair, keypairs[(i + 1) % clients].address, 1,
                        nonce=nonce, created_at=k * gap,
                    )
                    deployment.submit(tx, validator_id=i % 4, at=k * gap)
                    sent += 1
            deployment.run_until(horizon_s)
    finally:
        telemetry.set_tracer(previous_tracer)

    report = analyze(recorder, trace_records=tracer.records)
    committed_txs = report.committed
    headline = report.headline()
    headline["probe_sent"] = float(sent)
    headline["probe_committed"] = float(committed_txs)
    headline["probe_commit_rate"] = round(_ratio(committed_txs, sent), 6)
    headline["probe_throughput_tps"] = round(committed_txs / horizon_s, 4)
    return headline, report


def _run_saturation_sweep(reg: MetricsRegistry) -> dict:
    """Offered-load sweep on the tick engine: throughput/commit-rate at
    fixed rates plus the bisected saturation point, SRBB vs EVM+DBFT —
    plus the message-level saturation probe's per-phase latency
    attribution (``latency_breakdown:*``)."""
    from repro.sim.chains import EVM_DBFT, SRBB
    from repro.sim.sweep import latency_curve, saturation_throughput

    rates = (250, 500, 1_000, 2_000, 4_000)
    headline: dict = {}
    for prefix, model in (("srbb", SRBB), ("baseline", EVM_DBFT)):
        for point in latency_curve(model, rates, duration_s=30, grace_s=60.0):
            headline[f"{prefix}_throughput_tps_at_{point.rate_tps}"] = round(
                point.throughput_tps, 4
            )
            headline[f"{prefix}_commit_rate_at_{point.rate_tps}"] = round(
                point.commit_rate, 6
            )
        headline[f"{prefix}_saturation_tps"] = float(
            saturation_throughput(model, duration_s=20)
        )
    probe_headline, _report = run_saturation_probe()
    headline.update(probe_headline)
    return headline


def _dapp_derived(reg: MetricsRegistry, committed: float) -> dict:
    """Registry-derived message-engine stats shared by the dapp scenarios."""
    consensus_msgs = _counter_total(reg, "srbb_consensus_messages_total")
    received = _counter_total(reg, "srbb_gossip_received_total")
    duplicates = _counter_total(reg, "srbb_gossip_duplicates_total")
    return {
        "consensus_msgs_per_committed_tx": round(
            _ratio(consensus_msgs, committed), 4
        ),
        "net_messages_total": _counter_total(reg, "srbb_net_messages_total"),
        "net_bytes_total": _counter_total(reg, "srbb_net_bytes_total"),
        "gossip_redundancy": round(_ratio(duplicates, received), 6),
        "vm_gas_used_total": _counter_total(reg, "srbb_vm_gas_used_total"),
    }


def _run_table1_dapp(reg: MetricsRegistry) -> dict:
    """Table I's 4-validator Sydney deployment at 1/10 scale: SRBB w/o vs
    w/ RPM under a Byzantine flooder (message-level engine).

    The valid load is *sustained* (150 TPS over ~13 s, not a burst) and
    the committee execution-starved (400 tx/s), so the flooder's invalid
    transactions displace valid commit work for as long as it stays in
    the committee — with RPM on, slashing excludes it after the first
    committed reports and both the committed-invalid count and the
    throughput penalty collapse.  (The earlier burst-load tuning
    committed the whole valid set before deterrence could matter, so
    both arms reported identical headline numbers.)"""
    from repro.analysis.figures import table1

    no_rpm, with_rpm = table1(
        valid_count=2_000,
        invalid_count=6_000,
        send_rate_tps=150.0,
        flood_per_block=600,
        execution_rate=400.0,
    )
    committed = _counter_total(reg, "srbb_diablo_txs_committed_total")
    headline = {
        "no_rpm_throughput_tps": round(no_rpm.throughput_tps, 4),
        "with_rpm_throughput_tps": round(with_rpm.throughput_tps, 4),
        "rpm_gain": round(
            _ratio(with_rpm.throughput_tps, no_rpm.throughput_tps) - 1.0, 6
        ),
        "valid_dropped_no_rpm": float(no_rpm.valid_dropped),
        "valid_dropped_with_rpm": float(with_rpm.valid_dropped),
        "invalid_sent_no_rpm": float(no_rpm.invalid_sent),
        "invalid_sent_with_rpm": float(with_rpm.invalid_sent),
        "invalid_committed_no_rpm": float(no_rpm.invalid_committed),
        "invalid_committed_with_rpm": float(with_rpm.invalid_committed),
        "attacker_deposit_with_rpm": float(with_rpm.attacker_deposit),
        "attacker_excluded_with_rpm": float(with_rpm.attacker_excluded),
        "diablo_committed_total": committed,
    }
    headline.update(_dapp_derived(reg, committed))
    return headline


def _run_vote_batching_ablation(reg: MetricsRegistry) -> dict:
    """Vote batching on vs off over the *identical* flooding deployment
    (same seeds, same pre-signed transactions): the decided superblocks
    must be byte-identical while the consensus wire-message count
    collapses — the PR-3 tentpole evidence."""
    from repro.analysis.figures import flooding_deployment
    from repro.diablo.benchmark import DiabloBenchmark
    from repro.diablo.client import RoundRobinSubmitter

    arms: dict = {}
    for label, batching in (("unbatched", False), ("batched", True)):
        consensus_before = _counter_total(reg, "srbb_consensus_messages_total")
        bytes_before = _counter_total(reg, "srbb_net_bytes_total")
        deployment, schedule = flooding_deployment(
            valid_count=2_000,
            invalid_count=1_000,
            send_rate_tps=15_000.0,
            flood_per_block=250,
            rpm=False,
            seed=1,
            vote_batching=batching,
        )
        bench = DiabloBenchmark(
            deployment, submitter=RoundRobinSubmitter(targets=(0, 1, 2))
        )
        result = bench.run(schedule, horizon_s=30.0)
        batchers = [v.vote_batcher for v in deployment.validators]
        arms[label] = {
            "consensus_msgs": (
                _counter_total(reg, "srbb_consensus_messages_total")
                - consensus_before
            ),
            "net_bytes": _counter_total(reg, "srbb_net_bytes_total") - bytes_before,
            "hashes": tuple(deployment.validators[0].blockchain.block_hashes()),
            "height": float(deployment.validators[0].blockchain.height),
            "throughput_tps": result.throughput_tps,
            "committed": float(result.committed),
            "batches": float(sum(b.batches_sent for b in batchers)),
            "votes_batched": float(sum(b.votes_batched for b in batchers)),
            "bytes_saved": float(sum(b.bytes_saved for b in batchers)),
        }
    un, ba = arms["unbatched"], arms["batched"]
    common = int(min(un["height"], ba["height"]))
    headline = {
        "unbatched_consensus_msgs": un["consensus_msgs"],
        "batched_consensus_msgs": ba["consensus_msgs"],
        "message_reduction": round(
            _ratio(un["consensus_msgs"], ba["consensus_msgs"]), 4
        ),
        "unbatched_net_bytes": un["net_bytes"],
        "batched_net_bytes": ba["net_bytes"],
        "net_bytes_reduction": round(_ratio(un["net_bytes"], ba["net_bytes"]), 4),
        # byte-identical superblocks: same height, same block hashes
        "chains_identical": float(
            un["height"] == ba["height"] and un["hashes"] == ba["hashes"]
        ),
        "common_height": float(common),
        "unbatched_throughput_tps": round(un["throughput_tps"], 4),
        "batched_throughput_tps": round(ba["throughput_tps"], 4),
        "unbatched_committed": un["committed"],
        "batched_committed": ba["committed"],
        "batches_total": ba["batches"],
        "votes_per_batch_avg": round(
            _ratio(ba["votes_batched"], ba["batches"]), 4
        ),
        "batch_bytes_saved_total": ba["bytes_saved"],
    }
    return headline


def _run_weak_validator(reg: MetricsRegistry) -> dict:
    """Message-level run over the paper's multi-region topology with one
    slow validator (§VI's 'weak validator'): the protocol must keep
    committing while cross-region metrics expose the asymmetry.

    (Formerly registered as ``fault_injection``; renamed because a slow
    node is a *delay* fault, not an injected loss/crash — those live in
    the ``chaos_soak`` scenario.)"""
    from repro import params
    from repro.core.deployment import Deployment
    from repro.diablo.benchmark import DiabloBenchmark
    from repro.diablo.client import LoadSchedule, RoundRobinSubmitter
    from repro.net.faults import slow_nodes
    from repro.net.topology import global_topology
    from repro.workloads import nasdaq_request_factory, nasdaq_trace
    from repro.workloads.synthetic import factory_balances

    seed = 7
    n = 8
    trace = nasdaq_trace().scaled(0.002, name="nasdaq")
    factory = nasdaq_request_factory(clients=16, seed=seed + 40)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=n, tvpr=True),
        topology=global_topology(n, degree=4, seed=seed),
        extra_balances=factory_balances(factory),
        seed=seed,
    )
    # One healthy-but-slow validator: every message to or from node 7
    # takes an extra 400 ms (partial synchrony still bounds the delay).
    deployment.network.adversarial_delay = slow_nodes([n - 1], 0.4)
    schedule = LoadSchedule.from_trace(trace, factory)
    bench = DiabloBenchmark(deployment, submitter=RoundRobinSubmitter())
    result = bench.run(schedule, grace_s=30.0)
    latencies = result.latencies_s
    headline = {
        "throughput_tps": round(result.throughput_tps, 4),
        "commit_rate": round(result.commit_rate, 6),
        "avg_latency_s": round(result.avg_latency_s, 4),
        "p95_latency_s": round(
            float(np.percentile(latencies, 95)) if len(latencies) else 0.0, 4
        ),
        "sent": float(result.sent),
        "committed": float(result.committed),
        "safety_holds": float(deployment.safety_holds()),
        "states_agree": float(deployment.states_agree()),
    }
    headline.update(_dapp_derived(reg, float(result.committed)))
    return headline


def _chaos_deployment(*, schedule_seed: int, deployment_seed: int):
    """The canonical chaos deployment: n=4 single-region, reliable
    delivery, liveness watchdogs, and a seeded fault schedule that
    crashes one node (f=1), loses 5% of transmissions for the first 25 s,
    and hard-partitions the committee 2|2 for 4 s before healing."""
    from repro import params
    from repro.core.deployment import Deployment, fund_clients
    from repro.core.transaction import make_transfer
    from repro.faults import FaultSchedule
    from repro.net.topology import single_region_topology

    clients, balances = fund_clients(8, seed=5000 + deployment_seed)
    schedule = (
        FaultSchedule(seed=schedule_seed)
        .drop_rate(0.05, until=25.0)
        .crash(3, at=4.0)
        .restart(3, at=10.0)
        .hard_partition([[0, 1], [2, 3]], at=14.0, heal_at=18.0)
    )
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, watchdog_stall_rounds=8),
        topology=single_region_topology(4),
        extra_balances=balances,
        net_params=params.NetParams(reliable_delivery=True),
        fault_schedule=schedule,
        seed=deployment_seed,
    )
    # Pre-signed client transfers over the first ~20 s, submitted to the
    # three validators the schedule never crashes (a client whose node is
    # down must resubmit elsewhere — modelled by not targeting node 3).
    txs = []
    for j in range(6):
        for i, keypair in enumerate(clients):
            k = j * len(clients) + i
            tx = make_transfer(
                keypair, clients[(i + 1) % len(clients)].address, 1,
                nonce=j, created_at=0.0,
            )
            txs.append(tx)
            deployment.submit(tx, validator_id=k % 3, at=0.5 + k * 0.4)
    return deployment, txs


def run_chaos_soak(
    *, schedule_seed: int = 13, deployment_seed: int = 3, horizon_s: float = 60.0
) -> dict:
    """One chaos-soak run -> headline dict (CI's multi-seed safety gate
    calls this directly with varying seeds)."""
    deployment, txs = _chaos_deployment(
        schedule_seed=schedule_seed, deployment_seed=deployment_seed
    )
    deployment.start()
    # Sample the restarted node's recovery flag on a fixed grid so
    # recovery time is a simulated-time quantity (restart fires at 10 s).
    recovered_at = float("inf")
    restarted = deployment.validators[3]
    t = 0.0
    while t < horizon_s:
        t += 0.25
        deployment.run_until(t)
        if recovered_at == float("inf") and t > 10.0 and not restarted._recovering:
            recovered_at = t
    committed = sum(1 for tx in txs if deployment.committed_everywhere(tx))
    hashes = {
        tuple(v.blockchain.block_hashes()) for v in deployment.validators
    }
    heights = {v.blockchain.height for v in deployment.validators}
    roots = {v.blockchain.state.state_root() for v in deployment.validators}
    stats = deployment.network.stats
    return {
        "chains_identical": float(len(hashes) == 1 and len(heights) == 1),
        "state_roots_match": float(len(roots) == 1),
        "safety_holds": float(deployment.safety_holds()),
        "commit_rate": round(_ratio(committed, len(txs)), 6),
        "committed": float(committed),
        "sent": float(len(txs)),
        "recovery_time_s": round(recovered_at - 10.0, 4),
        "height": float(max(heights)),
        "faults_injected_total": float(len(deployment.fault_controller.applied)),
        "retransmissions_total": float(stats.retransmissions),
        "duplicates_dropped_total": float(stats.duplicates_dropped),
        "faults_dropped_total": float(stats.dropped),
        "rpm_nonce_survived": float(
            restarted.journal.rpm_nonce is not None
            and restarted.blockchain.state.nonce_of(restarted.address) > 0
        ),
    }


def _run_chaos_soak(reg: MetricsRegistry) -> dict:
    """Crash-recovery chaos soak (the robustness-PR tentpole evidence):
    deterministic chaos — one crash+restart with snapshot catch-up, 5%
    link loss absorbed by reliable delivery, a healing 2|2 partition —
    must leave every correct chain byte-identical with every client
    transaction committed."""
    return run_chaos_soak()


# ---------------------------------------------------------------------------
# Byzantine fault campaign (robustness tentpole: deterrence must be visible)
# ---------------------------------------------------------------------------


def _campaign_deployment(*, rpm: bool, seed: int):
    """The canonical Byzantine-campaign deployment: n=4 single-region,
    one schedule-driven adversary seat (node 3, within the f=1 budget)
    that floods invalid transactions for 12 s, equivocates for 4 s, then
    withholds its consensus votes for 6 s.  The valid load is sustained
    (60 TPS over 14 s) against an execution-starved committee
    (400 tx/s), so every invalid transaction the flooder lands in a
    decided superblock visibly steals commit capacity — which is what
    lets RPM's exclusion show up as throughput, not just as a counter."""
    from repro import params
    from repro.core.deployment import Deployment
    from repro.diablo.client import LoadSchedule
    from repro.faults import FaultSchedule
    from repro.net.topology import single_region_topology
    from repro.workloads.synthetic import factory_balances, transfer_request_factory

    fault_schedule = (
        FaultSchedule(seed=seed)
        .byzantine_flood(
            3, at=1.0, until=13.0, per_block=1_000, total=10_000, seed=seed + 99
        )
        .byzantine_equivocate(3, at=14.0, until=18.0)
        .byzantine_withhold(3, at=20.0, until=26.0)
    )
    fault_schedule.validate(n=4, f=1)
    protocol = params.ProtocolParams(
        n=4, rpm=rpm, rpm_exclude_comms=rpm, watchdog_stall_rounds=8
    )
    factory = transfer_request_factory(clients=32, seed=seed + 7_000)
    deployment = Deployment(
        protocol=protocol,
        topology=single_region_topology(4),
        fault_schedule=fault_schedule,
        extra_balances=factory_balances(factory),
        seed=seed,
        execution_rate=400.0,
    )
    txs = [factory(i, i / 60.0) for i in range(840)]
    load = LoadSchedule.from_transactions(txs, name="byzantine-campaign")
    return deployment, load


def run_byzantine_campaign(
    *, rpm: bool, seed: int = 21, horizon_s: float = 40.0
) -> dict:
    """One campaign arm -> per-arm stats dict (both arms share the seed,
    so the adversary's schedule and the valid load are identical and the
    only difference is whether RPM's economics are live)."""
    from repro.core.rewards import DepositLedger
    from repro.diablo.benchmark import DiabloBenchmark
    from repro.diablo.client import RoundRobinSubmitter

    deployment, load = _campaign_deployment(rpm=rpm, seed=seed)
    attacker = deployment.keypairs[3].address
    observer = deployment.validators[0]
    ledger = DepositLedger(tuple(kp.address for kp in deployment.keypairs[:4]))
    # Deposit book sampled on a fixed 0.5 s simulated-time grid, so
    # time-to-exclusion is deterministic and host-independent.
    t = 0.0
    while t < horizon_s:
        t += 0.5
        deployment.sim.schedule(t, ledger.sample, observer)
    bench = DiabloBenchmark(
        deployment, submitter=RoundRobinSubmitter(targets=(0, 1, 2))
    )
    result = bench.run(load, horizon_s=horizon_s)
    flooder = deployment.validators[3]
    honest = deployment.validators[:3]
    hashes = {tuple(v.blockchain.block_hashes()) for v in honest}
    heights = {v.blockchain.height for v in honest}
    roots = {v.blockchain.state.state_root() for v in honest}
    econ = ledger.stats(attacker=attacker)
    if econ["time_to_exclusion_s"] == float("inf"):
        econ["time_to_exclusion_s"] = horizon_s  # JSON-safe "never" cap
    watchdogs = [v.watchdog for v in honest if v.watchdog is not None]
    return {
        "throughput_tps": round(result.throughput_tps, 4),
        "committed": float(result.committed),
        "sent": float(result.sent),
        "valid_dropped": float(result.dropped),
        "invalid_committed": float(observer.stats.txs_discarded),
        "invalid_proposed": float(flooder.invalid_txs_proposed),
        "withheld_msgs": float(flooder.withheld_msgs),
        "honest_chains_identical": float(len(hashes) == 1 and len(heights) == 1),
        "honest_state_roots_match": float(len(roots) == 1),
        "safety_holds": float(deployment.safety_holds()),
        "height": float(max(heights)),
        "faults_injected_total": float(len(deployment.fault_controller.applied)),
        "watchdog_withheld_checks": float(
            sum(w.withheld_checks for w in watchdogs)
        ),
        "excluded_msgs_dropped": float(
            sum(v.excluded_msgs_dropped for v in honest)
        ),
        **{f"econ_{key}": float(value) for key, value in econ.items()},
    }


def _run_byzantine_campaign(reg: MetricsRegistry) -> dict:
    """Byzantine campaign, RPM off vs on, same seed (the robustness-PR
    tentpole evidence): with RPM live the attacker must lose its entire
    deposit within a bounded time, committed-invalid work must collapse,
    and the protected arm must out-commit the unprotected one."""
    no_rpm = run_byzantine_campaign(rpm=False)
    with_rpm = run_byzantine_campaign(rpm=True)
    committed = _counter_total(reg, "srbb_diablo_txs_committed_total")
    headline = {
        "no_rpm_throughput_tps": no_rpm["throughput_tps"],
        "with_rpm_throughput_tps": with_rpm["throughput_tps"],
        "rpm_gain": round(
            _ratio(with_rpm["throughput_tps"], no_rpm["throughput_tps"]) - 1.0, 6
        ),
        "invalid_committed_no_rpm": no_rpm["invalid_committed"],
        "invalid_committed_with_rpm": with_rpm["invalid_committed"],
        "invalid_committed_drop": round(
            _ratio(
                no_rpm["invalid_committed"] - with_rpm["invalid_committed"],
                no_rpm["invalid_committed"],
            ),
            6,
        ),
        "attacker_net_payoff": with_rpm["econ_attacker_net_payoff"],
        "attacker_final_deposit": with_rpm["econ_attacker_final_deposit"],
        "attacker_slashed": with_rpm["econ_attacker_excluded"],
        "time_to_exclusion_s": with_rpm["econ_time_to_exclusion_s"],
        "honest_yield": round(with_rpm["econ_honest_yield"], 6),
        "valid_dropped_no_rpm": no_rpm["valid_dropped"],
        "valid_dropped_with_rpm": with_rpm["valid_dropped"],
        "honest_chains_identical": float(
            no_rpm["honest_chains_identical"]
            and with_rpm["honest_chains_identical"]
            and no_rpm["honest_state_roots_match"]
            and with_rpm["honest_state_roots_match"]
        ),
        "safety_holds": float(
            no_rpm["safety_holds"] and with_rpm["safety_holds"]
        ),
        "withheld_msgs_no_rpm": no_rpm["withheld_msgs"],
        "withheld_msgs_with_rpm": with_rpm["withheld_msgs"],
        "excluded_msgs_dropped": with_rpm["excluded_msgs_dropped"],
        "watchdog_withheld_checks": (
            no_rpm["watchdog_withheld_checks"]
            + with_rpm["watchdog_withheld_checks"]
        ),
        "faults_injected_total": (
            no_rpm["faults_injected_total"] + with_rpm["faults_injected_total"]
        ),
        "diablo_committed_total": committed,
    }
    headline.update(_dapp_derived(reg, committed))
    return headline


def run_byzantine_chaos(
    *, schedule_seed: int = 13, deployment_seed: int = 3, horizon_s: float = 40.0
) -> dict:
    """Combined crash+Byzantine chaos run -> headline dict (CI's
    multi-seed matrix calls this directly with varying seeds).

    One seat (node 3, within the f=1 budget) floods, then withholds its
    votes, then crashes and restarts — under 5% link loss behind
    reliable delivery.  Honest chains must converge byte-identically and
    every honest-submitted valid transaction must commit."""
    from repro import params
    from repro.core.deployment import Deployment, fund_clients
    from repro.core.transaction import make_transfer
    from repro.faults import FaultSchedule
    from repro.net.topology import single_region_topology

    clients, balances = fund_clients(8, seed=5200 + deployment_seed)
    schedule = (
        FaultSchedule(seed=schedule_seed)
        .drop_rate(0.05, until=10.0)
        .byzantine_flood(
            3, at=1.0, until=6.0, per_block=300, total=1_500,
            seed=schedule_seed + 99,
        )
        .byzantine_withhold(3, at=6.0, until=10.0)
        .crash(3, at=12.0)
        .restart(3, at=18.0)
    )
    schedule.validate(n=4, f=1)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4, watchdog_stall_rounds=8),
        topology=single_region_topology(4),
        extra_balances=balances,
        net_params=params.NetParams(reliable_delivery=True),
        fault_schedule=schedule,
        seed=deployment_seed,
        execution_rate=2_000.0,
    )
    txs = []
    for j in range(6):
        for i, keypair in enumerate(clients):
            k = j * len(clients) + i
            tx = make_transfer(
                keypair, clients[(i + 1) % len(clients)].address, 1,
                nonce=j, created_at=0.0,
            )
            txs.append(tx)
            deployment.submit(tx, validator_id=k % 3, at=0.5 + k * 0.4)
    deployment.start()
    deployment.run_until(horizon_s)
    honest = deployment.validators[:3]
    committed = sum(
        1
        for tx in txs
        if all(tx.tx_hash in v.blockchain.commit_times for v in honest)
    )
    hashes = {tuple(v.blockchain.block_hashes()) for v in honest}
    heights = {v.blockchain.height for v in honest}
    roots = {v.blockchain.state.state_root() for v in honest}
    observer = honest[0]
    attacker = deployment.keypairs[3].address
    return {
        "honest_chains_identical": float(len(hashes) == 1 and len(heights) == 1),
        "honest_state_roots_match": float(len(roots) == 1),
        "safety_holds": float(deployment.safety_holds()),
        "commit_rate": round(_ratio(committed, len(txs)), 6),
        "committed": float(committed),
        "sent": float(len(txs)),
        "height": float(max(heights)),
        "attacker_excluded": float(attacker in observer.excluded_validators),
        "attacker_deposit": float(observer.rpm_deposit_of(attacker)),
        "invalid_committed": float(observer.stats.txs_discarded),
        "faults_injected_total": float(len(deployment.fault_controller.applied)),
    }


def run_engine_scaling(
    *,
    sizes: "tuple[int, ...]" = (4, 8, 16, 32, 48),
    seed: int = 9,
    clients: int = 8,
    nonces: int = 4,
    send_window_s: float = 2.0,
    horizon_s: float = 6.0,
    repeats: int = 2,
) -> dict:
    """Message-level engine cost vs committee size, under the profiler.

    Runs the same small transfer workload against single-region
    deployments of ``n ∈ sizes`` validators with a wall-clock
    :class:`~repro.telemetry.profiling.Profiler` attached to each event
    loop, and fits power laws to both the deterministic event counts
    (``event_scaling_exponent`` — gated tight) and the measured run time
    (``wall_scaling_exponent`` — gated generously; hosts differ in
    speed but not in asymptotics).  Each size is run ``repeats`` times
    and timed by **process CPU time, min-of-N** — scheduler contention
    on shared runners inflates wall clock but not CPU time, and the
    minimum is the least-noisy estimator of the true cost.  The repeats
    double as a free determinism check: every run of a size must process
    the identical event count.  Per-subsystem ``us_per_event:*`` keys,
    ``events_per_sec`` and ``peak_rss_mb`` are informational
    (wall-clock markers, never gated).

    CI's smoke job calls this directly with ``sizes=(4, 8)``.
    """
    import time as _time

    from repro import params
    from repro.core.deployment import Deployment, fund_clients
    from repro.core.transaction import make_transfer
    from repro.net.topology import single_region_topology
    from repro.telemetry import profiling

    headline: dict = {}
    event_counts: "list[float]" = []
    wall_times: "list[float]" = []
    subsystems: "dict[str, list[float]]" = {}
    for n in sizes:
        best_cpu = None
        first = None
        for rep in range(max(1, repeats)):
            prof = profiling.Profiler()
            keypairs, balances = fund_clients(clients, seed=5000 + seed)
            deployment = Deployment(
                protocol=params.ProtocolParams(n=n, tvpr=True, rpm=False),
                topology=single_region_topology(n),
                extra_balances=balances,
                seed=seed,
            )
            # Attach directly (no global use_profiler): each size gets
            # its own profiler, and nothing has been scheduled yet.
            deployment.sim.profiler = prof
            deployment.start()
            total = clients * nonces
            gap = send_window_s / total
            for nonce in range(nonces):
                for i, keypair in enumerate(keypairs):
                    k = nonce * clients + i
                    tx = make_transfer(
                        keypair, keypairs[(i + 1) % clients].address, 1,
                        nonce=nonce, created_at=k * gap,
                    )
                    deployment.submit(tx, validator_id=i % n, at=k * gap)
            c0 = _time.process_time()
            deployment.run_until(horizon_s)
            cpu = max(_time.process_time() - c0, 1e-9)
            prof.phase(f"n={n}")
            prof.finish()
            if first is None:
                first = (deployment, prof)
            else:
                # Same seed, same workload: any event-count drift between
                # repeats is a determinism bug, not timing noise.
                assert deployment.sim.events_processed == int(
                    first[0].sim.events_processed
                ), (n, rep, deployment.sim.events_processed)
            if best_cpu is None or cpu < best_cpu:
                best_cpu = cpu
        deployment, prof = first
        wall = best_cpu

        events = float(deployment.sim.events_processed)
        event_counts.append(events)
        wall_times.append(wall)
        for name, (count, total_ns) in prof.by_subsystem.items():
            entry = subsystems.setdefault(name, [0.0, 0.0])
            entry[0] += count
            entry[1] += total_ns
        headline[f"events_n{n}"] = events
        headline[f"committed_n{n}"] = float(deployment.total_committed())
        headline[f"height_n{n}"] = float(
            max(v.blockchain.height for v in deployment.correct_validators)
        )
        headline[f"wall_s_n{n}"] = round(wall, 4)
        headline[f"events_per_sec_n{n}"] = round(events / wall, 2)

    log_sizes = np.log(np.asarray(sizes, dtype=float))
    headline["event_scaling_exponent"] = round(
        float(np.polyfit(log_sizes, np.log(np.asarray(event_counts)), 1)[0]), 4
    )
    # Two wall fits.  The *gate* fit covers the historical n ≤ 32 range and
    # measures the engine's per-event constant (what this repo can
    # optimize); the full-range fit includes the largest committees, where
    # the protocol's Θ(n³) logical vote volume (n instances × n voters
    # delivered to n nodes, batching only compresses the wire) starts to
    # dominate and no engine constant can hide it.  The full-range value
    # is informational (a wall-clock marker).
    gate_idx = [i for i, n in enumerate(sizes) if n <= 32] or list(
        range(len(sizes))
    )
    headline["wall_scaling_exponent"] = round(
        float(
            np.polyfit(
                log_sizes[gate_idx],
                np.log(np.asarray(wall_times)[gate_idx]),
                1,
            )[0]
        ),
        4,
    )
    if len(gate_idx) < len(sizes):
        headline["wall_scaling_exponent_full"] = round(
            float(np.polyfit(log_sizes, np.log(np.asarray(wall_times)), 1)[0]),
            4,
        )
    headline["events_per_sec"] = round(
        sum(event_counts) / sum(wall_times), 2
    )
    headline["peak_rss_mb"] = round(profiling._peak_rss_mb(), 2)
    for name, (count, total_ns) in sorted(subsystems.items()):
        if count:
            headline[f"us_per_event:{name}"] = round(
                total_ns / 1_000.0 / count, 3
            )
    return headline


def _run_engine_scaling(reg: MetricsRegistry) -> dict:
    """Wall-clock scaling gate (the profiler-PR tentpole evidence): event
    counts must scale with committee size exactly as before (tight gate),
    and measured wall time must not blow past the established scaling
    exponent (generous gate; absolute speeds stay informational)."""
    return run_engine_scaling()


def run_trace_replay(
    workload: str,
    *,
    n: int = 4,
    clients: int = 64,
    seed: int = 17,
    grace_s: float = 30.0,
) -> dict:
    """Replay one published workload envelope (§V) at full scale on the
    message-level engine: every transaction of the paper's trace is
    pre-signed (cached across runs in-process — see
    :mod:`repro.diablo.client`) and pushed through a real ``n``-validator
    deployment.  Sim-time quantities (throughput, commit rate, latency
    quantiles, backlog drain) are deterministic and gated; the wall-clock
    cost of the replay is reported under the informational ``wall_s_n*``
    marker.  These runs only became affordable with the engine fast path
    — the full NASDAQ trace is 30 240 transactions, FIFA is 626 940.
    """
    import time as _time

    from repro import params as _params
    from repro.diablo.runner import run_dapp_workload

    envelope = {
        "nasdaq": _params.NASDAQ_ENVELOPE,
        "uber": _params.UBER_ENVELOPE,
        "fifa": _params.FIFA_ENVELOPE,
    }[workload]
    start = _time.process_time()
    outcome = run_dapp_workload(
        workload, scale=1.0, n=n, clients=clients, grace_s=grace_s, seed=seed
    )
    wall = _time.process_time() - start
    result = outcome.result
    deployment = outcome.deployment
    latencies = result.latencies_s
    headline = {
        "trace_txs": float(result.sent),
        "trace_peak_tps": float(envelope.peak_tps),
        "trace_duration_s": float(envelope.duration_s),
        "throughput_tps": round(result.throughput_tps, 4),
        "commit_rate": round(result.commit_rate, 6),
        "committed": float(result.committed),
        "dropped": float(result.dropped),
        "avg_latency_s": round(result.avg_latency_s, 4),
        "p50_latency_s": round(
            float(np.percentile(latencies, 50)) if len(latencies) else 0.0, 4
        ),
        "p95_latency_s": round(
            float(np.percentile(latencies, 95)) if len(latencies) else 0.0, 4
        ),
        "p99_latency_s": round(
            float(np.percentile(latencies, 99)) if len(latencies) else 0.0, 4
        ),
        # How far past the trace's end the last commit landed: the
        # backlog-drain time the paper reports for over-capacity bursts.
        "backlog_drain_s": round(
            max(0.0, result.duration_s - envelope.duration_s), 4
        ),
        "height": float(
            max(v.blockchain.height for v in deployment.correct_validators)
        ),
        "safety_holds": float(deployment.safety_holds()),
        "states_agree": float(deployment.states_agree()),
        f"wall_s_n{n}": round(wall, 4),
    }
    return headline


def _run_trace_replay_nasdaq(reg: MetricsRegistry) -> dict:
    headline = run_trace_replay("nasdaq")
    headline.update(_dapp_derived(reg, headline["committed"]))
    return headline


def _run_trace_replay_uber(reg: MetricsRegistry) -> dict:
    headline = run_trace_replay("uber")
    headline.update(_dapp_derived(reg, headline["committed"]))
    return headline


def _run_trace_replay_fifa(reg: MetricsRegistry) -> dict:
    headline = run_trace_replay("fifa", clients=128)
    headline.update(_dapp_derived(reg, headline["committed"]))
    return headline


def run_table1_scale(
    *,
    n: int = 200,
    seed: int = 7,
    valid_count: int = 300,
    invalid_count: int = 150,
    clients: int = 16,
    send_rate_tps: float = 15_000.0,
    degree: int = 12,
    horizon_s: float = 6.0,
    step_s: float = 0.25,
    settle_s: float = 0.5,
) -> dict:
    """Table I's flooding workload at paper-scale committee size.

    ``n`` validators (default 200 — the paper's AWS fleet size) over the
    multi-region topology, one weak (+400 ms) validator, and the Table I
    open-loop mix of funded transfers interleaved with invalid
    (unfunded-sender) floods at 15 000 TPS.  The run advances on a fixed
    ``step_s`` grid until every valid transaction is committed on every
    correct validator (or ``horizon_s`` expires), then settles
    ``settle_s`` more so all chains converge; every headline quantity
    except ``wall_s_n*`` is simulated-time and deterministic.

    A protocol round at n=200 moves Θ(n³) logical votes (n instances ×
    n voters × n receivers — batching compresses the wire, not the
    dispatch count), so this scenario is the most expensive registered
    one; CI runs a reduced-n variant (see the profile-smoke job).
    """
    import time as _time

    from repro import params as _params
    from repro.core.deployment import Deployment
    from repro.diablo.benchmark import DiabloBenchmark
    from repro.diablo.client import LoadSchedule, RoundRobinSubmitter
    from repro.net.faults import slow_nodes
    from repro.net.topology import global_topology
    from repro.workloads.synthetic import (
        factory_balances,
        flooding_mix,
        transfer_request_factory,
    )

    factory = transfer_request_factory(clients=clients, seed=950)
    balances = factory_balances(factory)
    txs = flooding_mix(
        valid_count, invalid_count,
        send_rate_tps=send_rate_tps, clients=clients, seed=950,
    )
    valid = [tx for tx in txs if tx.sender in balances]
    deployment = Deployment(
        protocol=_params.ProtocolParams(n=n, tvpr=True, rpm=False),
        topology=global_topology(n, degree=degree, seed=seed),
        extra_balances=balances,
        seed=seed,
    )
    deployment.network.adversarial_delay = slow_nodes([n - 1], 0.4)
    schedule = LoadSchedule.from_transactions(txs, name=f"table1-n{n}")
    bench = DiabloBenchmark(deployment, submitter=RoundRobinSubmitter())
    deployment.start()
    bench.submitter.submit_all(deployment, schedule)
    start = _time.process_time()
    commit_done_s = 0.0
    t = 0.0
    while t < horizon_s:
        t = round(t + step_s, 10)
        deployment.run_until(t)
        if all(deployment.committed_everywhere(tx) for tx in valid):
            commit_done_s = t
            break
    if commit_done_s:
        # Let in-flight rounds finish so chains/states converge before
        # the safety checks sample them.
        t = round(t + settle_s, 10)
        deployment.run_until(t)
    wall = _time.process_time() - start
    result = bench.collect(schedule, t)
    heights = {v.blockchain.height for v in deployment.correct_validators}
    hashes = {
        tuple(v.blockchain.block_hashes())
        for v in deployment.correct_validators
    }
    headline = {
        "sent_valid": float(len(valid)),
        "sent_invalid": float(len(txs) - len(valid)),
        "committed": float(result.committed),
        "commit_rate_valid": round(_ratio(result.committed, len(valid)), 6),
        "commit_done_s": round(commit_done_s, 4),
        "avg_latency_s": round(result.avg_latency_s, 4),
        "height": float(max(heights)),
        "chains_identical": float(len(hashes) == 1 and len(heights) == 1),
        "safety_holds": float(deployment.safety_holds()),
        "states_agree": float(deployment.states_agree()),
        f"events_n{n}": float(deployment.sim.events_processed),
        f"wall_s_n{n}": round(wall, 4),
        f"events_per_sec_n{n}": round(
            deployment.sim.events_processed / max(wall, 1e-9), 2
        ),
    }
    return headline


def _run_table1_scale_200(reg: MetricsRegistry) -> dict:
    headline = run_table1_scale()
    headline.update(_dapp_derived(reg, headline["committed"]))
    return headline


def _run_parallel_exec_ablation(reg: MetricsRegistry) -> dict:
    """Threaded parallel execution vs the serial oracle (the multi-core
    tentpole evidence), four arms:

    1. the commit loop with ``ProtocolParams.parallel_execution`` on must
       decide a byte-identical chain (same block hashes, state root,
       receipts, discards) as with it off;
    2. the threaded backend must reproduce the oracle's state roots and
       per-position receipts over seeded mixed workloads (transfers,
       deploys, scoped and opaque native calls, invalid txs) at every
       worker count — and the derived schedule must pass the Definition 1
       serialization check;
    3. a conflict-light workload (disjoint senders, ~128 KiB memos whose
       hashing releases the GIL) is timed serial vs threads, interleaved
       min-of-3; the speedup gate is hardware-conditional, folded into the
       binary ``speedup_ok_w8`` (single-core hosts pass vacuously) while
       raw ``measured_speedup_*`` stays informational like every
       wall-clock quantity;
    4. a conflict-heavy contrast (same-symbol trades) must serialize
       fully and still match the oracle.
    """
    import os
    import random
    import time

    from repro.core.block import SuperBlock, make_block
    from repro.core.blockchain import Blockchain
    from repro.core.transaction import (
        Transaction,
        TxType,
        make_deploy,
        make_invoke,
        make_transfer,
    )
    from repro.core.validation import clear_signature_cache
    from repro.crypto.keys import generate_keypair
    from repro.params import ProtocolParams
    from repro.vm.conflicts import analyze_block, blocks_are_conflict_serialized
    from repro.vm.contracts import (
        ExchangeContract,
        MobilityContract,
        TicketingContract,
    )
    from repro.vm.contracts.base import NativeRegistry
    from repro.vm.executor import Executor, install_native, native_address_for
    from repro.vm.parallel import execute_parallel
    from repro.vm.state import WorldState

    funds = 10**12

    # -- arm 1: commit-loop chain identity, knob off vs on -------------------
    kps = [generate_keypair(5200 + i) for i in range(12)]
    deployer = generate_keypair(5299)

    def _commit_chain(parallel: bool):
        clear_signature_cache()
        state = WorldState()
        for kp in kps + [deployer]:
            state.create_account(kp.address, funds)
        state.commit()
        chain = Blockchain(
            protocol=ProtocolParams(
                n=4, parallel_execution=parallel, parallel_workers=8
            ),
            state=state,
        )
        duplicate = make_transfer(kps[1], "dd" * 20, 2, nonce=0)
        blocks = []
        for b in range(3):
            txs = [
                make_transfer(kp, f"{b:02d}{i:038x}", 3 + b, nonce=b)
                for i, kp in enumerate(kps)
            ]
            txs.append(make_deploy(deployer, bytes([b + 1]) * 6, nonce=b))
            txs.append(make_transfer(kps[0], "ee" * 20, 1, nonce=99))  # invalid
            if b == 2:
                txs.append(duplicate)  # re-decided via a second proposer
            blocks.append(make_block(kps[0], b, 1, txs))
        result = chain.commit_superblock(
            SuperBlock(index=1, blocks=tuple(blocks)),
            now=1.0,
            coinbase_of=lambda pid: f"{pid:040d}",
            exec_rate=2_000.0,
        )
        return chain, result

    serial_chain, serial_result = _commit_chain(False)
    par_chain, par_result = _commit_chain(True)
    chains_identical = (
        serial_chain.block_hashes() == par_chain.block_hashes()
        and serial_chain.state.state_root() == par_chain.state.state_root()
        and serial_chain.commit_times == par_chain.commit_times
        and [
            (r.tx_hash, r.success, r.gas_used, r.error)
            for r in serial_result.receipts
        ] == [
            (r.tx_hash, r.success, r.gas_used, r.error)
            for r in par_result.receipts
        ]
        and [d[1] for d in serial_result.discarded]
        == [d[1] for d in par_result.discarded]
    )

    # -- arm 2: executor-level differential over seeded mixed blocks ---------
    mixed_kps = [generate_keypair(5300 + i) for i in range(6)]
    exchange = native_address_for("exchange")
    mobility = native_address_for("mobility")
    ticketing = native_address_for("ticketing")

    def _registry() -> NativeRegistry:
        registry = NativeRegistry()
        registry.register(ExchangeContract())
        registry.register(MobilityContract())
        registry.register(TicketingContract())
        return registry

    def _mixed_state() -> WorldState:
        state = WorldState()
        for kp in mixed_kps:
            state.create_account(kp.address, funds)
        for name in ("exchange", "mobility", "ticketing"):
            install_native(state, name)
        state.commit()
        return state

    def _mixed_block(seed: int) -> list:
        rng = random.Random(seed)
        nonces = {kp.address: 0 for kp in mixed_kps}
        txs = []
        for _ in range(40):
            kp = rng.choice(mixed_kps)
            nonce = nonces[kp.address]
            roll = rng.random()
            if roll < 0.35:
                tx = make_transfer(
                    kp, rng.choice(mixed_kps).address, rng.randint(1, 50),
                    nonce=nonce,
                )
            elif roll < 0.50:
                tx = make_deploy(
                    kp, bytes([rng.randint(0, 255)]) * 4, nonce=nonce
                )
            elif roll < 0.70:
                tx = make_invoke(
                    kp, exchange, "trade",
                    (rng.choice(("AAPL", "MSFT", "GOOG")),
                     rng.randint(1, 9), rng.randint(1, 9)),
                    nonce=nonce,
                )
            elif roll < 0.80:
                tx = make_invoke(
                    kp, ticketing, "open_match",
                    (rng.randint(1, 3), rng.randint(10, 20), rng.randint(1, 5)),
                    nonce=nonce,
                )
            elif roll < 0.90:
                # opaque native call — a whole-block serialization point
                tx = make_invoke(
                    kp, mobility, "complete_ride", (rng.randint(1, 3),),
                    nonce=nonce,
                )
            else:
                tx = make_transfer(kp, mixed_kps[0].address, 1, nonce=nonce + 50)
                nonces[kp.address] -= 1  # invalid: nonce not consumed
            nonces[kp.address] += 1
            txs.append(tx)
        return txs

    coinbase = "cb" * 20
    roots_match = True
    receipts_match = True
    schedule_serialized = True
    depths = []
    for seed in (1, 2, 3):
        txs = _mixed_block(seed)
        report = analyze_block(txs, coinbase=coinbase)
        depths.append(report.parallel_depth)
        schedule_serialized &= blocks_are_conflict_serialized(
            txs, report.groups, coinbase=coinbase
        )
        oracle_state = _mixed_state()
        oracle = Executor(oracle_state, registry=_registry())
        oracle_receipts = [oracle.execute(tx, coinbase=coinbase) for tx in txs]
        oracle_root = oracle_state.state_root()
        for workers in (2, 8):
            clear_signature_cache()
            state = _mixed_state()
            executor = Executor(state, registry=_registry())
            outcome = execute_parallel(
                executor, txs, workers=workers, coinbase=coinbase,
                backend="threads",
            )
            roots_match &= state.state_root() == oracle_root
            receipts_match &= [
                (r.tx_hash, r.success, r.gas_used, r.error)
                for r in oracle_receipts
            ] == [
                (r.tx_hash, r.success, r.gas_used, r.error)
                for r in outcome.receipts
            ]

    # -- arm 3: measured wall-clock speedup on a conflict-light block --------
    light_kps = [generate_keypair(5400 + i) for i in range(64)]
    light_txs = [
        Transaction(
            tx_type=TxType.TRANSFER,
            sender=kp.address,
            receiver=f"{i:040x}",
            amount=1,
            nonce=0,
            gas_limit=2_500_000,
            gas_price=1,
            # ~128 KiB unique memo: hashing it releases the GIL, so the
            # signature recomputation inside each worker overlaps (the
            # memo hash is >half of per-tx execution time, so Amdahl
            # gives ~1.9x at 8 workers — comfortably above the gate)
            payload={"memo": i.to_bytes(4, "big") * 32768},
        ).signed_by(kp)
        for i, kp in enumerate(light_kps)
    ]
    light_report = analyze_block(light_txs, coinbase=coinbase)

    def _light_state() -> WorldState:
        state = WorldState()
        for kp in light_kps:
            state.create_account(kp.address, funds)
        state.commit()
        return state

    walls: "dict[str, list[float]]" = {"serial": [], "w2": [], "w8": []}
    light_roots = set()
    for _ in range(3):  # interleaved min-of-3: no arm benefits from warm-up
        clear_signature_cache()
        state = _light_state()
        executor = Executor(state)
        start = time.perf_counter()
        for tx in light_txs:
            executor.execute(tx, coinbase=coinbase)
        walls["serial"].append(time.perf_counter() - start)
        light_roots.add(state.state_root())
        for label, workers in (("w2", 2), ("w8", 8)):
            clear_signature_cache()
            state = _light_state()
            executor = Executor(state)
            start = time.perf_counter()
            execute_parallel(
                executor, light_txs, workers=workers, coinbase=coinbase,
                backend="threads",
            )
            walls[label].append(time.perf_counter() - start)
            light_roots.add(state.state_root())
    roots_match &= len(light_roots) == 1
    speedup_w2 = min(walls["serial"]) / min(walls["w2"])
    speedup_w8 = min(walls["serial"]) / min(walls["w8"])
    cpu_count = os.cpu_count() or 1
    # Hardware-conditional gate: a single-core host cannot exhibit thread
    # speedup (the gate would measure the scheduler, not the executor).
    speedup_ok_w8 = 1.0 if cpu_count < 2 else float(speedup_w8 > 1.3)

    # -- arm 4: conflict-heavy contrast (must fully serialize, still match) --
    heavy_kps = [generate_keypair(5500 + i) for i in range(24)]

    def _heavy_state() -> WorldState:
        state = WorldState()
        for kp in heavy_kps:
            state.create_account(kp.address, funds)
        install_native(state, "exchange")
        state.commit()
        return state

    heavy_txs = [
        make_invoke(kp, exchange, "trade", ("AAPL", 5, 3), nonce=0)
        for kp in heavy_kps
    ]
    heavy_report = analyze_block(heavy_txs, coinbase=coinbase)
    heavy_registry = NativeRegistry()
    heavy_registry.register(ExchangeContract())
    heavy_oracle = Executor(_heavy_state(), registry=heavy_registry)
    for tx in heavy_txs:
        heavy_oracle.execute(tx, coinbase=coinbase)
    clear_signature_cache()
    heavy_state = _heavy_state()
    execute_parallel(
        Executor(heavy_state, registry=heavy_registry), heavy_txs,
        workers=8, coinbase=coinbase, backend="threads",
    )
    roots_match &= heavy_state.state_root() == heavy_oracle.state.state_root()

    return {
        "chains_identical": float(chains_identical),
        "state_roots_match": float(roots_match),
        "receipts_match": float(receipts_match),
        "schedule_serialized": float(schedule_serialized),
        "commit_committed": float(len(serial_result.committed)),
        "commit_discarded": float(len(serial_result.discarded)),
        "mixed_depth_sum": float(sum(depths)),
        "parallel_depth_light": float(light_report.parallel_depth),
        "theoretical_speedup_light": round(light_report.speedup, 4),
        "parallel_depth_heavy": float(heavy_report.parallel_depth),
        "light_txs": float(len(light_txs)),
        "measured_speedup_w2": round(speedup_w2, 4),
        "measured_speedup_w8": round(speedup_w8, 4),
        "speedup_ok_w8": speedup_ok_w8,
        "cpu_count": float(cpu_count),
    }


register_scenario(Scenario(
    name="tvpr_ablation",
    description="SRBB vs EVM+DBFT on the full FIFA workload (tick engine): "
    "the §V-A TVPR on/off throughput and latency ablation",
    run=_run_tvpr_ablation,
    seed=11,
    cost_rank=0,
    tags=("tick", "ablation"),
))

register_scenario(Scenario(
    name="saturation_sweep",
    description="Offered-load sweep and bisected saturation point, SRBB vs "
    "EVM+DBFT (tick engine)",
    run=_run_saturation_sweep,
    seed=11,
    cost_rank=1,
    tags=("tick", "sweep"),
))

register_scenario(Scenario(
    name="table1_dapp",
    description="Table I at 1/10 scale: 4 Sydney validators, one Byzantine "
    "flooder, SRBB w/o vs w/ RPM (message-level engine)",
    run=_run_table1_dapp,
    seed=1,
    cost_rank=2,
    tags=("engine", "rpm", "adversary"),
))

register_scenario(Scenario(
    name="vote_batching_ablation",
    description="Vote batching on vs off on the Table I flooding deployment: "
    "superblocks must stay byte-identical while consensus wire messages "
    "drop >= 10x (message-level engine)",
    run=_run_vote_batching_ablation,
    seed=1,
    cost_rank=4,
    tags=("engine", "ablation", "batching"),
))

register_scenario(Scenario(
    name="weak_validator",
    description="8 validators over the 10-region topology with one slow "
    "validator (+400 ms), NASDAQ mix (message-level engine)",
    run=_run_weak_validator,
    seed=7,
    cost_rank=3,
    tags=("engine", "faults", "regions"),
))

register_scenario(Scenario(
    name="engine_scaling",
    description="Message-level engine wall-clock cost vs committee size "
    "(n = 4..32) under the event-loop profiler: deterministic event "
    "counts gated tight, wall-time scaling exponent gated generously, "
    "per-subsystem µs/event informational",
    run=_run_engine_scaling,
    seed=9,
    cost_rank=5,
    tags=("engine", "profiling", "scaling"),
))

register_scenario(Scenario(
    name="parallel_exec_ablation",
    description="Threaded parallel execution vs the serial oracle: the "
    "commit loop with the knob on must decide a byte-identical chain, "
    "threaded roots/receipts must equal serial over mixed seeded blocks, "
    "and a conflict-light workload is wall-clock timed (speedup gate is "
    "hardware-conditional; single-core hosts pass vacuously)",
    run=_run_parallel_exec_ablation,
    seed=1,
    cost_rank=6,
    tags=("vm", "parallel", "ablation"),
))

register_scenario(Scenario(
    name="trace_replay_nasdaq",
    description="Full published NASDAQ envelope (30 240 txs, peak 19 800 "
    "TPS) replayed on a 4-validator message-level deployment: burst "
    "tolerance with every transaction pre-signed and exact",
    run=_run_trace_replay_nasdaq,
    seed=17,
    cost_rank=5,
    tags=("engine", "replay", "workloads"),
))

register_scenario(Scenario(
    name="trace_replay_uber",
    description="Full published Uber envelope (102 240 txs, sustained "
    "~850 TPS) replayed on a 4-validator message-level deployment: "
    "steady-state commit capacity",
    run=_run_trace_replay_uber,
    seed=17,
    cost_rank=7,
    tags=("engine", "replay", "workloads"),
))

register_scenario(Scenario(
    name="trace_replay_fifa",
    description="Full published FIFA envelope (626 940 txs, avg 3 483 "
    "TPS) replayed on a 4-validator message-level deployment: capacity "
    "exhaustion and backlog drain",
    run=_run_trace_replay_fifa,
    seed=17,
    cost_rank=8,
    tags=("engine", "replay", "workloads"),
))

register_scenario(Scenario(
    name="table1_scale_200",
    description="Table I flooding mix on a 200-validator multi-region "
    "committee with one weak (+400 ms) node: every valid transaction "
    "must commit everywhere within the sim-time budget (message-level "
    "engine; the most expensive scenario — CI runs a reduced-n variant)",
    run=_run_table1_scale_200,
    seed=7,
    cost_rank=9,
    tags=("engine", "scale", "faults", "regions"),
))

register_scenario(Scenario(
    name="byzantine_campaign",
    description="Schedule-driven Byzantine campaign on one seat (flooding, "
    "equivocation, vote withholding, all within the f=1 budget), RPM off "
    "vs on at the same seed: slashing must zero the attacker's deposit "
    "within a bounded time, committed-invalid work must collapse, and the "
    "protected arm must out-commit the unprotected one (message-level "
    "engine)",
    run=_run_byzantine_campaign,
    seed=21,
    cost_rank=4,
    tags=("engine", "faults", "rpm", "adversary", "economics"),
))

register_scenario(Scenario(
    name="chaos_soak",
    description="4 validators under a seeded chaos schedule: crash+restart "
    "of one node with snapshot catch-up, 5% link loss behind reliable "
    "delivery, one healing hard partition; every client tx must commit and "
    "all chains converge byte-identically (message-level engine)",
    run=_run_chaos_soak,
    seed=13,
    cost_rank=3,
    tags=("engine", "faults", "chaos", "recovery"),
))
