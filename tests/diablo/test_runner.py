"""High-level workload runner."""

import pytest

from repro.diablo.runner import run_dapp_workload


class TestRunner:
    def test_nasdaq_engine_run(self):
        outcome = run_dapp_workload("nasdaq", scale=0.005, clients=8)
        assert outcome.result.commit_rate == 1.0
        assert outcome.safety_holds and outcome.states_agree
        # the exchange contract actually executed trades
        from repro.vm.executor import native_address_for

        state = outcome.deployment.validators[0].blockchain.state
        volumes = [
            state.storage_get(native_address_for("exchange"), f"volume:{sym}", 0)
            for sym in ("AAPL", "AMZN", "FB", "MSFT", "GOOG")
        ]
        assert sum(volumes) > 0

    def test_uber_engine_run(self):
        outcome = run_dapp_workload("uber", scale=0.002, clients=8)
        assert outcome.result.commit_rate == 1.0
        from repro.vm.executor import native_address_for

        state = outcome.deployment.validators[0].blockchain.state
        rides = state.storage_get(native_address_for("mobility"), "next_ride", 0)
        assert rides == outcome.result.committed

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="fifa"):
            run_dapp_workload("minecraft")

    def test_tvpr_toggle(self):
        modern = run_dapp_workload("uber", scale=0.001, clients=4, tvpr=False)
        total_eager = sum(
            v.stats.eager_validations
            for v in modern.deployment.validators
        )
        # every validator validated every tx in modern mode
        assert total_eager == 4 * modern.result.sent
