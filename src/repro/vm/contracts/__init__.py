"""Native (built-in) contracts.

The DApp workloads of the paper (NASDAQ stock exchange, Uber mobility,
FIFA ticketing) execute contract calls; here they are hosted as *native
contracts* — Python classes with explicit gas metering that read and write
:class:`~repro.vm.state.WorldState` storage through the same journaled
interface as bytecode, so rollback semantics are identical.  System
contracts (committee-reconfiguration deposits, RPM) use the same framework.
"""

from repro.vm.contracts.base import NativeContract, NativeRegistry, native_registry
from repro.vm.contracts.exchange import ExchangeContract
from repro.vm.contracts.mobility import MobilityContract
from repro.vm.contracts.ticketing import TicketingContract

__all__ = [
    "ExchangeContract",
    "MobilityContract",
    "NativeContract",
    "NativeRegistry",
    "TicketingContract",
    "native_registry",
]
