"""Crash–recovery: volatile/durable split, catch-up, RPM survival."""

from repro import params
from repro.consensus.messages import ConsensusMessage, MsgKind
from repro.core.catchup import CatchupResponse, DecidedJournal
from repro.core.deployment import Deployment, fund_clients
from repro.core.rpm import RPMContract
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology
from repro.vm.executor import native_address_for
from repro.vm.sync import take_snapshot


def make_deployment(*, rpm=False, clients=4, **kwargs):
    keypairs, balances = fund_clients(clients)
    kwargs.setdefault("protocol", params.ProtocolParams(n=4, rpm=rpm))
    deployment = Deployment(
        topology=single_region_topology(4), extra_balances=balances, **kwargs
    )
    return deployment, keypairs


def submit_transfers(deployment, clients, *, count, start=0.1, spacing=0.3):
    txs = []
    for k in range(count):
        client = clients[k % len(clients)]
        tx = make_transfer(
            client, clients[(k + 1) % len(clients)].address, 1,
            nonce=k // len(clients), created_at=0.0,
        )
        txs.append(tx)
        deployment.submit(tx, validator_id=k % 3, at=start + k * spacing)
    return txs


class TestCrashSemantics:
    def test_crash_drops_volatile_state_keeps_durable(self):
        deployment, clients = make_deployment()
        deployment.start()
        submit_transfers(deployment, clients, count=6)
        deployment.run_until(4.0)
        node = deployment.validators[3]
        height_before = node.blockchain.height
        journal_before = len(node.journal)
        assert height_before > 0 and journal_before > 0

        # park something in the pool so the crash has volatile state to drop
        late = make_transfer(clients[0], clients[1].address, 1, nonce=2)
        assert node.submit_transaction(late)
        assert len(node.pool) > 0

        deployment.crash(3)
        assert node.crashed
        # volatile: gone
        assert len(node.pool) == 0
        assert not node._consensus and not node._pending_superblocks
        # durable: intact
        assert node.blockchain.height == height_before
        assert len(node.journal) == journal_before

    def test_crashed_node_refuses_work(self):
        deployment, clients = make_deployment()
        deployment.start()
        deployment.run_until(1.0)
        deployment.crash(3)
        node = deployment.validators[3]
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        assert not node.submit_transaction(tx)
        assert len(node.pool) == 0

    def test_crashed_node_schedules_nothing(self):
        deployment, _ = make_deployment()
        deployment.start()
        deployment.run_until(2.0)
        deployment.crash(3)
        node = deployment.validators[3]
        height = node.blockchain.height
        deployment.run_until(10.0)
        # the pre-crash incarnation's timers were neutralized: no commits
        assert node.blockchain.height == height
        assert node.crashed


class TestRecovery:
    def test_restart_catches_up_to_identical_chain(self):
        deployment, clients = make_deployment()
        deployment.start()
        txs = submit_transfers(deployment, clients, count=12)
        deployment.sim.schedule_at(3.0, deployment.crash, 3)
        deployment.sim.schedule_at(8.0, deployment.restart, 3)
        deployment.run_until(25.0)

        node = deployment.validators[3]
        assert not node.crashed and not node._recovering
        hashes = {tuple(v.blockchain.block_hashes()) for v in deployment.validators}
        roots = {v.blockchain.state.state_root() for v in deployment.validators}
        assert len(hashes) == 1, "restarted chain must match peers byte-for-byte"
        assert len(roots) == 1
        assert deployment.safety_holds()
        for tx in txs:
            assert deployment.committed_everywhere(tx)

    def test_restarted_node_resumes_proposing(self):
        deployment, clients = make_deployment()
        deployment.start()
        deployment.sim.schedule_at(2.0, deployment.crash, 3)
        deployment.sim.schedule_at(5.0, deployment.restart, 3)
        deployment.run_until(12.0)
        node = deployment.validators[3]
        frontier = node._next_commit_index
        deployment.run_until(20.0)
        assert node._next_commit_index > frontier  # still committing
        assert node._next_propose_index >= frontier

    def test_rpm_deposit_and_nonce_survive_restart(self):
        deployment, clients = make_deployment(rpm=True)
        deployment.start()
        submit_transfers(deployment, clients, count=10)
        deployment.sim.schedule_at(3.0, deployment.crash, 3)
        deployment.sim.schedule_at(8.0, deployment.restart, 3)
        deployment.run_until(30.0)

        node = deployment.validators[3]
        assert not node._recovering
        rpm_addr = native_address_for(RPMContract.name)
        state = node.blockchain.state
        # the deposit is contract storage: durable, restored by replay
        # (rewards may have accrued on top — it must not be slashed/lost)
        deposit = state.storage_get(rpm_addr, f"deposit:{node.address}")
        assert deposit >= deployment.protocol.validator_deposit
        # attestation nonces continue from the committed state nonce
        # rather than colliding with (or skipping past) pre-crash ones
        assert node.journal.rpm_nonce is not None
        committed_nonce = state.nonce_of(node.address)
        assert committed_nonce > 0
        assert node._rpm_nonce is None or node._rpm_nonce >= committed_nonce
        assert deployment.states_agree()


class TestCatchupHardening:
    def _recovering_node(self, deployment):
        deployment.crash(3)
        deployment.restart(3)
        node = deployment.validators[3]
        assert node._recovering
        return node

    def test_tampered_snapshot_rejected(self):
        deployment, clients = make_deployment()
        deployment.start()
        submit_transfers(deployment, clients, count=6)
        deployment.run_until(5.0)
        node = self._recovering_node(deployment)
        peer = deployment.validators[0]

        snapshot = take_snapshot(peer.blockchain.state)
        tampered = type(snapshot)(
            accounts=tuple(
                (a, b + 10**6, n, c, nat) for a, b, n, c, nat in snapshot.accounts
            ),
            storage=snapshot.storage,
            root=snapshot.root,
        )
        resp = CatchupResponse(
            superblocks=peer.journal.range(
                node._next_commit_index, peer._next_commit_index
            ),
            snapshot=tampered,
            state_root=snapshot.root,
            next_index=peer._next_commit_index,
            responder=0,
        )
        height_before = node.blockchain.height
        node._absorb_catchup(resp)
        # rejected wholesale: nothing applied, still recovering
        assert node._recovering
        assert node.blockchain.height == height_before

    def test_genuine_response_finishes_recovery(self):
        deployment, clients = make_deployment()
        deployment.start()
        submit_transfers(deployment, clients, count=6)
        deployment.run_until(5.0)
        node = self._recovering_node(deployment)
        peer = deployment.validators[0]

        resp = CatchupResponse(
            superblocks=peer.journal.range(
                node._next_commit_index, peer._next_commit_index
            ),
            snapshot=take_snapshot(peer.blockchain.state),
            state_root=peer.blockchain.state.state_root(),
            next_index=peer._next_commit_index,
            responder=0,
        )
        node._absorb_catchup(resp)
        assert not node._recovering
        assert node.blockchain.state.state_root() == resp.state_root
        assert list(node.blockchain.block_hashes()) == list(
            peer.blockchain.block_hashes()
        )

    def test_consensus_traffic_buffered_while_recovering(self):
        deployment, clients = make_deployment()
        deployment.start()
        submit_transfers(deployment, clients, count=6)
        deployment.run_until(5.0)
        node = self._recovering_node(deployment)
        floor = node._catchup_floor

        stale = ConsensusMessage(
            kind=MsgKind.BVAL, index=floor - 1, instance=0, round=0, value=1, sender=0
        )
        fresh = ConsensusMessage(
            kind=MsgKind.BVAL, index=floor + 1, instance=0, round=0, value=1, sender=0
        )
        assert not node._admit_consensus(stale, 0, record=True)
        assert not node._admit_consensus(fresh, 0, record=True)
        # pre-floor traffic is covered by the journal replay and dropped;
        # at/past the frontier it is buffered for post-recovery replay
        assert [m.index for m, _, _ in node._catchup_buffer] == [floor + 1]
        assert not node._consensus  # nothing opened mid-recovery


class TestDecidedJournal:
    def test_record_and_range(self):
        class FakeSB:
            def __init__(self, index):
                self.index = index

        journal = DecidedJournal()
        for i in (1, 2, 3):
            journal.record(FakeSB(i))
        assert len(journal) == 3
        assert journal.highest == 3
        assert 2 in journal and 7 not in journal
        assert [sb.index for sb in journal.range(2, 4)] == [2, 3]
        assert journal.range(5, 9) == ()
