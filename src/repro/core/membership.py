"""Membership and committee reconfiguration (§IV-E).

Candidate validators deposit tokens into a reconfiguration contract; every
epoch a committee of ``n`` validators is drawn uniformly at random from the
candidates and rotated, so a *slowly-adaptive* adversary — one that can
only corrupt between epochs, and at most ``f < n/3`` members at a time —
never controls a third of a sitting committee.  Deposits are recoverable
after a lock period (PoS-style), keeping Sybil costs real without inflating
transaction fees forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import params
from repro.errors import MembershipError


@dataclass
class Candidate:
    address: str
    deposit: int
    joined_epoch: int
    #: epoch at which a withdrawal unlocks (None = not withdrawing)
    unlock_epoch: int | None = None


@dataclass
class Committee:
    """One epoch's validator committee."""

    epoch: int
    members: tuple[str, ...]

    def __contains__(self, address: str) -> bool:
        return address in self.members

    @property
    def n(self) -> int:
        return len(self.members)


class MembershipRegistry:
    """The committee-reconfiguration contract's logic.

    Selection is deterministic given (seed, epoch) so every validator
    derives the same committee locally — the randomness beacon is modelled
    as a shared seed (in production it would come from the chain itself).
    """

    def __init__(
        self,
        *,
        committee_size: int = 4,
        min_deposit: int = params.VALIDATOR_DEPOSIT,
        lock_epochs: int = 2,
        seed: int = 42,
    ):
        self.committee_size = committee_size
        self.min_deposit = min_deposit
        self.lock_epochs = lock_epochs
        self.seed = seed
        self.candidates: dict[str, Candidate] = {}
        self.current_epoch = 0
        self._committees: dict[int, Committee] = {}
        #: addresses excluded after RPM slashing events
        self.excluded: set[str] = set()

    # -- candidacy ---------------------------------------------------------------

    def register(self, address: str, deposit: int, *, epoch: int | None = None) -> None:
        """Deposit tokens to become a candidate validator."""
        if deposit < self.min_deposit:
            raise MembershipError(
                f"deposit {deposit} below minimum {self.min_deposit}"
            )
        if address in self.candidates:
            raise MembershipError(f"{address} is already a candidate")
        self.candidates[address] = Candidate(
            address=address,
            deposit=deposit,
            joined_epoch=self.current_epoch if epoch is None else epoch,
        )

    def request_withdrawal(self, address: str) -> int:
        """Begin deposit recovery; returns the unlock epoch."""
        candidate = self._get(address)
        candidate.unlock_epoch = self.current_epoch + self.lock_epochs
        return candidate.unlock_epoch

    def withdraw(self, address: str) -> int:
        """Complete a withdrawal after the lock period; returns the deposit."""
        candidate = self._get(address)
        if candidate.unlock_epoch is None:
            raise MembershipError(f"{address} has no pending withdrawal")
        if self.current_epoch < candidate.unlock_epoch:
            raise MembershipError(
                f"deposit locked until epoch {candidate.unlock_epoch} "
                f"(now {self.current_epoch})"
            )
        del self.candidates[address]
        return candidate.deposit

    def slash(self, address: str) -> int:
        """Remove a candidate after an RPM slashing event; deposit is gone."""
        candidate = self.candidates.pop(address, None)
        self.excluded.add(address)
        return candidate.deposit if candidate else 0

    def apply_rpm_events(self, events) -> list[str]:
        """Consume the RPM contract's ``events`` tuple (ByzantineEvent
        records, Alg. 2 line 42) and slash every newly named address, so
        committee draws for future epochs skip excluded validators."""
        slashed = []
        for event in events:
            if event.address not in self.excluded:
                self.slash(event.address)
                slashed.append(event.address)
        return slashed

    def _get(self, address: str) -> Candidate:
        try:
            return self.candidates[address]
        except KeyError:
            raise MembershipError(f"{address} is not a candidate") from None

    # -- committee selection ----------------------------------------------------------

    def eligible(self) -> list[str]:
        """Candidates that may be drawn: funded, not withdrawing, not excluded."""
        return sorted(
            address
            for address, c in self.candidates.items()
            if c.unlock_epoch is None and address not in self.excluded
        )

    def committee_for(self, epoch: int) -> Committee:
        """Deterministic random committee for ``epoch`` (cached)."""
        if epoch in self._committees:
            return self._committees[epoch]
        pool = self.eligible()
        if len(pool) < self.committee_size:
            raise MembershipError(
                f"{len(pool)} eligible candidates < committee size "
                f"{self.committee_size}"
            )
        rng = np.random.default_rng(hash((self.seed, epoch)) % (2**32))
        members = tuple(
            sorted(rng.choice(pool, size=self.committee_size, replace=False))
        )
        committee = Committee(epoch=epoch, members=members)
        self._committees[epoch] = committee
        return committee

    def advance_epoch(self) -> Committee:
        """Rotate to the next epoch's committee."""
        self.current_epoch += 1
        return self.committee_for(self.current_epoch)


@dataclass
class SlowlyAdaptiveAdversary:
    """§IV-A adversary: bribes progressively, only between epochs, with
    **at most f validators corrupted at any time** (the paper's model,
    after [RapidChain]).  ``corrupt`` adds up to ``budget_per_epoch`` new
    targets per epoch; once the global budget ``f`` is reached an old
    corruption must be ``release``d (the bribe lapses) before a new target
    can be taken — which is what makes the adversary *slowly* adaptive:
    it cannot chase a freshly drawn committee within the epoch.
    """

    f: int
    budget_per_epoch: int = 1
    corrupted: set[str] = field(default_factory=set)
    _last_epoch: int = -1

    def corrupt(self, committee: Committee, targets: list[str]) -> list[str]:
        """Attempt corruption for the epoch; returns who was corrupted."""
        if committee.epoch == self._last_epoch:
            return []  # only between epochs
        self._last_epoch = committee.epoch
        newly = []
        for address in targets[: self.budget_per_epoch]:
            if address in self.corrupted:
                continue
            if len(self.corrupted) >= self.f:
                break  # global budget: ≤ f corrupted at any time
            self.corrupted.add(address)
            newly.append(address)
        return newly

    def release(self, address: str) -> None:
        """Drop a corruption (frees budget for a new target next epoch)."""
        self.corrupted.discard(address)

    def corrupted_in(self, committee: Committee) -> int:
        return sum(1 for m in committee.members if m in self.corrupted)
