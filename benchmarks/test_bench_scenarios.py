"""Bench-scenario suite — every registered scenario, end to end.

Two properties the regression gate (``repro metrics-diff``) depends on,
checked for *all* scenarios including the expensive message-level ones:

* determinism — running a scenario twice yields the identical headline
  stats dict (seeded RNGs, sim-time-only stats);
* artifact validity — the emitted ``BENCH_<name>.json`` passes the
  ``repro.bench/v1`` structural schema.

The cheap tick-engine scenarios are additionally covered in tier-1
(``tests/bench/test_scenarios.py``); this suite is the exhaustive pass.
"""

import pytest

from repro.bench import (
    BenchArtifact,
    artifact_filename,
    get_scenario,
    is_wall_clock_key,
    run_scenario,
    scenario_names,
    validate_artifact,
)


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_deterministic_and_artifact_valid(
    name, benchmark, run_once, tmp_path
):
    first = run_once(benchmark, run_scenario, name)
    second = run_scenario(name)

    print()
    print(f"{name}: {get_scenario(name).description}")
    for key in sorted(first.headline):
        print(f"  {key:<40} {first.headline[key]:>14.4f}")

    # same seed -> identical headline stats (what baselines rely on);
    # wall-clock-derived keys (engine_scaling's point) are exempt
    def deterministic(headline):
        return {
            k: v for k, v in headline.items()
            if not is_wall_clock_key(f"headline:{k}")
        }

    assert deterministic(first.headline) == deterministic(second.headline)
    # headline stats carry simulated-time evidence, never wall clock
    # (except the wall-clock-marked keys filtered above)
    assert first.headline, "scenario produced no headline stats"
    assert all(isinstance(v, (int, float)) for v in first.headline.values())

    path = tmp_path / artifact_filename(name)
    first.save(str(path))
    assert validate_artifact(BenchArtifact.load(str(path)).to_dict()) == []
