"""Reward design and the block-proposal game (§IV-F).

Implements the paper's payoff algebra —

* ``I = r_b + Σ Txfees``  (incentive)
* ``C = |T| · c``         (eager-validation cost for the block)
* ``R = I − C − P``       (cumulative reward; ``P`` is the slash amount)

— and the game ``G = (V, S, U)`` per consensus round, where each validator
picks the CORRECT strategy (eagerly validate everything, propose only valid
transactions) or a BYZANTINE strategy (skip eager validation, include
invalid transactions to save cost ``C' < C``).  :func:`best_response`
evaluates the payoffs and shows the correct strategy dominates whenever
RPM's slashing is active — the computational counterpart of Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro import params


class Strategy(Enum):
    CORRECT = "correct"
    BYZANTINE = "byzantine"


@dataclass(frozen=True)
class RewardDesign:
    """Constants of the reward equations."""

    block_reward: int = params.BLOCK_REWARD  # r_b
    validation_cost: float = params.EAGER_VALIDATION_COST  # c

    def incentive(self, tx_fees: float) -> float:
        """``I = r_b + Σ Txfees``."""
        return self.block_reward + tx_fees

    def validation_cost_for(self, tx_count: int) -> float:
        """``C = |T| · c``."""
        return tx_count * self.validation_cost

    def reward(self, tx_count: int, tx_fees: float, penalty: float = 0.0) -> float:
        """``R = I − C − P``."""
        return self.incentive(tx_fees) - self.validation_cost_for(tx_count) - penalty


@dataclass(frozen=True)
class PayoffOutcome:
    """Per-strategy payoff for one round of the block-proposal game."""

    strategy: Strategy
    payoff: float
    deposit_after: float
    slashed: bool


def correct_payoff(
    design: RewardDesign, tx_count: int, tx_fees: float, deposit: float
) -> PayoffOutcome:
    """Reward of the correct strategy: validate all, never slashed."""
    r = design.reward(tx_count, tx_fees)
    return PayoffOutcome(Strategy.CORRECT, r, deposit + r, slashed=False)


def byzantine_payoff(
    design: RewardDesign,
    tx_count: int,
    tx_fees: float,
    deposit: float,
    *,
    skipped_validations: int,
    reported: bool = True,
) -> PayoffOutcome:
    """Reward of a Byzantine proposer that skipped eager validation.

    The proposer saves ``skipped_validations · c`` (so pays ``C' < C``), but
    once n−f validators report an invalid transaction, the slash takes the
    *entire* current deposit ``P = D' = D + I − C'`` (Theorem 1 proof),
    leaving ``D_end = 0``.
    """
    skipped = min(skipped_validations, tx_count)
    c_prime = design.validation_cost_for(tx_count - skipped)
    gain = design.incentive(tx_fees) - c_prime
    deposit_after_reward = deposit + gain
    if not reported:
        return PayoffOutcome(Strategy.BYZANTINE, gain, deposit_after_reward, False)
    penalty = deposit_after_reward  # P = D + I − C'
    return PayoffOutcome(
        Strategy.BYZANTINE,
        gain - penalty,  # = −D  (loses the entire starting deposit)
        deposit_after_reward - penalty,  # = 0
        slashed=True,
    )


def best_response(
    design: RewardDesign,
    tx_count: int,
    tx_fees: float,
    deposit: float,
    *,
    report_probability: float = 1.0,
) -> Strategy:
    """Rational validator's strategy choice given expected reporting.

    With any positive deposit and report probability high enough that the
    expected slash exceeds the validation savings, CORRECT dominates —
    Theorem 1 is the ``report_probability == 1`` case.
    """
    correct = correct_payoff(design, tx_count, tx_fees, deposit).payoff
    caught = byzantine_payoff(
        design, tx_count, tx_fees, deposit,
        skipped_validations=tx_count, reported=True,
    ).payoff
    free = byzantine_payoff(
        design, tx_count, tx_fees, deposit,
        skipped_validations=tx_count, reported=False,
    ).payoff
    expected_byz = report_probability * caught + (1 - report_probability) * free
    return Strategy.CORRECT if correct >= expected_byz else Strategy.BYZANTINE


def theorem1_holds(
    design: RewardDesign, tx_count: int, tx_fees: float, deposit: float
) -> bool:
    """Theorem 1: a reported Byzantine proposer's reward is negative
    (it loses its whole starting deposit) whenever the deposit is positive."""
    outcome = byzantine_payoff(
        design, tx_count, tx_fees, deposit,
        skipped_validations=tx_count, reported=True,
    )
    return outcome.payoff < 0 and outcome.deposit_after == 0 if deposit > 0 else True


# -- deposit dynamics over live runs ---------------------------------------------------
#
# The algebra above is the single-round game; campaigns need the ledger
# view — per-epoch deposit trajectories of every committee seat while the
# RPM contract pays rewards and slashes, in the style of the
# ethereum-economic-model reward/penalty policies: sample state on a
# cadence, then summarize attacker payoff, honest yield and
# time-to-exclusion as headline stats.


@dataclass(frozen=True)
class DepositSample:
    """One ledger row: every validator's deposit at a sampling instant."""

    t: float
    height: int
    deposits: "tuple[tuple[str, int], ...]"  # (address, deposit), sorted
    excluded: "tuple[str, ...]"
    slash_events: int

    def deposit_of(self, address: str) -> int:
        for addr, deposit in self.deposits:
            if addr == address:
                return deposit
        return 0


class DepositLedger:
    """Samples the RPM contract's deposit book off one observer node.

    Drive :meth:`sample` on a deterministic cadence during a run (the
    ``byzantine_campaign`` scenario uses a 0.5 s grid), then ask
    :meth:`stats` for the validator-economics headline: attacker net
    payoff (final − initial deposit), honest-validator yield, and
    time-to-exclusion of each attacker address.
    """

    def __init__(self, addresses: "tuple[str, ...]"):
        self.addresses = tuple(addresses)
        self.samples: list[DepositSample] = []

    def sample(self, node) -> DepositSample:
        """Read deposits/exclusions from ``node``'s executed state."""
        from repro.core.rpm import RPMContract
        from repro.vm.executor import native_address_for

        rpm_addr = native_address_for(RPMContract.name)
        state = node.blockchain.state
        row = DepositSample(
            t=node.sim.now,
            height=node.blockchain.height,
            deposits=tuple(
                (address, int(state.storage_get(rpm_addr, f"deposit:{address}", 0)))
                for address in self.addresses
            ),
            excluded=tuple(state.storage_get(rpm_addr, "excluded", ())),
            slash_events=len(state.storage_get(rpm_addr, "events", ())),
        )
        self.samples.append(row)
        return row

    def time_to_exclusion(self, address: str) -> "float | None":
        """First sampling instant at which ``address`` was excluded."""
        for row in self.samples:
            if address in row.excluded:
                return row.t
        return None

    def stats(self, *, attacker: "str | None" = None) -> dict:
        """Headline validator-economics stats over the sampled window."""
        if not self.samples:
            raise ValueError("no samples recorded")
        first, last = self.samples[0], self.samples[-1]
        honest = [a for a in self.addresses if a != attacker]
        honest_yields = [
            (last.deposit_of(a) - first.deposit_of(a)) / first.deposit_of(a)
            for a in honest
            if first.deposit_of(a) > 0
        ]
        out = {
            "honest_yield": (
                sum(honest_yields) / len(honest_yields) if honest_yields else 0.0
            ),
            "slash_events": last.slash_events,
            "excluded_count": len(last.excluded),
        }
        if attacker is not None:
            tte = self.time_to_exclusion(attacker)
            out.update(
                attacker_initial_deposit=first.deposit_of(attacker),
                attacker_final_deposit=last.deposit_of(attacker),
                attacker_net_payoff=(
                    last.deposit_of(attacker) - first.deposit_of(attacker)
                ),
                attacker_excluded=1.0 if attacker in last.excluded else 0.0,
                time_to_exclusion_s=tte if tte is not None else float("inf"),
            )
        return out
