"""NASDAQ workload: stock-trade executions on the exchange DApp.

Envelope (§V): 3 minutes, average 168 TPS, peak 19 800 TPS — a quiet
baseline with one enormous opening-auction burst plus a few secondary
spikes, which is what makes NASDAQ the burst-tolerance test: the average
is tiny but the one-second peak exceeds every chain's admission capacity.
"""

from __future__ import annotations

import numpy as np

from repro import params
from repro.core.transaction import Transaction, make_invoke
from repro.crypto.keys import generate_keypair
from repro.vm.contracts.exchange import SYMBOLS, ExchangeContract
from repro.vm.executor import native_address_for
from repro.workloads.trace import RequestFactory, Trace, shape_to_envelope

ENVELOPE = params.NASDAQ_ENVELOPE


def nasdaq_trace(*, seed: int = 101) -> Trace:
    """Synthetic NASDAQ trace matched to (180 s, avg 168, peak 19 800)."""
    rng = np.random.default_rng(seed)
    duration = int(ENVELOPE.duration_s)
    shape = rng.gamma(2.0, 1.0, size=duration)  # quiet trading hum
    shape[0] = 400.0  # opening auction burst dominates everything
    shape[45] = 18.0  # secondary spikes (block trades)
    shape[110] = 12.0
    return shape_to_envelope(
        shape,
        avg_tps=ENVELOPE.avg_tps,
        peak_tps=ENVELOPE.peak_tps,
        name=ENVELOPE.name,
    )


def nasdaq_request_factory(
    *, clients: int = 64, seed: int = 102, gas_price: int = 1
) -> RequestFactory:
    """Factory producing exchange ``trade`` invocations.

    Clients are synthetic funded accounts; per-client nonces advance in
    submission order (DIABLO pre-signs everything up front the same way).
    """
    rng = np.random.default_rng(seed)
    keypairs = [generate_keypair(seed * 10_000 + i) for i in range(clients)]
    nonces = [0] * clients
    contract = native_address_for(ExchangeContract.name)

    def build(i: int, send_time: float) -> Transaction:
        c = i % clients
        nonce = nonces[c]
        nonces[c] += 1
        symbol = SYMBOLS[int(rng.integers(len(SYMBOLS)))]
        price = int(rng.integers(90_00, 310_00))
        qty = int(rng.integers(1, 500))
        side = "buy" if rng.random() < 0.5 else "sell"
        return make_invoke(
            keypairs[c],
            contract,
            "trade",
            (symbol, price, qty, side),
            nonce,
            gas_limit=120_000,
            gas_price=gas_price,
            created_at=send_time,
        )

    build.keypairs = keypairs  # type: ignore[attr-defined]
    # Deterministic from these inputs alone → pre-signed schedules built
    # from a fresh factory with this key are cacheable (diablo.client).
    build.cache_key = ("nasdaq", clients, seed, gas_price)  # type: ignore[attr-defined]
    return build
