"""Exporters: Prometheus text exposition and JSON snapshots.

``to_prometheus`` renders a registry in the text format a Prometheus
scrape (or ``promtool``) accepts: ``# HELP``/``# TYPE`` headers, labeled
samples, histograms as cumulative ``_bucket{le=...}`` plus ``_sum`` and
``_count``.  ``parse_prometheus`` is the minimal inverse — enough for
round-trip tests and the CI smoke check, not a full scraper.
"""

from __future__ import annotations

import json
import math
import re

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "to_prometheus",
    "to_json",
    "parse_prometheus",
    "write_metrics",
]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_LABEL_NAME_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_LABEL_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize_label_name(name) -> str:
    """Coerce a label *name* into Prometheus's ``[a-zA-Z_][a-zA-Z0-9_]*``.

    Label values are escaped, but names cannot be — exposition offers no
    quoting for them — so anything invalid is mapped onto the legal
    charset instead of emitting a dump no scraper can parse.
    """
    name = str(name)
    if _LABEL_NAME_OK.match(name):
        return name
    name = _LABEL_NAME_BAD_CHARS.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _fmt_labels(labels: dict, extra: "dict | None" = None) -> str:
    merged: dict = {}
    for source in (labels, extra or {}):
        for key, value in source.items():
            key = _sanitize_label_name(key)
            if key in merged:
                raise ValueError(
                    f"duplicate label name {key!r} after merge/sanitization"
                )
            merged[key] = value
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _scalar_lines(metric, lines: "list[str]") -> None:
    targets = [metric] if (not metric._children or metric.value) else []
    targets.extend(metric.children)
    for target in targets:
        lines.append(
            f"{metric.name}{_fmt_labels(target._labels)} {_fmt_value(target.value)}"
        )


def _histogram_lines(metric: Histogram, lines: "list[str]") -> None:
    targets = metric.children if metric._children else [metric]
    if metric._children and metric.count:
        targets = [metric] + list(targets)
    for target in targets:
        for bound, cumulative in target.cumulative_buckets():
            le = "+Inf" if bound == math.inf else _fmt_value(bound)
            lines.append(
                f"{metric.name}_bucket"
                f"{_fmt_labels(target._labels, {'le': le})} {_fmt_value(cumulative)}"
            )
        lines.append(
            f"{metric.name}_sum{_fmt_labels(target._labels)} {_fmt_value(target.sum)}"
        )
        lines.append(
            f"{metric.name}_count{_fmt_labels(target._labels)} {_fmt_value(target.count)}"
        )


def to_prometheus(registry: "MetricsRegistry | None" = None) -> str:
    """Render the registry in Prometheus text exposition format."""
    registry = registry or get_registry()
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            _histogram_lines(metric, lines)
        else:
            _scalar_lines(metric, lines)
    return "\n".join(lines) + ("\n" if lines else "")


def _scalar_json(target) -> dict:
    return {"labels": dict(target._labels), "value": target.value}


def _histogram_json(target: Histogram) -> dict:
    out = {
        "labels": dict(target._labels),
        "count": target.count,
        "sum": target.sum,
        "min": None if target.min == math.inf else target.min,
        "max": None if target.max == -math.inf else target.max,
        "mean": target.mean,
        "p50": target.percentile(50),
        "p90": target.percentile(90),
        "p99": target.percentile(99),
        "buckets": [
            {"le": "+Inf" if b == math.inf else b, "count": c}
            for b, c in target.cumulative_buckets()
        ],
    }
    if target.exemplars:
        out["exemplars"] = list(target.exemplars)
    return out


def to_json(registry: "MetricsRegistry | None" = None) -> dict:
    """Snapshot the registry as plain JSON-serializable data."""
    registry = registry or get_registry()
    out: dict = {}
    for metric in registry.collect():
        if isinstance(metric, Histogram):
            render, include_parent = _histogram_json, metric.count > 0
        else:
            render, include_parent = _scalar_json, bool(metric.value) or not metric._children
        samples = []
        if not metric._children or include_parent:
            samples.append(render(metric))
        samples.extend(render(child) for child in metric.children)
        out[metric.name] = {
            "type": metric.kind,
            "help": metric.help,
            "samples": samples,
        }
    return out


def parse_prometheus(text: str) -> "dict[tuple[str, tuple], float]":
    """Parse exposition text into ``{(name, ((label, value), ...)): value}``.

    Minimal by design: supports the subset :func:`to_prometheus` emits.
    Raises ``ValueError`` on a malformed sample line (the CI smoke check).
    """
    samples: dict[tuple[str, tuple], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value_str = line.rpartition(" ")
        if not head:
            raise ValueError(f"malformed sample line: {raw!r}")
        if "{" in head:
            name, _, label_blob = head.partition("{")
            if not label_blob.endswith("}"):
                raise ValueError(f"malformed labels: {raw!r}")
            labels = []
            blob = label_blob[:-1]
            while blob:
                key, sep, rest = blob.partition('="')
                if not sep:
                    raise ValueError(f"malformed labels: {raw!r}")
                # scan to the closing quote, honoring backslash escapes
                chars: list[str] = []
                i = 0
                while i < len(rest):
                    ch = rest[i]
                    if ch == "\\" and i + 1 < len(rest):
                        chars.append({"n": "\n"}.get(rest[i + 1], rest[i + 1]))
                        i += 2
                        continue
                    if ch == '"':
                        break
                    chars.append(ch)
                    i += 1
                else:
                    raise ValueError(f"malformed labels: {raw!r}")
                labels.append((key, "".join(chars)))
                blob = rest[i + 1 :].lstrip(",")
            label_key = tuple(sorted(labels))
        else:
            name, label_key = head, ()
        value = math.inf if value_str == "+Inf" else float(value_str)
        samples[(name, label_key)] = value
    return samples


def write_metrics(path: str, registry: "MetricsRegistry | None" = None) -> None:
    """Dump the registry to ``path`` — JSON if it ends in ``.json``,
    Prometheus text otherwise."""
    registry = registry or get_registry()
    with open(path, "w") as fh:
        if str(path).endswith(".json"):
            json.dump(to_json(registry), fh, indent=2, default=str)
            fh.write("\n")
        else:
            fh.write(to_prometheus(registry))
