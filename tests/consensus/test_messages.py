"""Wire-size accounting for consensus messages and vote batches.

Regression focus: ``ConsensusMessage.approx_size`` used to charge a flat
64-byte fallback for list/tuple payloads, so the RBC ECHO/READY traffic —
whose payload is a ``(digest, Block)`` tuple carrying the whole proposal —
was undercounted by orders of magnitude in the bandwidth evidence.
"""

import pytest

from repro.consensus.messages import (
    BASE_MESSAGE_BYTES,
    ConsensusBatch,
    ConsensusMessage,
    MsgKind,
)


class _Sized:
    """Payload stub mimicking Block/Transaction's encoded_size()."""

    def __init__(self, size):
        self._size = size

    def encoded_size(self):
        return self._size


def _msg(kind=MsgKind.BVAL, value=1, sender=0, index=1, instance=0, round=1):
    return ConsensusMessage(
        kind=kind, index=index, instance=instance,
        round=round, value=value, sender=sender,
    )


class TestApproxSize:
    def test_int_payload(self):
        assert _msg(value=1).approx_size() == BASE_MESSAGE_BYTES + 1

    def test_none_payload(self):
        assert _msg(value=None).approx_size() == BASE_MESSAGE_BYTES

    def test_bytes_payload(self):
        digest = b"\x07" * 32
        assert _msg(value=digest).approx_size() == BASE_MESSAGE_BYTES + 32

    def test_encoded_size_object(self):
        block = _Sized(5_000)
        msg = _msg(kind=MsgKind.RBC_SEND, value=block)
        assert msg.approx_size() == BASE_MESSAGE_BYTES + 5_000

    def test_tuple_payload_sums_elements(self):
        """The RBC ECHO/READY shape: (digest, payload) must cost digest +
        payload, not the old flat 64-byte unknown-payload fallback."""
        digest, block = b"\x07" * 32, _Sized(5_000)
        msg = _msg(kind=MsgKind.RBC_ECHO, value=(digest, block))
        assert msg.approx_size() == BASE_MESSAGE_BYTES + 32 + 5_000

    def test_tuple_with_none_element(self):
        # READY relayed without the payload: (digest, None)
        msg = _msg(kind=MsgKind.RBC_READY, value=(b"\x07" * 32, None))
        assert msg.approx_size() == BASE_MESSAGE_BYTES + 32

    def test_nested_containers(self):
        msg = _msg(value=[(b"ab", b"cd"), b"ef"])
        assert msg.approx_size() == BASE_MESSAGE_BYTES + 6

    def test_unknown_payload_falls_back_to_envelope(self):
        assert _msg(value=object()).approx_size() == 2 * BASE_MESSAGE_BYTES


class TestConsensusBatch:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConsensusBatch(messages=(), sender=0)

    def test_len_and_iter(self):
        msgs = tuple(_msg(value=v) for v in (0, 1, 1))
        batch = ConsensusBatch(messages=msgs, sender=2)
        assert len(batch) == 3
        assert tuple(batch) == msgs

    def test_size_is_header_plus_compact_records(self):
        msgs = tuple(_msg(value=1) for _ in range(4))
        batch = ConsensusBatch(messages=msgs, sender=0)
        expected = ConsensusBatch.HEADER_BYTES + 4 * (
            ConsensusBatch.PER_MESSAGE_BYTES + 1
        )
        assert batch.approx_size() == expected

    def test_batch_beats_standalone_for_vote_traffic(self):
        msgs = tuple(_msg(value=1, instance=i) for i in range(8))
        batch = ConsensusBatch(messages=msgs, sender=0)
        assert batch.approx_size() < batch.standalone_size()
        assert batch.bytes_saved() == (
            batch.standalone_size() - batch.approx_size()
        )

    def test_bytes_saved_never_negative(self):
        # One huge payload: the batch header could exceed the saving.
        msgs = (_msg(kind=MsgKind.RBC_ECHO, value=(b"\x07" * 32, _Sized(10))),)
        batch = ConsensusBatch(messages=msgs, sender=0)
        assert batch.bytes_saved() >= 0

    def test_wrapping_message_reports_batch_size(self):
        msgs = tuple(_msg(value=1) for _ in range(3))
        batch = ConsensusBatch(messages=msgs, sender=1)
        wire = _msg(kind=MsgKind.BATCH, value=batch, sender=1)
        # the batch IS the wire encoding — no extra envelope on top
        assert wire.approx_size() == batch.approx_size()

    def test_payload_bytes_carried_through(self):
        digest, block = b"\x07" * 32, _Sized(2_000)
        msgs = (
            _msg(kind=MsgKind.RBC_ECHO, value=(digest, block)),
            _msg(value=1),
        )
        batch = ConsensusBatch(messages=msgs, sender=0)
        expected = ConsensusBatch.HEADER_BYTES + (
            ConsensusBatch.PER_MESSAGE_BYTES + 32 + 2_000
        ) + (ConsensusBatch.PER_MESSAGE_BYTES + 1)
        assert batch.approx_size() == expected
