"""Smoke-run the fast example scripts as subprocesses.

Keeps the examples' public-API usage honest — if a refactor breaks an
example, the suite catches it.  The slow, full-scale examples
(blockchain_comparison, nasdaq_dapp, flooding_attack) are exercised by
the benchmark suite instead.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "light_client.py",
    "committee_rotation.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "OK" in result.stdout


def test_all_examples_present():
    expected = {
        "quickstart.py", "nasdaq_dapp.py", "flooding_attack.py",
        "censorship_mitigation.py", "committee_rotation.py",
        "blockchain_comparison.py", "light_client.py",
        "epoch_reconfiguration.py", "parallel_execution.py",
        "read_api_and_audit.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}
