"""``repro.bench`` — scenario benchmark harness and regression gating.

Three pieces, mirroring how the paper argues (DIABLO curves, Table I):

* :mod:`repro.bench.scenarios` — a registry of named, deterministic
  canonical runs (TVPR ablation, Table-I dapp mix, saturation sweep,
  weak validator, chaos soak), each a seeded config over the existing engines;
* :mod:`repro.bench.runner` — executes scenarios with telemetry enabled
  and writes schema-versioned ``BENCH_<scenario>.json`` artifacts
  (headline stats + full metrics snapshot + environment fingerprint);
* :mod:`repro.bench.compare` — diffs two artifacts (or raw Prometheus
  dumps) under direction-aware per-metric thresholds and renders a
  terminal table, exiting non-zero on regression so CI can gate on it.

CLI: ``repro bench run|list|compare`` and ``repro metrics-diff``.
"""

from repro.bench.artifact import (
    ARTIFACT_SCHEMA,
    BenchArtifact,
    artifact_filename,
    environment_fingerprint,
    validate_artifact,
)
from repro.bench.compare import (
    DEFAULT_THRESHOLDS,
    WALL_CLOCK_HEADLINE_MARKERS,
    ComparisonResult,
    MetricDelta,
    Threshold,
    compare_files,
    diff_docs,
    flatten_doc,
    is_wall_clock_key,
    render_comparison,
)
from repro.bench.runner import run_scenario, run_scenarios
from repro.bench.scenarios import (
    Scenario,
    cheapest_scenarios,
    get_scenario,
    run_byzantine_campaign,
    run_byzantine_chaos,
    run_chaos_soak,
    run_engine_scaling,
    run_table1_scale,
    run_trace_replay,
    scenario_names,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "BenchArtifact",
    "ComparisonResult",
    "DEFAULT_THRESHOLDS",
    "MetricDelta",
    "Scenario",
    "Threshold",
    "WALL_CLOCK_HEADLINE_MARKERS",
    "artifact_filename",
    "cheapest_scenarios",
    "compare_files",
    "diff_docs",
    "environment_fingerprint",
    "flatten_doc",
    "get_scenario",
    "is_wall_clock_key",
    "render_comparison",
    "run_byzantine_campaign",
    "run_byzantine_chaos",
    "run_chaos_soak",
    "run_engine_scaling",
    "run_scenario",
    "run_scenarios",
    "run_table1_scale",
    "run_trace_replay",
    "scenario_names",
    "validate_artifact",
]
