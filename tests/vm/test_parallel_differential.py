"""Differential test: serial oracle vs threaded parallel backend.

Random mixed TRANSFER/DEPLOY/INVOKE blocks (including invalid
transactions and opaque native calls) must produce identical state
roots, per-position receipts and gas totals under every worker count —
the tentpole determinism guarantee of the parallel executor.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.transaction import make_deploy, make_invoke, make_transfer
from repro.crypto.keys import generate_keypair
from repro.vm.contracts import (
    ExchangeContract,
    MobilityContract,
    TicketingContract,
)
from repro.vm.contracts.base import NativeRegistry
from repro.vm.executor import Executor, install_native
from repro.vm.parallel import execute_parallel
from repro.vm.state import WorldState

KPS = [generate_keypair(7700 + i) for i in range(6)]
COINBASE = "cb" * 20
WORKERS = (1, 2, 8)


def _registry() -> NativeRegistry:
    reg = NativeRegistry()
    reg.register(ExchangeContract())
    reg.register(MobilityContract())
    reg.register(TicketingContract())
    return reg


def _fresh_state() -> WorldState:
    state = WorldState()
    for kp in KPS:
        state.create_account(kp.address, 10**12)
    for name in ("exchange", "mobility", "ticketing"):
        install_native(state, name)
    state.commit()
    return state


def _build_block(seed: int, length: int) -> list:
    """Deterministic mixed block: transfers, deploys, invokes, junk."""
    from repro.vm.executor import native_address_for

    rng = random.Random(seed)
    exchange = native_address_for("exchange")
    mobility = native_address_for("mobility")
    ticketing = native_address_for("ticketing")
    nonces = {kp.address: 0 for kp in KPS}
    txs = []
    for _ in range(length):
        kp = rng.choice(KPS)
        nonce = nonces[kp.address]
        roll = rng.random()
        if roll < 0.30:
            tx = make_transfer(
                kp, rng.choice(KPS).address, rng.randint(1, 50), nonce=nonce
            )
        elif roll < 0.45:
            tx = make_deploy(
                kp, bytes([rng.randint(0, 255)]) * rng.randint(1, 8), nonce=nonce
            )
        elif roll < 0.65:
            tx = make_invoke(
                kp, exchange, "trade",
                (rng.choice(("AAPL", "MSFT", "GOOG")), rng.randint(1, 9),
                 rng.randint(1, 9)),
                nonce=nonce,
            )
        elif roll < 0.75:
            tx = make_invoke(
                kp, ticketing, "open_match",
                (rng.randint(1, 3), rng.randint(10, 20), rng.randint(1, 5)),
                nonce=nonce,
            )
        elif roll < 0.85:
            # opaque native call — forces whole-block serialization points
            tx = make_invoke(
                kp, mobility, "complete_ride", (rng.randint(1, 3),), nonce=nonce
            )
        elif roll < 0.95:
            tx = make_invoke(kp, exchange, "last_price", ("AAPL",), nonce=nonce)
        else:
            # invalid on purpose: future nonce → bad-nonce receipt
            tx = make_transfer(kp, KPS[0].address, 1, nonce=nonce + 50)
            nonces[kp.address] -= 1
        nonces[kp.address] += 1
        txs.append(tx)
    return txs


def _receipt_key(receipt):
    return (
        receipt.tx_hash,
        receipt.success,
        receipt.gas_used,
        receipt.error,
        repr(receipt.return_value),
        receipt.contract_address,
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       length=st.integers(min_value=1, max_value=40))
def test_threads_match_serial_oracle(seed, length):
    txs = _build_block(seed, length)
    registry = _registry()

    oracle_state = _fresh_state()
    oracle = Executor(oracle_state, registry=registry)
    oracle_receipts = [oracle.execute(tx, coinbase=COINBASE) for tx in txs]
    oracle_root = oracle_state.state_root()
    oracle_gas = sum(r.gas_used for r in oracle_receipts)

    for workers in WORKERS:
        state = _fresh_state()
        executor = Executor(state, registry=registry)
        result = execute_parallel(
            executor, txs, workers=workers, coinbase=COINBASE, backend="threads"
        )
        assert state.state_root() == oracle_root, f"root mismatch at w={workers}"
        assert len(result.receipts) == len(txs)
        for position, (want, got) in enumerate(
            zip(oracle_receipts, result.receipts)
        ):
            assert _receipt_key(want) == _receipt_key(got), (
                f"receipt {position} diverged at workers={workers}"
            )
        assert sum(r.gas_used for r in result.receipts) == oracle_gas


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_serial_backend_is_a_faithful_oracle(seed):
    """The ``serial`` backend itself equals plain block-order execution."""
    txs = _build_block(seed, 25)
    registry = _registry()

    plain_state = _fresh_state()
    plain = Executor(plain_state, registry=registry)
    for tx in txs:
        plain.execute(tx, coinbase=COINBASE)

    scheduled_state = _fresh_state()
    scheduled = Executor(scheduled_state, registry=registry)
    execute_parallel(
        scheduled, txs, workers=4, coinbase=COINBASE, backend="serial"
    )
    assert scheduled_state.state_root() == plain_state.state_root()
