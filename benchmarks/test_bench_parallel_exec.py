"""Parallel-execution ablation (DESIGN.md addition).

Quantifies the headroom Definition 1's "non-conflicting" structure
leaves on the table: per-workload conflict depth and the simulated
speedup of a conflict-respecting W-worker executor over the serial one
the reproduction (and the paper's Geth-derived VM) uses.
"""

from repro.vm.parallel import parallel_commit_time_s
from repro.vm.conflicts import analyze_block
from repro.workloads.fifa import fifa_request_factory
from repro.workloads.nasdaq import nasdaq_request_factory
from repro.workloads.uber import uber_request_factory

BATCH = 400
WORKERS = 8
EXEC_RATE = 20_000.0


def test_workload_conflict_headroom(benchmark, run_once):
    def sweep():
        rows = []
        factories = {
            "nasdaq": nasdaq_request_factory(clients=64),
            "uber": uber_request_factory(clients=64),
            "fifa": fifa_request_factory(clients=128),
        }
        for name, factory in factories.items():
            txs = [factory(i, 0.0) for i in range(BATCH)]
            report = analyze_block(txs)
            serial = BATCH / EXEC_RATE
            parallel = parallel_commit_time_s(
                txs, workers=WORKERS, exec_rate=EXEC_RATE
            )
            rows.append((name, report.parallel_depth, report.conflict_count,
                         serial / parallel))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"workload  depth  conflicts  speedup({WORKERS} workers)")
    for name, depth, conflicts, speedup in rows:
        print(f"{name:8s} {depth:6d} {conflicts:10d}  ×{speedup:.2f}")

    by = {name: (depth, conflicts, speedup) for name, depth, conflicts, speedup in rows}
    # NASDAQ (5 shared symbols) and FIFA (16 matches) expose parallelism.
    for name in ("nasdaq", "fifa"):
        depth, _, speedup = by[name]
        assert depth < BATCH, name
        assert speedup > 1.5, name
    # Uber is the honest negative result: every request_ride bumps the
    # contract's global ride counter, so the workload is inherently
    # serial under conflict-respecting execution — a DApp-design lesson
    # the conflict analysis surfaces.
    assert by["uber"][0] == BATCH
    assert abs(by["uber"][2] - 1.0) < 1e-6
