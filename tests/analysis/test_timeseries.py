"""Time-series extraction and sparklines."""

import numpy as np

from repro.analysis.timeseries import (
    DEPTH_METRICS,
    CongestionSeries,
    DepthProfile,
    congestion_series,
    load_metrics_dump,
    queue_depth_profiles,
    sparkline,
)
from repro.sim.chains import SRBB
from repro.workloads import burst_trace, constant_trace


class TestSparkline:
    def test_empty(self):
        assert sparkline(np.zeros(0)) == ""

    def test_flat_zero(self):
        assert sparkline(np.zeros(5)) == "▁▁▁▁▁"

    def test_monotone_shape(self):
        line = sparkline(np.array([0, 1, 2, 3, 4, 5, 6, 7], dtype=float))
        assert line[0] == "▁" and line[-1] == "█"

    def test_resamples_to_width(self):
        line = sparkline(np.arange(1000, dtype=float), width=40)
        assert len(line) == 40


class TestCongestionSeries:
    def test_light_load_series(self):
        result, series = congestion_series(SRBB, constant_trace(100, 20), grace_s=20)
        assert series.commits_per_s.sum() == result.committed
        assert series.congestion_onset_s(threshold=10_000) is None

    def test_burst_creates_pool_spike(self):
        trace = burst_trace(50, 8000, 30, burst_at=5)
        result, series = congestion_series(SRBB, trace, grace_s=60)
        onset = series.congestion_onset_s(threshold=1000.0)
        assert onset is not None
        assert 4 <= onset <= 7  # the burst second
        drain = series.drain_time_s()
        assert drain is not None and drain > onset

    def test_render_contains_both_rows(self):
        _, series = congestion_series(SRBB, constant_trace(50, 10), grace_s=10)
        text = series.render()
        assert "commits/s" in text and "pool" in text
        assert "srbb" in text


class TestDepthProfiles:
    def _sample(self):
        # cumulative bucket counts: 3 ticks <=10, 8 <=100, 10 total
        return {
            "labels": {},
            "count": 10,
            "sum": 400.0,
            "min": 1.0,
            "max": 500.0,
            "mean": 40.0,
            "p50": 30.0,
            "p90": 120.0,
            "p99": 480.0,
            "buckets": [
                {"le": 10, "count": 3},
                {"le": 100, "count": 8},
                {"le": "+Inf", "count": 10},
            ],
        }

    def test_from_sample_decumulates_buckets(self):
        profile = DepthProfile.from_sample("srbb_sim_mempool_depth", self._sample())
        assert profile.bucket_counts.tolist() == [3.0, 5.0, 2.0]
        assert profile.bounds[-1] == np.inf
        assert profile.count == 10 and profile.max_depth == 500.0
        text = profile.render()
        assert "srbb_sim_mempool_depth" in text and "p99 480" in text

    def test_profiles_from_live_sim_dump(self, tmp_path):
        import json

        from repro.sim.engine import simulate_chain
        from repro.telemetry import MetricsRegistry, to_json, use_registry

        with use_registry(MetricsRegistry(enabled=True)) as reg:
            simulate_chain(SRBB, constant_trace(100, 10), grace_s=10)
            dump = to_json(reg)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(dump))
        profiles = queue_depth_profiles(load_metrics_dump(str(path)))
        for name in DEPTH_METRICS:
            assert name in profiles
            assert profiles[name].count > 0

    def test_bench_artifact_unwrapped(self, tmp_path):
        import json

        dump = {"srbb_sim_mempool_depth": {
            "type": "histogram", "help": "", "samples": [self._sample()],
        }}
        artifact = {"schema": "repro.bench/v1", "metrics": dump}
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(artifact))
        profiles = queue_depth_profiles(load_metrics_dump(str(path)))
        assert "srbb_sim_mempool_depth" in profiles

    def test_missing_metrics_skipped(self):
        assert queue_depth_profiles({}) == {}
