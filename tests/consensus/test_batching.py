"""VoteBatcher unit tests: buffering, flush scheduling, ablation path."""

import pytest

from repro.consensus.batching import BATCHABLE_KINDS, VoteBatcher
from repro.consensus.messages import ConsensusBatch, ConsensusMessage, MsgKind
from repro.net.simulator import Simulator


def _vote(kind=MsgKind.BVAL, index=1, instance=0, round=1, value=1, sender=0):
    return ConsensusMessage(
        kind=kind, index=index, instance=instance,
        round=round, value=value, sender=sender,
    )


@pytest.fixture
def sent():
    return []


@pytest.fixture
def batcher(sent):
    return VoteBatcher(node_id=3, sink=sent.append)  # sim=None: manual flush


class TestSubmit:
    def test_batchable_kinds_are_buffered(self, batcher, sent):
        for kind in sorted(BATCHABLE_KINDS, key=lambda k: k.value):
            batcher.submit(_vote(kind=kind))
        assert sent == []
        assert batcher.pending == len(BATCHABLE_KINDS)

    def test_rbc_send_goes_direct(self, batcher, sent):
        msg = _vote(kind=MsgKind.RBC_SEND, value=b"proposal")
        batcher.submit(msg)
        assert sent == [msg]
        assert batcher.pending == 0

    def test_disabled_passes_everything_through(self, sent):
        batcher = VoteBatcher(node_id=0, sink=sent.append, enabled=False)
        msgs = [_vote(), _vote(kind=MsgKind.AUX)]
        for m in msgs:
            batcher.submit(m)
        assert sent == msgs
        assert batcher.pending == 0

    def test_negative_tick_rejected(self, sent):
        with pytest.raises(ValueError):
            VoteBatcher(node_id=0, sink=sent.append, tick=-0.1)


class TestFlush:
    def test_flush_sends_one_batch_in_emission_order(self, batcher, sent):
        votes = [_vote(instance=i, value=i % 2) for i in range(5)]
        for v in votes:
            batcher.submit(v)
        batcher.flush()
        assert len(sent) == 1
        wire = sent[0]
        assert wire.kind is MsgKind.BATCH
        assert wire.sender == 3
        assert isinstance(wire.value, ConsensusBatch)
        assert list(wire.value) == votes  # deterministic emission order
        assert batcher.pending == 0

    def test_empty_flush_is_noop(self, batcher, sent):
        batcher.flush()
        assert sent == []

    def test_counters(self, batcher):
        for i in range(4):
            batcher.submit(_vote(instance=i))
        batcher.flush()
        batcher.submit(_vote())
        batcher.flush()
        assert batcher.batches_sent == 2
        assert batcher.votes_batched == 5
        assert batcher.bytes_saved > 0


class TestScheduling:
    def test_flush_at_next_tick_boundary(self):
        sim = Simulator()
        sent_at = []
        batcher = VoteBatcher(
            node_id=0,
            sink=lambda m: sent_at.append((sim.now, len(m.value))),
            sim=sim,
            tick=0.02,
        )
        sim.schedule(0.005, batcher.submit, _vote(instance=0))
        sim.schedule(0.012, batcher.submit, _vote(instance=1))
        sim.run_until(1.0)
        # both votes coalesced into the single flush at the 0.02 boundary
        assert sent_at == [(0.02, 2)]

    def test_submissions_in_different_ticks_flush_separately(self):
        sim = Simulator()
        sent_at = []
        batcher = VoteBatcher(
            node_id=0,
            sink=lambda m: sent_at.append((round(sim.now, 6), len(m.value))),
            sim=sim,
            tick=0.02,
        )
        sim.schedule(0.005, batcher.submit, _vote(instance=0))
        sim.schedule(0.031, batcher.submit, _vote(instance=1))
        sim.run_until(1.0)
        assert sent_at == [(0.02, 1), (0.04, 1)]

    def test_zero_tick_flushes_end_of_instant(self):
        sim = Simulator()
        sent_at = []
        batcher = VoteBatcher(
            node_id=0,
            sink=lambda m: sent_at.append((sim.now, len(m.value))),
            sim=sim,
            tick=0.0,
        )

        def cascade():
            # two votes emitted within one event still coalesce
            batcher.submit(_vote(instance=0))
            batcher.submit(_vote(instance=1))

        sim.schedule(0.5, cascade)
        sim.run_until(1.0)
        assert sent_at == [(0.5, 2)]

    def test_only_one_flush_scheduled_per_window(self):
        sim = Simulator()
        sent = []
        batcher = VoteBatcher(
            node_id=0, sink=sent.append, sim=sim, tick=0.02
        )
        for i in range(10):
            sim.schedule(0.001 * i, batcher.submit, _vote(instance=i))
        sim.run_until(1.0)
        assert len(sent) == 1
        assert len(sent[0].value) == 10


class TestAdaptiveTick:
    def test_static_by_default(self, sent):
        batcher = VoteBatcher(node_id=0, sink=sent.append, tick=0.1)
        assert batcher.adaptive is False
        for _ in range(3):
            batcher.submit(_vote())
            batcher.flush()
        assert batcher.effective_tick == 0.1  # never adapts when off

    def test_light_load_shrinks_effective_tick(self, sent):
        batcher = VoteBatcher(
            node_id=0, sink=sent.append, tick=0.1, adaptive=True
        )
        assert batcher.effective_tick == 0.1  # no observations yet
        for _ in range(20):  # one vote per flush: minimal coalescing
            batcher.submit(_vote())
            batcher.flush()
        # EWMA converges to 1 vote/flush -> clamped at tick / 8
        assert batcher.effective_tick == pytest.approx(0.1 / 8.0)

    def test_heavy_load_keeps_full_tick(self, sent):
        batcher = VoteBatcher(
            node_id=0, sink=sent.append, tick=0.1, adaptive=True
        )
        for _ in range(5):
            for i in range(32):  # >= LIGHT_LOAD_VOTES per flush
                batcher.submit(_vote(instance=i))
            batcher.flush()
        assert batcher.effective_tick == 0.1

    def test_adaptation_is_deterministic(self):
        ticks = []
        for _ in range(2):
            sent = []
            batcher = VoteBatcher(
                node_id=0, sink=sent.append, tick=0.1, adaptive=True
            )
            trace = []
            for burst in (1, 1, 40, 2, 40, 1, 1, 1):
                for i in range(burst):
                    batcher.submit(_vote(instance=i))
                batcher.flush()
                trace.append(batcher.effective_tick)
            ticks.append(trace)
        assert ticks[0] == ticks[1]

    def test_adaptive_flush_uses_effective_boundary(self):
        sim = Simulator()
        sent_at = []
        batcher = VoteBatcher(
            node_id=0,
            sink=lambda m: sent_at.append(round(sim.now, 6)),
            sim=sim,
            tick=0.08,
            adaptive=True,
        )
        # several single-vote windows drive the EWMA down
        for i in range(12):
            sim.schedule(0.1 * i + 0.001, batcher.submit, _vote(instance=i))
        sim.run_until(2.0)
        assert len(sent_at) == 12
        # once adapted, flushes land on sub-tick boundaries: the gap from
        # enqueue (at 0.1k + 0.001) to flush is below the full 0.08 tick
        last_gap = sent_at[-1] - (0.1 * 11 + 0.001)
        assert last_gap < 0.08
        assert batcher.effective_tick < 0.08
