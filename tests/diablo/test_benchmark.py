"""DIABLO harness: schedules, submitters, metric collection, reports."""

import numpy as np
import pytest

from repro import params
from repro.core.deployment import Deployment, fund_clients
from repro.diablo.benchmark import BenchmarkResult, DiabloBenchmark
from repro.diablo.client import (
    LoadSchedule,
    RoundRobinSubmitter,
    SingleNodeSubmitter,
)
from repro.diablo.report import format_results_table, format_table1
from repro.net.topology import single_region_topology
from repro.workloads import constant_trace
from repro.workloads.synthetic import factory_balances, transfer_request_factory


def quick_deployment(factory, n=4):
    return Deployment(
        protocol=params.ProtocolParams(n=n),
        topology=single_region_topology(n),
        extra_balances=factory_balances(factory),
    )


class TestLoadSchedule:
    def test_from_trace(self):
        factory = transfer_request_factory(clients=4)
        schedule = LoadSchedule.from_trace(constant_trace(5, 3), factory)
        assert len(schedule) == 15
        assert schedule.duration_s <= 3.0
        times = [t for t, _ in schedule.entries]
        assert times == sorted(times)

    def test_from_transactions(self):
        factory = transfer_request_factory(clients=2)
        txs = [factory(i, 0.1 * i) for i in range(4)]
        schedule = LoadSchedule.from_transactions(txs, name="x")
        assert len(schedule) == 4
        assert schedule.entries[3][0] == pytest.approx(0.3)


class TestSubmitters:
    def test_round_robin_sender_affinity(self):
        factory = transfer_request_factory(clients=4)
        deployment = quick_deployment(factory)
        schedule = LoadSchedule.from_trace(constant_trace(8, 2), factory)
        RoundRobinSubmitter().submit_all(deployment, schedule)
        deployment.run_until(1.0)
        # each sender's txs went to exactly one validator's pool
        sender_pools = {}
        for v in deployment.validators:
            for tx in v.pool.peek(100):
                sender_pools.setdefault(tx.sender, set()).add(v.node_id)
        assert all(len(pools) == 1 for pools in sender_pools.values())

    def test_single_node_submitter(self):
        factory = transfer_request_factory(clients=2)
        deployment = quick_deployment(factory)
        schedule = LoadSchedule.from_trace(constant_trace(4, 2), factory)
        SingleNodeSubmitter(target=1).submit_all(deployment, schedule)
        deployment.run_until(0.5)
        assert len(deployment.validators[1].pool) > 0
        assert len(deployment.validators[0].pool) == 0


class TestBenchmark:
    def test_full_run_commits_everything(self):
        factory = transfer_request_factory(clients=8)
        deployment = quick_deployment(factory)
        schedule = LoadSchedule.from_trace(constant_trace(20, 2), factory)
        bench = DiabloBenchmark(deployment)
        result = bench.run(schedule, horizon_s=15.0)
        assert result.commit_rate == 1.0
        assert result.dropped == 0
        assert result.throughput_tps > 0
        assert result.avg_latency_s > 0

    def test_latency_uses_confirmation_threshold(self):
        """Commit time is the (f+1)-th validator's commit, not the first."""
        factory = transfer_request_factory(clients=2)
        deployment = quick_deployment(factory)
        schedule = LoadSchedule.from_trace(constant_trace(2, 1), factory)
        bench = DiabloBenchmark(deployment, confirmations=4)  # all 4
        result = bench.run(schedule, horizon_s=10.0)
        bench_f1 = DiabloBenchmark(deployment, confirmations=1)
        result_f1 = bench_f1.collect(schedule, 10.0)
        assert result.avg_latency_s >= result_f1.avg_latency_s

    def test_uncommitted_counted_as_dropped(self):
        factory = transfer_request_factory(clients=2)
        deployment = quick_deployment(factory)
        txs = [factory(i, 0.0) for i in range(3)]
        schedule = LoadSchedule.from_transactions(txs)
        bench = DiabloBenchmark(deployment)
        # never start the deployment: nothing commits
        result = bench.collect(schedule, 1.0)
        assert result.dropped == 3
        assert result.throughput_tps == 0.0

    def test_summary_row_fields(self):
        result = BenchmarkResult(
            name="x", sent=10, committed=8, duration_s=2.0,
            latencies_s=np.array([0.5, 1.5]),
        )
        row = result.summary_row()
        assert row["throughput_tps"] == 4.0
        assert row["avg_latency_s"] == 1.0
        assert row["commit_pct"] == 80.0


class TestReports:
    def test_results_table_formats(self):
        rows = [
            {"chain": "srbb", "throughput_tps": 1819.0},
            {"chain": "solana", "throughput_tps": 82.6},
        ]
        text = format_results_table(rows, title="Fig2")
        assert "Fig2" in text and "srbb" in text and "1819.0" in text

    def test_empty_results(self):
        assert format_results_table([]) == "(no results)"

    def test_table1_layout(self):
        text = format_table1(
            {"#valid txs sent": "20K", "#invalid txs sent": "10K",
             "#Byzantine validators": "1", "throughput (TPS)": "3998.2 TPS",
             "#valid txs dropped": "none"},
            {"#valid txs sent": "20K", "#invalid txs sent": "10K",
             "#Byzantine validators": "1", "throughput (TPS)": "4285.71 TPS",
             "#valid txs dropped": "none"},
        )
        assert "SRBB w/o RPM" in text and "SRBB w/ RPM" in text
        assert "none" in text


class TestScheduleCache:
    """Pre-signed schedule memoization (keyed trace fingerprint +
    factory cache key): fresh equal factories hit, stateful reuse and
    keyless factories bypass."""

    def setup_method(self):
        from repro.diablo.client import schedule_cache_clear

        schedule_cache_clear()

    teardown_method = setup_method

    def test_fresh_equal_factories_share_one_schedule(self):
        from repro.diablo.client import schedule_cache_info

        trace = constant_trace(5, 3)
        first = LoadSchedule.from_trace(
            trace, transfer_request_factory(clients=4, seed=31)
        )
        second = LoadSchedule.from_trace(
            trace, transfer_request_factory(clients=4, seed=31)
        )
        assert second is first
        assert schedule_cache_info()["entries"] == 1

    def test_cached_schedule_equals_fresh_signing(self):
        trace = constant_trace(5, 3)
        cached = LoadSchedule.from_trace(
            trace, transfer_request_factory(clients=4, seed=31)
        )
        from repro.diablo.client import schedule_cache_clear

        schedule_cache_clear()
        fresh = LoadSchedule.from_trace(
            trace, transfer_request_factory(clients=4, seed=31)
        )
        assert [
            (t, tx.tx_hash, tx.signature) for t, tx in cached.entries
        ] == [(t, tx.tx_hash, tx.signature) for t, tx in fresh.entries]

    def test_different_seed_or_trace_misses(self):
        from repro.diablo.client import schedule_cache_info

        trace = constant_trace(5, 3)
        a = LoadSchedule.from_trace(
            trace, transfer_request_factory(clients=4, seed=31)
        )
        b = LoadSchedule.from_trace(
            trace, transfer_request_factory(clients=4, seed=32)
        )
        c = LoadSchedule.from_trace(
            constant_trace(6, 3), transfer_request_factory(clients=4, seed=31)
        )
        assert a is not b and a is not c
        assert schedule_cache_info()["entries"] == 3

    def test_reused_factory_bypasses_cache(self):
        # A factory that already materialized a schedule carries advanced
        # nonce/RNG state; reusing it must re-sign, not replay the cache.
        trace = constant_trace(5, 3)
        factory = transfer_request_factory(clients=4, seed=31)
        first = LoadSchedule.from_trace(trace, factory)
        second = LoadSchedule.from_trace(trace, factory)
        assert second is not first
        assert second.entries[0][1].nonce > first.entries[0][1].nonce

    def test_keyless_factory_never_cached(self):
        from repro.diablo.client import schedule_cache_info

        def keyless(i, send_time):
            return transfer_request_factory(clients=2, seed=77 + i)(0, send_time)

        trace = constant_trace(2, 2)
        LoadSchedule.from_trace(trace, keyless)
        assert schedule_cache_info()["entries"] == 0
