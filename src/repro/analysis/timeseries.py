"""Congestion time series: commit rate and pool occupancy over time.

Turns the per-tick series the congestion simulator records into
presentation-ready data — per-second resampling, peak/onset detection and
terminal sparklines (the text-mode stand-in for the paper's figures).

The dump-side entry points (:func:`load_metrics_dump`,
:func:`queue_depth_profiles`) work from a saved ``--metrics-out`` JSON
snapshot instead of a live run, so figure scripts can plot queue growth
without re-running the simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.sim.chains import ChainModel
from repro.sim.engine import DT, simulate_chain
from repro.sim.metrics import SimResult
from repro.workloads.trace import Trace

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, *, width: int = 60) -> str:
    """Render a series as a unicode sparkline of at most ``width`` chars."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        # resample by averaging whole buckets
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([
            values[a:b].mean() if b > a else 0.0
            for a, b in zip(edges[:-1], edges[1:])
        ])
    top = values.max()
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    scaled = np.minimum(
        (values / top * (len(_SPARK_LEVELS) - 1)).round().astype(int),
        len(_SPARK_LEVELS) - 1,
    )
    return "".join(_SPARK_LEVELS[i] for i in scaled)


@dataclass
class CongestionSeries:
    """Per-second views of one simulation run."""

    chain: str
    workload: str
    commits_per_s: np.ndarray
    pool_occupancy: np.ndarray  # sampled at second boundaries
    admission_backlog: np.ndarray = None  # validation-queue occupancy

    @property
    def peak_pool(self) -> float:
        return float(self.pool_occupancy.max()) if self.pool_occupancy.size else 0.0

    def congestion_onset_s(self, *, threshold: float = 1000.0) -> float | None:
        """First second any backlog (pool OR admission queue) crosses
        ``threshold`` — gossiping chains congest at admission, SRBB-style
        chains at the pool."""
        series = self.pool_occupancy
        if self.admission_backlog is not None and self.admission_backlog.size:
            n = min(len(series), len(self.admission_backlog))
            series = np.maximum(series[:n], self.admission_backlog[:n])
        above = np.nonzero(series > threshold)[0]
        return float(above[0]) if above.size else None

    def drain_time_s(self, *, threshold: float = 1.0) -> float | None:
        """Last second the pool still held more than ``threshold`` txs."""
        above = np.nonzero(self.pool_occupancy > threshold)[0]
        return float(above[-1]) if above.size else None

    def render(self, *, width: int = 60) -> str:
        lines = [
            f"{self.chain} × {self.workload}",
            f"  commits/s {sparkline(self.commits_per_s, width=width)}",
            f"  pool      {sparkline(self.pool_occupancy, width=width)} "
            f"(peak {self.peak_pool:.0f})",
        ]
        if self.admission_backlog is not None and self.admission_backlog.size:
            peak = float(self.admission_backlog.max())
            lines.append(
                f"  admission {sparkline(self.admission_backlog, width=width)} "
                f"(peak {peak:.0f})"
            )
        return "\n".join(lines)


def _per_second(series: np.ndarray, dt: float, *, how: str) -> np.ndarray:
    ticks_per_s = int(round(1.0 / dt))
    usable = (len(series) // ticks_per_s) * ticks_per_s
    if usable == 0:
        return np.zeros(0)
    shaped = series[:usable].reshape(-1, ticks_per_s)
    return shaped.sum(axis=1) if how == "sum" else shaped.max(axis=1)


# ---------------------------------------------------------------------------
# Metrics-dump views — the tick engine's depth histograms without a re-run
# ---------------------------------------------------------------------------

#: tick-engine depth histograms the analysis layer knows how to read
DEPTH_METRICS = (
    "srbb_sim_validation_queue_depth",
    "srbb_sim_mempool_depth",
)


@dataclass
class DepthProfile:
    """One queue-depth histogram recovered from a metrics dump.

    ``bounds``/``bucket_counts`` are the per-bucket (non-cumulative)
    occupancy distribution over ticks — a log-x view of how deep the
    queue ran for how long, which is exactly the queue-growth evidence
    the paper's congestion figures carry.
    """

    metric: str
    bounds: np.ndarray        # bucket upper bounds; trailing +Inf slot
    bucket_counts: np.ndarray  # ticks whose depth fell in each bucket
    count: float              # total ticks observed
    mean: float
    p50: float
    p90: float
    p99: float
    max_depth: float

    @classmethod
    def from_sample(cls, metric: str, sample: dict) -> "DepthProfile":
        cumulative = np.array([b["count"] for b in sample["buckets"]], dtype=float)
        bounds = np.array(
            [np.inf if b["le"] == "+Inf" else float(b["le"]) for b in sample["buckets"]]
        )
        return cls(
            metric=metric,
            bounds=bounds,
            bucket_counts=np.diff(cumulative, prepend=0.0),
            count=float(sample["count"]),
            mean=float(sample["mean"]),
            p50=float(sample["p50"]),
            p90=float(sample["p90"]),
            p99=float(sample["p99"]),
            max_depth=float(sample["max"] or 0.0),
        )

    def render(self, *, width: int = 60) -> str:
        """Sparkline over the occupancy distribution plus headline stats."""
        return (
            f"{self.metric}\n"
            f"  depth dist {sparkline(self.bucket_counts, width=width)} "
            f"(ticks per bucket, le={self.bounds[-2]:g}..+Inf)\n"
            f"  p50 {self.p50:.0f}  p90 {self.p90:.0f}  p99 {self.p99:.0f}  "
            f"max {self.max_depth:.0f}  over {self.count:.0f} ticks"
        )


def load_metrics_dump(path: str) -> dict:
    """Load a ``--metrics-out`` / bench-artifact JSON file as a snapshot.

    Accepts either a raw ``telemetry.to_json`` snapshot or a
    ``BENCH_*.json`` artifact (whose snapshot lives under ``"metrics"``).
    """
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc.get("metrics"), dict) and "schema" in doc:
        return doc["metrics"]
    return doc


def queue_depth_profiles(
    dump: dict, *, metrics: "tuple[str, ...]" = DEPTH_METRICS
) -> "dict[str, DepthProfile]":
    """Extract the tick engine's depth histograms from a JSON snapshot.

    Returns one :class:`DepthProfile` per requested metric present in the
    dump (unlabeled parent sample), keyed by metric name.
    """
    out: dict[str, DepthProfile] = {}
    for name in metrics:
        entry = dump.get(name)
        if not entry or entry.get("type") != "histogram":
            continue
        for sample in entry["samples"]:
            if not sample.get("labels") and sample.get("count"):
                out[name] = DepthProfile.from_sample(name, sample)
                break
    return out


def congestion_series(
    model: ChainModel, trace: Trace, *, dt: float = DT, **kwargs
) -> tuple[SimResult, CongestionSeries]:
    """Run one simulation and extract its per-second series."""
    result = simulate_chain(model, trace, dt=dt, **kwargs)
    return result, CongestionSeries(
        chain=model.name,
        workload=trace.name,
        commits_per_s=_per_second(result.commit_series, dt, how="sum"),
        pool_occupancy=_per_second(result.pool_series, dt, how="max"),
        admission_backlog=_per_second(result.validation_series, dt, how="max"),
    )
