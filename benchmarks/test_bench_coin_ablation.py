"""Coin-scheme ablation: parity fallback vs shared hash coin.

Counts binary-consensus rounds to decision over many adversarially
shuffled schedules with split inputs.  Both schemes must always agree;
the interesting output is the round-count distribution (the parity
scheme's worst cases are what a schedule adversary would aim for).
"""

import random

from repro.consensus.dbft import BinaryConsensus


def run_instance(coin: str, seed: int) -> tuple[int, int]:
    """Returns (decided value, max round reached among correct nodes)."""
    rng = random.Random(seed)
    queue, decisions, nodes = [], {}, {}
    for i in range(4):
        nodes[i] = BinaryConsensus(
            n=4, f=1, my_id=i, index=seed, instance=0,
            broadcast=queue.append,
            on_decide=lambda inst, v, i=i: decisions.__setitem__(i, v),
            coin=coin,
        )
    for i, node in nodes.items():
        node.propose(rng.randint(0, 1))
    while queue:
        idx = rng.randrange(len(queue))
        queue[idx], queue[-1] = queue[-1], queue[idx]
        msg = queue.pop()
        for node in nodes.values():
            node.on_message(msg)
    assert len(set(decisions.values())) == 1, "agreement violated"
    max_round = max(node.round for node in nodes.values())
    return decisions[0], max_round


def test_coin_schemes_round_distribution(benchmark, run_once):
    def sweep():
        stats = {}
        for coin in ("parity", "hash"):
            rounds = [run_instance(coin, seed)[1] for seed in range(120)]
            stats[coin] = (
                sum(rounds) / len(rounds),
                max(rounds),
            )
        return stats

    stats = run_once(benchmark, sweep)
    print()
    for coin, (mean_rounds, worst) in stats.items():
        print(f"{coin:7s} mean rounds to quiesce: {mean_rounds:.2f}, worst: {worst}")
    # both schemes terminate promptly on random schedules
    for coin, (mean_rounds, worst) in stats.items():
        assert mean_rounds < 6
        assert worst <= 12
