#!/usr/bin/env python
"""Censorship mitigation with a random-forwarding load balancer (§VI).

TVPR's drawback: a transaction submitted only to a censoring validator is
never included in a block.  The paper's proposed mitigation — a
distributed load balancer that forwards each transaction to a random
validator, plus an automated client resend when no receipt arrives —
recovers every transaction with geometrically decaying retry counts.

Run:  python examples/censorship_mitigation.py
"""

import numpy as np

from repro import params
from repro.adversary import CensoringValidator
from repro.core.deployment import Deployment, fund_clients
from repro.core.loadbalancer import RandomLoadBalancer, censorship_probability
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


def direct_submission_is_censored() -> None:
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        byzantine={2: CensoringValidator},
        extra_balances=balances,
    )
    deployment.start()
    tx = make_transfer(clients[0], clients[1].address, 7, nonce=0)
    deployment.submit(tx, validator_id=2, at=0.05)  # straight to the censor
    deployment.run_until(5.0)
    print("== direct submission to a censor ==")
    print("  committed:", deployment.committed_everywhere(tx), "(expected: False)")
    assert not any(
        v.blockchain.contains_tx(tx) for v in deployment.correct_validators
    )


def load_balancer_recovers() -> None:
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        byzantine={2: CensoringValidator},
        extra_balances=balances,
    )
    lb = RandomLoadBalancer(deployment, receipt_timeout_s=1.5, seed=13)
    deployment.start()
    txs = [make_transfer(clients[0], clients[1].address, 1, nonce=i) for i in range(25)]
    for i, tx in enumerate(txs):
        lb.submit(tx, at=0.05 + 0.02 * i)
    deployment.run_until(120.0)

    committed = sum(deployment.committed_everywhere(tx) for tx in txs)
    attempts = np.array(list(lb.stats.attempts.values()))
    print("\n== load balancer + automated resend ==")
    print(f"  committed        : {committed}/{len(txs)}")
    print(f"  resends          : {lb.stats.resends}")
    print(f"  mean attempts/tx : {attempts.mean():.2f}")
    print(f"  max attempts/tx  : {attempts.max()}")
    print("  analytic censor probability after k forwards "
          "(1 censor / 4 validators):")
    for k in range(1, 5):
        print(f"    k={k}: {censorship_probability(4, 1, k):.4f}")
    assert committed == len(txs)


if __name__ == "__main__":
    direct_submission_is_censored()
    load_balancer_recovers()
    print("\ncensorship mitigation demo OK")
