"""Parameterized protocol models of the eight evaluated systems.

Each :class:`ChainModel` captures the queueing-relevant architecture of one
blockchain: whether it gossips individual transactions (and at what
per-copy handling cost), its mempool capacity and sharing structure, its
block cadence, proposer structure and consensus latency.  Values are
calibrated to the behaviours DIABLO reported (see EXPERIMENTS.md for the
paper-vs-model table); they are order-of-magnitude, deliberately so.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ChainModel:
    """Architecture parameters of one blockchain deployment."""

    name: str
    n: int = 200
    # --- transaction propagation -------------------------------------------------
    #: gossip individual transactions (False = TVPR: block-only propagation)
    tx_gossip: bool = True
    #: average received copies of each gossiped tx per node (≈ overlay degree)
    gossip_redundancy: float = 25.0
    #: CPU time per received gossip copy beyond the signature check, seconds
    #: (deserialization, pool locking, event dispatch)
    handling_overhead_s: float = 1.2e-3
    #: eager (signature) validations per second per validator
    eager_rate: float = 20_000.0
    # --- mempool ----------------------------------------------------------------------
    #: per-validator pending-pool capacity (transactions)
    mempool_capacity: int = 16_384
    #: True when a transaction lives in exactly one pool (TVPR); False when
    #: gossip replicates it into every pool (capacity does not scale with n)
    pool_partitioned: bool = False
    # --- block production / consensus ------------------------------------------------
    #: seconds between block (or superblock-round) starts
    block_interval: float = 1.0
    #: max transactions per proposer block
    block_txs: int = 1_000
    #: proposers contributing blocks per round (n for RBBC superblocks)
    proposers_per_round: int = 1
    #: time from proposal to commit (consensus + propagation), seconds
    consensus_latency: float = 2.0
    #: transaction executions per second (VM throughput)
    exec_rate: float = 10_000.0

    # -- derived -------------------------------------------------------------------------

    def validation_rate(self) -> float:
        """Client transactions the admission stage absorbs per second.

        Gossip mode: the representative validator processes every network
        transaction once *plus* ``redundancy`` copies' handling cost, so
        the per-transaction service time is ``1/eager_rate + redundancy ×
        handling_overhead``.  TVPR mode: the work divides over n
        validators and there are no gossip copies.
        """
        if self.tx_gossip:
            per_tx = 1.0 / self.eager_rate + self.gossip_redundancy * self.handling_overhead_s
            return 1.0 / per_tx
        return self.eager_rate * self.n

    def pool_capacity_total(self) -> int:
        """Network-wide distinct-transaction buffering capacity."""
        if self.pool_partitioned:
            return self.mempool_capacity * self.n
        return self.mempool_capacity

    def round_capacity(self) -> int:
        """Max transactions committed per consensus round."""
        return self.block_txs * self.proposers_per_round

    def commit_rate(self) -> float:
        """Steady-state commit throughput ceiling, tx/s."""
        return min(self.round_capacity() / self.block_interval, self.exec_rate)

    def with_(self, **changes) -> "ChainModel":
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# The eight systems of Figures 2 and 3
# ---------------------------------------------------------------------------

#: SRBB: TVPR (no tx gossip, partitioned pools) + RBBC superblocks — every
#: validator proposes a small block each DBFT round (~1.6 s WAN round).
SRBB = ChainModel(
    name="srbb",
    tx_gossip=False,
    pool_partitioned=True,
    block_interval=1.6,
    block_txs=16,
    proposers_per_round=200,
    consensus_latency=1.6,
    exec_rate=40_000.0,
)

#: EVM+DBFT: identical consensus/VM, but with the modern gossip layer and
#: replicated pools (no TVPR) — the §V-A baseline.
EVM_DBFT = SRBB.with_(
    name="evm+dbft",
    tx_gossip=True,
    pool_partitioned=False,
    # gossiping every tx to 200 validators also bloats the consensus path:
    # proposals duplicate heavily, modelled as fewer effective txs/round
    block_txs=8,
)

#: Algorand: BA* committee, one proposer per ~4.5 s round, tx gossip.
ALGORAND = ChainModel(
    name="algorand",
    block_interval=4.5,
    block_txs=5_000,
    proposers_per_round=1,
    consensus_latency=4.5,
    mempool_capacity=50_000,
    handling_overhead_s=0.9e-3,
    exec_rate=2_000.0,
)

#: Avalanche: Snowman — gossips transactions only (no block re-propagation),
#: so a lower effective redundancy cost, but the C-chain VM is the ceiling
#: and the node crashes/sheds load under heavy bursts (small mempool).
AVALANCHE = ChainModel(
    name="avalanche",
    gossip_redundancy=10.0,
    handling_overhead_s=0.8e-3,
    block_interval=0.5,
    block_txs=400,
    proposers_per_round=1,
    consensus_latency=2.0,
    mempool_capacity=4_096,
    exec_rate=1_500.0,
)

#: Diem (Libra): HotStuff leader, 3 s rounds.
DIEM = ChainModel(
    name="diem",
    block_interval=3.0,
    block_txs=1_000,
    proposers_per_round=1,
    consensus_latency=3.0,
    mempool_capacity=10_000,
    exec_rate=1_000.0,
)

#: Ethereum PoA (clique): 15 s blocks, ~300 tx blocks, devp2p gossip.
ETHEREUM = ChainModel(
    name="ethereum",
    block_interval=15.0,
    block_txs=300,
    proposers_per_round=1,
    consensus_latency=15.0,
    mempool_capacity=5_120,
    exec_rate=1_000.0,
)

#: Quorum IBFT: 5 s blocks, permissioned gossip.
QUORUM = ChainModel(
    name="quorum",
    block_interval=5.0,
    block_txs=500,
    proposers_per_round=1,
    consensus_latency=5.0,
    mempool_capacity=4_096,
    exec_rate=1_200.0,
)

#: Solana: 400 ms slots, high claimed throughput but heavy per-tx gossip
#: (UDP floods) and load shedding under bursts.
SOLANA = ChainModel(
    name="solana",
    gossip_redundancy=30.0,
    handling_overhead_s=0.4e-3,
    block_interval=0.4,
    block_txs=2_000,
    proposers_per_round=1,
    consensus_latency=1.0,
    mempool_capacity=30_000,
    exec_rate=3_000.0,
)

CHAIN_MODELS: dict[str, ChainModel] = {
    m.name: m
    for m in (SRBB, EVM_DBFT, ALGORAND, AVALANCHE, DIEM, ETHEREUM, QUORUM, SOLANA)
}

#: Figure 2/3 presentation order.
FIGURE_ORDER = (
    "algorand",
    "avalanche",
    "diem",
    "ethereum",
    "quorum",
    "solana",
    "evm+dbft",
    "srbb",
)


def chain_model(name: str) -> ChainModel:
    """Look up a chain model by name (KeyError lists the options)."""
    try:
        return CHAIN_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown chain {name!r}; options: {sorted(CHAIN_MODELS)}"
        ) from None
