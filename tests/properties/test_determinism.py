"""Replicated-state-machine determinism under hypothesis-driven inputs.

The safety proof's last step (§IV-G): identical chains imply identical
states.  We drive random transaction mixes — valid, invalid, duplicated,
reordered across proposers — through independent Blockchain replicas and
require bit-identical state roots.
"""

from hypothesis import given, settings, strategies as st

from repro import params
from repro.core.block import SuperBlock, make_block
from repro.core.blockchain import Blockchain
from repro.core.transaction import make_invoke, make_transfer
from repro.crypto.keys import generate_keypair
from repro.vm.contracts import ExchangeContract
from repro.vm.contracts.base import NativeRegistry
from repro.vm.executor import install_native, native_address_for
from repro.vm.state import WorldState

CLIENTS = [generate_keypair(7000 + i) for i in range(4)]
PROPOSERS = [generate_keypair(8000 + i) for i in range(3)]
BROKE = generate_keypair(9999)
EXCHANGE = native_address_for(ExchangeContract.name)


def fresh_chain() -> Blockchain:
    state = WorldState()
    for kp in CLIENTS:
        state.create_account(kp.address, 10**12)
    install_native(state, ExchangeContract.name)
    state.commit()
    chain = Blockchain(protocol=params.ProtocolParams(n=4), state=state)
    registry = NativeRegistry()
    registry.register(ExchangeContract())
    chain.executor.registry = registry
    return chain


# A transaction recipe: (kind, client, amount-or-qty, nonce)
recipe = st.tuples(
    st.sampled_from(["transfer", "trade", "broke", "badnonce"]),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=0, max_value=3),
)


def build_tx(kind: str, client: int, value: int, nonce: int, uid: int):
    kp = CLIENTS[client]
    if kind == "transfer":
        return make_transfer(kp, CLIENTS[(client + 1) % 4].address, value, nonce=nonce)
    if kind == "trade":
        return make_invoke(kp, EXCHANGE, "trade", ("AAPL", value, value, "buy"), nonce=nonce)
    if kind == "broke":
        return make_transfer(BROKE, kp.address, value, nonce=0)
    return make_transfer(kp, CLIENTS[0].address, value, nonce=nonce + 50)  # gapped


@settings(max_examples=40, deadline=None)
@given(st.lists(recipe, min_size=1, max_size=25), st.data())
def test_identical_superblocks_give_identical_roots(recipes, data):
    """Two replicas committing the same superblock sequence agree exactly,
    regardless of how many transactions fail or duplicate."""
    txs = [build_tx(*r, uid=i) for i, r in enumerate(recipes)]
    # partition into up to 3 proposer blocks preserving order
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(txs)),
                min_size=2, max_size=2,
            )
        )
    )
    parts = [txs[: cuts[0]], txs[cuts[0] : cuts[1]], txs[cuts[1] :]]
    blocks = tuple(
        make_block(PROPOSERS[i], i, 1, part, round=1)
        for i, part in enumerate(parts)
    )
    superblock = SuperBlock(index=1, blocks=blocks)

    a, b = fresh_chain(), fresh_chain()
    result_a = a.commit_superblock(superblock)
    result_b = b.commit_superblock(superblock)

    assert a.state.state_root() == b.state.state_root()
    assert a.block_hashes() == b.block_hashes()
    assert [t.tx_hash for t in result_a.committed] == [
        t.tx_hash for t in result_b.committed
    ]
    # discarded transactions left zero footprint: replay just the committed
    # ones on a third replica and get the same root
    c = fresh_chain()
    replay = (make_block(PROPOSERS[0], 0, 1, result_a.committed, round=1),)
    c.commit_superblock(SuperBlock(index=1, blocks=replay))
    assert c.state.state_root() == a.state.state_root()


@settings(max_examples=25, deadline=None)
@given(st.lists(recipe, min_size=1, max_size=15))
def test_commit_is_idempotent_across_indices(recipes):
    """Re-offering already-COMMITTED transactions in a later superblock
    leaves the state untouched (duplicate suppression).

    Nonces are forced sequential per client: a transaction *discarded* in
    round 1 (nonce gap) may legitimately become valid later — that is
    resubmission, not a duplicate — so it is excluded from this property.
    """
    next_nonce = {}
    txs = []
    for i, (kind, client, value, _) in enumerate(recipes):
        if kind in ("transfer", "trade"):
            nonce = next_nonce.get(client, 0)
            next_nonce[client] = nonce + 1
        else:
            kind, nonce = "broke", 0  # never committable (zero balance)
        txs.append(build_tx(kind, client, value, nonce, uid=i))
    chain = fresh_chain()
    sb1 = SuperBlock(index=1, blocks=(make_block(PROPOSERS[0], 0, 1, txs, round=1),))
    chain.commit_superblock(sb1)
    root = chain.state.state_root()
    committed_count = chain.committed_count()
    sb2 = SuperBlock(index=2, blocks=(make_block(PROPOSERS[1], 1, 2, txs, round=2),))
    result = chain.commit_superblock(sb2)
    assert chain.state.state_root() == root
    assert chain.committed_count() == committed_count
    assert not result.committed
