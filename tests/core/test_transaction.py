"""Transaction model: signing, hashing, sizes, constructors."""

from hypothesis import given, strategies as st

from repro.core.transaction import TxType, make_deploy, make_invoke, make_transfer
from repro.crypto.keys import generate_keypair, recover_check


class TestSigning:
    def test_transfer_is_signed_by_sender(self):
        kp = generate_keypair(1)
        tx = make_transfer(kp, "aa" * 20, 5, nonce=0)
        assert tx.sender == kp.address
        assert recover_check(tx.public_key, tx.signing_payload(), tx.signature, tx.sender)

    def test_signing_payload_excludes_signature(self):
        kp = generate_keypair(1)
        tx = make_transfer(kp, "aa" * 20, 5, nonce=0)
        unsigned_payload = tx.signing_payload()
        assert unsigned_payload == tx.signed_by(kp).signing_payload()

    def test_hash_depends_on_amount(self):
        kp = generate_keypair(1)
        a = make_transfer(kp, "aa" * 20, 5, nonce=0)
        b = make_transfer(kp, "aa" * 20, 6, nonce=0)
        assert a.tx_hash != b.tx_hash

    def test_hash_depends_on_nonce(self):
        kp = generate_keypair(1)
        assert (
            make_transfer(kp, "aa" * 20, 5, nonce=0).tx_hash
            != make_transfer(kp, "aa" * 20, 5, nonce=1).tx_hash
        )

    def test_hash_depends_on_payload(self):
        kp = generate_keypair(1)
        a = make_invoke(kp, "cc" * 20, "f", (1,), nonce=0)
        b = make_invoke(kp, "cc" * 20, "f", (2,), nonce=0)
        assert a.tx_hash != b.tx_hash

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=100))
    def test_property_hash_stable(self, amount, nonce):
        kp = generate_keypair(42)
        tx = make_transfer(kp, "bb" * 20, amount, nonce=nonce)
        assert tx.tx_hash == tx.tx_hash


class TestSizesAndCosts:
    def test_bare_transfer_size(self):
        kp = generate_keypair(1)
        tx = make_transfer(kp, "aa" * 20, 5, nonce=0)
        assert 100 < tx.encoded_size() < 300

    def test_padding_inflates_size(self):
        kp = generate_keypair(1)
        small = make_transfer(kp, "aa" * 20, 5, nonce=0)
        big = make_transfer(kp, "aa" * 20, 5, nonce=0, padding=5000)
        assert big.encoded_size() == small.encoded_size() + 5000

    def test_data_size_excludes_envelope(self):
        kp = generate_keypair(1)
        tx = make_transfer(kp, "aa" * 20, 5, nonce=0)
        assert tx.data_size() == 0

    def test_max_cost(self):
        kp = generate_keypair(1)
        tx = make_transfer(kp, "aa" * 20, 100, nonce=0, gas_limit=21_000, gas_price=2)
        assert tx.max_cost() == 100 + 42_000
        assert tx.fee_cap() == 42_000


class TestConstructors:
    def test_deploy(self):
        kp = generate_keypair(1)
        tx = make_deploy(kp, b"\x00\x01", nonce=3)
        assert tx.tx_type is TxType.DEPLOY
        assert tx.payload["bytecode"] == b"\x00\x01"
        assert tx.nonce == 3

    def test_invoke(self):
        kp = generate_keypair(1)
        tx = make_invoke(kp, "cc" * 20, "trade", ("AAPL", 1), nonce=0, amount=9)
        assert tx.tx_type is TxType.INVOKE
        assert tx.payload["function"] == "trade"
        assert tx.payload["args"] == ("AAPL", 1)
        assert tx.amount == 9

    def test_uids_unique(self):
        kp = generate_keypair(1)
        a = make_transfer(kp, "aa" * 20, 5, nonce=0)
        b = make_transfer(kp, "aa" * 20, 5, nonce=0)
        assert a.uid != b.uid
