"""§VI load balancer: random forwarding + automated resend beats censors."""

import pytest

from repro import params
from repro.adversary import CensoringValidator
from repro.core.deployment import Deployment, fund_clients
from repro.core.loadbalancer import RandomLoadBalancer, censorship_probability
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


def deployment_with_censor(censor_ids=(2,)):
    clients, balances = fund_clients(2)
    deployment = Deployment(
        protocol=params.ProtocolParams(n=4),
        topology=single_region_topology(4),
        byzantine={i: CensoringValidator for i in censor_ids},
        extra_balances=balances,
    )
    return deployment, clients


class TestAnalytic:
    def test_probability_decays_geometrically(self):
        assert censorship_probability(4, 1, 1) == 0.25
        assert censorship_probability(4, 1, 3) == 0.25**3

    def test_no_censors_zero_probability(self):
        assert censorship_probability(4, 0, 1) == 0.0

    def test_bad_censor_count_raises(self):
        with pytest.raises(ValueError):
            censorship_probability(4, 5, 1)


class TestLoadBalancer:
    def test_tx_commits_despite_censor(self):
        deployment, clients = deployment_with_censor()
        lb = RandomLoadBalancer(deployment, receipt_timeout_s=2.0, seed=7)
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 5, nonce=0)
        lb.submit(tx, at=0.1)
        deployment.run_until(30.0)
        assert deployment.committed_everywhere(tx)
        assert lb.stats.confirmed == 1

    def test_resends_happen_when_censored(self):
        deployment, clients = deployment_with_censor()
        # seed chosen so the first forward hits the censor (id 2)
        lb = RandomLoadBalancer(deployment, receipt_timeout_s=1.0, seed=1)
        deployment.start()
        txs = [
            make_transfer(clients[0], clients[1].address, 1, nonce=i)
            for i in range(6)
        ]
        for i, tx in enumerate(txs):
            lb.submit(tx, at=0.05 + i * 0.01)
        deployment.run_until(40.0)
        for tx in txs:
            assert deployment.committed_everywhere(tx)
        # with 6 txs and a 1/4 censor, some resend almost surely happened
        assert lb.stats.resends >= 1

    def test_gives_up_after_max_attempts_when_all_censor(self):
        deployment, clients = deployment_with_censor(censor_ids=(0,))
        lb = RandomLoadBalancer(
            deployment, receipt_timeout_s=0.5, max_attempts=3, seed=3
        )
        # make ALL validators censors? n=4 with f=1 only tolerates one; to
        # force give-up we instead point the balancer at the censor only.
        lb.rng = type("R", (), {"integers": staticmethod(lambda n: 0)})()
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        lb.submit(tx, at=0.05)
        deployment.run_until(10.0)
        assert lb.stats.gave_up == 1
        assert lb.stats.attempts[tx.tx_hash] == 3

    def test_attempt_accounting(self):
        deployment, clients = deployment_with_censor(censor_ids=())
        lb = RandomLoadBalancer(deployment, receipt_timeout_s=2.0, seed=5)
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        lb.submit(tx, at=0.05)
        deployment.run_until(10.0)
        assert lb.stats.forwarded >= 1
        assert lb.stats.attempts[tx.tx_hash] == 1  # no censor → first try wins
