"""Fungible token (ERC-20-style) native contract.

The generic DApp substrate beyond the three workload contracts: mint
(owner-gated), transfer, approve / transfer_from with allowances, and
total-supply conservation — used by the token-workload tests and available
to downstream experiments.
"""

from __future__ import annotations

from repro.errors import VMRevert
from repro.vm.contracts.base import CallInfo, MeteredState, NativeContract, method


class TokenContract(NativeContract):
    name = "token"

    @method
    def init(
        self, storage: MeteredState, info: CallInfo, symbol: str, supply: int
    ) -> int:
        """One-time initialization: caller becomes owner and holds supply."""
        if storage.get("owner") is not None:
            raise VMRevert("token already initialized")
        if supply < 0:
            raise VMRevert("supply must be non-negative")
        storage.set("owner", info.caller)
        storage.set("symbol", symbol)
        storage.set("supply", supply)
        storage.set(f"bal:{info.caller}", supply)
        return supply

    @method
    def mint(self, storage: MeteredState, info: CallInfo, to: str, amount: int) -> int:
        if info.caller != storage.get("owner"):
            raise VMRevert("only the owner may mint")
        if amount <= 0:
            raise VMRevert("mint amount must be positive")
        storage.set("supply", int(storage.get("supply", 0)) + amount)
        storage.set(f"bal:{to}", int(storage.get(f"bal:{to}", 0)) + amount)
        return int(storage.get("supply"))

    @method
    def transfer(self, storage: MeteredState, info: CallInfo, to: str, amount: int) -> bool:
        self._move(storage, info.caller, to, amount)
        return True

    @method
    def approve(
        self, storage: MeteredState, info: CallInfo, spender: str, amount: int
    ) -> bool:
        if amount < 0:
            raise VMRevert("allowance must be non-negative")
        storage.set(f"allow:{info.caller}:{spender}", amount)
        return True

    @method
    def transfer_from(
        self, storage: MeteredState, info: CallInfo, owner: str, to: str, amount: int
    ) -> bool:
        key = f"allow:{owner}:{info.caller}"
        allowance = int(storage.get(key, 0))
        if allowance < amount:
            raise VMRevert(f"allowance {allowance} below {amount}")
        storage.set(key, allowance - amount)
        self._move(storage, owner, to, amount)
        return True

    @method
    def balance_of(self, storage: MeteredState, info: CallInfo, holder: str) -> int:
        return int(storage.get(f"bal:{holder}", 0))

    @method
    def allowance(
        self, storage: MeteredState, info: CallInfo, owner: str, spender: str
    ) -> int:
        return int(storage.get(f"allow:{owner}:{spender}", 0))

    @method
    def total_supply(self, storage: MeteredState, info: CallInfo) -> int:
        return int(storage.get("supply", 0))

    @staticmethod
    def _move(storage: MeteredState, frm: str, to: str, amount: int) -> None:
        if amount <= 0:
            raise VMRevert("transfer amount must be positive")
        balance = int(storage.get(f"bal:{frm}", 0))
        if balance < amount:
            raise VMRevert(f"balance {balance} below {amount}")
        storage.set(f"bal:{frm}", balance - amount)
        storage.set(f"bal:{to}", int(storage.get(f"bal:{to}", 0)) + amount)
