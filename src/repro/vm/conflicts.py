"""Transaction conflict analysis (Definition 1's "non-conflicting").

Two transactions conflict when they access the same datum (account
balance/nonce or contract storage key) and at least one access is a write
— the ParBlockchain criterion the paper cites.  This module derives
read/write sets for the native transaction types, builds the conflict
graph of a block, and greedily schedules transactions into conflict-free
parallel groups, reporting the theoretical parallel speedup a
multi-threaded executor could reach.

The serial executor stays the source of truth (deterministic commit
order); this analysis quantifies the headroom and powers the validity
check that committed blocks contain no *unserialized* conflicts — in a
serial executor every conflict is trivially serialized, which is exactly
how SRBB satisfies the property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx

from repro.core.transaction import Transaction, TxType
from repro.vm.executor import contract_address_for


@dataclass(frozen=True)
class AccessSet:
    """Datum keys a transaction reads, writes, or commutatively updates.

    ``commutes`` holds pure-increment targets (balance credits): two
    commutative updates to the same key reorder freely (Block-STM-style
    delta writes), but a commutative update still conflicts with a read
    or an ordinary write of that key.  ``opaque`` marks transactions whose
    effects cannot be bounded statically (e.g. a native call that moves
    balances to storage-derived addresses); an opaque transaction
    conflicts with everything.
    """

    reads: frozenset[str]
    writes: frozenset[str]
    commutes: frozenset[str] = frozenset()
    opaque: bool = False

    def conflicts_with(self, other: "AccessSet") -> bool:
        if self.opaque or other.opaque:
            return True
        if (
            self.writes & other.writes
            or self.writes & other.reads
            or self.reads & other.writes
        ):
            return True
        # commutative-vs-(read|write) conflicts; commute-vs-commute is free
        return bool(
            self.commutes & (other.reads | other.writes)
            or other.commutes & (self.reads | self.writes)
        )


def _balance_key(address: str) -> str:
    return f"acct:{address}"


def access_set(tx: Transaction, *, coinbase: str = "") -> AccessSet:
    """Static read/write sets for one transaction.

    Native-contract calls are attributed to the contract's storage at
    function granularity (argument-keyed where the ABI makes it obvious:
    per-symbol for the exchange, per-match for ticketing), which keeps
    the analysis sound-but-useful without executing the transaction.
    Argument-scoped accesses also *read* the whole-contract container key
    so a coarse (whole-contract) access orders against every fine one.

    When a ``coinbase`` is given, every transaction commutatively credits
    it (the gas fee), so a transaction touching the coinbase account
    directly serializes against all others.
    """
    reads = {_balance_key(tx.sender)}
    writes = {_balance_key(tx.sender)}
    commutes: set[str] = set()
    opaque = False
    if coinbase:
        commutes.add(_balance_key(coinbase))
    if tx.tx_type is TxType.TRANSFER:
        # the receiver is only credited: a commutative delta
        commutes.add(_balance_key(tx.receiver))
    elif tx.tx_type is TxType.DEPLOY:
        # The executor creates (and possibly funds) the account at the
        # deterministic create address — not some "code:{sender}" datum.
        created = contract_address_for(tx.sender, tx.nonce)
        writes.add(_balance_key(created))
        writes.add(f"store:{created}")
    elif tx.tx_type is TxType.INVOKE:
        contract = str(tx.payload.get("contract", tx.receiver))
        function = str(tx.payload.get("function", ""))
        args = tuple(tx.payload.get("args", ()))
        scope = _invoke_scope(contract, function, args)
        container = f"store:{contract}"
        if function not in _SAFE_FUNCTIONS:
            # Unknown ABI (SVM bytecode, arbitrary function): no static
            # bound on the touched data — serialize against everything.
            opaque = True
        if _is_readonly(function):
            reads.add(scope)
            reads.add(container)
        else:
            writes.add(scope)
            if scope != container:
                reads.add(container)
            if tx.amount:
                commutes.add(_balance_key(contract))  # value credit
    return AccessSet(
        reads=frozenset(reads),
        writes=frozenset(writes),
        commutes=frozenset(commutes),
        opaque=opaque,
    )


_READONLY_FUNCTIONS = {
    "last_price", "volume", "position", "ride_state", "zone_demand",
    "sold", "tickets_of", "balance_of", "allowance", "total_supply",
    "deposit_of", "validators", "excluded", "events",
}

#: Functions whose effects the static scopes above fully capture: storage
#: writes inside the scoped keys plus declared balance commutes.  Anything
#: else (``complete_ride`` moves native balance to a storage-derived
#: driver address; SVM bytecode is arbitrary) is opaque.
_SAFE_FUNCTIONS = _READONLY_FUNCTIONS | {
    "trade", "open_match", "buy_ticket", "request_ride", "accept_ride",
    "init", "mint", "transfer", "approve", "transfer_from",
}


def _is_readonly(function: str) -> bool:
    return function in _READONLY_FUNCTIONS


def _invoke_scope(contract: str, function: str, args: tuple) -> str:
    """Finest sound storage scope for a native call."""
    if function in ("trade", "last_price", "volume") and args:
        return f"store:{contract}:symbol:{args[0]}"
    if function in ("buy_ticket", "sold", "open_match") and args:
        return f"store:{contract}:match:{args[0]}"
    # everything else shares the whole contract's storage
    return f"store:{contract}"


# ---------------------------------------------------------------------------
# Block-level analysis
# ---------------------------------------------------------------------------


@dataclass
class ConflictReport:
    """Conflict structure of one batch of transactions."""

    tx_count: int
    conflict_pairs: list[tuple[int, int]]
    #: parallel groups: lists of tx indices with no intra-group conflicts
    groups: list[list[int]] = field(default_factory=list)

    @property
    def conflict_count(self) -> int:
        return len(self.conflict_pairs)

    @property
    def parallel_depth(self) -> int:
        """Rounds a conflict-respecting parallel executor needs."""
        return len(self.groups)

    @property
    def speedup(self) -> float:
        """Theoretical speedup vs serial execution (unit-cost txs)."""
        return self.tx_count / self.parallel_depth if self.groups else 1.0


def conflict_graph(txs: Sequence[Transaction], *, coinbase: str = "") -> nx.Graph:
    """Graph with one node per tx index, edges between conflicting pairs."""
    graph = nx.Graph()
    sets = [access_set(tx, coinbase=coinbase) for tx in txs]
    graph.add_nodes_from(range(len(txs)))
    # index datum -> txs touching it, to avoid O(n²) pair checks
    writers: dict[str, list[int]] = {}
    readers: dict[str, list[int]] = {}
    commuters: dict[str, list[int]] = {}
    opaques: list[int] = []
    for i, acc in enumerate(sets):
        if acc.opaque:
            opaques.append(i)
        for key in acc.writes:
            writers.setdefault(key, []).append(i)
        for key in acc.reads:
            readers.setdefault(key, []).append(i)
        for key in acc.commutes:
            commuters.setdefault(key, []).append(i)
    keys = set(writers) | set(commuters)
    for key in keys:
        ws = writers.get(key, ())
        rs = readers.get(key, ())
        cs = commuters.get(key, ())
        # write vs anything; commute vs read/write — commute pairs are free
        for writer in ws:
            for other in set(ws) | set(rs) | set(cs):
                if other != writer:
                    graph.add_edge(writer, other)
        for commuter in cs:
            for other in rs:
                if other != commuter:
                    graph.add_edge(commuter, other)
    # opaque transactions conflict with every other transaction
    for i in opaques:
        for j in range(len(txs)):
            if j != i:
                graph.add_edge(i, j)
    return graph


def analyze_block(txs: Sequence[Transaction], *, coinbase: str = "") -> ConflictReport:
    """Conflict pairs + greedy conflict-free grouping (order-preserving).

    Grouping is a serializable schedule: a transaction joins the earliest
    group after every group containing a conflicting predecessor, so
    executing groups in order respects all conflict dependencies — every
    conflicting pair ``i < j`` lands with ``group(i) < group(j)``.
    """
    graph = conflict_graph(txs, coinbase=coinbase)
    pairs = sorted(tuple(sorted(edge)) for edge in graph.edges)
    group_of: dict[int, int] = {}
    groups: list[list[int]] = []
    for i in range(len(txs)):
        earliest = 0
        for j in graph.neighbors(i):
            if j < i:
                earliest = max(earliest, group_of[j] + 1)
        if earliest == len(groups):
            groups.append([])
        group_of[i] = earliest
        groups[earliest].append(i)
    return ConflictReport(
        tx_count=len(txs), conflict_pairs=[tuple(p) for p in pairs], groups=groups
    )


def blocks_are_conflict_serialized(
    txs: Sequence[Transaction],
    groups: Sequence[Sequence[int]] | None = None,
    *,
    coinbase: str = "",
) -> bool:
    """Definition 1 validity check for a parallel schedule.

    A schedule (``groups``, defaulting to the one :func:`analyze_block`
    derives) serializes the block iff (a) it covers every transaction
    exactly once and (b) for every conflicting pair ``i < j`` the earlier
    transaction's group strictly precedes the later's — executing groups
    in order then respects all conflict dependencies.  A corrupted
    schedule (a conflicting pair sharing a group, or ordered backwards)
    fails the check.
    """
    graph = conflict_graph(txs, coinbase=coinbase)
    if groups is None:
        groups = analyze_block(txs, coinbase=coinbase).groups
    group_of: dict[int, int] = {}
    for group_index, group in enumerate(groups):
        for i in group:
            if i in group_of:  # duplicated index
                return False
            group_of[i] = group_index
    if sorted(group_of) != list(range(len(txs))):  # missing/alien index
        return False
    return all(
        group_of[min(edge)] < group_of[max(edge)] for edge in graph.edges
    )
