"""RPM contract (Algorithm 2): attestation rewards, reports, slashing."""

import pytest

from repro.core.block import make_block
from repro.core.rpm import (
    RPMContract,
    certificate_payload,
    decode_certificate,
    encode_certificate,
    report_payload,
)
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair
from repro.errors import VMRevert
from repro.vm.state import WorldState

GAS = 50_000_000
N, F = 4, 1
DEPOSIT = 1_000_000
RPM_ADDR = "aa" * 20


@pytest.fixture
def validators():
    return [generate_keypair(100 + i) for i in range(N)]


@pytest.fixture
def rpm():
    return RPMContract(n=N, f=F, block_reward=100, validation_cost=0.001)


@pytest.fixture
def state(validators):
    ws = WorldState()
    ws.get_or_create(RPM_ADDR)
    ws.storage_set(RPM_ADDR, "validators", tuple(kp.address for kp in validators))
    for kp in validators:
        ws.storage_set(RPM_ADDR, f"deposit:{kp.address}", DEPOSIT)
    return ws


def call(rpm, state, caller, fn, *args, value=0):
    result, _ = rpm.call(state, RPM_ADDR, caller, fn, args, value, GAS)
    return result


def _block(proposer_kp, proposer_id=0, txs=None, seed=50):
    txs = txs if txs is not None else [
        make_transfer(generate_keypair(seed), "bb" * 20, 1, nonce=i) for i in range(3)
    ]
    return make_block(proposer_kp, proposer_id, 1, txs)


class TestCertificates:
    def test_encode_decode_roundtrip(self, validators):
        block = _block(validators[0])
        enc = encode_certificate(block.certificate)
        assert decode_certificate(enc) == block.certificate

    def test_certificate_payload(self, validators):
        block = _block(validators[0])
        cert, h_t_hex, count = certificate_payload(block)
        assert count == 3
        assert bytes.fromhex(h_t_hex) == block.tx_root

    def test_report_payload_proof_verifies(self, validators):
        from repro.crypto.merkle import MerkleProof, MerkleTree

        block = _block(validators[0])
        bad = block.transactions[1]
        cert, bad_hex, h_t_hex, index, siblings = report_payload(block, bad.tx_hash)
        proof = MerkleProof(index=index, siblings=tuple(bytes.fromhex(s) for s in siblings))
        assert MerkleTree.verify_proof(
            bytes.fromhex(h_t_hex), bytes.fromhex(bad_hex), proof
        )

    def test_report_payload_missing_tx_raises(self, validators):
        block = _block(validators[0])
        with pytest.raises(ValueError):
            report_payload(block, b"\x00" * 32)


class TestPropReceived:
    def attest(self, rpm, state, validators, block, slot=0, round_=1, callers=None):
        cert, h_t, count = certificate_payload(block)
        results = []
        for kp in callers or validators:
            results.append(
                call(rpm, state, kp.address, "prop_received", cert, h_t, count, slot, round_)
            )
        return results

    def test_reward_paid_at_threshold(self, rpm, state, validators):
        block = _block(validators[0])
        results = self.attest(rpm, state, validators, block, callers=validators[:3])
        assert results == [False, False, True]  # n−f = 3rd attestation pays
        deposit = call(rpm, state, validators[0].address, "deposit_of", validators[0].address)
        assert deposit == DEPOSIT + 100  # r_b − ⌊3·0.001⌋ = 100

    def test_reward_paid_once(self, rpm, state, validators):
        block = _block(validators[0])
        self.attest(rpm, state, validators, block)  # all 4 attest
        deposit = call(rpm, state, validators[0].address, "deposit_of", validators[0].address)
        assert deposit == DEPOSIT + 100  # the 4th attestation must not double-pay

    def test_duplicate_invocation_ignored(self, rpm, state, validators):
        block = _block(validators[0])
        cert, h_t, count = certificate_payload(block)
        caller = validators[1].address
        assert call(rpm, state, caller, "prop_received", cert, h_t, count, 0, 1) is False
        # line 11: same (caller, i, round) exits immediately
        assert call(rpm, state, caller, "prop_received", cert, h_t, count, 0, 1) is False
        # and it did not increment the count twice: two more callers needed
        assert call(rpm, state, validators[2].address, "prop_received", cert, h_t, count, 0, 1) is False
        assert call(rpm, state, validators[3].address, "prop_received", cert, h_t, count, 0, 1) is True

    def test_non_validator_caller_reverts(self, rpm, state, validators):
        block = _block(validators[0])
        cert, h_t, count = certificate_payload(block)
        with pytest.raises(VMRevert):
            call(rpm, state, "ff" * 20, "prop_received", cert, h_t, count, 0, 1)

    def test_non_validator_proposer_rejected(self, rpm, state, validators):
        outsider = generate_keypair(999)
        block = _block(outsider)
        results = self.attest(rpm, state, validators, block)
        assert not any(results)  # line 16: Cert_B from non-validator

    def test_forged_h_t_rejected(self, rpm, state, validators):
        block = _block(validators[0])
        cert, _, count = certificate_payload(block)
        fake_root = "00" * 32
        assert (
            call(rpm, state, validators[1].address, "prop_received", cert, fake_root, count, 0, 1)
            is False
        )

    def test_validation_cost_reduces_reward(self, state, validators):
        rpm = RPMContract(n=N, f=F, block_reward=100, validation_cost=10.0)
        txs = [make_transfer(generate_keypair(51), "bb" * 20, 1, nonce=i) for i in range(5)]
        block = _block(validators[0], txs=txs)
        self.attest(rpm, state, validators, block, callers=validators[:3])
        deposit = call(rpm, state, validators[0].address, "deposit_of", validators[0].address)
        assert deposit == DEPOSIT + 100 - 50  # C = 5 · 10


class TestReport:
    def report(self, rpm, state, validators, block, bad_tx, block_number=7, callers=None):
        cert, bad_hex, h_t, index, siblings = report_payload(block, bad_tx.tx_hash)
        results = []
        for kp in callers or validators[1:]:
            results.append(
                call(rpm, state, kp.address, "report",
                     cert, block_number, bad_hex, h_t, index, siblings)
            )
        return results

    def test_slash_at_threshold(self, rpm, state, validators):
        block = _block(validators[0])
        bad = block.transactions[0]
        results = self.report(rpm, state, validators, block, bad)
        assert results == [False, False, True]
        proposer = validators[0].address
        assert call(rpm, state, proposer, "deposit_of", proposer) == 0
        # redistribution: 1M split across the 3 others
        others = [kp.address for kp in validators[1:]]
        total = sum(call(rpm, state, o, "deposit_of", o) for o in others)
        assert total == 3 * DEPOSIT + DEPOSIT  # conservation
        assert proposer in call(rpm, state, proposer, "excluded")
        events = call(rpm, state, proposer, "events")
        assert len(events) == 1 and events[0].address == proposer

    def test_duplicate_report_not_counted(self, rpm, state, validators):
        block = _block(validators[0])
        bad = block.transactions[0]
        reporter = validators[1]
        self.report(rpm, state, validators, block, bad, callers=[reporter, reporter])
        proposer = validators[0].address
        assert call(rpm, state, proposer, "deposit_of", proposer) == DEPOSIT

    def test_false_report_rejected(self, rpm, state, validators):
        """t ∉ T: a Merkle proof for a transaction not in the block fails."""
        block = _block(validators[0])
        other_block = _block(validators[0], seed=77)
        outside_tx = other_block.transactions[0]
        cert, _, h_t, _, _ = report_payload(block, block.transactions[0].tx_hash)
        _, bad_hex, _, index, siblings = report_payload(
            other_block, outside_tx.tx_hash
        )
        result = call(
            rpm, state, validators[1].address, "report",
            cert, 7, bad_hex, h_t, index, siblings,
        )
        assert result is False
        assert (
            call(rpm, state, validators[0].address, "deposit_of", validators[0].address)
            == DEPOSIT
        )

    def test_non_validator_reporter_reverts(self, rpm, state, validators):
        block = _block(validators[0])
        cert, bad_hex, h_t, index, siblings = report_payload(
            block, block.transactions[0].tx_hash
        )
        with pytest.raises(VMRevert):
            call(rpm, state, "ff" * 20, "report", cert, 7, bad_hex, h_t, index, siblings)

    def test_slash_includes_earned_rewards(self, rpm, state, validators):
        """Theorem 1: the penalty P = D + I − C' takes everything."""
        block = _block(validators[0])
        cert, h_t, count = certificate_payload(block)
        for kp in validators[:3]:
            call(rpm, state, kp.address, "prop_received", cert, h_t, count, 0, 1)
        proposer = validators[0].address
        assert call(rpm, state, proposer, "deposit_of", proposer) == DEPOSIT + 100
        self.report(rpm, state, validators, block, block.transactions[0])
        assert call(rpm, state, proposer, "deposit_of", proposer) == 0

    def test_two_different_invalid_txs_both_countable(self, rpm, state, validators):
        block = _block(validators[0])
        r1 = self.report(rpm, state, validators, block, block.transactions[0])
        r2 = self.report(rpm, state, validators, block, block.transactions[1])
        assert r1[-1] is True
        # second slash finds an empty deposit; still emits an event
        assert r2[-1] is True
        events = call(rpm, state, validators[0].address, "events")
        assert len(events) == 2
        assert events[1].penalty == 0


class TestJoin:
    def test_join_adds_validator(self, rpm, validators):
        ws = WorldState()
        ws.get_or_create(RPM_ADDR)
        newcomer = generate_keypair(500)
        ws.create_account(newcomer.address, 10**9)
        result = call(rpm, ws, newcomer.address, "join", 5000, value=5000)
        assert result == 5000
        assert newcomer.address in call(rpm, ws, newcomer.address, "validators")

    def test_join_requires_funding(self, rpm):
        ws = WorldState()
        ws.get_or_create(RPM_ADDR)
        with pytest.raises(VMRevert):
            call(rpm, ws, "ab" * 20, "join", 5000, value=10)

    def test_double_join_reverts(self, rpm):
        ws = WorldState()
        ws.get_or_create(RPM_ADDR)
        call(rpm, ws, "ab" * 20, "join", 5000, value=5000)
        with pytest.raises(VMRevert):
            call(rpm, ws, "ab" * 20, "join", 5000, value=5000)
