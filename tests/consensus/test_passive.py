"""Passive (observer) mode: decides identically, sends nothing."""

import pytest

from repro.consensus.broadcast import ReliableBroadcast
from repro.consensus.dbft import BinaryConsensus
from repro.consensus.messages import ConsensusMessage, MsgKind
from repro.consensus.superblock import SuperBlockConsensus
from repro.core.block import make_block
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair
from repro.errors import ConsensusError


class TestPassiveBinary:
    def _cluster(self, n=4, f=1):
        queue = []
        decisions = {}
        nodes = {
            i: BinaryConsensus(
                n=n, f=f, my_id=i, index=0, instance=0,
                broadcast=queue.append,
                on_decide=lambda inst, v, i=i: decisions.__setitem__(i, v),
            )
            for i in range(n)
        }
        observer_sent = []
        observer = BinaryConsensus(
            n=n, f=f, my_id=99, index=0, instance=0,
            broadcast=observer_sent.append,
            on_decide=lambda inst, v: decisions.__setitem__("obs", v),
            passive=True,
        )
        return queue, decisions, nodes, observer, observer_sent

    def test_observer_decides_with_the_committee(self):
        queue, decisions, nodes, observer, sent = self._cluster()
        observer.observe()
        for node in nodes.values():
            node.propose(1)
        while queue:
            msg = queue.pop(0)
            for node in nodes.values():
                node.on_message(msg)
            observer.on_message(msg)
        assert decisions["obs"] == 1
        assert set(decisions.values()) == {1}
        assert sent == []  # strictly silent

    def test_observer_cannot_propose(self):
        _, _, _, observer, _ = self._cluster()
        with pytest.raises(ConsensusError):
            observer.propose(1)

    def test_observe_idempotent(self):
        _, _, _, observer, sent = self._cluster()
        observer.observe()
        observer.observe()
        assert sent == []


class TestPassiveRBC:
    def test_observer_delivers_without_sending(self):
        queue = []
        delivered = {}
        nodes = {
            i: ReliableBroadcast(
                n=4, f=1, my_id=i, index=0, broadcast=queue.append,
                on_deliver=lambda s, p, i=i: delivered.setdefault(i, {}).__setitem__(s, p),
            )
            for i in range(4)
        }
        observer_sent = []
        observer = ReliableBroadcast(
            n=4, f=1, my_id=99, index=0, broadcast=observer_sent.append,
            on_deliver=lambda s, p: delivered.setdefault("obs", {}).__setitem__(s, p),
            passive=True,
        )
        nodes[0].broadcast_payload(b"blk")
        while queue:
            msg = queue.pop(0)
            for node in nodes.values():
                node.on_message(msg)
            observer.on_message(msg)
        assert delivered["obs"][0] == b"blk"
        assert observer_sent == []


class TestPassiveSuperblock:
    def test_observer_reaches_same_superblock(self):
        queue = []
        superblocks = {}
        keypairs = [generate_keypair(3000 + i) for i in range(4)]
        nodes = {
            i: SuperBlockConsensus(
                n=4, f=1, my_id=i, index=1, broadcast=queue.append,
                on_superblock=lambda sb, i=i: superblocks.__setitem__(i, sb),
            )
            for i in range(4)
        }
        observer = SuperBlockConsensus(
            n=4, f=1, my_id=0, index=1,
            broadcast=lambda m: pytest.fail("observer must not send"),
            on_superblock=lambda sb: superblocks.__setitem__("obs", sb),
            passive=True,
        )
        sender = generate_keypair(4000)
        for i, node in nodes.items():
            txs = [make_transfer(sender, "aa" * 20, 1, nonce=i)]
            node.propose(make_block(keypairs[i], i, 1, txs, round=1))
        while queue:
            msg = queue.pop(0)
            for node in nodes.values():
                node.on_message(msg)
            observer.on_message(msg)
        assert "obs" in superblocks
        hashes = {sb.superblock_hash for sb in superblocks.values()}
        assert len(hashes) == 1

    def test_observer_propose_rejected(self):
        observer = SuperBlockConsensus(
            n=4, f=1, my_id=0, index=1, broadcast=lambda m: None,
            on_superblock=lambda sb: None, passive=True,
        )
        kp = generate_keypair(1)
        with pytest.raises(ConsensusError):
            observer.propose(make_block(kp, 0, 1, [], round=1))

    def test_observer_timeout_noop(self):
        observer = SuperBlockConsensus(
            n=4, f=1, my_id=0, index=1, broadcast=lambda m: None,
            on_superblock=lambda sb: None, passive=True,
        )
        observer.timeout_silent_proposers()  # must not raise or vote
        assert all(not i.has_input or i.passive for i in observer.instances.values())
