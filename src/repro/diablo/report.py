"""Plain-text report formatting: the rows/series the paper's artifacts show."""

from __future__ import annotations

from typing import Iterable, Mapping


def _format_table(rows: list[Mapping], columns: list[str]) -> str:
    """Fixed-width text table."""
    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        r = {c: str(row.get(c, "")) for c in columns}
        for c in columns:
            widths[c] = max(widths[c], len(r[c]))
        rendered.append(r)
    sep = "  "
    header = sep.join(c.ljust(widths[c]) for c in columns)
    rule = sep.join("-" * widths[c] for c in columns)
    lines = [header, rule]
    for r in rendered:
        lines.append(sep.join(r[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_results_table(rows: Iterable[Mapping], *, title: str = "") -> str:
    """Format Figure-2/3-style rows (chain × workload metrics)."""
    rows = list(rows)
    if not rows:
        return "(no results)"
    columns = list(rows[0].keys())
    table = _format_table(rows, columns)
    return f"{title}\n{table}" if title else table


def format_table1(without_rpm: Mapping, with_rpm: Mapping) -> str:
    """Render Table I exactly as the paper lays it out."""
    columns = [
        "config",
        "#valid txs sent",
        "#invalid txs sent",
        "#Byzantine validators",
        "throughput (TPS)",
        "#valid txs dropped",
    ]
    rows = [
        {"config": "SRBB w/o RPM", **without_rpm},
        {"config": "SRBB w/ RPM", **with_rpm},
    ]
    return _format_table(rows, columns)
