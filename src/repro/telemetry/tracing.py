"""Structured tracing — spans and point events, dumped as JSONL.

A trace is an append-only sequence of records with monotonic timestamps
(``time.monotonic`` relative to tracer creation), so a whole DIABLO run
can be replayed after the fact:

* ``{"ts": 0.0123, "type": "event", "name": "node.commit", "attrs": {...}}``
* ``{"ts": 0.0007, "type": "span", "name": "sim.run", "dur": 2.41, "attrs": {...}}``

Like the metrics registry, the process-global tracer starts *disabled*:
``span``/``event`` are one-branch no-ops until the CLI's ``--trace-out``
(or a test) enables it.  Simulation call-sites pass the simulated clock
as an ordinary attribute (e.g. ``sim_now=...``) — ``ts`` is always wall
monotonic time.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager, nullcontext
from typing import Iterator

__all__ = ["Tracer", "get_tracer", "set_tracer", "span", "event"]


class Tracer:
    """Buffering trace recorder; cheap no-op while disabled."""

    def __init__(self, *, enabled: bool = True, clock=time.monotonic):
        self.enabled = enabled
        self._clock = clock
        self._t0 = clock()
        self._records: list[dict] = []

    # -- recording -------------------------------------------------------------

    def now(self) -> float:
        return self._clock() - self._t0

    def event(self, name: str, **attrs) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        self._records.append(
            {"ts": round(self.now(), 6), "type": "event", "name": name, "attrs": attrs}
        )

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Record a timed span around a block; yields the mutable attrs
        dict so the body can attach results (counts, outcomes)."""
        if not self.enabled:
            yield attrs
            return
        start = self.now()
        try:
            yield attrs
        finally:
            end = self.now()
            self._records.append(
                {
                    "ts": round(start, 6),
                    "type": "span",
                    "name": name,
                    "dur": round(end - start, 6),
                    "attrs": attrs,
                }
            )

    # -- access / export -------------------------------------------------------

    @property
    def records(self) -> "list[dict]":
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()
        self._t0 = self._clock()

    def dumps(self) -> str:
        """The whole trace as JSONL (one record per line, ts-ordered)."""
        ordered = sorted(self._records, key=lambda r: r["ts"])
        return "".join(json.dumps(r, default=str) + "\n" for r in ordered)

    def dump(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps())


#: disabled by default, mirroring the metrics registry
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def span(name: str, **attrs):
    """Span on the global tracer (cheap nullcontext while disabled)."""
    tracer = _default_tracer
    if not tracer.enabled:
        return nullcontext(attrs)
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Point event on the global tracer."""
    tracer = _default_tracer
    if tracer.enabled:
        tracer.event(name, **attrs)
