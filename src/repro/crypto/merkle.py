"""Binary Merkle tree over transaction hashes (block tx root + proofs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.hashing import sha256

#: Domain separators keep leaf and interior hashes in disjoint ranges,
#: preventing second-preimage tricks where an interior node is replayed
#: as a leaf.
_LEAF = b"\x00"
_NODE = b"\x01"
_EMPTY_ROOT = sha256(b"merkle-empty")


def _leaf_hash(data: bytes) -> bytes:
    return sha256(_LEAF + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof: sibling hashes bottom-up plus the leaf index."""

    index: int
    siblings: tuple[bytes, ...]


class MerkleTree:
    """Immutable binary Merkle tree with duplicate-last-node padding."""

    def __init__(self, leaves: Sequence[bytes]):
        self._leaves = [_leaf_hash(leaf) for leaf in leaves]
        self._levels: list[list[bytes]] = [list(self._leaves)]
        if not self._leaves:
            self._root = _EMPTY_ROOT
            return
        level = self._levels[0]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), 2):
                left = level[i]
                right = level[i + 1] if i + 1 < len(level) else level[i]
                nxt.append(_node_hash(left, right))
            self._levels.append(nxt)
            level = nxt
        self._root = level[0]

    @property
    def root(self) -> bytes:
        return self._root

    def __len__(self) -> int:
        return len(self._leaves)

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        siblings = []
        idx = index
        for level in self._levels[:-1]:
            sib = idx ^ 1
            siblings.append(level[sib] if sib < len(level) else level[idx])
            idx //= 2
        return MerkleProof(index=index, siblings=tuple(siblings))

    @staticmethod
    def verify_proof(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
        """Check that ``leaf`` is included under ``root`` via ``proof``."""
        node = _leaf_hash(leaf)
        idx = proof.index
        for sib in proof.siblings:
            node = _node_hash(node, sib) if idx % 2 == 0 else _node_hash(sib, node)
            idx //= 2
        return node == root


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Root hash of a sequence of raw leaves (empty sequence allowed)."""
    return MerkleTree(leaves).root
