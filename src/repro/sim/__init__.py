"""Tick-level congestion simulator for full-scale (200-validator) runs.

The message-level engine in :mod:`repro.core` is exact but cannot simulate
627 000 FIFA transactions across 200 validators in a test suite.  This
package trades message fidelity for a vectorized queueing model (numpy
cohort accounting, 100 ms ticks) that preserves the paper's two causal
mechanisms:

1. **Validation/propagation redundancy** — with gossip (modern chains) the
   representative validator eagerly validates *every* transaction and pays
   a per-received-copy handling cost ``redundancy × handling_overhead``;
   with TVPR the validation work divides across the committee.
2. **Mempool structure** — with gossip every pool holds every transaction
   (effective capacity = one pool); with TVPR each transaction occupies
   exactly one pool (effective capacity = n pools).

Absolute TPS numbers are calibrated, not measured (the repro band says
"throughput fidelity poor"); orderings and ratios are what we reproduce.
"""

from repro.sim.chains import CHAIN_MODELS, ChainModel, chain_model
from repro.sim.engine import CongestionSim, SimResult, simulate_chain
from repro.sim.metrics import LatencySample

__all__ = [
    "CHAIN_MODELS",
    "ChainModel",
    "CongestionSim",
    "LatencySample",
    "SimResult",
    "chain_model",
    "simulate_chain",
]
