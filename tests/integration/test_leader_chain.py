"""Leader-chain deployment: the engine-level modern-blockchain baseline."""

from repro import params
from repro.core.deployment import fund_clients
from repro.core.leadernode import LeaderChainDeployment
from repro.core.transaction import make_transfer
from repro.net.topology import single_region_topology


def build(n=4, **kw):
    clients, balances = fund_clients(4)
    deployment = LeaderChainDeployment(
        protocol=params.ProtocolParams(n=n, rpm=False),
        topology=single_region_topology(n),
        extra_balances=balances,
        block_interval=0.3,
        **kw,
    )
    return deployment, clients


class TestLeaderChain:
    def test_transactions_commit_everywhere(self):
        deployment, clients = build()
        deployment.start()
        txs = []
        for i in range(8):
            tx = make_transfer(clients[i % 4], clients[(i + 1) % 4].address,
                               1, nonce=i // 4)
            deployment.submit(tx, validator_id=i % 4, at=0.05 + 0.02 * i)
            txs.append(tx)
        deployment.run_until(10.0)
        for tx in txs:
            assert deployment.committed_everywhere(tx)
        assert deployment.safety_holds()

    def test_gossip_makes_every_validator_validate(self):
        """The modern path: a tx submitted to ONE validator is eagerly
        validated at ALL of them (Fig. 1's redundancy)."""
        deployment, clients = build()
        deployment.start()
        tx = make_transfer(clients[0], clients[1].address, 1, nonce=0)
        deployment.submit(tx, validator_id=0, at=0.05)
        deployment.run_until(5.0)
        total_eager = sum(v.stats.eager_validations for v in deployment.validators)
        assert total_eager == 4
        assert deployment.committed_everywhere(tx)

    def test_leaders_rotate_across_heights(self):
        deployment, clients = build()
        deployment.start()
        # spread submissions over many block intervals so several heights
        # carry transactions (empty heights append no chain block)
        for i in range(12):
            tx = make_transfer(clients[i % 4], clients[(i + 1) % 4].address,
                               1, nonce=i // 4)
            deployment.submit(tx, validator_id=0, at=0.4 * i)
        deployment.run_until(15.0)
        proposers = {
            b.proposer_id for b in deployment.validators[0].blockchain.chain[1:]
        }
        assert len(proposers) >= 2  # round-robin leadership

    def test_one_proposer_per_height(self):
        """§VI contrast with the superblock: every chain block comes from
        exactly one leader; per-height capacity is one block."""
        deployment, clients = build()
        deployment.start()
        for i in range(8):
            tx = make_transfer(clients[i % 4], clients[(i + 1) % 4].address,
                               1, nonce=i // 4)
            deployment.submit(tx, validator_id=i % 4, at=0.01 * i)
        deployment.run_until(8.0)
        chain = deployment.validators[0].blockchain
        # chain heights advance one block at a time (no superblocks)
        assert chain.height == len(chain.chain) - 1

    def test_view_change_on_live_network(self):
        """Kill one validator mid-run: heights it would have led are
        recovered by view changes; liveness continues for the rest."""
        deployment, clients = build(view_timeout=1.0)
        deployment.start()
        dead = deployment.validators[2]
        dead_on_message = dead.on_message
        deployment.sim.schedule(0.5, lambda: setattr(dead, "on_message", lambda m: None))
        txs = []
        for i in range(8):
            tx = make_transfer(clients[i % 4], clients[(i + 1) % 4].address,
                               1, nonce=i // 4)
            deployment.submit(tx, validator_id=(i % 4) if i % 4 != 2 else 0,
                              at=0.6 + 0.4 * i)
            txs.append(tx)
        deployment.run_until(30.0)
        alive = [v for v in deployment.validators if v is not dead]
        for tx in txs:
            assert all(v.blockchain.contains_tx(tx) for v in alive)
        # pairwise safety among the living
        for i, a in enumerate(alive):
            for b in alive[i + 1:]:
                assert a.blockchain.prefix_consistent_with(b.blockchain)

    def test_throughput_vs_srbb_same_conditions(self):
        """Engine-level §V-A shape: identical workload and committee —
        SRBB's superblock commits strictly more per unit time than the
        leader chain once more than one validator holds transactions."""
        from repro.core.deployment import Deployment

        clients, balances = fund_clients(4)
        load = [
            (make_transfer(clients[i % 4], clients[(i + 1) % 4].address,
                           1, nonce=i // 4), i % 4, 0.02 * i)
            for i in range(32)
        ]

        leader, _ = build()
        leader.start()
        for tx, target, at in load:
            leader.submit(tx, target, at=at)
        leader.run_until(2.0)
        leader_committed = sum(
            1 for tx, _, _ in load
            if leader.validators[0].blockchain.contains_tx(tx)
        )

        srbb = Deployment(
            protocol=params.ProtocolParams(n=4, rpm=False),
            topology=single_region_topology(4),
            extra_balances=balances,
            round_interval=0.3,
        )
        srbb.start()
        for tx, target, at in load:
            srbb.submit(tx, target, at=at)
        srbb.run_until(2.0)
        srbb_committed = sum(
            1 for tx, _, _ in load
            if srbb.validators[0].blockchain.contains_tx(tx)
        )
        assert srbb_committed >= leader_committed
