"""DIABLO-style benchmark harness for the message-level engine.

Reimplements the essence of the DIABLO suite: transactions are pre-signed,
sent open-loop on a fixed schedule to the blockchain's validators, and the
client-observed metrics — throughput, average commit latency and
transaction loss — are collected exactly as the paper defines them
(commit time = when sufficiently many validators have the transaction in
their chains; here the (f+1)-th correct validator, i.e. enough matching
confirmations that one is from a correct node).
"""

from repro.diablo.client import LoadSchedule, RoundRobinSubmitter, SingleNodeSubmitter
from repro.diablo.benchmark import BenchmarkResult, DiabloBenchmark
from repro.diablo.report import format_results_table, format_table1

__all__ = [
    "BenchmarkResult",
    "DiabloBenchmark",
    "LoadSchedule",
    "RoundRobinSubmitter",
    "SingleNodeSubmitter",
    "format_results_table",
    "format_table1",
]
