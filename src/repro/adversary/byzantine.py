"""Byzantine validator implementations (subclasses of ValidatorNode)."""

from __future__ import annotations

from typing import Iterable

from repro.core.block import Block, make_block
from repro.core.node import ValidatorNode
from repro.core.transaction import Transaction, make_transfer
from repro.crypto.keys import generate_keypair
from repro.net.transport import Message


def make_invalid_transactions(
    count: int,
    *,
    seed: int = 99,
    created_at: float = 0.0,
    amount: int = 1,
) -> list[Transaction]:
    """Invalid transactions per §V-B: senders whose balance is 0 ETH.

    The signatures are genuine, so only the balance checks (iv)/(v) fail —
    exactly the class of junk a flooding validator injects to waste peer
    resources without being trivially filterable by signature checks.
    """
    txs = []
    for i in range(count):
        broke = generate_keypair(seed * 1_000_003 + i)
        txs.append(
            make_transfer(
                broke,
                receiver=generate_keypair(seed + 1).address,
                amount=amount,
                nonce=0,
                created_at=created_at,
            )
        )
    return txs


#: behaviours a campaign can toggle, mirroring the ``byzantine_*``
#: schedule kinds (``byzantine_flood`` toggles ``"flood"``, etc.)
CAMPAIGN_BEHAVIOURS = ("flood", "equivocate", "withhold", "censor")


class CampaignValidator(ValidatorNode):
    """A validator whose misbehaviour is toggled at runtime.

    The chaos engine's ``byzantine_*`` schedule windows flip behaviour
    flags here through :meth:`set_misbehaviour` (see
    :class:`~repro.faults.controller.FaultController`).  With every flag
    off the node is byte-identical to a correct :class:`ValidatorNode`;
    the always-on adversaries below are thin subclasses that pre-arm one
    flag, so a campaign can sequence several behaviours on one node while
    staying inside the ≤ f fault budget.
    """

    def __init__(
        self,
        *args,
        flood_per_block: int = 100,
        flood_total: int | None = None,
        flood_seed: int = 99,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.flood_per_block = flood_per_block
        #: total invalid transactions the attacker sends (None = unbounded);
        #: Table I fixes this at 10 000
        self.flood_total = flood_total
        self._flood_seed = flood_seed
        self._flood_batch = 0
        self.invalid_txs_proposed = 0
        self.censored = 0
        self.withheld_msgs = 0
        self.flood_active = False
        self.censor_active = False
        self.withhold_active = False
        self.equivocate_active = False
        #: (behaviour, active, sim_time) toggle history, for tests/telemetry
        self.misbehaviour_log: list[tuple[str, bool, float]] = []

    # -- campaign control ----------------------------------------------------------

    def set_misbehaviour(self, behaviour: str, active: bool, **knobs) -> None:
        """Toggle one behaviour; intensity ``knobs`` apply to flooding
        (``per_block``, ``total``, ``seed``)."""
        if behaviour not in CAMPAIGN_BEHAVIOURS:
            raise ValueError(f"unknown misbehaviour {behaviour!r}")
        if behaviour == "flood":
            if knobs.get("per_block") is not None:
                self.flood_per_block = int(knobs["per_block"])
            if "total" in knobs:
                self.flood_total = knobs["total"]
            if knobs.get("seed") is not None:
                self._flood_seed = int(knobs["seed"])
        setattr(self, f"{behaviour}_active", bool(active))
        self.misbehaviour_log.append((behaviour, bool(active), self.sim.now))

    # -- behaviours ----------------------------------------------------------------

    def _receive(self, tx: Transaction, *, from_peer: bool) -> bool:
        if not self.flood_active:
            return super()._receive(tx, from_peer=from_peer)
        # A Byzantine flooder skips eager validation entirely (saving C)
        # and pools whatever arrives.
        if self.blockchain.contains_tx(tx) or tx in self.pool:
            return False
        self.pool.add(tx, now=self.sim.now)
        return True

    def _create_block(self, index: int) -> Block:
        if self.censor_active:
            self.pool.expire(self.sim.now)
            dropped = self.pool.take_batch(
                self.protocol.max_block_txs,
                gas_limit=self.protocol.block_gas_limit,
            )
            self.censored += len(dropped)
            return make_block(self.keypair, self.node_id, index, (), round=index)
        if not self.flood_active:
            return super()._create_block(index)
        self.pool.expire(self.sim.now)
        batch = self.pool.take_batch(
            self.protocol.max_block_txs, gas_limit=self.protocol.block_gas_limit
        )
        budget = self.flood_per_block
        if self.flood_total is not None:
            budget = min(budget, self.flood_total - self.invalid_txs_proposed)
        flood = make_invalid_transactions(
            max(0, budget),
            seed=self._flood_seed + self._flood_batch,
            created_at=self.sim.now,
        )
        self._flood_batch += 1
        self.invalid_txs_proposed += len(flood)
        return make_block(
            self.keypair, self.node_id, index, batch + flood, round=index
        )

    def _send_consensus_wire(self, cmsg) -> None:
        if self.withhold_active:
            from repro.consensus.messages import MsgKind

            self.withheld_msgs += (
                len(cmsg.value) if cmsg.kind is MsgKind.BATCH else 1
            )
            return
        super()._send_consensus_wire(cmsg)

    def _start_round(self, index: int) -> None:
        if not self.equivocate_active:
            return super()._start_round(index)
        if index in self._proposed:
            return
        self._proposed.add(index)
        consensus = self._consensus_for(index)
        block_a = self._create_block(index)
        block_b = make_block(
            self.keypair,
            self.node_id,
            index,
            make_invalid_transactions(1, seed=index, created_at=self.sim.now),
            round=index,
        )
        # Bypass the uniform RBC broadcast: hand-deliver conflicting SENDs.
        from repro.consensus.messages import ConsensusMessage, MsgKind
        from repro.core.node import CONSENSUS_KIND

        for dst in self.network.node_ids:
            block = block_a if dst % 2 == 0 else block_b
            cmsg = ConsensusMessage(
                kind=MsgKind.RBC_SEND,
                index=index,
                instance=self.node_id,
                round=0,
                value=block,
                sender=self.node_id,
            )
            msg = Message(
                kind=CONSENSUS_KIND,
                payload=cmsg,
                sender=self.node_id,
                size_bytes=cmsg.approx_size(),
            )
            if dst == self.node_id:
                consensus.on_message(cmsg)
            else:
                self.network.send(self.node_id, dst, msg)
        self.sim.schedule(self.proposer_timeout, self._round_timeout, index)


class FloodingValidator(CampaignValidator):
    """Skips eager validation and floods blocks with invalid transactions.

    Every proposal it makes carries ``flood_per_block`` invalid
    transactions in addition to whatever legitimate transactions it
    received (a rational attacker still wants its fees).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.flood_active = True


class CensoringValidator(CampaignValidator):
    """Accepts client transactions but never includes them in blocks.

    Matching §VI: under TVPR, a transaction sent only to this validator is
    censored until the client resubmits elsewhere.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.censor_active = True


class CrashValidator(ValidatorNode):
    """Participates normally until ``crash_at`` then goes silent forever."""

    def __init__(self, *args, crash_at: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.crash_at = crash_at

    @property
    def crashed(self) -> bool:
        return self.sim.now >= self.crash_at

    def on_message(self, msg: Message) -> None:
        if self.crashed:
            return
        super().on_message(msg)

    def _start_round(self, index: int) -> None:
        if self.crashed:
            return
        super()._start_round(index)

    def submit_transaction(self, tx: Transaction) -> bool:
        if self.crashed:
            return False
        return super().submit_transaction(tx)


class EquivocatingProposer(CampaignValidator):
    """Sends one proposal to even-numbered peers and a different one to
    odd-numbered peers.  Bracha's echo quorum ensures at most one of the
    two can gather 2f+1 echoes, so correct nodes never deliver both."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.equivocate_active = True
