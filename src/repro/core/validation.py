"""Eager and lazy transaction validation (§II-B, §IV-D).

* **Eager validation** — performed when a transaction arrives from a client
  (and, in modern-blockchain mode, from peers): signature, size limit,
  nonce plausibility, gas affordability, balance coverage.  It is the
  expensive check — the signature verification dominates.
* **Lazy validation** — performed just before execution: nonce exactness,
  gas affordability, balance coverage.  No signature check (that happens at
  execution, raising ``ErrInvalidSig``-equivalent errors), so it is cheap.

Both return a :class:`ValidationOutcome` rather than raising, because
validators *count* failures (they feed RPM reports and DIABLO loss metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import params
from repro.core.transaction import Transaction
from repro.crypto.keys import recover_check
from repro.telemetry import timed

#: How far ahead of the account nonce the pool accepts transactions
#: (Geth tolerates gaps in the queued region; we use a simple window).
NONCE_WINDOW = 1024


@dataclass(frozen=True)
class ValidationOutcome:
    """Result of a validation pass."""

    ok: bool
    error_code: str | None = None

    def __bool__(self) -> bool:
        return self.ok


_OK = ValidationOutcome(True)


def _fail(code: str) -> ValidationOutcome:
    return ValidationOutcome(False, code)


@timed("srbb_eager_validate_seconds", "wall time per eager validation")
def eager_validate(
    tx: Transaction,
    state,
    protocol: params.ProtocolParams | None = None,
) -> ValidationOutcome:
    """Full admission check for a transaction entering the pool.

    ``state`` is a :class:`~repro.vm.state.WorldState` (duck-typed to avoid
    an import cycle).  Checks, in the paper's order: (i) signature,
    (ii) size, (iii) nonce window, (iv) gas affordability, (v) balance.
    """
    protocol = protocol or params.ProtocolParams()
    # (i) properly signed
    if tx.signature is None or tx.public_key is None:
        return _fail("invalid-sig")
    if not recover_check(tx.public_key, tx.signing_payload(), tx.signature, tx.sender):
        return _fail("invalid-sig")
    # (ii) size limit
    if tx.encoded_size() > protocol.max_tx_size:
        return _fail("oversized")
    # (iii) nonce: not in the past, not absurdly in the future
    current = state.nonce_of(tx.sender)
    if tx.nonce < current:
        return _fail("bad-nonce")
    if tx.nonce > current + NONCE_WINDOW:
        return _fail("bad-nonce")
    # (iv) gas cost covered + (v) amount covered
    balance = state.balance_of(tx.sender)
    if balance < tx.fee_cap():
        return _fail("insufficient-gas")
    if balance < tx.max_cost():
        return _fail("insufficient-balance")
    if tx.gas_limit > protocol.block_gas_limit:
        return _fail("insufficient-gas")
    return _OK


def lazy_validate(
    tx: Transaction,
    state,
    protocol: params.ProtocolParams | None = None,
) -> ValidationOutcome:
    """Pre-execution check: (iii) exact nonce, (iv) gas, (v) balance.

    Deliberately weaker than eager validation — no signature or size check
    (§IV-D: "lazy validation checks (iii), (iv), (v) whereas the execution
    checks (i) and (ii)").
    """
    protocol = protocol or params.ProtocolParams()
    if tx.nonce != state.nonce_of(tx.sender):
        return _fail("bad-nonce")
    balance = state.balance_of(tx.sender)
    if balance < tx.fee_cap():
        return _fail("insufficient-gas")
    if balance < tx.max_cost():
        return _fail("insufficient-balance")
    return _OK
