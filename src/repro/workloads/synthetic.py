"""Synthetic traces: constants, Poisson, bursts, ramps, flooding mixes."""

from __future__ import annotations

import numpy as np

from repro.adversary.byzantine import make_invalid_transactions
from repro.core.transaction import Transaction, make_transfer
from repro.crypto.keys import generate_keypair
from repro.workloads.trace import RequestFactory, Trace


def constant_trace(tps: int, duration_s: int, *, name: str | None = None) -> Trace:
    """Exactly ``tps`` requests every second."""
    return Trace(
        name=name or f"constant-{tps}",
        counts_per_second=np.full(duration_s, tps, dtype=np.int64),
    )


def poisson_trace(
    mean_tps: float, duration_s: int, *, seed: int = 1, name: str | None = None
) -> Trace:
    """Poisson arrivals with the given mean rate."""
    rng = np.random.default_rng(seed)
    return Trace(
        name=name or f"poisson-{mean_tps:g}",
        counts_per_second=rng.poisson(mean_tps, size=duration_s).astype(np.int64),
    )


def burst_trace(
    base_tps: int,
    burst_tps: int,
    duration_s: int,
    *,
    burst_at: int = 10,
    burst_len: int = 1,
    name: str | None = None,
) -> Trace:
    """Constant base load with one rectangular burst."""
    counts = np.full(duration_s, base_tps, dtype=np.int64)
    counts[burst_at : burst_at + burst_len] = burst_tps
    return Trace(name=name or f"burst-{base_tps}-{burst_tps}", counts_per_second=counts)


def ramp_trace(
    start_tps: int, end_tps: int, duration_s: int, *, name: str | None = None
) -> Trace:
    """Linear ramp from ``start_tps`` to ``end_tps`` (saturation sweeps)."""
    counts = np.linspace(start_tps, end_tps, duration_s).round().astype(np.int64)
    return Trace(name=name or f"ramp-{start_tps}-{end_tps}", counts_per_second=counts)


def transfer_request_factory(
    *, clients: int = 32, seed: int = 900, amount: int = 1
) -> RequestFactory:
    """Plain native-payment transactions between funded synthetic clients."""
    keypairs = [generate_keypair(seed * 10_000 + i) for i in range(clients)]
    nonces = [0] * clients

    def build(i: int, send_time: float) -> Transaction:
        c = i % clients
        nonce = nonces[c]
        nonces[c] += 1
        return make_transfer(
            keypairs[c],
            receiver=keypairs[(c + 1) % clients].address,
            amount=amount,
            nonce=nonce,
            created_at=send_time,
        )

    build.keypairs = keypairs  # type: ignore[attr-defined]
    build.cache_key = ("transfer", clients, seed, amount)  # type: ignore[attr-defined]
    return build


def flooding_mix(
    valid_count: int,
    invalid_count: int,
    *,
    send_rate_tps: float = 15_000.0,
    clients: int = 32,
    seed: int = 950,
) -> list[Transaction]:
    """The Table I workload: interleaved valid and invalid transactions.

    ``valid_count`` funded transfers and ``invalid_count`` zero-balance
    transfers are interleaved proportionally and timestamped at the given
    open-loop send rate (paper: 20 K valid + 10 K invalid at 15 000 TPS).
    """
    factory = transfer_request_factory(clients=clients, seed=seed)
    valid = [factory(i, 0.0) for i in range(valid_count)]
    invalid = make_invalid_transactions(invalid_count, seed=seed + 1)
    mixed: list[Transaction] = []
    ratio = invalid_count / valid_count if valid_count else 1.0
    vi = ii = 0
    credit = 0.0
    while vi < len(valid) or ii < len(invalid):
        if vi < len(valid):
            mixed.append(valid[vi])
            vi += 1
            credit += ratio
        while credit >= 1.0 and ii < len(invalid):
            mixed.append(invalid[ii])
            ii += 1
            credit -= 1.0
        if vi >= len(valid):
            while ii < len(invalid):
                mixed.append(invalid[ii])
                ii += 1
    # Stamp open-loop send times.
    out = []
    for i, tx in enumerate(mixed):
        send_time = i / send_rate_tps
        out.append(_restamp(tx, send_time))
    return out


def _restamp(tx: Transaction, created_at: float) -> Transaction:
    """Copy a transaction with a new client timestamp (keeps signature:
    created_at is not part of the signed payload, matching DIABLO's
    pre-signed schedules)."""
    return Transaction(
        tx_type=tx.tx_type,
        sender=tx.sender,
        receiver=tx.receiver,
        amount=tx.amount,
        nonce=tx.nonce,
        gas_limit=tx.gas_limit,
        gas_price=tx.gas_price,
        payload=tx.payload,
        public_key=tx.public_key,
        signature=tx.signature,
        padding=tx.padding,
        created_at=created_at,
        uid=tx.uid,
    )


def factory_balances(factory: RequestFactory, balance: int = 10**15) -> dict[str, int]:
    """Genesis balances for a factory's synthetic clients."""
    keypairs = getattr(factory, "keypairs", None)
    if keypairs is None:
        raise ValueError("factory does not expose its keypairs")
    return {kp.address: balance for kp in keypairs}
