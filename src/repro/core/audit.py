"""Chain auditing: full offline re-verification of a replica.

The trust-nothing counterpart of :mod:`repro.vm.sync`'s fast-sync — an
auditor takes another node's chain and replays it from genesis:

* structural checks — parent-hash linkage, per-block certificate over the
  exact transaction set, proposer membership in the committee;
* semantic checks — re-execute every transaction on a fresh state built
  from the same genesis; every transaction in a committed block must
  re-execute successfully (the validity property, checked after the
  fact), and the final state root must match the audited replica's.

Used by tests as the deepest cross-validator consistency check and
available to operators as ``audit_chain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import params
from repro.core.block import Block, SuperBlock
from repro.core.blockchain import Blockchain
from repro.vm.state import WorldState


@dataclass
class AuditReport:
    """Outcome of one chain audit."""

    blocks_checked: int = 0
    txs_replayed: int = 0
    ok: bool = True
    problems: list[str] = field(default_factory=list)
    #: non-fatal observations — e.g. blocks whose certificate covers a
    #: *superset* of their transactions because the commit loop discarded
    #: invalid ones (Alg. 1 line 23): attribution for those blocks rests
    #: on consensus, not the certificate
    warnings: list[str] = field(default_factory=list)
    final_root_matches: bool | None = None

    def fail(self, problem: str) -> None:
        self.ok = False
        self.problems.append(problem)

    def warn(self, warning: str) -> None:
        self.warnings.append(warning)


def audit_chain(
    chain: Blockchain,
    *,
    genesis: Callable[[WorldState], None],
    committee: "set[str] | frozenset[str] | None" = None,
    protocol: params.ProtocolParams | None = None,
    registry=None,
    coinbase_of: Callable[[int], str] | None = None,
) -> AuditReport:
    """Re-verify ``chain`` from scratch; returns a full report.

    ``genesis`` must rebuild the same initial state the audited node
    started from; ``committee`` (addresses) enables proposer-membership
    checks on every certificate; ``coinbase_of`` must match the audited
    deployment's fee routing or the final roots will (correctly) differ.
    """
    report = AuditReport()
    blocks = chain.chain
    if not blocks:
        report.fail("empty chain (missing genesis)")
        return report

    # --- structural pass -----------------------------------------------------
    for height in range(1, len(blocks)):
        block = blocks[height]
        report.blocks_checked += 1
        parent = blocks[height - 1]
        if block.parent_hash != parent.block_hash:
            report.fail(f"height {height}: broken parent linkage")
        if block.certificate is None:
            report.fail(f"height {height}: missing certificate")
            continue
        if not block.certificate.verify_against(block.transactions):
            # A filtered block (invalid txs discarded at commit) keeps the
            # certificate over the ORIGINAL transaction set, so an exact
            # mismatch is expected under flooding; the replay below is
            # what establishes the kept transactions' validity.  Exact
            # per-tx attribution for filtered blocks would need inclusion
            # proofs against the certified root, which the chain prunes.
            report.warn(
                f"height {height}: certificate covers a superset "
                f"(block was filtered at commit, or tampered — replay decides)"
            )
        if committee is not None:
            proposer = block.certificate.proposer_address()
            if proposer not in committee:
                report.fail(
                    f"height {height}: proposer {proposer[:8]}… not in committee"
                )

    # --- semantic replay --------------------------------------------------------
    state = WorldState()
    genesis(state)
    state.commit()
    replica = Blockchain(
        protocol=protocol or chain.protocol, state=state
    )
    if registry is not None:
        replica.executor.registry = registry
    else:
        replica.executor.registry = chain.executor.registry
    for height in range(1, len(blocks)):
        block = blocks[height]
        stub = Block(
            proposer_id=block.proposer_id,
            index=height,
            transactions=block.transactions,
            certificate=block.certificate,
            round=block.round,
        )
        result = replica.commit_superblock(
            SuperBlock(index=height, blocks=(stub,)), coinbase_of=coinbase_of
        )
        report.txs_replayed += len(block.transactions)
        if result.discarded:
            # Validity: committed blocks contain only valid transactions,
            # so a replay must not reject anything.
            report.fail(
                f"height {height}: {len(result.discarded)} committed "
                f"transaction(s) fail replay "
                f"({result.discarded[0][1]})"
            )

    report.final_root_matches = (
        replica.state.state_root() == chain.state.state_root()
    )
    if not report.final_root_matches:
        report.fail("final state root mismatch after replay")
    return report
