"""Conflict analysis: access sets, conflict graph, parallel scheduling."""

from hypothesis import given, strategies as st

from repro.core.transaction import make_invoke, make_transfer
from repro.crypto.keys import generate_keypair
from repro.vm.conflicts import (
    access_set,
    analyze_block,
    blocks_are_conflict_serialized,
    conflict_graph,
)
from repro.vm.executor import native_address_for

KPS = [generate_keypair(600 + i) for i in range(6)]
EXCHANGE = native_address_for("exchange")


def transfer(i, j, nonce=0):
    return make_transfer(KPS[i], KPS[j].address, 1, nonce=nonce)


def trade(i, symbol, nonce=0):
    return make_invoke(KPS[i], EXCHANGE, "trade", (symbol, 100, 1, "buy"), nonce=nonce)


class TestAccessSets:
    def test_transfer_touches_both_accounts(self):
        acc = access_set(transfer(0, 1))
        assert f"acct:{KPS[0].address}" in acc.writes  # sender debits (r/w)
        assert f"acct:{KPS[1].address}" in acc.commutes  # receiver credit

    def test_same_sender_conflicts(self):
        a = access_set(transfer(0, 1))
        b = access_set(transfer(0, 2))
        assert a.conflicts_with(b)

    def test_disjoint_transfers_do_not_conflict(self):
        a = access_set(transfer(0, 1))
        b = access_set(transfer(2, 3))
        assert not a.conflicts_with(b)

    def test_shared_receiver_commutes(self):
        """Two credits to the same receiver are commutative deltas — no
        conflict (Block-STM-style), unlike a write/read overlap."""
        a = access_set(transfer(0, 2))
        b = access_set(transfer(1, 2))
        assert not a.conflicts_with(b)

    def test_credit_vs_spend_conflicts(self):
        """A credit to an account conflicts with that account SPENDING
        (the spender reads and writes its own balance)."""
        credit = access_set(transfer(0, 2))
        spend = access_set(transfer(2, 3))
        assert credit.conflicts_with(spend)

    def test_same_symbol_trades_conflict(self):
        assert access_set(trade(0, "AAPL")).conflicts_with(access_set(trade(1, "AAPL")))

    def test_different_symbol_trades_do_not_conflict(self):
        assert not access_set(trade(0, "AAPL")).conflicts_with(
            access_set(trade(1, "GOOG"))
        )

    def test_readonly_call_vs_writer_conflicts(self):
        reader = make_invoke(KPS[0], EXCHANGE, "last_price", ("AAPL",), nonce=0)
        writer = trade(1, "AAPL")
        assert access_set(reader).conflicts_with(access_set(writer))

    def test_two_readers_do_not_conflict(self):
        r1 = make_invoke(KPS[0], EXCHANGE, "last_price", ("AAPL",), nonce=0)
        r2 = make_invoke(KPS[1], EXCHANGE, "volume", ("AAPL",), nonce=0)
        assert not access_set(r1).conflicts_with(access_set(r2))


class TestAnalysis:
    def test_conflict_graph_edges(self):
        txs = [transfer(0, 1), transfer(0, 2), transfer(3, 4)]
        graph = conflict_graph(txs)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(1, 2)

    def test_independent_txs_one_group(self):
        report = analyze_block([transfer(0, 1), transfer(2, 3), transfer(4, 5)])
        assert report.parallel_depth == 1
        assert report.speedup == 3.0
        assert report.conflict_count == 0

    def test_fully_serial_chain(self):
        txs = [transfer(0, 1, nonce=i) for i in range(4)]
        report = analyze_block(txs)
        assert report.parallel_depth == 4
        assert report.speedup == 1.0

    def test_schedule_respects_order(self):
        """A tx lands in a group strictly after conflicting predecessors."""
        txs = [transfer(0, 1), transfer(2, 3), transfer(1, 2)]
        report = analyze_block(txs)
        group_of = {i: g for g, members in enumerate(report.groups) for i in members}
        assert group_of[2] > group_of[0]
        assert group_of[2] > group_of[1]

    def test_empty_block(self):
        report = analyze_block([])
        assert report.tx_count == 0
        assert report.speedup == 1.0

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
    ), max_size=15))
    def test_property_schedule_covers_all(self, pairs):
        txs = [transfer(a, b if b != a else (a + 1) % 6) for a, b in pairs]
        assert blocks_are_conflict_serialized(txs)

    @given(st.lists(st.sampled_from(["AAPL", "GOOG", "MSFT"]), min_size=1, max_size=12))
    def test_property_groups_internally_conflict_free(self, symbols):
        txs = [trade(i % 6, sym, nonce=i // 6) for i, sym in enumerate(symbols)]
        report = analyze_block(txs)
        graph = conflict_graph(txs)
        for group in report.groups:
            for a in group:
                for b in group:
                    if a != b:
                        assert not graph.has_edge(a, b)


class TestDeployAccessSet:
    def test_deploy_writes_created_account(self):
        from repro.core.transaction import make_deploy
        from repro.vm.executor import contract_address_for

        tx = make_deploy(KPS[0], b"\x01\x02", nonce=3)
        created = contract_address_for(KPS[0].address, 3)
        acc = access_set(tx)
        assert f"acct:{created}" in acc.writes
        assert f"store:{created}" in acc.writes

    def test_deploy_conflicts_with_transfer_to_created_address(self):
        from repro.core.transaction import make_deploy, make_transfer
        from repro.vm.executor import contract_address_for

        deploy = make_deploy(KPS[0], b"\x01", nonce=0)
        created = contract_address_for(KPS[0].address, 0)
        credit = make_transfer(KPS[1], created, 5, nonce=0)
        assert access_set(deploy).conflicts_with(access_set(credit))

    def test_deploy_conflicts_with_invoke_of_created_contract(self):
        from repro.core.transaction import make_deploy, make_invoke
        from repro.vm.executor import contract_address_for

        deploy = make_deploy(KPS[0], b"\x01", nonce=0)
        created = contract_address_for(KPS[0].address, 0)
        call = make_invoke(KPS[1], created, "trade", ("AAPL", 1, 1), nonce=0)
        assert access_set(deploy).conflicts_with(access_set(call))

    def test_distinct_deploys_stay_parallel(self):
        from repro.core.transaction import make_deploy

        a = access_set(make_deploy(KPS[0], b"\x01", nonce=0))
        b = access_set(make_deploy(KPS[1], b"\x02", nonce=0))
        assert not a.conflicts_with(b)


class TestScopeHierarchy:
    def test_coarse_invoke_conflicts_with_fine_scope(self):
        # An unscoped call owns the whole contract store; a per-symbol
        # trade must order against it even though the keys differ.
        coarse = make_invoke(KPS[0], EXCHANGE, "init", (), nonce=0)
        fine = trade(1, "AAPL")
        assert access_set(coarse).conflicts_with(access_set(fine))

    def test_fine_scopes_stay_parallel(self):
        assert not access_set(trade(0, "AAPL")).conflicts_with(
            access_set(trade(1, "MSFT"))
        )


class TestOpaqueFunctions:
    def test_complete_ride_is_opaque(self):
        mobility = native_address_for("mobility")
        tx = make_invoke(KPS[0], mobility, "complete_ride", (1,), nonce=0)
        acc = access_set(tx)
        assert acc.opaque
        # opaque conflicts even with an otherwise-disjoint transfer
        assert acc.conflicts_with(access_set(transfer(1, 2)))

    def test_unknown_function_is_opaque(self):
        tx = make_invoke(KPS[0], EXCHANGE, "mystery_fn", (), nonce=0)
        assert access_set(tx).opaque

    def test_known_functions_are_not_opaque(self):
        assert not access_set(trade(0, "AAPL")).opaque

    def test_opaque_serializes_whole_block(self):
        mobility = native_address_for("mobility")
        txs = [
            transfer(0, 1),
            make_invoke(KPS[2], mobility, "complete_ride", (1,), nonce=0),
            transfer(3, 4),
        ]
        report = analyze_block(txs)
        assert report.parallel_depth == 3


class TestCoinbaseCommute:
    def test_coinbase_sender_serializes(self):
        coinbase = KPS[0].address
        txs = [transfer(0, 1), transfer(2, 3)]
        assert analyze_block(txs).parallel_depth == 1
        assert analyze_block(txs, coinbase=coinbase).parallel_depth == 2

    def test_plain_transfers_unaffected_by_foreign_coinbase(self):
        txs = [transfer(0, 1), transfer(2, 3)]
        assert analyze_block(txs, coinbase="f" * 40).parallel_depth == 1


class TestScheduleVerification:
    def test_derived_schedule_verifies(self):
        txs = [transfer(0, 1), transfer(0, 2, nonce=1), transfer(2, 3)]
        assert blocks_are_conflict_serialized(txs)

    def test_corrupted_schedule_fails(self):
        # 0 and 1 share a sender (conflict); putting them in one group —
        # or swapping their group order — must be rejected.
        txs = [transfer(0, 1), transfer(0, 2, nonce=1), transfer(2, 3)]
        assert not blocks_are_conflict_serialized(txs, [[0, 1, 2]])
        assert not blocks_are_conflict_serialized(txs, [[1, 2], [0]])

    def test_incomplete_or_duplicated_cover_fails(self):
        txs = [transfer(0, 1), transfer(2, 3)]
        assert not blocks_are_conflict_serialized(txs, [[0]])
        assert not blocks_are_conflict_serialized(txs, [[0, 1], [1]])

    def test_valid_alternative_schedule_verifies(self):
        # Spreading independent txs over extra groups is legal, just slow.
        txs = [transfer(0, 1), transfer(2, 3)]
        assert blocks_are_conflict_serialized(txs, [[0], [1]])
