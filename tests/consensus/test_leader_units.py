"""Leader-protocol unit details: message sizes, leader rotation math,
timer/view bookkeeping."""

from repro.consensus.leader import (
    COMMIT,
    PREPARE,
    PROPOSAL,
    LeaderConsensus,
    LeaderMessage,
)
from repro.core.block import make_block
from repro.core.transaction import make_transfer
from repro.crypto.keys import generate_keypair


def make_instance(my_id=0, index=1, **kw):
    sent = []
    decided = []
    instance = LeaderConsensus(
        n=4, f=1, my_id=my_id, index=index,
        send=sent.append, on_decide=decided.append, **kw,
    )
    return instance, sent, decided


class TestLeaderMath:
    def test_leader_rotates_with_index(self):
        instance, _, _ = make_instance(index=5)
        assert instance.leader_of(0) == (5 + 0) % 4
        assert instance.leader_of(3) == (5 + 3) % 4

    def test_is_leader(self):
        instance, _, _ = make_instance(my_id=1, index=0)
        assert instance.is_leader(view=1)
        assert not instance.is_leader(view=0)


class TestMessageSizes:
    def test_proposal_carries_block_size(self):
        kp = generate_keypair(1)
        txs = [make_transfer(kp, "aa" * 20, 1, nonce=i) for i in range(5)]
        block = make_block(kp, 0, 1, txs)
        msg = LeaderMessage(kind=PROPOSAL, index=1, view=0, payload=block, sender=0)
        assert msg.approx_size() > block.encoded_size()

    def test_vote_is_small(self):
        msg = LeaderMessage(kind=PREPARE, index=1, view=0,
                            payload=b"\x00" * 32, sender=0)
        assert msg.approx_size() < 200


class TestVoteBookkeeping:
    def test_prepare_quorum_triggers_commit_broadcast(self):
        instance, sent, _ = make_instance(my_id=3, index=1)
        kp = generate_keypair(2)
        block = make_block(kp, 1, 1, [])
        instance.on_message(LeaderMessage(
            kind=PROPOSAL, index=1, view=0, payload=block, sender=1))
        # own prepare already sent; add two more → quorum of 3
        for sender in (0, 1):
            instance.on_message(LeaderMessage(
                kind=PREPARE, index=1, view=0,
                payload=block.block_hash, sender=sender))
        kinds = [m.kind for m in sent]
        assert PREPARE in kinds and COMMIT in kinds

    def test_commits_before_proposal_decide_on_arrival(self):
        """Votes outrunning the proposal must not strand the replica."""
        instance, _, decided = make_instance(my_id=3, index=1)
        kp = generate_keypair(2)
        block = make_block(kp, 1, 1, [])
        for sender in (0, 1, 2):
            instance.on_message(LeaderMessage(
                kind=COMMIT, index=1, view=0,
                payload=block.block_hash, sender=sender))
        assert not decided  # no proposal yet
        instance.on_message(LeaderMessage(
            kind=PROPOSAL, index=1, view=0, payload=block, sender=1))
        assert decided and decided[0].block_hash == block.block_hash

    def test_wrong_index_ignored(self):
        instance, sent, _ = make_instance()
        kp = generate_keypair(2)
        block = make_block(kp, 1, 1, [])
        instance.on_message(LeaderMessage(
            kind=PROPOSAL, index=9, view=0, payload=block, sender=1))
        assert instance._state(0).proposal is None

    def test_garbage_digest_ignored(self):
        instance, _, decided = make_instance()
        instance.on_message(LeaderMessage(
            kind=COMMIT, index=1, view=0, payload="not-bytes", sender=0))
        assert not decided
