"""Tracer spans/events, JSONL dump, global no-op behavior."""

import json

from repro import telemetry
from repro.telemetry import Tracer, get_tracer, set_tracer


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestTracer:
    def test_event_recorded_relative_to_creation(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.t += 1.5
        tracer.event("node.commit", node=0, committed=3)
        (rec,) = tracer.records
        assert rec == {
            "ts": 1.5,
            "type": "event",
            "name": "node.commit",
            "attrs": {"node": 0, "committed": 3},
        }

    def test_span_duration_and_result_attrs(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("sim.run", chain="srbb") as attrs:
            clock.t += 2.0
            attrs["committed"] = 10
        (rec,) = tracer.records
        assert rec["type"] == "span"
        assert rec["dur"] == 2.0
        assert rec["attrs"] == {"chain": "srbb", "committed": 10}

    def test_span_records_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError()
        except RuntimeError:
            pass
        assert tracer.records[0]["name"] == "boom"

    def test_disabled_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.event("x")
        with tracer.span("y"):
            pass
        assert tracer.records == []

    def test_dumps_jsonl_sorted(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):  # recorded at exit, ts = start
            clock.t += 1.0
            tracer.event("inner")
        lines = [json.loads(line) for line in tracer.dumps().splitlines()]
        assert [r["name"] for r in lines] == ["outer", "inner"]
        assert lines[0]["ts"] <= lines[1]["ts"]

    def test_dump_to_file(self, tmp_path):
        tracer = Tracer()
        tracer.event("a", k="v")
        path = tmp_path / "trace.jsonl"
        tracer.dump(str(path))
        assert json.loads(path.read_text().splitlines()[0])["name"] == "a"

    def test_clear_resets_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.t += 5.0
        tracer.event("old")
        tracer.clear()
        tracer.event("new")
        assert tracer.records[0]["ts"] == 0.0


class TestBoundedMemory:
    def test_ring_buffer_sheds_oldest(self):
        tracer = Tracer(max_records=3)
        for i in range(5):
            tracer.event(f"e{i}")
        assert [r["name"] for r in tracer.records] == ["e2", "e3", "e4"]
        assert tracer.dropped_records == 2

    def test_clear_resets_drop_counter(self):
        tracer = Tracer(max_records=1)
        tracer.event("a")
        tracer.event("b")
        tracer.clear()
        assert tracer.dropped_records == 0

    def test_stream_to_flushes_and_empties_buffer(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        tracer.stream_to(str(path), flush_every=2)
        tracer.event("a")
        tracer.event("b")  # hits flush_every -> flushed to disk
        assert tracer.records == []
        tracer.event("tail")
        tracer.close_stream()
        names = [json.loads(l)["name"] for l in path.read_text().splitlines()]
        assert names == ["a", "b", "tail"]
        assert tracer.stream_path is None

    def test_dump_to_stream_path_closes_stream(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        tracer.stream_to(str(path))
        tracer.event("only")
        tracer.dump(str(path))  # same path: finalize the stream, no rewrite
        assert tracer.stream_path is None
        assert json.loads(path.read_text())["name"] == "only"


class TestClearWhileSpansOpen:
    """clear() must not corrupt open spans (regression: satellite #3)."""

    def test_open_span_survives_clear(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.t += 1.0
            tracer.clear()
            clock.t += 2.0
        (rec,) = tracer.records
        assert rec["name"] == "outer"
        assert rec["dur"] >= 0.0  # clock rebased mid-span; never negative

    def test_sibling_span_after_clear_keeps_own_frame(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.clear()
            with tracer.span("inner"):
                assert tracer.current_span_id == "s2"
            # inner popped its own frame, outer's remains
            assert tracer.current_span_id == "s1"
        assert tracer.current_span_id is None

    def test_span_ids_not_reused_while_open(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.clear()
            # restart of the counter here would hand s1 (the live outer
            # span's ID) to the new span
            with tracer.span("inner"):
                pass
        ids = [r["span_id"] for r in tracer.records]
        assert len(ids) == len(set(ids))

    def test_clear_with_no_open_spans_restarts_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        with tracer.span("b"):
            pass
        assert tracer.records[0]["span_id"] == "s1"


class TestSpanIds:
    def test_deterministic_ids_and_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        with tracer.span("second"):
            pass
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["outer"]["span_id"] == "s1"
        assert by_name["inner"]["span_id"] == "s2"
        assert by_name["inner"]["parent_id"] == "s1"
        assert "parent_id" not in by_name["outer"]
        assert by_name["second"]["span_id"] == "s3"

    def test_events_tagged_with_enclosing_span(self):
        tracer = Tracer()
        tracer.event("orphan")
        with tracer.span("work"):
            tracer.event("child")
        by_name = {r["name"]: r for r in tracer.records}
        assert "span_id" not in by_name["orphan"]
        assert by_name["child"]["span_id"] == "s1"

    def test_current_span_id_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span_id is None
        with tracer.span("a"):
            assert tracer.current_span_id == "s1"
            with tracer.span("b"):
                assert tracer.current_span_id == "s2"
            assert tracer.current_span_id == "s1"
        assert tracer.current_span_id is None

    def test_clear_restarts_span_numbering(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        tracer.clear()
        with tracer.span("again"):
            pass
        assert tracer.records[0]["span_id"] == "s1"

    def test_module_level_current_span_id(self):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            assert telemetry.current_span_id() is None
            with telemetry.span("s"):
                assert telemetry.current_span_id() == "s1"
        finally:
            set_tracer(previous)


class TestGlobalTracer:
    def test_default_disabled(self):
        assert not get_tracer().enabled

    def test_module_level_helpers_noop_when_disabled(self):
        before = len(get_tracer().records)
        telemetry.event("ignored")
        with telemetry.span("ignored") as attrs:
            attrs["x"] = 1  # nullcontext still yields a dict
        assert len(get_tracer().records) == before

    def test_module_level_helpers_record_when_swapped(self):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            telemetry.event("e")
            with telemetry.span("s"):
                pass
        finally:
            set_tracer(previous)
        assert {r["name"] for r in fresh.records} == {"e", "s"}


class TestDroppedRecordsSurfacing:
    def test_dumps_appends_meta_trailer_when_truncated(self):
        tracer = Tracer(max_records=3)
        for i in range(5):
            tracer.event(f"e{i}")
        lines = [json.loads(l) for l in tracer.dumps().splitlines()]
        meta = lines[-1]
        assert meta["type"] == "meta"
        assert meta["name"] == "tracer.dropped"
        assert meta["dropped_records"] == 2
        assert meta["kept_records"] == 3
        # only the trailer; the kept records are unchanged
        assert [r["name"] for r in lines[:-1]] == ["e2", "e3", "e4"]

    def test_dumps_has_no_trailer_without_drops(self):
        tracer = Tracer()
        tracer.event("only")
        lines = [json.loads(l) for l in tracer.dumps().splitlines()]
        assert [r.get("name") for r in lines] == ["only"]

    def test_congestion_report_prints_truncation_line(self):
        from repro.analysis.congestion_report import build_congestion_report

        records = [
            {"type": "span", "name": "node.commit", "ts": 0.1, "dur": 0.05},
            {"type": "meta", "name": "tracer.dropped", "ts": 0.2,
             "dropped_records": 42, "kept_records": 1},
        ]
        text = build_congestion_report(trace_records=records)
        assert "dropped 42" in text
        assert "trace truncated" in text
        html = build_congestion_report(trace_records=records, html=True)
        assert "dropped 42" in html
        # no truncation -> no warning line
        clean = build_congestion_report(trace_records=records[:1])
        assert "truncated" not in clean
