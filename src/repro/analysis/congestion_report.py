"""Render saved observability artifacts into one congestion report.

``repro report --observatory obs.json --lifecycle lc.json --trace t.jsonl``
lands here: each input is optional, previously written by the CLI's
``--observatory-out`` / ``--lifecycle-out`` / ``--trace-out`` flags, and
the report combines whatever is present —

* **critical path** — lifecycle records fed through
  :func:`repro.telemetry.critical_path.analyze` (with ``exec_share``
  measured from the trace when one is supplied);
* **observatory** — congestion sample series as sparklines (terminal) or
  inline-SVG charts (HTML);
* **trace spans** — the busiest span names by total duration, a quick
  where-did-wall-time-go table.

Output is a plain-text terminal report or one self-contained HTML page
(zero external assets), chosen by the caller.
"""

from __future__ import annotations

import html as _html
import json

__all__ = [
    "load_observatory",
    "load_lifecycle",
    "load_trace",
    "build_congestion_report",
]


def load_observatory(path: str) -> "list[dict]":
    """Sample list from a ``CongestionObservatory.save`` file (or a bare
    JSON list of samples)."""
    with open(path) as fh:
        doc = json.load(fh)
    return doc.get("samples", []) if isinstance(doc, dict) else doc


def load_lifecycle(path: str) -> "list[dict]":
    """Lifecycle records from a ``--lifecycle-out`` file (a JSON list, or
    a mapping with a ``records`` key)."""
    with open(path) as fh:
        doc = json.load(fh)
    return doc.get("records", []) if isinstance(doc, dict) else doc


def load_trace(path: str) -> "list[dict]":
    """Tracer records from a ``--trace-out`` JSONL file."""
    from repro.telemetry.trace_event import load_jsonl

    return load_jsonl(path)


def _span_rows(trace_records: "list[dict]", top: int = 10) -> "list[tuple]":
    """(name, count, total_dur_s) for the ``top`` busiest span names."""
    totals: "dict[str, list[float]]" = {}
    for record in trace_records:
        if record.get("type") != "span":
            continue
        entry = totals.setdefault(record.get("name", "?"), [0, 0.0])
        entry[0] += 1
        entry[1] += float(record.get("dur", 0.0))
    rows = sorted(totals.items(), key=lambda kv: -kv[1][1])[:top]
    return [(name, int(c), t) for name, (c, t) in rows]


def _dropped_records(trace_records: "list[dict]") -> int:
    """Records the tracer's ring buffer shed, per the ``tracer.dropped``
    meta trailer stamped into truncated traces (0 when absent)."""
    for record in trace_records:
        if (
            record.get("type") == "meta"
            and record.get("name") == "tracer.dropped"
        ):
            return int(record.get("dropped_records", 0))
    return 0


def build_congestion_report(
    *,
    samples: "list[dict] | None" = None,
    lifecycle_records: "list[dict] | None" = None,
    trace_records: "list[dict] | None" = None,
    html: bool = False,
    title: str = "SRBB congestion report",
) -> str:
    """Assemble the report from whatever inputs are present."""
    critical = None
    if lifecycle_records:
        from repro.telemetry.critical_path import analyze

        critical = analyze(lifecycle_records, trace_records=trace_records)
    span_rows = _span_rows(trace_records) if trace_records else []
    dropped = _dropped_records(trace_records) if trace_records else 0
    if html:
        return _render_html(
            samples=samples, critical=critical, span_rows=span_rows,
            dropped=dropped, title=title,
        )
    return _render_text(
        samples=samples, critical=critical, span_rows=span_rows,
        dropped=dropped, title=title,
    )


def _render_text(*, samples, critical, span_rows, dropped=0, title) -> str:
    sections = [title, "=" * len(title)]
    if critical is not None:
        sections.append("")
        sections.append(critical.render_text())
    if samples is not None:
        from repro.telemetry.observatory import render_samples_text

        sections.append("")
        sections.append(render_samples_text(samples))
    if span_rows:
        sections.append("")
        sections.append("busiest spans (wall time)")
        sections.append(f"{'span':<24} {'count':>7} {'total':>10}")
        for name, count, total in span_rows:
            sections.append(f"{name:<24} {count:>7} {total:>9.3f}s")
    if dropped:
        sections.append("")
        sections.append(
            f"⚠ trace truncated: ring buffer dropped {dropped} oldest "
            "records — span counts above under-count the early run"
        )
    if len(sections) == 2:
        sections.append("no inputs — pass --observatory/--lifecycle/--trace")
    return "\n".join(sections) + "\n"


def _render_html(*, samples, critical, span_rows, dropped=0, title) -> str:
    body = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        "<style>body{font:13px monospace;background:#181818;color:#ddd;"
        "margin:2em}h1{font-size:16px}h2{font-size:14px;color:#9c9}"
        "pre{background:#111;border:1px solid #333;padding:1em}"
        "figure{margin:1em 0}figcaption{margin-bottom:4px;color:#9c9}"
        "table{border-collapse:collapse}td,th{border:1px solid #333;"
        "padding:2px 8px;text-align:right}th{color:#9c9}</style>"
        "</head><body>",
        f"<h1>{_html.escape(title)}</h1>",
    ]
    if critical is not None:
        body.append("<h2>critical path</h2>")
        body.append(f"<pre>{_html.escape(critical.render_text())}</pre>")
    if samples is not None:
        from repro.telemetry.observatory import render_samples_figures

        body.append("<h2>congestion observatory</h2>")
        body.append(render_samples_figures(samples))
    if span_rows:
        body.append("<h2>busiest spans (wall time)</h2>")
        body.append("<table><tr><th>span</th><th>count</th>"
                    "<th>total</th></tr>")
        for name, count, total in span_rows:
            body.append(
                f"<tr><td>{_html.escape(name)}</td><td>{count}</td>"
                f"<td>{total:.3f}s</td></tr>"
            )
        body.append("</table>")
    if dropped:
        body.append(
            f"<p>⚠ trace truncated: ring buffer dropped {dropped} oldest "
            "records — span counts above under-count the early run</p>"
        )
    if critical is None and samples is None and not span_rows:
        body.append("<p>no inputs — pass --observatory/--lifecycle/"
                    "--trace</p>")
    body.append("</body></html>")
    return "\n".join(body) + "\n"
