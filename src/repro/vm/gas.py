"""Gas schedule for the SVM.

Costs follow the EVM's relative ordering (storage writes ≫ storage reads ≫
arithmetic) so workloads exhibit realistic execution-cost distributions.
"""

from __future__ import annotations

from repro.vm.opcodes import Op

#: Intrinsic cost charged before executing any transaction (EVM: 21000).
G_TX = 21_000
#: Extra intrinsic cost per payload byte (EVM non-zero calldata byte: 16).
G_TXDATA_BYTE = 16
#: Extra intrinsic cost for contract creation (EVM: 32000).
G_CREATE = 32_000

GAS_TABLE: dict[Op, int] = {
    Op.STOP: 0,
    Op.ADD: 3,
    Op.MUL: 5,
    Op.SUB: 3,
    Op.DIV: 5,
    Op.MOD: 5,
    Op.ADDMOD: 8,
    Op.EXP: 10,
    Op.LT: 3,
    Op.GT: 3,
    Op.EQ: 3,
    Op.ISZERO: 3,
    Op.AND: 3,
    Op.OR: 3,
    Op.XOR: 3,
    Op.NOT: 3,
    Op.SHA3: 30,
    Op.ADDRESS: 2,
    Op.BALANCE: 100,
    Op.CALLER: 2,
    Op.CALLVALUE: 2,
    Op.CALLDATALOAD: 3,
    Op.CALLDATASIZE: 2,
    Op.POP: 2,
    Op.MLOAD: 3,
    Op.MSTORE: 3,
    Op.SLOAD: 100,
    Op.SSTORE: 5_000,
    Op.JUMP: 8,
    Op.JUMPI: 10,
    Op.PC: 2,
    Op.GAS: 2,
    Op.JUMPDEST: 1,
    Op.PUSH: 3,
    Op.DUP: 3,
    Op.SWAP: 3,
    Op.LOG: 375,
    Op.RETURN: 0,
    Op.REVERT: 0,
    Op.TRANSFER: 9_000,
}

#: Flat charge for a native-contract call, plus per-op costs metered inside.
G_NATIVE_CALL = 700


def intrinsic_gas(payload_bytes: int, *, is_create: bool = False) -> int:
    """Intrinsic gas for a transaction with ``payload_bytes`` of data."""
    gas = G_TX + payload_bytes * G_TXDATA_BYTE
    if is_create:
        gas += G_CREATE
    return gas
