"""Point-to-point message transport with partial synchrony.

Delivery delay = base region latency + serialization (size / bandwidth) +
jitter.  Before the Global Stabilization Time (GST) the adversary may
stretch delays up to ``pre_gst_max_delay`` (messages are *never* lost —
partial synchrony per Dwork/Lynch/Stockmeyer); after GST every delay is
bounded by ``delta``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Callable, Protocol

import numpy as np

from repro import params, telemetry
from repro.errors import NetworkError
from repro.net.simulator import Simulator
from repro.net.topology import Topology

#: global-registry mirrors of the traffic counters — §III's bandwidth
#: evidence (and Fig. 1's validation-count claim) as a direct export.
#: Children are keyed (kind, src_region, dst_region) so each message is
#: counted exactly once and the paper's cross-region bandwidth asymmetry
#: (10-region deployment, §V) is visible in dumps; aggregate per kind or
#: per region pair by summing over the other labels.
_metrics = telemetry.bind(
    lambda reg: SimpleNamespace(
        messages=reg.counter(
            "srbb_net_messages_total", "messages sent over the simulated network"
        ),
        bytes=reg.counter(
            "srbb_net_bytes_total", "bytes sent over the simulated network"
        ),
        logical=reg.counter(
            "srbb_net_logical_messages_total",
            "logical messages sent (batch constituents counted individually)",
        ),
        children={},  # lazily-filled ((kind, src, dst) -> (messages, bytes))
    )
)


def _traffic_children(m: SimpleNamespace, kind: str, src_region: str, dst_region: str):
    key = (kind, src_region, dst_region)
    pair = m.children.get(key)
    if pair is None:
        labels = {"kind": kind, "src_region": src_region, "dst_region": dst_region}
        pair = (m.messages.labels(**labels), m.bytes.labels(**labels))
        m.children[key] = pair
    return pair


@dataclass(frozen=True)
class Message:
    """Envelope for anything sent over the simulated network.

    ``count`` is the number of *logical* messages this envelope carries —
    1 for ordinary traffic, the constituent-vote count for a consensus
    BATCH — so traffic stats can report both wire and logical volume.
    """

    kind: str
    payload: Any
    sender: int
    size_bytes: int = 256
    count: int = 1
    msg_id: int = field(default_factory=itertools.count().__next__)


class Endpoint(Protocol):
    """Anything receiving messages from the network."""

    def on_message(self, msg: Message) -> None: ...


@dataclass
class PartialSynchrony:
    """Timing model: unknown GST, known δ after it."""

    gst: float = 0.0
    delta: float = params.DELTA
    #: worst-case adversarial delay applied before GST
    pre_gst_max_delay: float = 5.0

    def bound(self, now: float) -> float:
        return self.delta if now >= self.gst else self.pre_gst_max_delay


@dataclass
class NetStats:
    """Traffic counters (bandwidth-consumption evidence for §III)."""

    messages: int = 0
    bytes: int = 0
    #: batch-aware volume: constituents of batched envelopes counted
    #: individually (messages counts wire envelopes; logical >= messages)
    logical_messages: int = 0
    by_kind: dict = field(default_factory=dict)
    #: per-sender [messages, bytes] — who is spending the network
    by_sender: dict = field(default_factory=dict)
    #: per-(src_region, dst_region) [messages, bytes] — cross-region
    #: bandwidth asymmetry, the §V 10-region deployment evidence
    by_region: dict = field(default_factory=dict)

    def record(
        self, msg: Message, *, src_region: str = "local", dst_region: str = "local"
    ) -> None:
        self.messages += 1
        self.bytes += msg.size_bytes
        self.logical_messages += msg.count
        kind = self.by_kind.setdefault(msg.kind, [0, 0])
        kind[0] += 1
        kind[1] += msg.size_bytes
        sender = self.by_sender.setdefault(msg.sender, [0, 0])
        sender[0] += 1
        sender[1] += msg.size_bytes
        region = self.by_region.setdefault((src_region, dst_region), [0, 0])
        region[0] += 1
        region[1] += msg.size_bytes
        m = _metrics()
        m.logical.inc(msg.count)
        msgs_child, bytes_child = _traffic_children(
            m, msg.kind, src_region, dst_region
        )
        msgs_child.inc()
        bytes_child.inc(msg.size_bytes)

    def egress_bytes(self, sender: int) -> int:
        return self.by_sender.get(sender, [0, 0])[1]


class Network:
    """Delivers messages between registered endpoints on a Simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        timing: PartialSynchrony | None = None,
        bandwidth_bytes_per_s: float = params.DEFAULT_RESOURCES.egress_bytes_per_s,
        jitter_s: float = 0.002,
        seed: int = 11,
        adversarial_delay: Callable[[int, int, float], float] | None = None,
    ):
        self.sim = sim
        self.topology = topology
        self.timing = timing or PartialSynchrony()
        self.bandwidth = bandwidth_bytes_per_s
        self.jitter_s = jitter_s
        self.rng = np.random.default_rng(seed)
        self.adversarial_delay = adversarial_delay
        self._endpoints: dict[int, Endpoint] = {}
        self.stats = NetStats()

    def register(self, node_id: int, endpoint: Endpoint) -> None:
        if node_id in self._endpoints:
            raise NetworkError(f"node {node_id} already registered")
        self._endpoints[node_id] = endpoint

    # -- delay model ---------------------------------------------------------------

    def delay_for(self, src: int, dst: int, size_bytes: int) -> float:
        """Sample the delivery delay for one message."""
        base = self.topology.latency_s(src, dst)
        serialization = size_bytes / self.bandwidth
        jitter = float(self.rng.exponential(self.jitter_s))
        delay = base + serialization + jitter
        if self.adversarial_delay is not None:
            # The adversary may only *stretch* delays, bounded by the
            # partial-synchrony cap for the current time.
            extra = max(0.0, self.adversarial_delay(src, dst, self.sim.now))
            delay += extra
        return min(delay, self.timing.bound(self.sim.now) + serialization)

    # -- primitives -------------------------------------------------------------------

    def send(self, src: int, dst: int, msg: Message) -> None:
        """Point-to-point send; delivery scheduled on the simulator."""
        if dst not in self._endpoints:
            raise NetworkError(f"unknown destination node {dst}")
        self.stats.record(
            msg,
            src_region=self.topology.region_of(src),
            dst_region=self.topology.region_of(dst),
        )
        delay = self.delay_for(src, dst, msg.size_bytes)
        self.sim.schedule(delay, self._deliver, dst, msg)

    def broadcast(self, src: int, msg: Message, *, include_self: bool = True) -> None:
        """Best-effort broadcast to every registered node."""
        for dst in self._endpoints:
            if dst == src and not include_self:
                continue
            if dst == src:
                # Local delivery is immediate-ish (loopback).
                self.sim.schedule(0.0, self._deliver, dst, msg)
                region = self.topology.region_of(src)
                self.stats.record(msg, src_region=region, dst_region=region)
            else:
                self.send(src, dst, msg)

    def send_to_peers(self, src: int, msg: Message) -> int:
        """Send to overlay neighbours only (gossip building block)."""
        peers = self.topology.peers_of(src)
        for dst in peers:
            if dst in self._endpoints:
                self.send(src, dst, msg)
        return len(peers)

    def _deliver(self, dst: int, msg: Message) -> None:
        endpoint = self._endpoints.get(dst)
        if endpoint is not None:
            endpoint.on_message(msg)

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._endpoints)
