"""Schema-versioned ``BENCH_<scenario>.json`` artifacts.

One artifact captures everything needed to compare a benchmark run
months later without re-running it:

* ``headline`` — the scenario's derived stats (throughput, latency
  quantiles, messages per committed tx, …), flat ``name -> number``;
* ``metrics`` — the full ``telemetry.to_json`` registry snapshot taken
  from the run's scoped registry;
* ``env`` — environment fingerprint (python, platform, host, git SHA,
  wall time) so a diff can tell "code got slower" from "ran elsewhere".

The schema is validated structurally by :func:`validate_artifact` (no
external jsonschema dependency) and versioned via :data:`ARTIFACT_SCHEMA`
so future layout changes stay detectable.
"""

from __future__ import annotations

import json
import numbers
import platform
import socket
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone

ARTIFACT_SCHEMA = "repro.bench/v1"

__all__ = [
    "ARTIFACT_SCHEMA",
    "BenchArtifact",
    "artifact_filename",
    "environment_fingerprint",
    "validate_artifact",
]


def _git_sha() -> "str | None":
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint(*, wall_time_s: float) -> dict:
    """Where and when this artifact was produced."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "host": socket.gethostname(),
        "git_sha": _git_sha(),
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "wall_time_s": round(wall_time_s, 3),
    }


def artifact_filename(scenario: str) -> str:
    return f"BENCH_{scenario}.json"


@dataclass
class BenchArtifact:
    """One scenario run, serialized as ``BENCH_<scenario>.json``."""

    scenario: str
    description: str
    seed: int
    headline: dict
    metrics: dict
    env: dict
    schema: str = ARTIFACT_SCHEMA
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        doc = {
            "schema": self.schema,
            "scenario": self.scenario,
            "description": self.description,
            "seed": self.seed,
            "env": self.env,
            "headline": self.headline,
            "metrics": self.metrics,
        }
        if self.extra:
            doc["extra"] = self.extra
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "BenchArtifact":
        problems = validate_artifact(doc)
        if problems:
            raise ValueError(
                "invalid bench artifact: " + "; ".join(problems)
            )
        return cls(
            scenario=doc["scenario"],
            description=doc["description"],
            seed=doc["seed"],
            headline=doc["headline"],
            metrics=doc["metrics"],
            env=doc["env"],
            schema=doc["schema"],
            extra=doc.get("extra", {}),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "BenchArtifact":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


_ENV_REQUIRED = ("python", "platform", "host", "created_utc", "wall_time_s")


def validate_artifact(doc: object) -> "list[str]":
    """Structural validation; returns a list of problems ([] when valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"artifact must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != ARTIFACT_SCHEMA:
        problems.append(
            f"schema must be {ARTIFACT_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    for key, typ in (
        ("scenario", str), ("description", str), ("seed", int),
        ("env", dict), ("headline", dict), ("metrics", dict),
    ):
        value = doc.get(key)
        if not isinstance(value, typ) or isinstance(value, bool):
            problems.append(f"{key} must be {typ.__name__}, got {type(value).__name__}")
    headline = doc.get("headline")
    if isinstance(headline, dict):
        for name, value in headline.items():
            if not isinstance(name, str):
                problems.append(f"headline key {name!r} is not a string")
            if not isinstance(value, numbers.Real) or isinstance(value, bool):
                problems.append(f"headline[{name!r}] is not a number: {value!r}")
    env = doc.get("env")
    if isinstance(env, dict):
        for key in _ENV_REQUIRED:
            if key not in env:
                problems.append(f"env missing {key!r}")
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        for name, entry in metrics.items():
            if not isinstance(entry, dict) or "type" not in entry or "samples" not in entry:
                problems.append(f"metrics[{name!r}] is not a metric snapshot")
                continue
            if not isinstance(entry["samples"], list):
                problems.append(f"metrics[{name!r}].samples is not a list")
    return problems
