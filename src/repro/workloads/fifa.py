"""FIFA workload: world-cup ticket purchases on the ticketing DApp.

Envelope (§V): 3 minutes, average 3 483 TPS, peak 5 305 TPS — heavy
sustained demand with surges (sale-window openings).  FIFA is the
capacity-exhaustion test: the average alone exceeds every evaluated
chain's commit capacity except SRBB's, and even SRBB only drains the
backlog within the measurement horizon for ~98 % of transactions.
"""

from __future__ import annotations

import numpy as np

from repro import params
from repro.core.transaction import Transaction, make_invoke
from repro.crypto.keys import generate_keypair
from repro.vm.contracts.ticketing import TicketingContract
from repro.vm.executor import native_address_for
from repro.workloads.trace import RequestFactory, Trace, shape_to_envelope

ENVELOPE = params.FIFA_ENVELOPE

#: matches on sale during the trace
MATCH_IDS = tuple(range(1, 17))


def fifa_trace(*, seed: int = 301) -> Trace:
    """Synthetic FIFA trace matched to (180 s, avg 3 483, peak 5 305)."""
    rng = np.random.default_rng(seed)
    duration = int(ENVELOPE.duration_s)
    t = np.arange(duration)
    # Sustained heavy load with three sale-window surges.
    shape = 1.0 + 0.1 * rng.random(duration)
    for surge_at, width, height in ((20, 8, 0.6), (85, 10, 0.8), (150, 6, 0.5)):
        shape += height * np.exp(-0.5 * ((t - surge_at) / width) ** 2)
    return shape_to_envelope(
        shape,
        avg_tps=ENVELOPE.avg_tps,
        peak_tps=ENVELOPE.peak_tps,
        name=ENVELOPE.name,
    )


def fifa_request_factory(
    *, clients: int = 128, seed: int = 302, gas_price: int = 1
) -> RequestFactory:
    """Factory producing ticketing ``buy_ticket`` invocations."""
    rng = np.random.default_rng(seed)
    keypairs = [generate_keypair(seed * 10_000 + i) for i in range(clients)]
    nonces = [0] * clients
    contract = native_address_for(TicketingContract.name)

    def build(i: int, send_time: float) -> Transaction:
        c = i % clients
        nonce = nonces[c]
        nonces[c] += 1
        match_id = MATCH_IDS[int(rng.integers(len(MATCH_IDS)))]
        seats = int(rng.integers(1, 5))
        return make_invoke(
            keypairs[c],
            contract,
            "buy_ticket",
            (match_id, seats),
            nonce,
            amount=seats,  # price 1 per seat by default
            gas_limit=150_000,
            gas_price=gas_price,
            created_at=send_time,
        )

    build.keypairs = keypairs  # type: ignore[attr-defined]
    build.cache_key = ("fifa", clients, seed, gas_price)  # type: ignore[attr-defined]
    return build


def fifa_genesis_setup(state) -> None:
    """Put every match on sale at genesis (what ``open_match`` would do).

    ``buy_ticket`` reverts on an unopened match, and TVPR then excludes
    the transaction pre-consensus — so a replay against a bare genesis
    commits nothing.  The paper's deployment has the sale running before
    the trace starts; deterministic genesis state is the equivalent here.
    """
    from repro.vm.contracts.ticketing import DEFAULT_CAPACITY

    contract = native_address_for(TicketingContract.name)
    for match_id in MATCH_IDS:
        state.storage_set(
            contract, f"match:{match_id}", {"capacity": DEFAULT_CAPACITY, "price": 1}
        )
        state.storage_set(contract, f"sold:{match_id}", 0)
