"""Client read requests (§II-A: validators service reads as well).

`QueryAPI` is the JSON-RPC-shaped read surface of one validator —
balances, nonces, contract storage, receipts, blocks, head — and
`RemoteClient` drives it over the simulated network with request/response
round trips, so reads pay network latency like everything else.

Reads are served from the validator's local replica.  A single replica
can be stale or Byzantine; `RemoteClient.confirmed_balance` demonstrates
the f+1-matching-responses pattern a distrustful client uses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.node import ValidatorNode
from repro.core.transaction import Transaction
from repro.net.transport import Message, Network

QUERY_KIND = "query"
RESPONSE_KIND = "query-response"


@dataclass(frozen=True)
class Query:
    """One read request: a method name plus arguments."""

    method: str
    args: tuple
    request_id: int
    reply_to: int  # client endpoint id


@dataclass(frozen=True)
class QueryResponse:
    request_id: int
    result: Any
    error: str | None = None
    responder: int = -1


class QueryAPI:
    """Read-only view over a validator's replica."""

    METHODS = (
        "get_balance",
        "get_nonce",
        "get_storage",
        "get_receipt",
        "get_block_by_height",
        "get_head",
        "get_height",
    )

    def __init__(self, node: ValidatorNode):
        self._node = node

    def get_balance(self, address: str) -> int:
        return self._node.blockchain.state.balance_of(address)

    def get_nonce(self, address: str) -> int:
        return self._node.blockchain.state.nonce_of(address)

    def get_storage(self, contract: str, key: str) -> Any:
        return self._node.blockchain.state.storage_get(contract, key)

    def get_receipt(self, tx_hash_hex: str) -> dict | None:
        record = self._node.receipts.get(bytes.fromhex(tx_hash_hex))
        if record is None:
            return None
        return {
            "success": record.receipt.success,
            "gas_used": record.receipt.gas_used,
            "height": record.height,
            "block_hash": record.block_hash.hex(),
            "commit_time": record.commit_time,
        }

    def get_block_by_height(self, height: int) -> dict | None:
        chain = self._node.blockchain.chain
        if not 0 <= height < len(chain):
            return None
        block = chain[height]
        return {
            "height": height,
            "proposer_id": block.proposer_id,
            "tx_count": len(block),
            "block_hash": block.block_hash.hex(),
            "parent_hash": block.parent_hash.hex(),
        }

    def get_head(self) -> dict:
        head = self._node.blockchain.head()
        return {
            "height": self._node.blockchain.height,
            "block_hash": head.block_hash.hex(),
        }

    def get_height(self) -> int:
        return self._node.blockchain.height

    # -- dispatch ------------------------------------------------------------------

    def dispatch(self, query: Query) -> QueryResponse:
        if query.method not in self.METHODS:
            return QueryResponse(
                request_id=query.request_id,
                result=None,
                error=f"unknown method {query.method!r}",
                responder=self._node.node_id,
            )
        try:
            result = getattr(self, query.method)(*query.args)
            return QueryResponse(
                request_id=query.request_id, result=result,
                responder=self._node.node_id,
            )
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            return QueryResponse(
                request_id=query.request_id, result=None,
                error=str(exc), responder=self._node.node_id,
            )


def attach_query_service(node: ValidatorNode) -> QueryAPI:
    """Teach a validator to answer QUERY messages over the network."""
    api = QueryAPI(node)
    original = node.on_message

    def on_message(msg: Message) -> None:
        if msg.kind == QUERY_KIND:
            response = api.dispatch(msg.payload)
            node.network.send(
                node.node_id,
                msg.payload.reply_to,
                Message(kind=RESPONSE_KIND, payload=response,
                        sender=node.node_id, size_bytes=256),
            )
            return
        original(msg)

    node.on_message = on_message  # type: ignore[method-assign]
    return api


class RemoteClient:
    """A network client endpoint issuing reads (and collecting responses)."""

    _ids = itertools.count(1)

    def __init__(self, network: Network, *, endpoint_id: int):
        self.network = network
        self.endpoint_id = endpoint_id
        self.responses: dict[int, list[QueryResponse]] = {}
        self._callbacks: dict[int, Callable[[QueryResponse], None]] = {}
        network.register(endpoint_id, self)

    def on_message(self, msg: Message) -> None:
        if msg.kind != RESPONSE_KIND:
            return
        response: QueryResponse = msg.payload
        self.responses.setdefault(response.request_id, []).append(response)
        callback = self._callbacks.get(response.request_id)
        if callback is not None:
            callback(response)

    def ask(
        self,
        validator_id: int,
        method: str,
        *args: Any,
        callback: Callable[[QueryResponse], None] | None = None,
    ) -> int:
        """Send one read to one validator; returns the request id."""
        request_id = next(self._ids)
        if callback is not None:
            self._callbacks[request_id] = callback
        query = Query(method=method, args=args, request_id=request_id,
                      reply_to=self.endpoint_id)
        self.network.send(
            self.endpoint_id, validator_id,
            Message(kind=QUERY_KIND, payload=query,
                    sender=self.endpoint_id, size_bytes=128),
        )
        return request_id

    def ask_many(self, validator_ids, method: str, *args: Any) -> list[int]:
        """Fan a read out to several validators (f+1 confirmation reads)."""
        return [self.ask(v, method, *args) for v in validator_ids]

    def confirmed_result(self, request_ids, *, threshold: int) -> Any:
        """The first result reported identically by ≥ threshold validators
        (None when no value reached the threshold yet)."""
        counts: dict[str, tuple[int, Any]] = {}
        for request_id in request_ids:
            for response in self.responses.get(request_id, ()):
                if response.error:
                    continue
                key = repr(response.result)
                count, value = counts.get(key, (0, response.result))
                counts[key] = (count + 1, value)
        for count, value in counts.values():
            if count >= threshold:
                return value
        return None
