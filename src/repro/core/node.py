"""The SRBB validator node — Algorithm 1 end to end.

A node wires together the transaction pool, the superblock consensus, the
blockchain commit loop and (optionally) the RPM contract invocations, on
top of the discrete-event network.  The two congestion mechanisms under
study are switches:

* ``protocol.tvpr`` — when True (SRBB), transactions received from clients
  are eagerly validated once and *never* gossiped individually; when False
  (modern-blockchain baseline, EVM+DBFT), every transaction is gossiped to
  peers and re-eagerly-validated at every hop (Alg. 1 line 9).
* ``protocol.rpm`` — when True, each committed superblock triggers
  ``propReceived`` attestations and ``report`` invocations for invalid
  transactions, submitted through the node's own pool as ordinary INVOKE
  transactions so every replica's RPM state stays identical.

Reporting policy (reproduction decision): a correct proposer can include a
transaction that *later* fails lazy validation through no fault of its own
(a nonce race between two clients' submissions).  Reports are therefore
filed only for failures eager validation must have caught at inclusion
time — bad signatures, oversized transactions, unfunded senders — never
for nonce staleness or duplicates.
"""

from __future__ import annotations

import logging
from typing import Callable

from repro import params, telemetry
from repro.core.block import Block, SuperBlock, make_block
from repro.core.blockchain import Blockchain
from repro.core.receipts import ReceiptStore
from repro.core.rpm import RPMContract, certificate_payload, report_payload
from repro.core.transaction import Transaction, make_invoke
from repro.core.txpool import TxPool
from repro.core.validation import eager_validate
from repro.consensus.batching import VoteBatcher
from repro.consensus.messages import ConsensusMessage, MsgKind
from repro.consensus.superblock import SuperBlockConsensus, record_wire_kind
from repro.crypto.keys import KeyPair
from repro.net.gossip import GossipLayer
from repro.net.simulator import Simulator
from repro.net.transport import Message, Network
from repro.vm.executor import install_native, native_address_for
from repro.vm.state import WorldState

#: error codes whose presence in a committed block indicts the proposer
REPORTABLE_ERRORS = frozenset(
    {
        "invalid-sig",
        "oversized",
        "insufficient-balance",
        "insufficient-gas",
        "exceeds-block-gas",
    }
)

#: wire kinds
TX_KIND = "tx"
CONSENSUS_KIND = "consensus"

logger = logging.getLogger("repro.core.node")

#: NodeStats fields, in declaration order (drives properties + mirrors)
_STAT_FIELDS = (
    "eager_validations",
    "eager_failures",
    "txs_from_clients",
    "txs_from_peers",
    "blocks_proposed",
    "superblocks_committed",
    "txs_committed",
    "txs_discarded",
    "rpm_attestations",
    "rpm_reports",
    "recycled_from_undecided",
)

#: fields folded into one labeled metric in the global registry
_MIRROR_OVERRIDES = {
    "txs_from_clients": ("srbb_node_txs_received_total", {"source": "client"}),
    "txs_from_peers": ("srbb_node_txs_received_total", {"source": "peer"}),
}


def _mirror_counters(registry: telemetry.MetricsRegistry, node_id: "int | None"):
    """Global-registry children for one node's stats (aggregated export)."""
    label = {"node": str(node_id)} if node_id is not None else {}
    mirrors = {}
    for name in _STAT_FIELDS:
        metric_name, extra = _MIRROR_OVERRIDES.get(
            name, (f"srbb_node_{name}_total", {})
        )
        mirrors[name] = registry.counter(
            metric_name, f"per-validator {name.replace('_', ' ')}"
        ).labels(**label, **extra)
    return mirrors


class NodeStats:
    """Per-node counters feeding the congestion analysis.

    A thin view over :mod:`repro.telemetry` counters: each field is a
    private always-on :class:`~repro.telemetry.Counter` (exact per-node
    counts, independent of global telemetry), mirrored into labeled
    children of the process-global registry so ``--metrics-out`` exports
    them.  The attribute API is unchanged — ``stats.txs_committed`` reads
    an ``int`` and ``stats.txs_committed += 1`` still works.
    """

    __slots__ = ("_local", "_mirrors")

    _fields = _STAT_FIELDS

    def __init__(self, node_id: "int | None" = None):
        object.__setattr__(
            self,
            "_local",
            {name: telemetry.Counter(f"srbb_node_{name}_total") for name in _STAT_FIELDS},
        )
        object.__setattr__(
            self, "_mirrors", _mirror_counters(telemetry.get_registry(), node_id)
        )

    def __getattr__(self, name: str) -> int:
        try:
            return int(self._local[name].value)
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: int) -> None:
        local = self._local.get(name)
        if local is None:
            raise AttributeError(f"unknown stat {name!r}")
        delta = value - local.value
        if delta < 0:
            raise ValueError(f"stat {name!r} cannot decrease")
        local.inc(delta)
        self._mirrors[name].inc(delta)

    def as_dict(self) -> "dict[str, int]":
        return {name: int(self._local[name].value) for name in _STAT_FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"NodeStats({inner})"


class ValidatorNode:
    """One correct SRBB validator (subclass hooks support Byzantine ones)."""

    def __init__(
        self,
        *,
        node_id: int,
        keypair: KeyPair,
        sim: Simulator,
        network: Network,
        protocol: params.ProtocolParams,
        genesis: Callable[[WorldState], None] | None = None,
        validator_addresses: tuple[str, ...] = (),
        round_interval: float = 0.25,
        proposer_timeout: float = 2.0,
        registry=None,
        execution_rate: float = 20_000.0,
        max_reports_per_block: int = 2,
        order_by_fee: bool = False,
    ):
        self.node_id = node_id
        self.keypair = keypair
        self.address = keypair.address
        self.sim = sim
        self.network = network
        self.protocol = protocol
        self.round_interval = round_interval
        self.proposer_timeout = proposer_timeout
        self.validator_addresses = validator_addresses
        #: transactions this node can execute per second — committing a
        #: superblock with k transactions (valid or not) defers the next
        #: round by k/execution_rate, which is how flooded invalid
        #: transactions steal throughput (§V-B)
        self.execution_rate = execution_rate
        #: reports filed per (proposer, block): one successful report slashes
        #: the entire deposit, so rational reporters cap their overhead
        self.max_reports_per_block = max_reports_per_block
        #: fee market: proposers maximizing Σ Txfees (the RPM incentive
        #: term) pack blocks by gas price instead of FIFO
        self.order_by_fee = order_by_fee

        state = WorldState()
        if genesis is not None:
            genesis(state)
        state.commit()
        self.blockchain = Blockchain(protocol=protocol, state=state)
        if registry is not None:
            self.blockchain.executor.registry = registry
        self.pool = TxPool(
            capacity=protocol.txpool_capacity, ttl=protocol.tx_ttl
        )
        self.receipts = ReceiptStore()
        self.stats = NodeStats(node_id)

        self._consensus: dict[int, SuperBlockConsensus] = {}
        self._pending_superblocks: dict[int, SuperBlock] = {}
        self._next_commit_index = 1
        self._next_propose_index = 1
        self._proposed: set[int] = set()
        self._rpm_nonce: int | None = None
        #: addresses excluded after RPM slashing (Alg. 2 line 42 listeners)
        self.excluded_validators: set[str] = set()

        self.gossip = GossipLayer(
            node_id, network, self._deliver_gossiped_tx
        )
        #: coalescing sink between the consensus instances and the wire:
        #: every batchable vote emitted within one tick goes out as a
        #: single BATCH broadcast (protocol.vote_batching gates it)
        self.vote_batcher = VoteBatcher(
            node_id=node_id,
            sink=self._send_consensus_wire,
            sim=sim,
            tick=protocol.vote_batch_tick,
            enabled=protocol.vote_batching,
        )
        network.register(node_id, self)

    # -- identity helpers ---------------------------------------------------------

    def coinbase_of(self, proposer_id: int) -> str:
        if 0 <= proposer_id < len(self.validator_addresses):
            return self.validator_addresses[proposer_id]
        return ""

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Kick off round 1 after one round interval."""
        self.sim.schedule(self.round_interval, self._start_round, 1)

    # -- Alg. 1 receive(t) -----------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> bool:
        """Entry point for client submissions (Reception stage, §IV-C)."""
        self.stats.txs_from_clients += 1
        return self._receive(tx, from_peer=False)

    def _deliver_gossiped_tx(self, tx: Transaction, sender: int) -> None:
        """A peer gossiped an individual transaction (non-TVPR mode only)."""
        self.stats.txs_from_peers += 1
        self._receive(tx, from_peer=True)

    def _receive(self, tx: Transaction, *, from_peer: bool) -> bool:
        # Eager validation — the expensive check (Alg. 1 line 5).  With
        # TVPR this happens exactly once network-wide (client-facing node);
        # without, every node on the gossip path repeats it.
        self.stats.eager_validations += 1
        outcome = eager_validate(tx, self.blockchain.state, self.protocol)
        if not outcome:
            self.stats.eager_failures += 1
            logger.debug(
                "node %d rejected tx %s at eager validation: %s",
                self.node_id, tx.tx_hash.hex()[:12], outcome.error_code,
            )
            return False
        if self.blockchain.contains_tx(tx) or tx in self.pool:
            return False
        self.pool.add(tx, now=self.sim.now)  # line 7
        if not self.protocol.tvpr and self.sim.now - tx.created_at < self.protocol.tx_ttl:
            # line 9 — modern blockchains gossip; SRBB (TVPR) does not.
            self.gossip.publish(tx.tx_hash, tx, tx.encoded_size())
        return True

    # -- proposal (Alg. 1 propose(p)) ----------------------------------------------------

    def _start_round(self, index: int) -> None:
        if index in self._proposed:
            return
        self._proposed.add(index)
        block = self._create_block(index)
        self.stats.blocks_proposed += 1
        consensus = self._consensus_for(index)
        consensus.propose(block)
        self.sim.schedule(
            self.proposer_timeout, self._round_timeout, index
        )

    def _create_block(self, index: int) -> Block:
        """create-block-with(p1 ⊂ p); Byzantine subclasses override."""
        self.pool.expire(self.sim.now)
        batch = self.pool.take_batch(
            self.protocol.max_block_txs,
            gas_limit=self.protocol.block_gas_limit,
            next_nonce=self.blockchain.state.nonce_of,
            by_fee=self.order_by_fee,
        )
        return make_block(
            self.keypair, self.node_id, index, batch, round=index
        )

    def _validate_header(self, block: Block) -> bool:
        """Header check used for superblock voting: a valid certificate
        from a non-excluded proposer (Alg. 1 line 16 + Alg. 2 line 42
        listeners excluding slashed validators)."""
        if not block.header_valid():
            logger.warning(
                "node %d rejecting block %d/%d: invalid header",
                self.node_id, block.index, block.proposer_id,
            )
            return False
        if block.certificate is not None:
            proposer = block.certificate.proposer_address()
            if proposer in self.excluded_validators:
                logger.warning(
                    "node %d rejecting block %d/%d: proposer %s is RPM-excluded",
                    self.node_id, block.index, block.proposer_id, proposer[:12],
                )
                return False
        return True

    def _round_timeout(self, index: int) -> None:
        consensus = self._consensus.get(index)
        if consensus is not None and not consensus.finished:
            logger.debug(
                "node %d: round %d timed out, voting 0 on silent proposers",
                self.node_id, index,
            )
            consensus.timeout_silent_proposers()

    # -- consensus plumbing ----------------------------------------------------------------

    def _consensus_for(self, index: int) -> SuperBlockConsensus:
        if index not in self._consensus:
            self._consensus[index] = SuperBlockConsensus(
                n=self.protocol.n,
                f=self.protocol.f,
                my_id=self.node_id,
                index=index,
                broadcast=self._broadcast_consensus,
                on_superblock=self._on_superblock,
                validate_header=self._validate_header,
                on_undecided_block=self._recycle_block,
            )
        return self._consensus[index]

    def _broadcast_consensus(self, msg: ConsensusMessage) -> None:
        """Consensus-side emission: route through the vote batcher."""
        self.vote_batcher.submit(msg)

    def _send_consensus_wire(self, msg: ConsensusMessage) -> None:
        """Wire-side emission: one Message per (possibly batched) payload."""
        votes = len(msg.value) if msg.kind is MsgKind.BATCH else 1
        self.network.broadcast(
            self.node_id,
            Message(
                kind=CONSENSUS_KIND,
                payload=msg,
                sender=self.node_id,
                size_bytes=msg.approx_size(),
                count=votes,
            ),
        )

    def on_message(self, msg: Message) -> None:
        """Network endpoint entry point."""
        if msg.kind == CONSENSUS_KIND:
            cmsg: ConsensusMessage = msg.payload
            # NO staleness filter, deliberately: a node that already
            # committed index k must keep serving k's traffic — RBC
            # totality needs the ECHO/READY exchange to finish (late
            # undecided blocks recycle), and laggards still deciding k
            # need the grace-round BVAL/AUX help of early deciders.
            # Filtering either class deadlocks a lagging replica (see
            # tests/integration/test_late_delivery.py and
            # tests/diablo/test_runner.py histories).
            if cmsg.kind is MsgKind.BATCH:
                # One wire message, many votes: count the batch once, then
                # feed constituents to their (index, instance) in emission
                # order.  Constituents may span chain indexes.
                record_wire_kind(MsgKind.BATCH)
                for constituent in cmsg.value:
                    self._dispatch_consensus(
                        constituent, msg.sender, record=False
                    )
            else:
                self._dispatch_consensus(cmsg, msg.sender)
        elif msg.kind == GossipLayer.KIND:
            self.gossip.handle(msg)
        elif msg.kind == TX_KIND:
            self.submit_transaction(msg.payload)

    def _dispatch_consensus(
        self, cmsg: ConsensusMessage, wire_sender: int, *, record: bool = True
    ) -> None:
        """Route one (unpacked) consensus message to its chain index.

        ``wire_sender`` is the transport-level sender — subclasses that
        authenticate logical senders against committee slots (epochs)
        override this and check each batch constituent individually.
        """
        self._consensus_for(cmsg.index).on_message(cmsg, record=record)

    # -- decision & commit (Alg. 1 lines 18-31) ------------------------------------------------

    def _on_superblock(self, superblock: SuperBlock) -> None:
        self._pending_superblocks[superblock.index] = superblock
        while self._next_commit_index in self._pending_superblocks:
            sb = self._pending_superblocks[self._next_commit_index]
            self._commit(sb)
            self._next_commit_index += 1

    def _commit(self, superblock: SuperBlock) -> None:
        result = self.blockchain.commit_superblock(
            superblock,
            now=self.sim.now,
            coinbase_of=self.coinbase_of,
            exec_rate=self.execution_rate,
        )
        self.stats.superblocks_committed += 1
        self.stats.txs_committed += len(result.committed)
        self.stats.txs_discarded += len(result.discarded)
        telemetry.event(
            "node.commit",
            node=self.node_id,
            index=superblock.index,
            committed=len(result.committed),
            discarded=len(result.discarded),
            sim_now=self.sim.now,
        )
        logger.debug(
            "node %d committed superblock %d: %d txs, %d discarded",
            self.node_id, superblock.index,
            len(result.committed), len(result.discarded),
        )

        # Index receipts for client confirmation queries (§VI receipts).
        receipts_by_hash = {r.tx_hash: r for r in result.receipts if r.success}
        for appended in result.appended_blocks:
            self.receipts.record_block(
                appended, receipts_by_hash, commit_time=self.sim.now
            )

        # Drop any pool copies of committed transactions.
        self.pool.remove_hashes({tx.tx_hash for tx in result.committed})

        # Alg. 1 lines 27-31: recycle transactions from undecided blocks ℂ.
        # (Blocks RBC-delivered after this point recycle via the
        # on_undecided_block hook.)
        consensus = self._consensus.get(superblock.index)
        if consensus is not None:
            decided_ids = {b.proposer_id for b in superblock.blocks}
            for proposer_id, block in consensus.proposals.items():
                if proposer_id not in decided_ids:
                    self._recycle_block(block)

        if self.protocol.rpm:
            self._invoke_rpm(superblock, result.invalid_by_proposer)
        self._refresh_exclusions()

        # Schedule the next round, deferred by the CPU time this commit
        # consumed (every transaction — including flooded invalid ones —
        # is lazily validated and executed before the node can move on).
        processed = len(result.committed) + len(result.discarded)
        execution_delay = processed / self.execution_rate
        next_index = superblock.index + 1
        if next_index > self._next_propose_index:
            self._next_propose_index = next_index
        self.sim.schedule(
            self.round_interval + execution_delay, self._start_round, next_index
        )

    def _recycle_block(self, block: Block) -> None:
        """Re-admit valid transactions from an undecided block (line 31)."""
        for tx in block.transactions:
            if self.blockchain.contains_tx(tx) or tx in self.pool:
                continue
            if eager_validate(tx, self.blockchain.state, self.protocol):
                self.pool.add(tx, now=self.sim.now)
                self.stats.recycled_from_undecided += 1

    # -- RPM integration ---------------------------------------------------------------------

    def _rpm_next_nonce(self) -> int:
        if self._rpm_nonce is None:
            self._rpm_nonce = self.blockchain.state.nonce_of(self.address)
        nonce = self._rpm_nonce
        self._rpm_nonce += 1
        return nonce

    def _invoke_rpm(
        self,
        superblock: SuperBlock,
        invalid_by_proposer: list[tuple[int, Transaction, str]],
    ) -> None:
        rpm_address = native_address_for(RPMContract.name)
        # propReceived for every block in the decided superblock.
        for slot, block in enumerate(superblock.blocks):
            if block.certificate is None or len(block) == 0:
                continue
            cert, h_t_hex, tx_count = certificate_payload(block)
            tx = make_invoke(
                self.keypair,
                rpm_address,
                "prop_received",
                (cert, h_t_hex, tx_count, slot, superblock.index),
                self._rpm_next_nonce(),
                gas_limit=2_000_000,
                created_at=self.sim.now,
            )
            if self._receive(tx, from_peer=False):
                self.stats.rpm_attestations += 1
        # report reportable invalid transactions (bounded per block: one
        # successful report already forfeits the whole deposit).
        blocks_by_proposer = {b.proposer_id: b for b in superblock.blocks}
        reports_filed: dict[int, int] = {}
        for proposer_id, bad_tx, error in invalid_by_proposer:
            if error not in REPORTABLE_ERRORS:
                continue
            if reports_filed.get(proposer_id, 0) >= self.max_reports_per_block:
                continue
            reports_filed[proposer_id] = reports_filed.get(proposer_id, 0) + 1
            block = blocks_by_proposer.get(proposer_id)
            if block is None or block.certificate is None:
                continue
            cert, bad_hex, h_t_hex, proof_index, siblings = report_payload(
                block, bad_tx.tx_hash
            )
            tx = make_invoke(
                self.keypair,
                rpm_address,
                "report",
                (cert, superblock.index, bad_hex, h_t_hex, proof_index, siblings),
                self._rpm_next_nonce(),
                gas_limit=2_000_000,
                created_at=self.sim.now,
            )
            if self._receive(tx, from_peer=False):
                self.stats.rpm_reports += 1
                telemetry.event(
                    "rpm.report",
                    node=self.node_id,
                    proposer=proposer_id,
                    error=error,
                    index=superblock.index,
                    sim_now=self.sim.now,
                )
                logger.info(
                    "node %d filed RPM report against proposer %d (%s)",
                    self.node_id, proposer_id, error,
                )

    def _refresh_exclusions(self) -> None:
        """Listen for Byzantine-validator events (Alg. 2 line 42)."""
        excluded = self.blockchain.state.storage_get(
            native_address_for(RPMContract.name), "excluded", ()
        )
        self.excluded_validators = set(excluded)

    # -- convenience -------------------------------------------------------------------------

    @property
    def height(self) -> int:
        return self.blockchain.height

    def rpm_deposit_of(self, address: str) -> int:
        return int(
            self.blockchain.state.storage_get(
                native_address_for(RPMContract.name), f"deposit:{address}", 0
            )
        )
