"""FIG3 — Figure 3: average commit latency, (N,U,F) × 8 systems."""

from repro.analysis.figures import figure3
from repro.diablo.report import format_results_table
from repro.sim.chains import FIGURE_ORDER


def test_figure3(benchmark, run_once):
    rows = run_once(benchmark, figure3)
    print()
    print(format_results_table(rows, title="Figure 3 — average latency (s)"))

    by = {(r["workload"], r["chain"]): r["avg_latency_s"] for r in rows}

    # SRBB has the lowest latency on NASDAQ and Uber (paper: 6.6 s, 3.9 s).
    for workload in ("nasdaq", "uber"):
        srbb = by[(workload, "srbb")]
        for chain in FIGURE_ORDER:
            if chain != "srbb":
                assert srbb < by[(workload, chain)], (workload, chain)

    # SRBB's NASDAQ/Uber latencies are single-digit seconds.
    assert by[("nasdaq", "srbb")] < 10
    assert by[("uber", "srbb")] < 10

    # FIFA: SRBB drains a huge backlog, so its latency is tens of seconds
    # (paper: 64 s) — higher than chains that commit almost nothing.
    assert 30 <= by[("fifa", "srbb")] <= 120

    # The 6 modern chains all exceed 20 s everywhere (paper §V-A).
    for workload in ("nasdaq", "uber", "fifa"):
        for chain in FIGURE_ORDER:
            if chain not in ("srbb",):
                assert by[(workload, chain)] > 20, (workload, chain)
